"""Network container, monitors, determinism."""

import pytest

from repro import units
from repro.sim.monitor import CounterSet, QueueSampler, RateSampler
from repro.sim.network import Network
from repro.sim.topology import single_switch


class TestNetworkConstruction:
    def test_add_flow_rejects_self_traffic(self):
        net, _, hosts = single_switch(2)
        with pytest.raises(ValueError):
            net.add_flow(hosts[0], hosts[0])

    def test_add_flow_rejects_unknown_cc(self):
        net, _, hosts = single_switch(2)
        with pytest.raises(ValueError):
            net.add_flow(hosts[0], hosts[1], cc="bbr")

    def test_flow_ids_sequential(self):
        net, _, hosts = single_switch(3)
        f1 = net.add_flow(hosts[0], hosts[1])
        f2 = net.add_flow(hosts[1], hosts[2])
        assert (f1.flow_id, f2.flow_id) == (0, 1)

    def test_register_flow_id_guard(self):
        from repro.sim.host import Flow

        net, _, hosts = single_switch(2)
        stray = Flow(17, hosts[0], hosts[1])
        with pytest.raises(ValueError):
            net.register_flow(stray)

    def test_run_for_advances_clock(self):
        net, _, _ = single_switch(2)
        net.run_for(units.ms(3))
        assert net.engine.now == units.ms(3)

    def test_fleet_counters(self):
        net, _, hosts = single_switch(3)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(1))
        assert net.total_drops() == 0
        assert net.total_pause_frames_sent() == 0


class TestDeterminism:
    def run_once(self, seed):
        net, switch, hosts = single_switch(4, seed=seed)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:3]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(3))
        return tuple(f.bytes_delivered for f in flows), switch.marked_packets

    def test_same_seed_same_run(self):
        assert self.run_once(42) == self.run_once(42)

    def test_different_seed_different_run(self):
        assert self.run_once(42) != self.run_once(43)


class TestRateSampler:
    def test_rates_match_delivery(self):
        net, _, hosts = single_switch(2)
        flow = net.add_flow(hosts[0], hosts[1], cc="none", static_rate_bps=units.gbps(8))
        flow.set_greedy()
        sampler = RateSampler(net.engine, [flow], interval_ns=units.us(100))
        net.run_for(units.ms(2))
        series = sampler.series(flow)
        assert len(series) == 20
        assert sampler.mean_rate_bps(flow, skip=2) == pytest.approx(
            units.gbps(8), rel=0.05
        )

    def test_rejects_bad_interval(self):
        net, _, hosts = single_switch(2)
        with pytest.raises(ValueError):
            RateSampler(net.engine, [], interval_ns=0)


class TestQueueSampler:
    def test_samples_queue_depth(self):
        net, switch, hosts = single_switch(3)
        receiver = hosts[-1]
        f1 = net.add_flow(hosts[0], receiver, cc="none")
        f2 = net.add_flow(hosts[1], receiver, cc="none")
        f1.set_greedy()
        f2.set_greedy()
        port = switch.port_to(receiver.nic).index
        sampler = QueueSampler(net.engine, switch, port, interval_ns=units.us(10))
        net.run_for(units.ms(1))
        assert sampler.max_bytes() > 0
        assert len(sampler.samples_bytes) == len(sampler.times_ns)

    def test_priority_filter(self):
        net, switch, hosts = single_switch(3)
        port = switch.port_to(hosts[0].nic).index
        sampler = QueueSampler(
            net.engine, switch, port, priority=5, interval_ns=units.us(10)
        )
        net.run_for(units.us(100))
        assert sampler.max_bytes() == 0


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("x")
        counters.add("x", 4)
        assert counters.get("x") == 5
        assert counters.get("missing") == 0

    def test_snapshot_is_copy(self):
        counters = CounterSet()
        counters.add("x")
        snap = counters.snapshot()
        counters.add("x")
        assert snap == {"x": 1}
