"""End-to-end invariants across the whole stack.

These are the properties the paper's design guarantees:

* a correctly configured fabric is lossless;
* with DCQCN thresholds, ECN fires and PFC stays silent;
* DCQCN converges to fairness and near-full utilization;
* the PFC pathologies (unfairness, victim flow) appear without DCQCN
  and disappear with it.
"""

import pytest

from repro import units
from repro.analysis.stats import jain_fairness
from repro.core.params import DCQCNParams
from repro.sim.switch import SwitchConfig
from repro.sim.topology import single_switch, three_tier_clos


class TestLosslessness:
    def test_no_drops_with_pfc_under_incast(self):
        """PFC alone keeps the fabric lossless, whatever the offered load."""
        net, switch, hosts = single_switch(9, seed=17)
        receiver = hosts[-1]
        for host in hosts[:8]:
            flow = net.add_flow(host, receiver, cc="none")
            flow.set_greedy()
        net.run_for(units.ms(10))
        assert net.total_drops() == 0
        assert switch.pause_frames_sent > 0  # PFC did the braking

    def test_no_drops_on_clos_without_dcqcn(self):
        spec = three_tier_clos(hosts_per_tor=2, seed=18)
        receiver = spec.host(3, 0)
        for tor in range(3):
            flow = spec.net.add_flow(spec.host(tor, 0), receiver, cc="none")
            flow.set_greedy()
        spec.net.run_for(units.ms(10))
        assert spec.net.total_drops() == 0

    def test_delivered_never_exceeds_sent(self):
        net, _, hosts = single_switch(5, seed=19)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(10))
        for flow in flows:
            assert flow.bytes_delivered <= flow.bytes_sent


class TestEcnBeforePfc:
    def test_deployed_thresholds_keep_pfc_silent(self):
        """The §4 guarantee, observed end to end."""
        net, switch, hosts = single_switch(9, seed=20)
        receiver = hosts[-1]
        for host in hosts[:8]:
            flow = net.add_flow(host, receiver, cc="dcqcn")
            flow.set_greedy()
        net.run_for(units.ms(15))
        assert switch.marked_packets > 0
        assert switch.pause_frames_sent == 0
        assert net.total_drops() == 0

    def test_misconfigured_thresholds_trigger_pfc_first(self):
        """The Figure 18 misconfiguration: PAUSE beats ECN."""
        params = DCQCNParams.deployed().with_red_marking(
            kmin_bytes=units.kb(122), kmax_bytes=units.kb(200), pmax=0.01
        )
        config = SwitchConfig(
            pfc_mode="static", t_pfc_static_bytes=units.kb(24.47), marking=params
        )
        net, switch, hosts = single_switch(
            9, switch_config=config, seed=21, dcqcn_params=params
        )
        receiver = hosts[-1]
        for host in hosts[:8]:
            flow = net.add_flow(host, receiver, cc="dcqcn")
            flow.set_greedy()
        net.run_for(units.ms(15))
        assert switch.pause_frames_sent > 0


class TestFairnessAndUtilization:
    def test_incast_fair_share(self):
        net, _, hosts = single_switch(5, seed=22)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(30))
        before = [f.bytes_delivered for f in flows]
        net.run_for(units.ms(15))
        rates = [f.bytes_delivered - b for f, b in zip(flows, before)]
        assert jain_fairness(rates) > 0.9
        total = sum(rates) * 8e9 / units.ms(15)
        assert total > units.gbps(37)

    def test_flow_count_change_rebalances(self):
        """A new flow pushes incumbents toward the new fair share."""
        net, _, hosts = single_switch(4, seed=23)
        receiver = hosts[-1]
        first = net.add_flow(hosts[0], receiver, cc="dcqcn")
        first.set_greedy()
        net.run_for(units.ms(5))
        solo_rate = first.bytes_delivered * 8e9 / units.ms(5)
        second = net.add_flow(hosts[1], receiver, cc="dcqcn")
        second.set_greedy()
        net.run_for(units.ms(40))
        before = first.bytes_delivered
        net.run_for(units.ms(10))
        shared_rate = (first.bytes_delivered - before) * 8e9 / units.ms(10)
        assert solo_rate > units.gbps(38)
        assert shared_rate < units.gbps(28)

    def test_dcqcn_does_not_hurt_uncongested_flow(self):
        net, _, hosts = single_switch(4, seed=24)
        flow = net.add_flow(hosts[0], hosts[1], cc="dcqcn")
        flow.set_greedy()
        net.run_for(units.ms(5))
        rate = flow.bytes_delivered * 8e9 / units.ms(5)
        assert rate > units.gbps(39)


class TestPathologiesAppearAndDisappear:
    @pytest.fixture(scope="class")
    def victim_rates(self):
        """Victim throughput on the Clos, with and without DCQCN."""
        results = {}
        for cc in ("none", "dcqcn"):
            # seed fixes the ECMP draw; 27 places the victim on an
            # uplink the pause cascade actually reaches (some draws
            # dodge the incast entirely — that spread is Figure 4's
            # min/max whiskers)
            spec = three_tier_clos(hosts_per_tor=5, seed=27)
            receiver = spec.host(3, 0)
            for i in range(4):
                flow = spec.net.add_flow(spec.host(0, i), receiver, cc=cc)
                flow.set_greedy()
            for i in range(2):
                flow = spec.net.add_flow(spec.host(2, i), receiver, cc=cc)
                flow.set_greedy()
            victim = spec.net.add_flow(spec.host(0, 4), spec.host(1, 0), cc=cc)
            victim.set_greedy()
            warm = units.ms(30) if cc == "dcqcn" else units.ms(2)
            spec.net.run_for(warm)
            before = victim.bytes_delivered
            spec.net.run_for(units.ms(10))
            results[cc] = (victim.bytes_delivered - before) * 8e9 / units.ms(10)
        return results

    def test_victim_flow_suffers_without_dcqcn(self, victim_rates):
        assert victim_rates["none"] < units.gbps(15)

    def test_dcqcn_rescues_the_victim(self, victim_rates):
        assert victim_rates["dcqcn"] > victim_rates["none"]


class TestPriorityIsolation:
    """PFC is per (port, priority): other classes keep flowing."""

    def test_high_priority_class_unaffected_by_paused_class(self):
        net, switch, hosts = single_switch(10, seed=28)
        receiver = hosts[-1]
        other_receiver = hosts[-2]
        # class 0: heavy incast, no congestion control -> PFC engages
        for host in hosts[:7]:
            flow = net.add_flow(host, receiver, cc="none", priority=0)
            flow.set_greedy()
        # class 1: a single well-behaved flow from one of the same hosts
        express = net.add_flow(hosts[0], other_receiver, cc="none", priority=1)
        express.set_greedy()
        net.run_for(units.ms(8))
        assert switch.pause_frames_sent > 0  # class 0 was paused
        express_rate = express.bytes_delivered * 8e9 / units.ms(8)
        # the class-1 flow shares its sender port with a paused class-0
        # flow, yet keeps most of its bandwidth
        assert express_rate > units.gbps(15)

    def test_pause_duration_isolated_per_priority(self):
        net, switch, hosts = single_switch(10, seed=29)
        receiver = hosts[-1]
        for host in hosts[:7]:
            flow = net.add_flow(host, receiver, cc="none", priority=0)
            flow.set_greedy()
        net.run_for(units.ms(8))
        paused_p0 = sum(h.nic.port.total_paused_ns(0) for h in hosts[:7])
        paused_p1 = sum(h.nic.port.total_paused_ns(1) for h in hosts[:7])
        assert paused_p0 > 0
        assert paused_p1 == 0
