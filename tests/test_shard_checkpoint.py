"""The shard checkpoint journal: round-trip, tolerance, identity.

Unit tests of :mod:`repro.shard.checkpoint` in isolation — the journal
must hand back exactly the tuples the sync protocol ships (shapes
included: replay feeds them straight into
:meth:`~repro.shard.boundary.ShardContext._inject`), must shrug off
torn tail lines and stale journals, and must key runs so that resuming
never picks up another run's state.
"""

import json

import pytest

from repro.shard.checkpoint import ShardCheckpoint, replay_slice, run_token


def _msg(rx_shard, channel, seq, arrival):
    packet = (1, 2, 3, 4, 1000, seq, 0, 0, 7, 0, False, 0)
    return (rx_shard, channel, seq, arrival, packet)


def _checkpoint(tmp_path, every=1, label="t", seed=1, shards=2, window=500):
    return ShardCheckpoint(
        {"label": label},
        seed,
        shards,
        window,
        every=every,
        root=tmp_path,
    )


SCHEDULE = [500, 1000, 1500, 2000]


class TestJournalRoundTrip:
    def test_rounds_survive_a_write_read_cycle_bit_exact(self, tmp_path):
        ck = _checkpoint(tmp_path)
        rounds = [
            (500, [[_msg(0, 3, 0, 700)], []]),
            (1000, [[], [_msg(1, 5, 0, 1200), _msg(1, 5, 1, 1300)]]),
        ]
        for barrier, inboxes in rounds:
            ck.record_round(barrier, inboxes)
        loaded = _checkpoint(tmp_path).load(SCHEDULE)
        # exact tuple shapes: replay injects these without conversion
        assert loaded == rounds
        message = loaded[1][1][1][0]
        assert isinstance(message, tuple)
        assert isinstance(message[4], tuple)

    def test_replay_slice_is_one_shards_view(self, tmp_path):
        log = [
            (500, [[_msg(0, 3, 0, 700)], [_msg(1, 5, 0, 800)]]),
            (1000, [[], [_msg(1, 5, 1, 1200)]]),
        ]
        assert replay_slice(log, 0) == [
            (500, [_msg(0, 3, 0, 700)]),
            (1000, []),
        ]
        assert replay_slice(log, 1) == [
            (500, [_msg(1, 5, 0, 800)]),
            (1000, [_msg(1, 5, 1, 1200)]),
        ]

    def test_meta_file_written_alongside(self, tmp_path):
        ck = _checkpoint(tmp_path, label="meta-run")
        ck.record_round(500, [[], []])
        meta = json.loads((ck.dir / "meta.json").read_text())
        assert meta["label"] == "meta-run"
        assert meta["shards"] == 2


class TestDurabilityCadence:
    def test_rounds_buffer_until_every_then_flush(self, tmp_path):
        ck = _checkpoint(tmp_path, every=3)
        ck.record_round(500, [[], []])
        ck.record_round(1000, [[], []])
        assert not ck.path.exists()  # still buffered
        ck.record_round(1500, [[], []])
        assert len(ck.path.read_text().splitlines()) == 3
        ck.record_round(2000, [[], []])
        assert len(ck.path.read_text().splitlines()) == 3
        ck.flush()  # the interrupt path persists the partial buffer
        assert len(ck.path.read_text().splitlines()) == 4

    def test_discard_removes_the_journal_and_the_buffer(self, tmp_path):
        ck = _checkpoint(tmp_path, every=10)
        ck.record_round(500, [[], []])
        ck.discard()
        assert not ck.dir.exists()
        ck.flush()  # buffered line died with the discard
        assert not ck.dir.exists()

    def test_overhead_clock_accumulates(self, tmp_path):
        ck = _checkpoint(tmp_path)
        assert ck.checkpoint_s == 0.0
        ck.record_round(500, [[_msg(0, 1, 0, 700)], []])
        assert ck.checkpoint_s > 0.0


class TestToleranceAndIdentity:
    def test_missing_journal_loads_empty(self, tmp_path):
        assert _checkpoint(tmp_path).load(SCHEDULE) == []

    def test_torn_tail_line_truncates_not_raises(self, tmp_path):
        ck = _checkpoint(tmp_path)
        ck.record_round(500, [[_msg(0, 1, 0, 700)], []])
        ck.record_round(1000, [[], []])
        with open(ck.path, "a") as handle:
            handle.write('{"barrier": 1500, "inboxes": [[')  # the interrupt
        loaded = _checkpoint(tmp_path).load(SCHEDULE)
        assert [barrier for barrier, _ in loaded] == [500, 1000]

    def test_schedule_mismatch_truncates(self, tmp_path):
        ck = _checkpoint(tmp_path)
        ck.record_round(500, [[], []])
        ck.record_round(999, [[], []])  # not on this run's schedule
        loaded = _checkpoint(tmp_path).load(SCHEDULE)
        assert [barrier for barrier, _ in loaded] == [500]

    def test_wrong_shard_count_line_truncates(self, tmp_path):
        ck = _checkpoint(tmp_path)
        ck.record_round(500, [[], [], []])  # three inboxes, two shards
        assert _checkpoint(tmp_path).load(SCHEDULE) == []

    def test_token_separates_runs(self):
        base = run_token({"label": "a"}, 1, 2, 500)
        assert run_token({"label": "a"}, 1, 2, 500) == base
        assert run_token({"label": "b"}, 1, 2, 500) != base
        assert run_token({"label": "a"}, 2, 2, 500) != base
        assert run_token({"label": "a"}, 1, 4, 500) != base
        assert run_token({"label": "a"}, 1, 2, 250) != base

    def test_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            _checkpoint(tmp_path, every=0)
