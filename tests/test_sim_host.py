"""Flows, messages and go-back-N sender state."""

import pytest

from repro import units
from repro.sim.host import DATA_PRIORITY, Flow, Message, NEVER
from repro.sim.network import Network


def two_hosts():
    net = Network(seed=5)
    switch = net.new_switch("S")
    a = net.new_host("A")
    b = net.new_host("B")
    net.connect(a, switch)
    net.connect(b, switch)
    net.build_routes()
    return net, a, b


class TestMessages:
    def test_packetization_rounds_up(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        message = flow.send_message(2500)
        assert message.packet_count == 3  # ceil(2500 / 1000)
        assert (message.first_seq, message.last_seq) == (0, 2)

    def test_messages_are_sequential(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        first = flow.send_message(1000)
        second = flow.send_message(1000)
        assert second.first_seq == first.last_seq + 1

    def test_rejects_nonpositive_size(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        with pytest.raises(ValueError):
            flow.send_message(0)

    def test_greedy_flows_reject_messages(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        flow.set_greedy()
        with pytest.raises(ValueError):
            flow.send_message(1000)

    def test_completion_end_to_end(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        message = flow.send_message(units.kb(100))
        net.run_for(units.ms(1))
        assert message.completed
        assert message.fct_ns() > 0
        assert flow.messages_completed == 1

    def test_fct_of_incomplete_message_raises(self):
        message = Message(0, 1000, 1, 0, 0)
        with pytest.raises(ValueError):
            message.fct_ns()

    def test_throughput_of_large_message_near_line_rate(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        message = flow.send_message(units.mb(10))
        net.run_for(units.ms(5))
        assert message.completed
        assert message.throughput_bps() > units.gbps(35)

    def test_on_message_complete_callback(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        done = []
        flow.on_message_complete = lambda f, m: done.append(m.msg_id)
        flow.send_message(1000)
        flow.send_message(1000)
        net.run_for(units.ms(1))
        assert done == [0, 1]

    def test_closed_loop_chaining(self):
        """Queueing the next message from the completion callback."""
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        flow.on_message_complete = lambda f, m: f.send_message(units.kb(50))
        flow.send_message(units.kb(50))
        net.run_for(units.ms(2))
        assert flow.messages_completed >= 10


class TestPacing:
    def test_ready_time_never_without_backlog(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        assert flow.ready_time() == NEVER

    def test_ready_time_respects_start(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b, start_ns=units.ms(3))
        flow.set_greedy()
        assert flow.ready_time() == units.ms(3)

    def test_take_packet_paces_by_rate(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b, cc="none", static_rate_bps=units.gbps(10))
        flow.set_greedy()
        pkt = flow.take_packet(0)
        # 1000 B at 10 Gbps = 800 ns gap (+1 rounding)
        assert flow.next_send_ns == 801
        assert pkt.size == 1000

    def test_rate_change_repaces_pending_gap(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        flow.set_greedy()
        flow.take_packet(0)
        # simulate a DCQCN cut to 1 Gbps... then raise to 20 Gbps:
        flow._on_rate_change(units.gbps(1))
        slow = flow.next_send_ns
        flow._on_rate_change(units.gbps(20))
        assert flow.next_send_ns <= slow

    def test_delivered_rate_matches_static_rate(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b, cc="none", static_rate_bps=units.gbps(4))
        flow.set_greedy()
        net.run_for(units.ms(10))
        rate = flow.bytes_delivered * 8e9 / units.ms(10)
        assert rate == pytest.approx(units.gbps(4), rel=0.02)

    def test_boundary_packet_carries_msg_id(self):
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        flow.send_message(3000)
        # the NIC already pulled seq 0 when the message was queued
        middle = flow.take_packet(0)
        last = flow.take_packet(10_000)
        assert (middle.seq, middle.msg_id) == (1, -1)
        assert (last.seq, last.msg_id) == (2, 0)


class TestGoBackN:
    def raw_flow(self):
        """A flow not registered with any NIC: manual take_packet only."""
        net, a, b = two_hosts()
        flow = Flow(99, a, b)
        flow.greedy = True
        return flow

    def test_rewind_retransmits(self):
        flow = self.raw_flow()
        for t in range(5):
            flow.take_packet(t * 1000)
        flow.rewind_to(2)
        assert flow.next_seq == 2
        assert flow.retransmitted_packets == 3

    def test_stale_rewind_ignored(self):
        flow = self.raw_flow()
        flow.take_packet(0)
        flow.acked_seq = 1
        flow.rewind_to(0)  # behind the ack point
        assert flow.next_seq == 1

    def test_rewind_beyond_send_pointer_ignored(self):
        flow = self.raw_flow()
        flow.take_packet(0)
        flow.rewind_to(10)
        assert flow.next_seq == 1

    def test_cumulative_ack_completes_skipped_boundaries(self):
        """A lost boundary ACK is healed by any later cumulative ACK."""
        net, a, b = two_hosts()
        flow = net.add_flow(a, b)
        m1 = flow.send_message(1000)
        m2 = flow.send_message(1000)
        flow.take_packet(0)
        flow.take_packet(1000)
        flow.on_ack(2, m2.msg_id)  # covers both messages at once
        assert m1.completed and m2.completed

    def test_outstanding_packets(self):
        flow = self.raw_flow()
        for t in range(4):
            flow.take_packet(t * 1000)
        flow.on_ack(3, -1)
        assert flow.outstanding_packets() == 1
