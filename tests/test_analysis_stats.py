"""Statistics helpers (percentile / CDF / Jain / summary)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    cdf_points,
    jain_fairness,
    percentile,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_value(self):
        assert percentile([7], 90) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 120)

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0, max_value=100))
    def test_matches_numpy(self, data, q):
        assert percentile(data, q) == pytest.approx(
            float(np.percentile(data, q)), rel=1e-9, abs=1e-9
        )

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_monotone_in_q(self, data):
        qs = [0, 10, 50, 90, 100]
        values = [percentile(data, q) for q in qs]
        assert values == sorted(values)


class TestCdf:
    def test_points(self):
        assert cdf_points([2, 1]) == [(1, 0.5), (2, 1.0)]

    def test_empty(self):
        assert cdf_points([]) == []

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_fractions_reach_one(self, data):
        points = cdf_points(data)
        assert points[-1][1] == pytest.approx(1.0)
        fracs = [f for _, f in points]
        assert fracs == sorted(fracs)


class TestJain:
    def test_equal_shares_are_fair(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_hog(self):
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_counts_as_fair(self):
        assert jain_fairness([0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
    def test_bounded(self, data):
        value = jain_fairness(data)
        assert 1.0 / len(data) - 1e-9 <= value <= 1.0 + 1e-9


class TestSummary:
    def test_fields(self):
        s = summarize(range(101))
        assert s.count == 101
        assert s.minimum == 0
        assert s.maximum == 100
        assert s.median == 50
        assert s.p10 == 10
        assert s.p90 == 90
        assert s.mean == 50

    def test_row_renders(self):
        assert "med=" in summarize([1, 2, 3]).row()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
