"""Conformance suite for the :mod:`repro.cc` controller interface.

Every registered controller must honor the same contract regardless
of its control law: rates/windows stay inside their bounds (checked
by the invariant guard in strict mode), an uncongested flow quiesces
at line rate, serial and parallel execution are bit-identical, and
the params layer — not the transport — rejects bad constants.
"""

import math

import pytest

from repro import units
from repro.cc import CcContext, available_cc, create_cc
from repro.cc.params import DctcpParams, FnccParams, QcnCpParams, TimelyParams
from repro.core.params import DCQCNParams
from repro.invariants import InvariantConfig
from repro.runner import FlowSpec, Scenario, run_scenario, run_scenario_inline
from repro.sim import topology
from repro.sim.engine import EventScheduler

#: every controller the arena scores (the registry minus "none")
CONTROLLERS = ("dcqcn", "dctcp", "qcn", "timely", "fncc")


def incast_scenario(cc, n_senders=2, duration_ns=units.ms(1), invariants=None):
    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": n_senders + 1},
        flows=tuple(
            FlowSpec(name=f"s{i}", src=str(i), dst=str(n_senders), cc=cc)
            for i in range(n_senders)
        ),
        duration_ns=duration_ns,
        invariants=invariants,
        label=f"conformance/{cc}",
    )


class TestRegistry:
    def test_every_expected_controller_is_registered(self):
        assert set(available_cc()) >= set(CONTROLLERS) | {"none"}

    def test_unknown_controller_is_rejected(self):
        ctx = CcContext(
            engine=EventScheduler(),
            line_rate_bps=units.gbps(40),
            params=DCQCNParams.deployed(),
        )
        with pytest.raises(ValueError, match="unknown congestion controller"):
            create_cc("bogus", ctx)

    def test_none_returns_no_controller(self):
        ctx = CcContext(
            engine=EventScheduler(),
            line_rate_bps=units.gbps(40),
            params=DCQCNParams.deployed(),
        )
        assert create_cc("none", ctx) is None


@pytest.mark.parametrize("cc", CONTROLLERS)
class TestControllerConformance:
    def test_bounds_clean_under_strict_guard(self, cc):
        """A congested run violates no rate/cwnd/conservation invariant."""
        scenario = incast_scenario(
            cc, invariants=InvariantConfig(mode="strict")
        )
        result, net = run_scenario_inline(scenario, seed=7)
        assert result.invariant_report["violation_count"] == 0
        for flow in net.flows:
            rate = flow.cc.rate_bps()
            if rate is not None:
                assert 0 < rate <= flow.src.nic.line_rate_bps * (1 + 1e-9)
            cwnd = flow.cc.cwnd_pkts()
            if cwnd is not None:
                assert cwnd >= 1.0 and not math.isnan(cwnd)

    def test_quiescence_when_uncongested(self, cc):
        """One flow on an idle fabric runs at (nearly) line rate."""
        net, _, hosts = topology.single_switch(n_hosts=2, seed=3)
        flow = net.add_flow(hosts[0], hosts[1], cc=cc)
        flow.set_greedy()
        duration_ns = units.ms(1)
        net.run_for(duration_ns)
        line = hosts[0].nic.line_rate_bps
        goodput = flow.bytes_delivered * 8e9 / duration_ns
        assert goodput >= 0.8 * line
        rate = flow.cc.rate_bps()
        if rate is not None:
            assert rate >= 0.9 * line

    def test_congestion_engages_the_controller(self, cc):
        """Under 2:1 incast the controller leaves its initial state."""
        scenario = incast_scenario(cc)
        _, net = run_scenario_inline(scenario, seed=11)
        line = net.hosts[0].nic.line_rate_bps
        engaged = []
        for flow in net.flows:
            rate = flow.cc.rate_bps()
            if rate is not None:
                engaged.append(rate < line)
            cwnd = flow.cc.cwnd_pkts()
            if cwnd is not None:
                engaged.append(not flow.cc.in_slow_start)
        assert any(engaged)


def test_serial_equals_parallel_for_every_controller():
    """jobs=1 and jobs=2 produce byte-identical results (determinism)."""
    for cc in CONTROLLERS:
        scenario = incast_scenario(cc, duration_ns=units.us(300))
        serial = run_scenario(scenario, seeds=[5], jobs=1, cache=False)
        parallel = run_scenario(scenario, seeds=[5], jobs=2, cache=False)
        assert [r.flows_bps for r in serial] == [r.flows_bps for r in parallel]
        assert [r.counters for r in serial] == [r.counters for r in parallel]


class TestRttSampler:
    def test_timely_receives_rtt_samples(self):
        net, _, hosts = topology.single_switch(n_hosts=3, seed=5)
        flow = net.add_flow(hosts[0], hosts[2], cc="timely")
        flow.set_greedy()
        net.run_for(units.us(500))
        assert flow.cc.rtt_samples > 0
        # the probe queue is bounded: in-flight probes only
        assert len(flow._rtt_probes) <= 64

    def test_non_rtt_controllers_skip_the_sampler(self):
        net, _, hosts = topology.single_switch(n_hosts=3, seed=5)
        flow = net.add_flow(hosts[0], hosts[2], cc="dcqcn")
        flow.set_greedy()
        net.run_for(units.us(500))
        assert not flow._sample_rtt
        assert len(flow._rtt_probes) == 0


class TestFnccFeedback:
    def test_switch_generates_cnps_straight_to_source(self):
        net, switch, hosts = topology.single_switch(n_hosts=3, seed=9)
        flows = [
            net.add_flow(hosts[i], hosts[2], cc="fncc") for i in range(2)
        ]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(1))
        assert switch.cnps_sent > 0
        assert sum(flow.rp.cnps_received for flow in flows) > 0
        # the NP path stays quiet: notification is switch-side only
        assert all(
            host.nic.cnps_sent == 0 for host in hosts
        )


class TestParamsLayerValidation:
    """Bad constants die in the params layer, not mid-simulation."""

    @pytest.mark.parametrize(
        "bad",
        [
            dict(g=0.0),
            dict(g=1.5),
            dict(initial_cwnd_pkts=0.5),
            dict(min_cwnd_pkts=0.0),
            dict(initial_cwnd_pkts=2.0, min_cwnd_pkts=4.0),
        ],
    )
    def test_dctcp_params(self, bad):
        with pytest.raises(ValueError):
            DctcpParams(**bad)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(t_low_ns=0),
            dict(t_low_ns=units.us(30), t_high_ns=units.us(25)),
            dict(ewma_g=0.0),
            dict(beta=1.5),
            dict(rai_bps=0.0),
            dict(hai_threshold=0),
            dict(hai_factor=0.5),
            dict(min_rtt_ns=0),
            dict(min_rate_bps=0.0),
        ],
    )
    def test_timely_params(self, bad):
        with pytest.raises(ValueError):
            TimelyParams(**bad)

    def test_fncc_params(self):
        with pytest.raises(ValueError):
            FnccParams(cnp_interval_ns=0)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(q_eq_bytes=0),
            dict(w=-1.0),
            dict(sample_interval_bytes=0),
        ],
    )
    def test_qcn_cp_params(self, bad):
        with pytest.raises(ValueError):
            QcnCpParams(**bad)

    def test_dcqcn_initial_alpha(self):
        with pytest.raises(ValueError):
            DCQCNParams(initial_alpha=1.5)

    def test_unknown_cc_params_key_is_rejected(self):
        net, _, hosts = topology.single_switch(n_hosts=2, seed=1)
        with pytest.raises(ValueError, match="bogus"):
            net.add_flow(hosts[0], hosts[1], cc="dctcp", cc_params={"bogus": 1})

    def test_cc_params_reach_the_controller(self):
        net, _, hosts = topology.single_switch(n_hosts=2, seed=1)
        flow = net.add_flow(
            hosts[0], hosts[1], cc="dctcp", cc_params={"initial_cwnd_pkts": 4.0}
        )
        assert flow.cc.cwnd == 4.0


class TestFlowSpecExtensions:
    def test_cc_params_must_be_scalar(self):
        with pytest.raises(TypeError):
            FlowSpec(name="f", src="0", dst="1", cc_params={"k": [1, 2]})

    def test_message_probe_cannot_be_greedy(self):
        with pytest.raises(ValueError):
            FlowSpec(name="f", src="0", dst="1", message_bytes=1000, greedy=True)

    def test_spec_round_trip_preserves_new_fields(self):
        scenario = Scenario(
            topology="single_switch",
            topology_kwargs={"n_hosts": 3},
            flows=(
                FlowSpec(name="g", src="0", dst="2", cc="dcqcn"),
                FlowSpec(
                    name="probe",
                    src="1",
                    dst="2",
                    cc="dcqcn",
                    greedy=False,
                    message_bytes=5000,
                    message_start_ns=units.us(10),
                    cc_params={"g": 0.125},
                ),
            ),
            duration_ns=units.ms(1),
        )
        rebuilt = Scenario.from_spec(scenario.spec())
        assert rebuilt == scenario

    def test_message_probe_records_fct_counter(self):
        scenario = Scenario(
            topology="single_switch",
            topology_kwargs={"n_hosts": 3},
            flows=(
                FlowSpec(name="g", src="0", dst="2", cc="dcqcn"),
                FlowSpec(
                    name="probe",
                    src="1",
                    dst="2",
                    cc="dcqcn",
                    greedy=False,
                    message_bytes=20_000,
                    message_start_ns=units.us(100),
                ),
            ),
            duration_ns=units.ms(1),
        )
        result, _ = run_scenario_inline(scenario, seed=2)
        assert result.counters["fct_ns.probe"] > 0

    def test_incomplete_probe_reports_sentinel(self):
        scenario = Scenario(
            topology="single_switch",
            topology_kwargs={"n_hosts": 3},
            flows=(
                FlowSpec(name="g", src="0", dst="2", cc="dcqcn"),
                FlowSpec(
                    name="probe",
                    src="1",
                    dst="2",
                    cc="dcqcn",
                    greedy=False,
                    # cannot finish: more bytes than the horizon can carry
                    message_bytes=100 * 1000 * 1000,
                ),
            ),
            duration_ns=units.us(200),
        )
        result, _ = run_scenario_inline(scenario, seed=2)
        assert result.counters["fct_ns.probe"] == -1.0


class TestArena:
    def test_arena_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        monkeypatch.delenv("REPRO_INVARIANTS", raising=False)
        from repro.experiments.arena import run_arena

        result = run_arena(
            controllers=("dcqcn", "dctcp"),
            scenarios=("incast",),
            seeds=[6001],
        )
        table = result.table()
        assert "incast" in table and "league standings" in table
        score = result.score("incast", "dcqcn")
        assert 0.0 < score.fairness <= 1.0
        assert result.total_failures() == 0

    def test_arena_scenarios_build_for_every_controller(self):
        from repro.experiments.arena import (
            ARENA_CONTROLLERS,
            ARENA_SCENARIOS,
            arena_scenario,
        )

        for scenario_id in ARENA_SCENARIOS:
            for cc in ARENA_CONTROLLERS:
                scenario = arena_scenario(scenario_id, cc)
                # serializable: the sweep ships these to workers
                assert Scenario.from_spec(scenario.spec()) == scenario
