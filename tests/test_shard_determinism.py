"""Sharded execution is bit-identical to serial, at any shard count.

These are the load-bearing tests of repro.shard: the merged RunResult
of a sharded run — counters, metrics, invariant report, flow_stats —
must equal the serial run of the same (scenario, seed) exactly, not
approximately.  The only tolerated difference is the pair of gauges
that only exist sharded (``shard.count``, ``shard.stall_fraction``),
which the comparison strips.
"""

import dataclasses

import pytest

from repro import units
from repro.experiments.fabric_scale import (
    fabric_benchmark_scenario,
    fabric_incast_scenario,
)
from repro.faults.plan import ErrorBurst, FaultPlan, LinkFlap
from repro.invariants import InvariantConfig
from repro.runner import cache
from repro.runner.scenario import FlowSpec, Scenario, run_scenario
from repro.runner.scenario import run_scenario_inline
from repro.shard import SHARDS_ENV, ShardingSpec


def _result_json(scenario, seed, shards, monkeypatch):
    """Run once at the given shard count and strip shard-only gauges."""
    if shards == 1:
        monkeypatch.delenv(SHARDS_ENV, raising=False)
    else:
        monkeypatch.setenv(SHARDS_ENV, str(shards))
    result, _ = run_scenario_inline(scenario, seed)
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    data = result.to_json()
    gauges = data.get("metrics", {}).get("gauges", {})
    if shards > 1:
        assert gauges.pop("shard.count", None) == float(shards)
        gauges.pop("shard.stall_fraction", None)
    return data


_INCAST_FAULTS = FaultPlan(
    injectors=(
        # an intra-pod flap plus an error burst on a pod<->core cable
        # that is a shard boundary at every shard count tested
        LinkFlap(
            a="p0e0",
            b="p0a0",
            start_ns=units.us(60),
            down_ns=units.us(20),
            period_ns=units.us(80),
            count=2,
        ),
        ErrorBurst(
            a="p3a1",
            b="c2",
            rate=0.02,
            start_ns=units.us(80),
            duration_ns=units.us(100),
        ),
    ),
    recovery_sample_ns=units.us(25),
)


class TestSerialShardedEquality:
    def test_k4_incast_with_faults(self, monkeypatch):
        scenario = dataclasses.replace(
            fabric_incast_scenario(k=4, duration_ns=units.us(300)),
            warmup_ns=units.us(50),
            faults=_INCAST_FAULTS,
            invariants=InvariantConfig(mode="strict"),
        )
        serial = _result_json(scenario, 11, 1, monkeypatch)
        two = _result_json(scenario, 11, 2, monkeypatch)
        four = _result_json(scenario, 11, 4, monkeypatch)
        assert serial == two
        assert serial == four

    def test_chaos_shard_maze(self, monkeypatch):
        # the full chaos fault vocabulary — PAUSE storm at the incast
        # root, a pod<->core trunk flap, an error burst on another
        # boundary cable — driven through the sync protocol: recovery
        # tracking, fault windows and victim accounting must all merge
        # back to the serial answer exactly
        from repro.experiments.chaos import chaos_fabric_scenario

        scenario = dataclasses.replace(
            chaos_fabric_scenario(0.5, duration_ns=units.us(300)),
            invariants=InvariantConfig(mode="strict"),
        )
        serial = _result_json(scenario, 17, 1, monkeypatch)
        two = _result_json(scenario, 17, 2, monkeypatch)
        four = _result_json(scenario, 17, 4, monkeypatch)
        assert serial == two
        assert serial == four

    def test_k8_fabric_bench(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        scenario = fabric_benchmark_scenario()
        serial = _result_json(scenario, 0, 1, monkeypatch)
        sharded = _result_json(scenario, 0, 4, monkeypatch)
        assert serial == sharded

    def test_cross_pod_flows_meet_at_the_boundary(self, monkeypatch):
        # six DCQCN flows from every pod converging on one pod-3 host:
        # all of the traffic crosses the agg<->core cut at 2 shards
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=tuple(
                FlowSpec(
                    name=f"f{i}",
                    src=f"{i % 4}:{i % 2}:{i // 4}",
                    dst="3:1:1",
                    cc="dcqcn",
                )
                for i in range(6)
            ),
            warmup_ns=units.us(50),
            duration_ns=units.us(300),
            invariants=InvariantConfig(mode="strict"),
        )
        serial = _result_json(scenario, 23, 1, monkeypatch)
        two = _result_json(scenario, 23, 2, monkeypatch)
        three = _result_json(scenario, 23, 3, monkeypatch)
        assert serial == two
        assert serial == three


class TestShardedCache:
    def test_sharded_scenario_round_trips_through_the_cache(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(
                FlowSpec(name="f0", src="0:0:0", dst="1:1:0", cc="dcqcn"),
                FlowSpec(name="f1", src="2:0:0", dst="1:1:0", cc="dcqcn"),
            ),
            duration_ns=units.us(200),
            label="shard-cache",
            sharding=ShardingSpec(shards=2),
        )
        (first,) = run_scenario(scenario, seeds=[5], jobs=1, cache=True)
        (again,) = run_scenario(scenario, seeds=[5], jobs=1, cache=True)
        assert first.to_json() == again.to_json()
        # the embedded ShardingSpec is part of the cell identity: the
        # serial twin must be a different cache entry, not a hit
        serial_twin = dataclasses.replace(scenario, sharding=None)
        (serial_result,) = run_scenario(
            serial_twin, seeds=[5], jobs=1, cache=True
        )
        stripped = first.to_json()
        for gauge in ("shard.count", "shard.stall_fraction"):
            stripped["metrics"]["gauges"].pop(gauge, None)
        assert serial_result.to_json() == stripped

    def test_env_sharding_never_taints_a_cached_cell(
        self, monkeypatch, tmp_path
    ):
        # REPRO_SHARDS is not part of the cell hash, so a cached cell
        # must ignore it: otherwise a sweep run under the env var
        # would store shard-tagged results under the serial cell's key
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        monkeypatch.setenv(SHARDS_ENV, "2")
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(
                FlowSpec(name="f0", src="0:0:0", dst="1:1:0", cc="dcqcn"),
            ),
            duration_ns=units.us(100),
            label="env-shard-cache",
        )
        (result,) = run_scenario(scenario, seeds=[5], jobs=1, cache=True)
        assert "shard.count" not in result.metrics["gauges"]


class TestWindowOverride:
    def test_smaller_window_is_still_exact(self, monkeypatch):
        base = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(
                FlowSpec(name="f0", src="0:0:0", dst="3:1:1", cc="dcqcn"),
                FlowSpec(name="f1", src="1:0:0", dst="3:1:1", cc="dcqcn"),
            ),
            duration_ns=units.us(200),
        )
        serial = _result_json(base, 3, 1, monkeypatch)
        squeezed = dataclasses.replace(
            base, sharding=ShardingSpec(shards=2, window_ns=120)
        )
        result, _ = run_scenario_inline(squeezed, 3)
        data = result.to_json()
        for gauge in ("shard.count", "shard.stall_fraction"):
            data["metrics"]["gauges"].pop(gauge, None)
        assert data == serial
