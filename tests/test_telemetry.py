"""The telemetry package: events, tracer, metrics, profiler, lint."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_QUEUE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    JsonlFileSink,
    METRIC_CATALOG,
    MetricsRegistry,
    NullSink,
    RingBufferSink,
    SchedulerProfiler,
    Telemetry,
    TelemetrySpec,
    Tracer,
    collect_network,
    events,
)
from repro.telemetry.lint import lint_file


class TestEventTaxonomy:
    def test_levels_nest(self):
        assert events.events_for_level("off") == frozenset()
        cc = events.events_for_level("cc")
        full = events.events_for_level("full")
        assert cc < full

    def test_every_type_has_a_schema(self):
        assert (
            events.CC_EVENTS | events.FULL_EVENTS
            == frozenset(events.TRACE_SCHEMA)
        )

    def test_sampled_events_are_never_control_plane(self):
        # stride sampling must not touch control-plane events, or the
        # traced counts stop matching the metric counters
        assert not events.SAMPLED_EVENTS & events.CC_EVENTS

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="trace level"):
            events.events_for_level("verbose")

    def test_validate_accepts_good_event(self):
        event = {"t": 10, "ev": events.NP_CNP_TX, "comp": "h.nic", "flow": 0}
        assert events.validate_event(event) == []

    def test_validate_flags_missing_fields(self):
        event = {"t": 10, "ev": events.RP_CUT, "comp": "rp", "flow": 0}
        errors = events.validate_event(event)
        assert any("rc_bps" in e for e in errors)

    def test_validate_flags_bad_time_type_and_reason(self):
        assert events.validate_event(
            {"t": -1, "ev": events.NP_CNP_TX, "comp": "x", "flow": 0}
        )
        assert events.validate_event(
            {
                "t": 0,
                "ev": events.PKT_DROP,
                "comp": "x",
                "flow": 0,
                "reason": "gremlins",
                "bytes": 1,
            }
        )

    def test_validate_flags_unknown_type(self):
        errors = events.validate_event({"t": 0, "ev": "np.warp", "comp": "x"})
        assert any("unknown event type" in e for e in errors)


class TestTracer:
    def emit_mark(self, tracer, t=0):
        tracer.emit(t, events.CP_ECN_MARK, "S", flow=0, port=1, prio=3,
                    queue_bytes=100)

    def test_level_filters_full_events(self):
        sink = RingBufferSink()
        tracer = Tracer(sink, level="cc")
        self.emit_mark(tracer)
        tracer.emit(5, events.NP_CNP_TX, "h.nic", flow=0)
        assert [e["ev"] for e in sink.events] == [events.NP_CNP_TX]

    def test_stride_samples_only_eligible_types(self):
        sink = RingBufferSink()
        tracer = Tracer(sink, level="full", sample_stride=3)
        for t in range(9):
            self.emit_mark(tracer, t)
            tracer.emit(t, events.NP_CNP_TX, "h.nic", flow=0)
        kinds = [e["ev"] for e in sink.events]
        assert kinds.count(events.CP_ECN_MARK) == 3  # 1-in-3
        assert kinds.count(events.NP_CNP_TX) == 9  # never sampled

    def test_counts_track_emitted_events(self):
        tracer = Tracer(RingBufferSink())
        for t in range(4):
            self.emit_mark(tracer, t)
        assert tracer.counts() == {events.CP_ECN_MARK: 4}

    def test_ring_capacity_bounds_memory(self):
        sink = RingBufferSink(capacity=2)
        tracer = Tracer(sink)
        for t in range(5):
            self.emit_mark(tracer, t)
        assert [e["t"] for e in sink.events] == [3, 4]

    def test_type_allowlist(self):
        sink = RingBufferSink()
        tracer = Tracer(sink, types={events.NP_CNP_TX})
        self.emit_mark(tracer)
        tracer.emit(1, events.NP_CNP_TX, "h.nic", flow=0)
        assert [e["ev"] for e in sink.events] == [events.NP_CNP_TX]

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(JsonlFileSink(path))
        self.emit_mark(tracer, 7)
        tracer.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["t"] == 7
        assert events.validate_event(event) == []

    def test_null_sink_counts_without_storing(self):
        tracer = Tracer(NullSink())
        self.emit_mark(tracer)
        assert tracer.counts() == {events.CP_ECN_MARK: 1}

    def test_emitted_events_satisfy_schema(self):
        sink = RingBufferSink()
        tracer = Tracer(sink)
        self.emit_mark(tracer)
        assert events.validate_event(sink.events[0]) == []


class TestMetrics:
    def test_counter_rejects_negative(self):
        counter = Counter("x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_max_keeps_peak(self):
        gauge = Gauge("x")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5

    def test_histogram_quantiles(self):
        hist = Histogram("q", [10, 100, 1000])
        for value in (1, 5, 50, 500, 5000):
            hist.observe(value)
        assert hist.count == 5
        assert hist.mean == pytest.approx(1111.2)
        assert 0 < hist.quantile(0.5) <= 100

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", [10, 10])

    def test_histogram_json_round_trip(self):
        hist = Histogram("q", DEFAULT_QUEUE_BUCKETS)
        for value in (100, 2048, 9_000_000):
            hist.observe(value)
        clone = Histogram.from_json("q", hist.to_json())
        assert clone.counts == hist.counts
        assert clone.quantile(0.5) == hist.quantile(0.5)

    def test_registry_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("nic.cnp_tx").inc(3)
        registry.gauge("switch.peak_occupancy_bytes").set(17)
        registry.histogram("switch.queue_bytes").observe(4096)
        snap = registry.snapshot()
        clone = MetricsRegistry.from_snapshot(snap)
        assert clone.snapshot() == snap
        # JSON-safe: survives an actual dumps/loads cycle untouched
        assert json.loads(json.dumps(snap)) == snap

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        assert list(registry.snapshot()["counters"]) == ["aa", "zz"]

    def test_collected_names_stay_in_catalog(self):
        from repro.sim.topology import single_switch

        net, _, hosts = single_switch(3)
        flow = net.add_flow(hosts[0], hosts[2], cc="dcqcn")
        flow.set_greedy()
        net.run_for(1_000_000)
        registry = collect_network(net, MetricsRegistry())
        assert set(registry.names()) <= set(METRIC_CATALOG)


class TestTelemetrySpec:
    def test_defaults_are_off(self):
        spec = TelemetrySpec()
        assert Telemetry.from_spec(spec).tracer is None
        assert Telemetry.from_spec(None).tracer is None

    def test_rejects_bad_level_and_sink(self):
        with pytest.raises(ValueError):
            TelemetrySpec(trace="loud")
        with pytest.raises(ValueError):
            TelemetrySpec(sink="kafka")
        with pytest.raises(ValueError):
            TelemetrySpec(trace="cc", sink="jsonl")  # needs a path
        with pytest.raises(ValueError):
            TelemetrySpec(sample_stride=0)
        with pytest.raises(ValueError):
            TelemetrySpec(queue_sample_ns=0)

    def test_seed_placeholder_in_path(self, tmp_path):
        spec = TelemetrySpec(
            trace="cc", sink="jsonl", path=str(tmp_path / "t-{seed}.jsonl")
        )
        telemetry = Telemetry.from_spec(spec, seed=9)
        telemetry.close()
        assert (tmp_path / "t-9.jsonl").exists()

    def test_snapshot_folds_trace_counts(self):
        telemetry = Telemetry(tracer=Tracer(RingBufferSink()))
        telemetry.tracer.emit(0, events.NP_CNP_TX, "h.nic", flow=0)
        snap = telemetry.snapshot()
        assert snap["counters"]["trace.np.cnp_tx"] == 1.0


class TestSchedulerProfiler:
    def test_attributes_time_per_site(self):
        from repro.engine import EventScheduler

        engine = EventScheduler()
        hits = []
        profiler = SchedulerProfiler().install(engine)
        engine.schedule_at(5, hits.append, 1)
        engine.schedule_at(9, hits.append, 2)
        engine.run_until(20)
        assert hits == [1, 2]
        assert profiler.events == 2
        (site,) = profiler.sites()
        assert site.calls == 2
        assert site.total_ns >= 0

    def test_bound_methods_aggregate_by_function(self):
        from repro.engine import EventScheduler

        class Ticker:
            def __init__(self):
                self.ticks = 0

            def tick(self):
                self.ticks += 1

        engine = EventScheduler()
        profiler = SchedulerProfiler().install(engine)
        a, b = Ticker(), Ticker()
        engine.schedule_at(1, a.tick)
        engine.schedule_at(2, b.tick)
        engine.run_until(5)
        (site,) = profiler.sites()
        assert site.calls == 2
        assert "Ticker.tick" in site.name

    def test_profiled_and_plain_runs_agree(self):
        from repro import units
        from repro.sim.topology import single_switch

        def run(profiled):
            net, switch, hosts = single_switch(3, seed=7)
            if profiled:
                SchedulerProfiler().install(net.engine)
            flow = net.add_flow(hosts[0], hosts[2], cc="dcqcn")
            flow.set_greedy()
            net.run_for(units.ms(1))
            return flow.bytes_delivered, switch.marked_packets

        assert run(False) == run(True)

    def test_table_renders(self):
        from repro.engine import EventScheduler

        engine = EventScheduler()
        profiler = SchedulerProfiler().install(engine)
        engine.schedule_at(1, list)
        engine.run_until(2)
        table = profiler.table()
        assert "callback site" in table
        assert "1 events" in table


class TestLint:
    def write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def good(self, t):
        return json.dumps(
            {"t": t, "ev": events.NP_CNP_TX, "comp": "h.nic", "flow": 0}
        )

    def test_valid_file_passes(self, tmp_path):
        path = self.write(tmp_path, [self.good(1), self.good(2)])
        count, errors = lint_file(path)
        assert (count, errors) == (2, [])

    def test_schema_violation_reported(self, tmp_path):
        bad = json.dumps({"t": 3, "ev": "rp.cut", "comp": "rp", "flow": 0})
        path = self.write(tmp_path, [self.good(1), bad])
        count, errors = lint_file(path)
        assert count == 2
        assert errors

    def test_time_regression_reported(self, tmp_path):
        path = self.write(tmp_path, [self.good(5), self.good(4)])
        _, errors = lint_file(path)
        assert any("backwards" in e for e in errors)

    def test_unparseable_line_reported(self, tmp_path):
        path = self.write(tmp_path, ["{not json"])
        _, errors = lint_file(path)
        assert errors

    def test_cli_entry_point(self, tmp_path, capsys):
        from repro.telemetry.lint import main

        path = self.write(tmp_path, [self.good(1)])
        assert main([path]) == 0
        assert main([str(tmp_path / "missing.jsonl")]) != 0
