"""Fluid model: equations, fixed point, convergence, batching."""

import numpy as np
import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.fluid.fixed_point import solve_fixed_point
from repro.fluid.model import (
    FluidParams,
    _marking_probability,
    simulate,
    simulate_two_flow_convergence,
)


class TestMarkingProbabilityVector:
    def test_matches_scalar_red(self):
        from repro.core.cp import marking_probability

        q = np.array([0.0, 10.0, 100.0, 300.0])
        got = _marking_probability(q, np.array([5.0]), np.array([200.0]), np.array([0.01]))
        want = [marking_probability(x, 5, 200, 0.01) for x in q]
        assert np.allclose(got, want)

    def test_cutoff(self):
        q = np.array([39.0, 40.0, 41.0])
        got = _marking_probability(q, np.array([40.0]), np.array([40.0]), np.array([1.0]))
        assert list(got) == [0.0, 0.0, 1.0]


class TestFairShareConvergence:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_n_flows_converge_to_c_over_n(self, n):
        params = FluidParams(num_flows=n)
        trace = simulate(params, duration_s=0.12, dt_s=2e-6)
        final = trace.final_rates_bps()[0]
        assert final == pytest.approx(
            np.full(n, units.gbps(40) / n), rel=0.05
        )

    def test_full_utilization(self):
        trace = simulate(FluidParams(num_flows=2), duration_s=0.12)
        assert trace.final_rates_bps().sum() == pytest.approx(
            units.gbps(40), rel=0.02
        )

    def test_queue_settles_above_kmin(self):
        trace = simulate(FluidParams(num_flows=2), duration_s=0.12)
        steady = trace.queue_bytes[-20:, 0].mean()
        assert units.kb(5) < steady < units.kb(200)

    def test_two_flow_convergence_closes_gap(self):
        trace = simulate_two_flow_convergence(FluidParams(), duration_s=0.15)
        gap = abs(trace.rc_bps[-1, 0, 0] - trace.rc_bps[-1, 0, 1])
        assert gap < units.gbps(3)

    def test_strawman_does_not_converge(self):
        """§5.2's headline: QCN/DCTCP defaults leave a persistent gap."""
        strawman = FluidParams(
            kmin_bytes=units.kb(40),
            kmax_bytes=units.kb(40),
            pmax=1.0,
            g=1.0 / 16.0,
            timer_s=1.5e-3,
            byte_counter_bytes=units.kb(150),
        )
        trace = simulate_two_flow_convergence(strawman, duration_s=0.15)
        gap = abs(trace.rc_bps[-1, 0, 0] - trace.rc_bps[-1, 0, 1])
        assert gap > units.gbps(10)


class TestDelayedStart:
    def test_flow_frozen_before_start(self):
        trace = simulate(
            FluidParams(num_flows=2),
            duration_s=0.02,
            start_times_s=np.array([0.0, 0.01]),
        )
        before = trace.times_s < 0.01
        assert np.all(trace.rc_bps[before, 0, 1] == 0.0)

    def test_flow_enters_at_line_rate(self):
        trace = simulate(
            FluidParams(num_flows=2),
            duration_s=0.015,
            start_times_s=np.array([0.0, 0.01]),
        )
        just_after = np.searchsorted(trace.times_s, 0.0101)
        assert trace.rc_bps[just_after, 0, 1] > units.gbps(20)


class TestBatching:
    def test_batched_matches_scalar_runs(self):
        """A batch over g must equal the per-value scalar runs."""
        g_values = np.array([1 / 16, 1 / 256])
        batched = simulate(
            FluidParams(num_flows=2, g=g_values), duration_s=0.01, dt_s=2e-6
        )
        for index, g in enumerate(g_values):
            solo = simulate(
                FluidParams(num_flows=2, g=float(g)), duration_s=0.01, dt_s=2e-6
            )
            assert np.allclose(batched.rc_bps[:, index], solo.rc_bps[:, 0])
            assert np.allclose(batched.queue_bytes[:, index], solo.queue_bytes[:, 0])

    def test_trace_shapes(self):
        trace = simulate(
            FluidParams(num_flows=3, g=np.array([0.1, 0.01])), duration_s=0.005
        )
        samples = len(trace.times_s)
        assert trace.rc_bps.shape == (samples, 2, 3)
        assert trace.queue_bytes.shape == (samples, 2)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            simulate(FluidParams(), duration_s=0)


class TestFixedPoint:
    def test_rc_is_fair_share(self):
        fp = solve_fixed_point(FluidParams(num_flows=4))
        assert fp.rc_bps == pytest.approx(units.gbps(10))

    def test_p_below_one_percent(self):
        """Paper: 'we verified that for reasonable settings, p is less
        than 1%' (N = 2 here)."""
        fp = solve_fixed_point(FluidParams(num_flows=2))
        assert 0 < fp.p < 0.01

    def test_target_above_current(self):
        fp = solve_fixed_point(FluidParams(num_flows=2))
        assert fp.rt_bps > fp.rc_bps

    def test_queue_order_of_magnitude_above_kmin(self):
        """Paper: stable queue ~ one order of magnitude above Kmin."""
        fp = solve_fixed_point(FluidParams(num_flows=2))
        assert units.kb(10) < fp.queue_bytes < units.kb(100)

    def test_alpha_in_range(self):
        fp = solve_fixed_point(FluidParams(num_flows=2))
        assert 0 < fp.alpha < 1

    def test_simulation_lands_on_fixed_point(self):
        """The integrator's steady state matches the algebraic one."""
        params = FluidParams(num_flows=2)
        fp = solve_fixed_point(params)
        trace = simulate(params, duration_s=0.15, dt_s=2e-6)
        steady_queue = trace.queue_bytes[-20:, 0].mean()
        assert steady_queue == pytest.approx(fp.queue_bytes, rel=0.15)
        steady_alpha = trace.alpha[-20:, 0].mean()
        assert steady_alpha == pytest.approx(fp.alpha, rel=0.2)


class TestFromDcqcn:
    def test_translates_protocol_params(self):
        fluid = FluidParams.from_dcqcn(DCQCNParams.deployed(), num_flows=3)
        assert fluid.kmin_bytes == units.kb(5)
        assert fluid.tau_s == pytest.approx(50e-6)
        assert fluid.tau_prime_s == pytest.approx(55e-6)
        assert fluid.num_flows == 3

    def test_feedback_delay_override(self):
        fluid = FluidParams.from_dcqcn(
            DCQCNParams.deployed(), feedback_delay_s=100e-6
        )
        assert fluid.tau_s == pytest.approx(100e-6)
