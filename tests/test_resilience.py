"""The hardened executor: timeouts, crash recovery, retry, checkpoint/resume."""

import json
import os
import signal
import time

import pytest

from repro.runner import Cell, RunFailure, execute
from repro.runner import cache, executor, resilience, scale
from repro.runner.resilience import RetryPolicy, SweepCheckpoint

#: cheap, importable, pure cell for the happy path (same as test_runner)
SEEDS_FN = "repro.runner.scale:seeds_for"

HERE = "tests.test_resilience"


# --- worker-side cell functions (module-level: workers import them) --------


def raising_cell(message="boom"):
    raise RuntimeError(message)


def sleeping_cell(seconds, value):
    time.sleep(seconds)
    return value


def killer_cell():
    os.kill(os.getpid(), signal.SIGKILL)


def flaky_cell(marker, value):
    """Fails once, then succeeds: the transient-failure retry case."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("attempted")
        raise RuntimeError("transient")
    return value


@pytest.fixture
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    monkeypatch.delenv(executor.JOBS_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    monkeypatch.delenv(resilience.TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(resilience.RETRIES_ENV, raising=False)
    monkeypatch.delenv(resilience.CHECKPOINT_ENV, raising=False)
    monkeypatch.delenv(resilience.RESUME_ENV, raising=False)
    monkeypatch.setenv(scale.SCALE_ENV, "smoke")
    return tmp_path


#: a retry policy that keeps failure tests fast
FAST_NO_RETRY = RetryPolicy(max_attempts=1, backoff_s=0.0)
FAST_ONE_RETRY = RetryPolicy(max_attempts=2, backoff_s=0.01)


class TestTimeoutPolicy:
    def test_scale_defaults(self, isolated_results, monkeypatch):
        assert resilience.default_timeout_s() == 120.0
        monkeypatch.setenv(scale.SCALE_ENV, "quick")
        assert resilience.default_timeout_s() == 600.0
        monkeypatch.setenv(scale.SCALE_ENV, "full")
        assert resilience.default_timeout_s() == 3600.0

    def test_env_override_and_off(self, isolated_results, monkeypatch):
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "42.5")
        assert resilience.default_timeout_s() == 42.5
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "off")
        assert resilience.default_timeout_s() is None

    def test_bad_values_rejected(self, isolated_results, monkeypatch):
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match="REPRO_RUN_TIMEOUT"):
            resilience.default_timeout_s()
        monkeypatch.setenv(resilience.TIMEOUT_ENV, "-3")
        with pytest.raises(ValueError, match="positive"):
            resilience.default_timeout_s()


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_s=1.0, backoff_factor=2.0, max_backoff_s=3.0)
        assert policy.delay_s(1) == 1.0
        assert policy.delay_s(2) == 2.0
        assert policy.delay_s(3) == 3.0  # capped
        assert policy.delay_s(0) == 0.0

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(resilience.RETRIES_ENV, "5")
        assert RetryPolicy.from_env().max_attempts == 5
        monkeypatch.setenv(resilience.RETRIES_ENV, "zero")
        with pytest.raises(ValueError, match="REPRO_RETRIES"):
            RetryPolicy.from_env()

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)


class TestRunFailure:
    def test_json_round_trip(self):
        failure = RunFailure(
            error="timeout",
            message="exceeded 1s",
            fn=SEEDS_FN,
            kwargs={"repetitions": 3},
            attempts=2,
            duration_s=2.0,
        )
        wire = json.loads(json.dumps(failure.to_json()))
        assert RunFailure.from_json(wire) == failure
        assert RunFailure.is_failure(failure)
        assert RunFailure.is_failure(wire)
        assert not RunFailure.is_failure({"flows_bps": {}})

    def test_error_taxonomy_enforced(self):
        with pytest.raises(ValueError, match="error"):
            RunFailure(error="meteor", message="", fn=SEEDS_FN)


class TestCheckpoint:
    def test_record_and_load_successes_only(self, isolated_results):
        cells = [Cell(SEEDS_FN, {"repetitions": n}) for n in (1, 2, 3)]
        cp = SweepCheckpoint(cells)
        cp.record(cp.tokens[0], [11])
        cp.record_failure(cp.tokens[1], {"error": "timeout"})
        loaded = cp.load()
        assert loaded == {cp.tokens[0]: [11]}

    def test_torn_final_line_is_skipped(self, isolated_results):
        cells = [Cell(SEEDS_FN, {"repetitions": 1})]
        cp = SweepCheckpoint(cells)
        cp.record(cp.tokens[0], [7])
        with open(cp.path, "a") as handle:
            handle.write('{"cell": "abc", "resu')  # interrupted mid-write
        assert cp.load() == {cp.tokens[0]: [7]}

    def test_same_cells_same_path_different_cells_different(self, isolated_results):
        cells_a = [Cell(SEEDS_FN, {"repetitions": 1})]
        cells_b = [Cell(SEEDS_FN, {"repetitions": 2})]
        assert SweepCheckpoint(cells_a).path == SweepCheckpoint(cells_a).path
        assert SweepCheckpoint(cells_a).path != SweepCheckpoint(cells_b).path

    def test_discard(self, isolated_results):
        cp = SweepCheckpoint([Cell(SEEDS_FN, {"repetitions": 1})])
        cp.record(cp.tokens[0], [1])
        assert cp.path.exists()
        cp.discard()
        assert not cp.path.exists()
        cp.discard()  # idempotent


class TestHardenedSerial:
    def test_exception_becomes_run_failure(self, isolated_results):
        cells = [
            Cell(SEEDS_FN, {"repetitions": 2}),
            Cell(f"{HERE}:raising_cell", {"message": "kapow"}),
            Cell(SEEDS_FN, {"repetitions": 3}),
        ]
        results = execute(
            cells, jobs=1, cache=False, collect_failures=True, retry=FAST_NO_RETRY
        )
        assert results[0] == scale.seeds_for(2)
        assert results[2] == scale.seeds_for(3)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.error == "exception"
        assert "kapow" in failure.message
        assert executor.LAST_STATS.failed == 1

    def test_transient_failure_retried_to_success(self, isolated_results, tmp_path):
        marker = str(tmp_path / "flaky-marker")
        cells = [Cell(f"{HERE}:flaky_cell", {"marker": marker, "value": 99})]
        results = execute(
            cells, jobs=1, cache=False, collect_failures=True, retry=FAST_ONE_RETRY
        )
        assert results == [99]
        assert executor.LAST_STATS.retries == 1
        assert executor.LAST_STATS.failed == 0

    def test_attempts_exhausted_counted(self, isolated_results):
        cells = [Cell(f"{HERE}:raising_cell", {})]
        results = execute(
            cells, jobs=1, cache=False, collect_failures=True, retry=FAST_ONE_RETRY
        )
        assert results[0].attempts == 2

    def test_legacy_contract_still_raises(self, isolated_results):
        with pytest.raises(RuntimeError, match="boom"):
            execute([Cell(f"{HERE}:raising_cell", {})], jobs=1, cache=False)


class TestHardenedParallel:
    def test_worker_exception_collected_others_match_serial(self, isolated_results):
        good = [Cell(SEEDS_FN, {"repetitions": n}) for n in (1, 2, 3)]
        cells = [good[0], Cell(f"{HERE}:raising_cell", {}), good[1], good[2]]
        parallel = execute(
            cells, jobs=2, cache=False, collect_failures=True, retry=FAST_NO_RETRY
        )
        serial_good = execute(good, jobs=1, cache=False)
        assert parallel[1].error == "exception"
        assert [parallel[0], parallel[2], parallel[3]] == serial_good

    def test_timeout_becomes_run_failure(self, isolated_results):
        cells = [
            Cell(SEEDS_FN, {"repetitions": 2}),
            Cell(f"{HERE}:sleeping_cell", {"seconds": 30.0, "value": 1}),
            Cell(SEEDS_FN, {"repetitions": 4}),
        ]
        results = execute(
            cells,
            jobs=2,
            cache=False,
            timeout_s=1.0,
            collect_failures=True,
            retry=FAST_NO_RETRY,
        )
        assert results[0] == scale.seeds_for(2)
        assert results[2] == scale.seeds_for(4)
        assert isinstance(results[1], RunFailure)
        assert results[1].error == "timeout"
        assert results[1].duration_s >= 1.0

    def test_killed_worker_becomes_run_failure(self, isolated_results):
        good = [Cell(SEEDS_FN, {"repetitions": n}) for n in (1, 2, 3)]
        cells = [good[0], Cell(f"{HERE}:killer_cell", {}), good[1], good[2]]
        results = execute(
            cells, jobs=2, cache=False, collect_failures=True, retry=FAST_NO_RETRY
        )
        assert executor.LAST_STATS.failed == 1
        serial_good = execute(good, jobs=1, cache=False)
        assert isinstance(results[1], RunFailure)
        assert results[1].error == "crash"
        assert [results[0], results[2], results[3]] == serial_good

    def test_legacy_timeout_raises(self, isolated_results):
        cells = [
            Cell(f"{HERE}:sleeping_cell", {"seconds": 30.0, "value": i})
            for i in range(2)
        ]
        with pytest.raises(TimeoutError, match="wall-clock"):
            execute(cells, jobs=2, cache=False, timeout_s=0.5, retry=FAST_NO_RETRY)

    def test_legacy_repeated_crash_raises(self, isolated_results):
        cells = [Cell(f"{HERE}:killer_cell", {}), Cell(SEEDS_FN, {"repetitions": 2})]
        with pytest.raises(RuntimeError, match="killed its worker"):
            execute(cells, jobs=2, cache=False, retry=FAST_NO_RETRY)


class TestCheckpointResume:
    def test_resume_completes_only_missing_cells_byte_identical(
        self, isolated_results
    ):
        cells = [Cell(SEEDS_FN, {"repetitions": n}) for n in range(1, 6)]
        full = execute(cells, jobs=1, cache=False, collect_failures=True)

        # simulate an interrupted sweep: only cells 0 and 2 finished
        cp = SweepCheckpoint(cells)
        cp.record(cp.tokens[0], full[0])
        cp.record(cp.tokens[2], full[2])
        resumed = execute(
            cells,
            jobs=1,
            cache=False,
            collect_failures=True,
            checkpoint=cp,
            resume=True,
        )
        assert resumed == full  # byte-identical to the uninterrupted sweep
        assert executor.LAST_STATS.resumed == 2
        assert executor.LAST_STATS.computed == 3

    def test_checkpoint_deleted_on_full_success(self, isolated_results):
        cells = [Cell(SEEDS_FN, {"repetitions": n}) for n in (1, 2)]
        cp = SweepCheckpoint(cells)
        execute(
            cells, jobs=1, cache=False, collect_failures=True, checkpoint=cp
        )
        assert not cp.path.exists()

    def test_checkpoint_kept_when_cells_failed(self, isolated_results):
        cells = [
            Cell(SEEDS_FN, {"repetitions": 1}),
            Cell(f"{HERE}:raising_cell", {}),
        ]
        cp = SweepCheckpoint(cells)
        execute(
            cells,
            jobs=1,
            cache=False,
            collect_failures=True,
            checkpoint=cp,
            retry=FAST_NO_RETRY,
        )
        assert cp.path.exists()
        assert cp.load() == {cp.tokens[0]: scale.seeds_for(1)}

    def test_resume_env_default_off(self, isolated_results):
        # a stale journal with a WRONG value must be ignored unless
        # resume is requested
        cells = [Cell(SEEDS_FN, {"repetitions": 2})]
        cp = SweepCheckpoint(cells)
        cp.record(cp.tokens[0], ["stale", "values"])
        results = execute(
            cells, jobs=1, cache=False, collect_failures=True, checkpoint=cp
        )
        assert results == [scale.seeds_for(2)]


class TestCacheHardening:
    def test_unserializable_result_warns_not_raises(self, isolated_results):
        with pytest.warns(UserWarning, match="cache store skipped"):
            assert cache.store(SEEDS_FN, {}, {"bad": object()}) is None

    def test_write_failure_warns_not_raises(self, isolated_results, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cache.os, "replace", refuse)
        with pytest.warns(UserWarning, match="cache store failed"):
            assert cache.store(SEEDS_FN, {}, [1, 2]) is None

    def test_corrupt_entry_warns_and_misses(self, isolated_results):
        path = cache.store(SEEDS_FN, {"repetitions": 1}, [123])
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert cache.load(SEEDS_FN, {"repetitions": 1}) is cache.MISS
