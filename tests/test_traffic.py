"""Flow-size distributions and workload generators."""

import random

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.sim.topology import single_switch, three_tier_clos
from repro.traffic.distributions import (
    FlowSizeDistribution,
    data_mining,
    storage_cluster,
    web_search,
)
from repro.traffic.workload import (
    IncastWorkload,
    UserTrafficWorkload,
    pick_incast_participants,
)


class TestDistributionValidation:
    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(1000, 1.0)])

    def test_sizes_strictly_increasing(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(1000, 0.5), (1000, 1.0)])

    def test_probabilities_nondecreasing(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(1000, 0.8), (2000, 0.5), (3000, 1.0)])

    def test_final_probability_must_be_one(self):
        with pytest.raises(ValueError):
            FlowSizeDistribution("x", [(1000, 0.5), (2000, 0.9)])


class TestQuantiles:
    def test_bounds(self):
        dist = storage_cluster()
        assert dist.quantile(0.0) == units.kb(1)
        assert dist.quantile(1.0) == units.mb(16)

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            storage_cluster().quantile(1.5)

    @given(st.floats(min_value=0, max_value=1))
    def test_quantile_within_support(self, u):
        dist = storage_cluster()
        size = dist.quantile(u)
        assert units.kb(1) <= size <= units.mb(16)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_quantile_monotone(self, u1, u2):
        dist = web_search()
        if u1 > u2:
            u1, u2 = u2, u1
        assert dist.quantile(u1) <= dist.quantile(u2)

    def test_sampling_deterministic_per_seed(self):
        dist = storage_cluster()
        a = [dist.sample(random.Random(4)) for _ in range(1)]
        b = [dist.sample(random.Random(4)) for _ in range(1)]
        assert a == b

    def test_mean_in_plausible_range(self):
        # heavy-tailed: mean far above median
        dist = storage_cluster()
        mean = dist.mean()
        assert units.kb(100) < mean < units.mb(2)
        assert mean > dist.quantile(0.5)

    def test_all_builtin_distributions_load(self):
        for dist in (storage_cluster(), web_search(), data_mining()):
            assert dist.quantile(0.5) > 0


class TestUserTrafficWorkload:
    def test_closed_loop_progresses(self):
        net, _, hosts = single_switch(6, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=4, seed=1)
        workload.start()
        net.run_for(units.ms(5))
        completed = sum(p.flow.messages_completed for p in workload.pairs)
        assert completed > 0
        # the loop keeps refilling: at most one message gap per pair
        for pair in workload.pairs:
            assert len(pair.flow.messages) >= pair.flow.messages_completed

    def test_start_twice_rejected(self):
        net, _, hosts = single_switch(4, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=2, seed=1)
        workload.start()
        with pytest.raises(RuntimeError):
            workload.start()

    def test_excluded_hosts_not_used(self):
        net, _, hosts = single_switch(6, seed=3)
        banned = hosts[0]
        workload = UserTrafficWorkload(
            net, hosts, n_pairs=8, seed=2, exclude=[banned]
        )
        for pair in workload.pairs:
            assert pair.src is not banned
            assert pair.dst is not banned

    def test_pairs_never_self_directed(self):
        net, _, hosts = single_switch(6, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=20, seed=5)
        assert all(p.src is not p.dst for p in workload.pairs)

    def test_throughput_metrics(self):
        net, _, hosts = single_switch(4, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=2, seed=1)
        workload.start()
        net.run_for(units.ms(5))
        rates = workload.pair_throughputs_bps(units.ms(5))
        assert len(rates) == 2
        assert all(rate > 0 for rate in rates)
        assert workload.completed_message_throughputs_bps()

    def test_validation(self):
        net, _, hosts = single_switch(4, seed=3)
        with pytest.raises(ValueError):
            UserTrafficWorkload(net, hosts, n_pairs=0)
        with pytest.raises(ValueError):
            UserTrafficWorkload(net, hosts[:1], n_pairs=1)


class TestIncastWorkload:
    def test_all_senders_stream(self):
        net, _, hosts = single_switch(5, seed=3)
        incast = IncastWorkload(net, hosts[-1], hosts[:4])
        net.run_for(units.ms(5))
        rates = incast.sender_throughputs_bps(units.ms(5))
        assert incast.degree == 4
        assert all(rate > units.gbps(1) for rate in rates)

    def test_receiver_cannot_send_to_itself(self):
        net, _, hosts = single_switch(4, seed=3)
        with pytest.raises(ValueError):
            IncastWorkload(net, hosts[0], hosts[:2])

    def test_needs_senders(self):
        net, _, hosts = single_switch(4, seed=3)
        with pytest.raises(ValueError):
            IncastWorkload(net, hosts[0], [])

    def test_pick_participants(self):
        net, _, hosts = single_switch(6, seed=3)
        receiver, senders = pick_incast_participants(hosts, 3, random.Random(1))
        assert receiver not in senders
        assert len(set(senders)) == 3

    def test_pick_participants_bounds(self):
        net, _, hosts = single_switch(3, seed=3)
        with pytest.raises(ValueError):
            pick_incast_participants(hosts, 3, random.Random(1))


class TestFctMetrics:
    def test_fcts_collected(self):
        net, _, hosts = single_switch(4, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=2, seed=1)
        workload.start()
        net.run_for(units.ms(5))
        fcts = workload.message_fcts_ns()
        assert fcts
        assert all(fct > 0 for fct in fcts)

    def test_since_filter(self):
        net, _, hosts = single_switch(4, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=2, seed=1)
        workload.start()
        net.run_for(units.ms(5))
        late_only = workload.message_fcts_ns(since_ns=units.ms(4))
        assert len(late_only) <= len(workload.message_fcts_ns())

    def test_fct_p90_reasonable(self):
        from repro.analysis.stats import percentile

        net, _, hosts = single_switch(4, seed=3)
        workload = UserTrafficWorkload(net, hosts, n_pairs=2, seed=1)
        workload.start()
        net.run_for(units.ms(8))
        fcts = workload.message_fcts_ns()
        # messages up to 16 MB at >= fair share finish within the run
        assert percentile(fcts, 90) < units.ms(8)
