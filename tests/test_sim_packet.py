"""Packet constructors and field semantics."""

from repro.sim.packet import (
    CONTROL_FRAME_BYTES,
    ECN_CE,
    ECN_ECT,
    ECN_NOT_ECT,
    KIND_CNP,
    KIND_DATA,
    KIND_PAUSE,
    KIND_RESUME,
    Packet,
    cnp_packet,
    data_packet,
    pause_frame,
)


class TestDataPacket:
    def test_fields(self):
        pkt = data_packet(7, 1, 2, 1000, seq=42, priority=3, msg_id=5)
        assert pkt.kind == KIND_DATA
        assert (pkt.flow_id, pkt.src, pkt.dst) == (7, 1, 2)
        assert (pkt.size, pkt.seq, pkt.priority, pkt.msg_id) == (1000, 42, 3, 5)

    def test_data_is_ecn_capable(self):
        assert data_packet(0, 1, 2, 1000, 0, 0).ecn == ECN_ECT

    def test_non_boundary_default(self):
        assert data_packet(0, 1, 2, 1000, 0, 0).msg_id == -1

    def test_ingress_scratch_starts_unset(self):
        assert data_packet(0, 1, 2, 1000, 0, 0).ingress_index == -1


class TestControlFrames:
    def test_cnp(self):
        pkt = cnp_packet(3, 9, 4, priority=6)
        assert pkt.kind == KIND_CNP
        assert pkt.size == CONTROL_FRAME_BYTES
        assert pkt.ecn == ECN_NOT_ECT
        assert (pkt.src, pkt.dst, pkt.priority) == (9, 4, 6)

    def test_pause(self):
        pkt = pause_frame(5, 2, pause=True)
        assert pkt.kind == KIND_PAUSE
        assert pkt.pause
        assert pkt.pause_priority == 2
        assert pkt.src == 5

    def test_resume(self):
        pkt = pause_frame(5, 2, pause=False)
        assert pkt.kind == KIND_RESUME
        assert not pkt.pause

    def test_repr_is_informative(self):
        text = repr(data_packet(1, 2, 3, 1000, 4, 0))
        assert "DATA" in text
        assert "2->3" in text


class TestEcnCodepoints:
    def test_distinct(self):
        assert len({ECN_NOT_ECT, ECN_ECT, ECN_CE}) == 3

    def test_ce_marking_roundtrip(self):
        pkt = data_packet(0, 1, 2, 1000, 0, 0)
        pkt.ecn = ECN_CE
        assert pkt.ecn == ECN_CE


class TestSlots:
    def test_no_dict_overhead(self):
        """Packets are slotted: the hot path allocates no __dict__."""
        pkt = Packet(KIND_DATA)
        assert not hasattr(pkt, "__dict__")
