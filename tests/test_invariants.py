"""The invariant guard layer (repro.invariants) and its scenario wiring."""

import pickle

import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.faults import FaultPlan, LinkFlap, WatchdogConfig
from repro.invariants import (
    InvariantConfig,
    InvariantGuard,
    InvariantViolation,
    config_violations,
)
from repro.runner import FlowSpec, Scenario, run_sweep
from repro.runner import cache, executor, scale
from repro.runner.scenario import run_scenario_inline
from repro.sim.switch import SwitchConfig
from repro.sim.topology import single_switch
from repro.telemetry import Telemetry


@pytest.fixture
def isolated_results(tmp_path, monkeypatch):
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    monkeypatch.delenv(executor.JOBS_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    monkeypatch.setenv(scale.SCALE_ENV, "smoke")
    return tmp_path


def smoke_scenario(invariants=None, faults=None, cc="dcqcn"):
    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": 3},
        flows=(
            FlowSpec(name="f0", src="0", dst="-1", cc=cc),
            FlowSpec(name="f1", src="1", dst="-1", cc=cc),
        ),
        duration_ns=units.ms(1),
        label="invariants-test",
        invariants=invariants,
        faults=faults,
    )


class TestConfig:
    def test_mode_validated(self):
        with pytest.raises(ValueError, match="mode"):
            InvariantConfig(mode="paranoid")

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="check_interval_ns"):
            InvariantConfig(check_interval_ns=0)

    def test_scenario_rejects_non_config(self):
        with pytest.raises(TypeError, match="InvariantConfig"):
            smoke_scenario(invariants={"mode": "strict"})

    def test_spec_round_trip_carries_invariants(self):
        scenario = smoke_scenario(invariants=InvariantConfig(mode="strict"))
        again = Scenario.from_spec(scenario.spec())
        assert again.invariants == InvariantConfig(mode="strict")

    def test_violation_pickles_intact(self):
        exc = InvariantViolation("rp.bounds", "rp-1", 42, "alpha out of range")
        again = pickle.loads(pickle.dumps(exc))
        assert (again.name, again.component, again.t_ns) == ("rp.bounds", "rp-1", 42)
        assert "alpha out of range" in str(again)


class TestBuildTimeThresholds:
    def test_deployed_defaults_are_sound(self):
        assert config_violations(SwitchConfig()) == []

    def test_kmax_above_dynamic_pfc_rejected(self):
        config = SwitchConfig(
            marking=DCQCNParams(kmin_bytes=units.kb(5), kmax_bytes=units.mb(7))
        )
        names = [name for name, _ in config_violations(config)]
        assert "buffer.kmax_vs_pfc" in names

    def test_kmin_above_dynamic_bound_rejected(self):
        # the §4 bound at beta=8 is ~21.75KB; 25KB lets PFC fire unmarked
        config = SwitchConfig(
            marking=DCQCNParams(kmin_bytes=units.kb(25), kmax_bytes=units.kb(200))
        )
        names = [name for name, _ in config_violations(config)]
        assert "buffer.ecn_before_pfc" in names

    def test_static_kmax_above_t_pfc_rejected(self):
        config = SwitchConfig(
            pfc_mode="static",
            t_pfc_static_bytes=units.kb(24.47),
            marking=DCQCNParams(kmin_bytes=units.kb(0.5), kmax_bytes=units.kb(200)),
        )
        names = [name for name, _ in config_violations(config)]
        assert "buffer.kmax_vs_pfc" in names

    def test_no_ordering_without_pfc_or_ecn(self):
        bad_marking = DCQCNParams(kmin_bytes=units.kb(5), kmax_bytes=units.mb(7))
        assert config_violations(SwitchConfig(pfc_mode="off", marking=bad_marking)) == []
        assert (
            config_violations(SwitchConfig(ecn_enabled=False, marking=bad_marking))
            == []
        )

    def test_strict_scenario_rejected_at_build_time(self, isolated_results):
        import dataclasses

        mistuned = SwitchConfig(
            marking=DCQCNParams(kmin_bytes=units.kb(5), kmax_bytes=units.mb(7))
        )
        scenario = dataclasses.replace(
            smoke_scenario(invariants=InvariantConfig(mode="strict")),
            topology_kwargs={"n_hosts": 3, "switch_config": mistuned},
        )
        with pytest.raises(InvariantViolation, match="kmax_vs_pfc"):
            run_scenario_inline(scenario, seed=0)

    def test_report_mode_records_and_completes(self, isolated_results):
        import dataclasses

        mistuned = SwitchConfig(
            marking=DCQCNParams(kmin_bytes=units.kb(5), kmax_bytes=units.mb(7))
        )
        scenario = dataclasses.replace(
            smoke_scenario(invariants=InvariantConfig(mode="report")),
            topology_kwargs={"n_hosts": 3, "switch_config": mistuned},
        )
        result, _ = run_scenario_inline(scenario, seed=0)
        report = result.invariant_report
        assert report["violation_count"] >= 1
        assert any(
            v["name"] == "buffer.kmax_vs_pfc" for v in report["violations"]
        )
        assert result.metric("invariant.violations") >= 1


class TestRuntimeChecks:
    def _guarded_net(self, mode="report"):
        net, switch, hosts = single_switch(n_hosts=3)
        guard = InvariantGuard(InvariantConfig(mode=mode), telemetry=Telemetry())
        guard.install(net, horizon_ns=units.ms(1))
        return net, switch, guard

    def test_clean_network_has_no_violations(self):
        net, switch, guard = self._guarded_net()
        guard.check_network(net)
        assert guard.violation_count == 0

    def test_doctored_switch_counters_flagged(self):
        net, switch, guard = self._guarded_net()
        switch._ingress_bytes[0][0] += 500  # corrupt the ingress ledger
        guard.check_switch(switch)
        names = [v.name for v in guard.violations]
        assert "switch.byte_conservation" in names

    def test_negative_queue_flagged(self):
        net, switch, guard = self._guarded_net()
        switch._egress_bytes[0][0] = -1
        guard.check_switch(switch)
        assert any(v.name == "switch.negative_queue" for v in guard.violations)

    def test_drop_on_pfc_switch_reported_once(self):
        net, switch, guard = self._guarded_net()
        switch.dropped_packets = 2
        guard.check_switch(switch)
        guard.check_switch(switch)  # same drops again: no second report
        lossless = [v for v in guard.violations if v.name == "pfc.losslessness"]
        assert len(lossless) == 1

    def test_drop_exempt_when_pfc_off(self):
        net, switch, hosts = single_switch(
            n_hosts=3, switch_config=SwitchConfig(pfc_mode="off", ecn_enabled=False)
        )
        guard = InvariantGuard(InvariantConfig())
        guard.install(net, horizon_ns=units.ms(1))
        switch.dropped_packets = 5
        guard.check_switch(switch)
        assert guard.violation_count == 0

    def test_rp_alpha_out_of_bounds_flagged(self):
        net, switch, guard = self._guarded_net()
        flow = net.add_flow(net.hosts[0], net.hosts[-1], cc="dcqcn")
        flow.rp._alpha = 1.5
        guard.on_rp_update(flow.rp, "cut")
        assert any(v.name == "rp.bounds" for v in guard.violations)

    def test_rp_rate_above_line_flagged_strict(self):
        net, switch, guard = self._guarded_net(mode="strict")
        flow = net.add_flow(net.hosts[0], net.hosts[-1], cc="dcqcn")
        flow.rp.rc_bps = flow.rp.line_rate_bps * 2
        with pytest.raises(InvariantViolation, match="rp.bounds"):
            guard.on_rp_update(flow.rp, "increase")

    def test_strict_mode_raises_on_first_violation(self):
        net, switch, guard = self._guarded_net(mode="strict")
        switch._ingress_bytes[0][0] += 500
        with pytest.raises(InvariantViolation, match="byte_conservation"):
            guard.check_switch(switch)

    def test_max_records_bounds_report(self):
        net, switch, guard = self._guarded_net()
        guard.config = InvariantConfig(max_records=3)
        for _ in range(10):
            guard.violation("rp.bounds", "rp-x", "synthetic")
        assert guard.violation_count == 10
        assert len(guard.violations) == 3


class TestScenarioIntegration:
    def test_clean_dcqcn_run_is_violation_free_strict(self, isolated_results):
        scenario = smoke_scenario(invariants=InvariantConfig(mode="strict"))
        result, _ = run_scenario_inline(scenario, seed=0)
        report = result.invariant_report
        assert report["mode"] == "strict"
        assert report["violation_count"] == 0
        assert report["checks"] > 0
        assert report["sweeps"] > 0

    def test_guard_does_not_change_results(self, isolated_results):
        bare, _ = run_scenario_inline(smoke_scenario(), seed=0)
        guarded, _ = run_scenario_inline(
            smoke_scenario(invariants=InvariantConfig(mode="strict")), seed=0
        )
        assert guarded.flows_bps == bare.flows_bps
        assert guarded.counters == bare.counters

    def test_every_registered_scenario_clean_under_strict(self, isolated_results):
        import dataclasses

        import repro.experiments.catalog  # noqa: F401  (populates SCENARIOS)
        from repro.runner import SCENARIOS

        for named in SCENARIOS:
            scenario = dataclasses.replace(
                SCENARIOS.build(named.id),
                invariants=InvariantConfig(mode="strict"),
            )
            result, _ = run_scenario_inline(scenario, seed=0)
            assert result.invariant_report["violation_count"] == 0, named.id

    def test_strict_violation_becomes_run_failure_in_sweep(self, isolated_results):
        import dataclasses

        mistuned = SwitchConfig(
            marking=DCQCNParams(kmin_bytes=units.kb(5), kmax_bytes=units.mb(7))
        )
        scenario = dataclasses.replace(
            smoke_scenario(invariants=InvariantConfig(mode="strict")),
            topology_kwargs={"n_hosts": 3, "switch_config": mistuned},
        )
        sweep = run_sweep("x", {0: scenario}, seeds=[0], jobs=1)
        assert sweep.total_failures() == 1
        failure = sweep.points[0].failures[0]
        assert failure.error == "invariant"
        assert "kmax_vs_pfc" in failure.message
        assert failure.attempts == 1  # invariant failures never retry


class TestWatchdogReport:
    def test_watchdog_findings_shape(self):
        from repro.faults import DeadlockWatchdog
        from repro.sim.network import Network

        net = Network(seed=0)
        switches = [net.new_switch(f"S{i + 1}") for i in range(4)]
        for i, sw in enumerate(switches):
            net.connect(sw, switches[(i + 1) % 4], units.gbps(40), 500)
        for i, sw in enumerate(switches):
            sw.port_to(switches[(i + 1) % 4]).set_paused(0, True)
        dog = DeadlockWatchdog(
            net,
            WatchdogConfig(scan_ns=units.us(10)),
            Telemetry(),
            stop_ns=units.us(50),
        )
        net.run_for(units.us(50))
        findings = dog.findings()
        assert findings["cycles"] >= 1
        assert sorted(findings["last_cycle"]) == ["S1", "S2", "S3", "S4"]
        assert findings["scans"] == dog.scans

    def test_watchdog_findings_flow_into_invariant_report(self, isolated_results):
        # the only path is dark for the whole run: the stall detector
        # fires, and the run's findings must surface in the report even
        # though no InvariantConfig was requested
        plan = FaultPlan(
            injectors=(
                LinkFlap(a="SL", b="SR", start_ns=0, down_ns=units.us(500)),
            ),
            watchdog=WatchdogConfig(scan_ns=units.us(20), stall_ticks=5),
        )
        scenario = Scenario(
            topology="dumbbell",
            topology_kwargs={"n_left": 2, "n_right": 2},
            flows=(
                FlowSpec(name="feeder", src="L1", dst="R1"),
                FlowSpec(name="victim", src="L2", dst="R2"),
            ),
            duration_ns=units.us(500),
            faults=plan,
        )
        result, _ = run_scenario_inline(scenario, seed=0)
        watchdog = result.invariant_report["watchdog"]
        assert watchdog["stalls"] >= 1
        assert watchdog["scans"] >= 5

    def test_guard_and_watchdog_reports_compose(self, isolated_results):
        plan = FaultPlan(
            injectors=(),
            watchdog=WatchdogConfig(scan_ns=units.us(50)),
        )
        scenario = smoke_scenario(
            invariants=InvariantConfig(mode="strict"), faults=plan
        )
        result, _ = run_scenario_inline(scenario, seed=0)
        report = result.invariant_report
        assert report["violation_count"] == 0
        assert report["watchdog"]["cycles"] == 0
