"""CP algorithm: RED/ECN marking (Figure 5 / Equation 5)."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.core.cp import RedEcnMarker, marking_probability
from repro.core.params import DCQCNParams


class TestMarkingProbability:
    def test_zero_below_kmin(self):
        assert marking_probability(4_000, 5_000, 200_000, 0.01) == 0.0

    def test_zero_at_kmin(self):
        assert marking_probability(5_000, 5_000, 200_000, 0.01) == 0.0

    def test_one_above_kmax(self):
        assert marking_probability(200_001, 5_000, 200_000, 0.01) == 1.0

    def test_pmax_at_kmax(self):
        assert marking_probability(200_000, 5_000, 200_000, 0.01) == pytest.approx(0.01)

    def test_linear_midpoint(self):
        mid = (5_000 + 200_000) / 2
        assert marking_probability(mid, 5_000, 200_000, 0.01) == pytest.approx(0.005)

    def test_cutoff_behaviour(self):
        """Kmin == Kmax: DCTCP-style step function."""
        assert marking_probability(39_999, 40_000, 40_000, 1.0) == 0.0
        assert marking_probability(40_000, 40_000, 40_000, 1.0) == 0.0
        assert marking_probability(40_001, 40_000, 40_000, 1.0) == 1.0

    @given(
        st.floats(min_value=0, max_value=1e7),
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_always_a_probability(self, q, kmin, kmax, pmax):
        if kmax < kmin:
            kmin, kmax = kmax, kmin
        p = marking_probability(q, kmin, kmax, pmax)
        assert 0.0 <= p <= 1.0

    @given(
        st.lists(st.floats(min_value=0, max_value=3e5), min_size=2, max_size=20),
    )
    def test_monotone_in_queue(self, queues):
        queues = sorted(queues)
        probs = [marking_probability(q, 5_000, 200_000, 0.01) for q in queues]
        assert probs == sorted(probs)


class TestRedEcnMarker:
    def test_no_marks_when_idle_queue(self):
        marker = RedEcnMarker(DCQCNParams.deployed(), seed=1)
        assert not any(marker.should_mark(0) for _ in range(1000))

    def test_all_marked_above_kmax(self):
        marker = RedEcnMarker(DCQCNParams.deployed(), seed=1)
        assert all(marker.should_mark(units.kb(500)) for _ in range(100))

    def test_mark_fraction_tracks_probability(self):
        params = DCQCNParams.deployed().with_red_marking(
            units.kb(5), units.kb(200), 1.0
        )
        marker = RedEcnMarker(params, seed=42)
        # mid-segment: p = 0.5
        mid = (params.kmin_bytes + params.kmax_bytes) / 2
        for _ in range(20_000):
            marker.should_mark(mid)
        assert marker.mark_fraction == pytest.approx(0.5, abs=0.02)

    def test_deterministic_with_seed(self):
        def roll(seed):
            marker = RedEcnMarker(DCQCNParams.deployed(), seed=seed)
            return [marker.should_mark(units.kb(100)) for _ in range(500)]

        assert roll(9) == roll(9)
        assert roll(9) != roll(10)

    def test_counters(self):
        marker = RedEcnMarker(DCQCNParams.deployed(), seed=1)
        marker.should_mark(0)
        marker.should_mark(units.kb(500))
        assert marker.seen == 2
        assert marker.marked == 1

    def test_mark_fraction_empty(self):
        assert RedEcnMarker(DCQCNParams.deployed()).mark_fraction == 0.0
