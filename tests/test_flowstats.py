"""Flow lifecycle observability: FlowStats recording end to end.

Covers the per-transfer FCT table in ``RunResult.flow_stats``, the
``flow.*`` trace events, the ``REPRO_FLOWSTATS`` kill switch, the
closed-loop message streams behind Fig 16 traffic, and the trace
linter's hard-fail behaviour on empty/unknown input.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import units
from repro.analysis.fct import base_rtt_ns, ideal_fct_ns, serialization_ns
from repro.runner import FlowSpec, RunResult, Scenario, run_scenario, run_scenario_inline
from repro.sim import host as sim_host
from repro.telemetry import (
    FLOW_FCT,
    FLOW_FIRST_BYTE,
    FLOW_START,
    FlowStats,
    RingBufferSink,
    Telemetry,
    Tracer,
    stats_from_json,
)
from repro.telemetry.lint import lint_file
from repro.telemetry.lint import main as lint_main

LINE_RATE_BPS = 40e9
MTU = 1000


def probe_scenario(size_bytes, duration_ns=units.us(200), count=1):
    """One uncontended message transfer across a single switch."""
    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": 2},
        flows=(
            FlowSpec(
                name="probe",
                src="0",
                dst="1",
                cc="dcqcn",
                greedy=False,
                message_bytes=size_bytes,
                message_count=count,
            ),
        ),
        duration_ns=duration_ns,
        label="fct-probe",
    )


def incast_scenario(duration_ns=units.ms(1)):
    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": 3},
        flows=(
            FlowSpec(name="f0", src="0", dst="2", cc="dcqcn"),
            FlowSpec(name="f1", src="1", dst="2", cc="dcqcn"),
        ),
        duration_ns=duration_ns,
        label="flowstats-incast",
    )


class TestAnalyticFct:
    @pytest.mark.parametrize("size", [20_000, 100_000])
    def test_recorded_fct_matches_analytic_within_one_packet(self, size):
        """An uncontended transfer finishes in serialization + base RTT.

        The pacer quantizes each inter-packet gap up by <1 ns, so the
        recorded FCT may exceed the analytic value by up to one
        nanosecond per packet — well under one MTU serialization time
        for sizes up to 100 KB.
        """
        result, _ = run_scenario_inline(probe_scenario(size), seed=1)
        rows = [r for r in result.flow_stats_records() if r.flow == "probe"]
        assert len(rows) == 1
        record = rows[0]
        assert record.completed
        ideal = ideal_fct_ns(size, LINE_RATE_BPS, base_rtt_ns(hops=1))
        tolerance = serialization_ns(MTU, LINE_RATE_BPS)
        assert abs(record.fct_ns - ideal) <= tolerance, (
            f"recorded {record.fct_ns} vs ideal {ideal:.1f} "
            f"(tolerance {tolerance:.0f} ns)"
        )

    def test_first_byte_precedes_finish(self):
        result, _ = run_scenario_inline(probe_scenario(20_000), seed=1)
        record = result.flow_stats_records()[0]
        assert record.start_ns <= record.first_byte_ns <= record.finish_ns
        assert record.fct_ns == record.finish_ns - record.start_ns


class TestFlowStatsTable:
    def test_greedy_flows_get_open_row(self):
        result, _ = run_scenario_inline(incast_scenario(), seed=1)
        records = result.flow_stats_records()
        assert {r.flow for r in records} == {"f0", "f1"}
        for record in records:
            assert record.msg == -1  # greedy: no message boundary
            assert record.fct_ns is None and not record.completed
            assert record.size_bytes > 0

    def test_closed_loop_stream_records_every_transfer(self):
        result, _ = run_scenario_inline(
            probe_scenario(2_000, count=3), seed=1
        )
        records = result.flow_stats_records()
        assert [r.msg for r in records] == [0, 1, 2]
        assert all(r.completed for r in records)
        # back-to-back: each transfer starts after the previous finishes
        for earlier, later in zip(records, records[1:]):
            assert later.start_ns >= earlier.finish_ns

    def test_roundtrips_through_run_result_json(self):
        result, _ = run_scenario_inline(incast_scenario(), seed=1)
        clone = RunResult.from_json(json.loads(json.dumps(result.to_json())))
        assert clone.flow_stats == result.flow_stats
        assert clone.flow_stats_records() == result.flow_stats_records()

    def test_flowstats_json_roundtrip(self):
        record = FlowStats(
            flow="probe",
            flow_id=3,
            msg=0,
            cc="dcqcn",
            size_bytes=20_000,
            start_ns=0,
            first_byte_ns=2_000,
            finish_ns=6_226,
            fct_ns=6_226,
            retransmits=0,
            pauses_rx=1,
            line_rate_bps=LINE_RATE_BPS,
            mtu_bytes=MTU,
        )
        assert stats_from_json([record.to_json()]) == [record]


class TestDeterminism:
    def test_serial_equals_parallel_flow_stats(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        scenario = incast_scenario(duration_ns=units.ms(2))
        seeds = [1, 2, 3, 4]
        serial = run_scenario(scenario, seeds, jobs=1, cache=False)
        parallel = run_scenario(scenario, seeds, jobs=2, cache=False)
        assert [r.flow_stats for r in serial] == [
            r.flow_stats for r in parallel
        ]
        assert serial == parallel


class TestTraceEvents:
    def run_traced(self, level):
        telemetry = Telemetry(tracer=Tracer(RingBufferSink(), level=level))
        run_scenario_inline(probe_scenario(5_000), seed=1, telemetry=telemetry)
        return [e["ev"] for e in telemetry.tracer.sink.events]

    def test_cc_level_emits_start_and_fct(self):
        names = self.run_traced("cc")
        assert FLOW_START in names and FLOW_FCT in names
        assert FLOW_FIRST_BYTE not in names  # full-level only

    def test_full_level_adds_first_byte(self):
        names = self.run_traced("full")
        assert FLOW_FIRST_BYTE in names

    def test_off_level_emits_nothing(self):
        assert self.run_traced("off") == []


class TestFlowstatsKnob:
    def test_enabled_by_default(self):
        assert sim_host.flowstats_enabled()

    def test_off_disables_recording(self):
        """REPRO_FLOWSTATS=off (read at import) empties flow_stats."""
        code = (
            "import json\n"
            "from repro import units\n"
            "from repro.runner import FlowSpec, Scenario, run_scenario_inline\n"
            "from repro.sim import host\n"
            "scenario = Scenario(\n"
            "    topology='single_switch',\n"
            "    topology_kwargs={'n_hosts': 2},\n"
            "    flows=(FlowSpec(name='p', src='0', dst='1', cc='dcqcn',\n"
            "                    greedy=False, message_bytes=5000),),\n"
            "    duration_ns=units.us(100), label='knob')\n"
            "result, _ = run_scenario_inline(scenario, seed=1)\n"
            "print(json.dumps([host.flowstats_enabled(),\n"
            "                  len(result.flow_stats),\n"
            "                  result.counters.get('fct_ns.p', -1.0) > 0]))\n"
        )
        env = dict(os.environ, REPRO_FLOWSTATS="off")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        enabled, rows, legacy_fct = json.loads(out.stdout.strip())
        assert enabled is False
        assert rows == 0
        assert legacy_fct is True  # the fct_ns.<name> counter still works


class TestLint:
    def write(self, tmp_path, text):
        path = tmp_path / "trace.jsonl"
        path.write_text(text)
        return str(path)

    def test_empty_trace_fails(self, tmp_path):
        path = self.write(tmp_path, "")
        lines, errors = lint_file(path)
        assert lines == 0 and errors
        assert lint_main([path]) == 1

    def test_allow_empty_opts_out(self, tmp_path):
        path = self.write(tmp_path, "\n\n")
        assert lint_file(path, allow_empty=True) == (0, [])
        assert lint_main(["--allow-empty", path]) == 0

    def test_unknown_event_name_fails(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"t": 1, "ev": "flow.bogus", "comp": "host", "flow": 1}\n',
        )
        _, errors = lint_file(path)
        assert any("unknown event type" in e for e in errors)
        assert lint_main([path]) == 1

    def test_valid_flow_events_pass(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"t": 1, "ev": "flow.start", "comp": "host", "flow": 1,'
            ' "msg": 0, "bytes": 5000}\n'
            '{"t": 2, "ev": "flow.first_byte", "comp": "host", "flow": 1,'
            ' "msg": 0}\n'
            '{"t": 9, "ev": "flow.fct", "comp": "host", "flow": 1,'
            ' "msg": 0, "fct_ns": 8, "bytes": 5000}\n',
        )
        assert lint_file(path) == (3, [])
        assert lint_main([path]) == 0


class TestFlowSpecValidation:
    def test_message_count_must_be_positive(self):
        with pytest.raises(ValueError, match="message_count"):
            FlowSpec(name="p", src="0", dst="1", message_count=0)

    def test_stream_needs_message_bytes(self):
        with pytest.raises(ValueError, match="message_bytes"):
            FlowSpec(name="p", src="0", dst="1", message_count=2)
