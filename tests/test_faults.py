"""The fault-injection & resilience subsystem (repro.faults)."""

import dataclasses
import json

import pytest

from repro import units
from repro.faults import (
    CnpImpairment,
    DeadlockWatchdog,
    ErrorBurst,
    FaultPlan,
    INJECTOR_KINDS,
    LinkFlap,
    PauseStorm,
    SlowReceiver,
    WatchdogConfig,
)
from repro.runner import FlowSpec, Scenario, run_scenario
from repro.runner import cache, executor, scale
from repro.runner.scenario import run_scenario_inline
from repro.sim.network import Network
from repro.telemetry import Telemetry


@pytest.fixture
def isolated_results(tmp_path, monkeypatch):
    """Point the cache at a fresh directory and clear stale env knobs."""
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    monkeypatch.delenv(executor.JOBS_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    monkeypatch.delenv(scale.SCALE_ENV, raising=False)
    return tmp_path


def storm_plan(start_ns=units.us(100), duration_ns=units.us(200)):
    return FaultPlan(
        injectors=(PauseStorm(host="R1", start_ns=start_ns, duration_ns=duration_ns),),
        watchdog=WatchdogConfig(),
    )


def dumbbell_scenario(cc="none", faults=None, duration_ns=units.us(500), warmup_ns=0):
    return Scenario(
        topology="dumbbell",
        topology_kwargs={"n_left": 2, "n_right": 2},
        flows=(
            FlowSpec(name="feeder", src="L1", dst="R1", cc=cc),
            FlowSpec(name="victim", src="L2", dst="R2", cc=cc),
        ),
        warmup_ns=warmup_ns,
        duration_ns=duration_ns,
        label="faults-test",
        faults=faults,
    )


class TestPlanSerialization:
    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            injectors=(
                LinkFlap(a="SL", b="SR", start_ns=10, down_ns=20, period_ns=100, count=3),
                ErrorBurst(a="S1", b="H2", rate=0.1, start_ns=0, duration_ns=50),
                PauseStorm(host="R1", start_ns=5, duration_ns=40),
                CnpImpairment(host="H1", drop_rate=0.5),
                SlowReceiver(host="H2", fraction=0.25, start_ns=0, duration_ns=90),
            ),
            watchdog=WatchdogConfig(scan_ns=1000, stall_ticks=3),
            recovery_sample_ns=500,
        )
        wire = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(wire) == plan

    def test_scenario_spec_round_trip_with_faults(self):
        sc = dumbbell_scenario(faults=storm_plan())
        wire = json.loads(json.dumps(sc.spec()))
        assert Scenario.from_spec(wire) == sc

    def test_fault_plan_changes_the_cache_key_spec(self):
        clean = dumbbell_scenario()
        stormy = dumbbell_scenario(faults=storm_plan())
        assert clean.spec() != stormy.spec()
        # and two identical plans agree, so caching still works
        assert stormy.spec() == dumbbell_scenario(faults=storm_plan()).spec()

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_json({"injectors": [{"kind": "gremlin"}]})

    def test_every_kind_is_registered(self):
        assert set(INJECTOR_KINDS) == {
            "link_flap", "error_burst", "pause_storm",
            "cnp_impairment", "slow_receiver",
        }


class TestPlanValidation:
    def test_error_burst_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            ErrorBurst(a="a", b="b", rate=0.0, start_ns=0, duration_ns=10)
        with pytest.raises(ValueError, match="rate"):
            ErrorBurst(a="a", b="b", rate=1.0, start_ns=0, duration_ns=10)

    def test_slow_receiver_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            SlowReceiver(host="h", fraction=1.0, start_ns=0, duration_ns=10)

    def test_cnp_impairment_needs_an_impairment(self):
        with pytest.raises(ValueError, match="at least one"):
            CnpImpairment(host="h")

    def test_repeat_needs_period_beyond_duration(self):
        with pytest.raises(ValueError, match="period"):
            LinkFlap(a="a", b="b", start_ns=0, down_ns=50, period_ns=50, count=2)

    def test_plan_rejects_non_injectors(self):
        with pytest.raises(TypeError, match="not a fault injector"):
            FaultPlan(injectors=("flap the trunk",))

    def test_scenario_rejects_non_plan_faults(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            dumbbell_scenario(faults={"injectors": []})

    def test_watchdog_config_bounds(self):
        with pytest.raises(ValueError, match="scan_ns"):
            WatchdogConfig(scan_ns=0)
        with pytest.raises(ValueError, match="stall_ticks"):
            WatchdogConfig(stall_ticks=0)


class TestWindows:
    def test_repeating_windows_clamp_to_horizon(self):
        flap = LinkFlap(a="a", b="b", start_ns=10, down_ns=20, period_ns=100, count=5)
        assert flap.windows(250) == [(10, 30), (110, 130), (210, 230)]

    def test_overlapping_injectors_merge(self):
        plan = FaultPlan(injectors=(
            PauseStorm(host="h", start_ns=0, duration_ns=100),
            LinkFlap(a="a", b="b", start_ns=50, down_ns=100),
            LinkFlap(a="a", b="b", start_ns=300, down_ns=10),
        ))
        assert plan.windows(1000) == [(0, 150), (300, 310)]

    def test_open_ended_cnp_impairment_runs_to_horizon(self):
        imp = CnpImpairment(host="h", drop_rate=0.1, start_ns=40)
        assert imp.windows(500) == [(40, 500)]


class TestInjectorRuntimes:
    def test_link_flap_drops_and_degrades(self, isolated_results):
        flap = FaultPlan(injectors=(
            LinkFlap(a="SL", b="SR", start_ns=units.us(100), down_ns=units.us(100)),
        ))
        clean, _ = run_scenario_inline(dumbbell_scenario(), 0)
        flapped, _ = run_scenario_inline(dumbbell_scenario(faults=flap), 0)
        assert flapped.metric("fault.injected") == 1
        assert flapped.metric("fault.cleared") == 1
        assert flapped.metric("fault.windows") == 1
        assert flapped.metric("link.down_drops") >= 1
        assert flapped.flows_bps["feeder"] < clean.flows_bps["feeder"]

    def test_error_burst_corrupts_only_deterministically(self, isolated_results):
        burst = FaultPlan(injectors=(
            ErrorBurst(a="SL", b="SR", rate=0.2,
                       start_ns=units.us(100), duration_ns=units.us(200)),
        ))
        first, _ = run_scenario_inline(dumbbell_scenario(faults=burst), 7)
        again, _ = run_scenario_inline(dumbbell_scenario(faults=burst), 7)
        assert first.metric("link.corrupted_frames") >= 1
        assert first.flows_bps == again.flows_bps
        assert first.metric("link.corrupted_frames") == again.metric(
            "link.corrupted_frames"
        )

    def test_slow_receiver_throttles_goodput(self, isolated_results):
        slow = FaultPlan(injectors=(
            SlowReceiver(host="R1", fraction=0.25,
                         start_ns=0, duration_ns=units.us(500)),
        ))
        clean, _ = run_scenario_inline(dumbbell_scenario(), 0)
        slowed, _ = run_scenario_inline(dumbbell_scenario(faults=slow), 0)
        assert slowed.flows_bps["feeder"] < 0.8 * clean.flows_bps["feeder"]

    def test_cnp_delay_counter(self, isolated_results):
        # delay-only: every CNP the sender sees must be rescheduled
        plan = FaultPlan(injectors=(CnpImpairment(host="L1", delay_ns=2000),))
        sc = dumbbell_scenario(cc="dcqcn", faults=plan, duration_ns=units.ms(1))
        res, _ = run_scenario_inline(sc, 0)
        assert res.metric("nic.cnp_delayed") >= 1
        assert res.metric("nic.cnp_dropped") == 0

    def test_cnp_drop_counter(self, isolated_results):
        # CNP volume is NP-timer limited (a handful per ms), so use a
        # drop rate high enough that at least one drop is near-certain
        plan = FaultPlan(injectors=(CnpImpairment(host="L1", drop_rate=0.95),))
        sc = dumbbell_scenario(cc="dcqcn", faults=plan, duration_ns=units.ms(1))
        res, _ = run_scenario_inline(sc, 0)
        assert res.metric("nic.cnp_dropped") >= 1

    def test_unresolvable_target_raises(self, isolated_results):
        plan = FaultPlan(injectors=(
            PauseStorm(host="NOPE", start_ns=0, duration_ns=units.us(10)),
        ))
        with pytest.raises(LookupError, match="NOPE"):
            run_scenario_inline(dumbbell_scenario(faults=plan), 0)


class TestPauseStormAcceptance:
    """The scripted storm must collateral-damage the victim (paper §7)."""

    def test_storm_degrades_victim_without_cc(self, isolated_results):
        from repro.experiments.pfc_pathologies import pause_storm_scenario

        clean = pause_storm_scenario(
            "none", duration_ns=units.ms(2), with_storm=False
        )
        stormy = pause_storm_scenario("none", duration_ns=units.ms(2))
        clean_res, _ = run_scenario_inline(clean, 0)
        storm_res, _ = run_scenario_inline(stormy, 0)
        # the cascade reaches the shared trunk...
        assert storm_res.metric("pfc.pause_tx") > 0
        # ...and measurably robs the victim on the shared upstream port
        assert storm_res.flows_bps["victim"] < 0.95 * clean_res.flows_bps["victim"]
        assert storm_res.flows_bps["feeder"] < 0.5 * clean_res.flows_bps["feeder"]
        # the watchdog saw a stall tree, never a cycle
        assert storm_res.metrics["counters"].get("watchdog.cycles", 0) == 0

    def test_dcqcn_shields_the_victim(self, isolated_results):
        from repro.experiments.pfc_pathologies import pause_storm_scenario

        clean = pause_storm_scenario(
            "dcqcn", duration_ns=units.ms(2), warmup_ns=units.ms(1),
            with_storm=False,
        )
        stormy = pause_storm_scenario(
            "dcqcn", duration_ns=units.ms(2), warmup_ns=units.ms(1)
        )
        clean_res, _ = run_scenario_inline(clean, 0)
        storm_res, _ = run_scenario_inline(stormy, 0)
        assert storm_res.flows_bps["victim"] >= 0.9 * clean_res.flows_bps["victim"]


class TestRecoveryMetrics:
    def test_mid_run_storm_populates_resilience_gauges(self, isolated_results):
        plan = FaultPlan(
            injectors=(PauseStorm(
                host="R1", start_ns=units.us(400), duration_ns=units.us(200)
            ),),
        )
        sc = dumbbell_scenario(faults=plan, duration_ns=units.ms(1))
        res, _ = run_scenario_inline(sc, 0)
        gauges = res.metrics["gauges"]
        assert 0.0 <= gauges["fault.goodput_fraction"] < 1.0
        assert gauges["fault.victim_loss_fraction"] > 0.5  # feeder starved
        assert res.metric("fault.recoveries") >= 1
        assert gauges["fault.max_recovery_ns"] > 0


class TestWatchdog:
    def test_find_cycle_on_a_ring(self):
        edges = {"A": {"B"}, "B": {"C"}, "C": {"A"}, "X": {"A"}}
        cycle = DeadlockWatchdog.find_cycle(edges)
        assert sorted(cycle) == ["A", "B", "C"]

    def test_find_cycle_acyclic(self):
        edges = {"A": {"B", "C"}, "B": {"C"}, "C": set()}
        assert DeadlockWatchdog.find_cycle(edges) == []

    def _ring(self, n=4):
        net = Network(seed=0)
        switches = [net.new_switch(f"S{i + 1}") for i in range(n)]
        for i, sw in enumerate(switches):
            net.connect(sw, switches[(i + 1) % n], units.gbps(40), 500)
        return net, switches

    def test_live_scan_flags_a_four_switch_ring(self):
        net, switches = self._ring(4)
        # close the cyclic buffer dependency: each switch's port toward
        # its successor is paused, so S1 waits on S2 waits on ... on S1
        for i, sw in enumerate(switches):
            sw.port_to(switches[(i + 1) % 4]).set_paused(0, True)
        telemetry = Telemetry()
        dog = DeadlockWatchdog(
            net, WatchdogConfig(scan_ns=units.us(10)), telemetry,
            stop_ns=units.us(50),
        )
        net.run_for(units.us(50))
        assert dog.cycles_found >= 1
        assert sorted(dog.last_cycle) == ["S1", "S2", "S3", "S4"]
        snap = telemetry.metrics.snapshot()
        assert snap["counters"]["watchdog.cycles"] == dog.cycles_found
        assert snap["gauges"]["watchdog.max_cycle_len"] == 4

    def test_acyclic_pause_tree_stays_quiet(self):
        net, switches = self._ring(4)
        # a chain S1 -> S2 -> S3 is backpressure, not deadlock
        switches[0].port_to(switches[1]).set_paused(0, True)
        switches[1].port_to(switches[2]).set_paused(0, True)
        dog = DeadlockWatchdog(
            net, WatchdogConfig(scan_ns=units.us(10)), Telemetry(),
            stop_ns=units.us(50),
        )
        net.run_for(units.us(50))
        assert dog.scans >= 4
        assert dog.cycles_found == 0
        assert dog.stalls_flagged == 0

    def test_stall_flagged_when_nothing_progresses(self, isolated_results):
        # the only path is dark for the whole run: flows have backlog,
        # delivered bytes never move, the stall detector must fire once
        plan = FaultPlan(
            injectors=(LinkFlap(
                a="SL", b="SR", start_ns=0, down_ns=units.us(500)
            ),),
            watchdog=WatchdogConfig(scan_ns=units.us(20), stall_ticks=5),
        )
        res, _ = run_scenario_inline(dumbbell_scenario(faults=plan), 0)
        assert res.metric("watchdog.stalls") >= 1
        assert res.metrics["counters"].get("watchdog.cycles", 0) == 0

    def test_no_false_positives_across_the_catalog(
        self, isolated_results, monkeypatch
    ):
        """Armed on every named scenario, the watchdog must stay silent."""
        import repro.experiments.catalog  # noqa: F401  (populates SCENARIOS)
        from repro.runner import SCENARIOS

        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        guard = FaultPlan(watchdog=WatchdogConfig())
        for entry in SCENARIOS:
            sc = dataclasses.replace(SCENARIOS.build(entry.id), faults=guard)
            res, _ = run_scenario_inline(sc, 0)
            counters = res.metrics["counters"]
            assert counters.get("watchdog.cycles", 0) == 0, entry.id
            assert counters.get("watchdog.stalls", 0) == 0, entry.id
            assert counters.get("watchdog.scans", 0) >= 1, entry.id


class TestDeterminism:
    def test_serial_equals_parallel_under_faults(
        self, isolated_results, monkeypatch
    ):
        plan = FaultPlan(
            injectors=(
                PauseStorm(host="R1", start_ns=units.us(100),
                           duration_ns=units.us(150)),
                LinkFlap(a="SL", b="SR", start_ns=units.us(350),
                         down_ns=units.us(50)),
                CnpImpairment(host="L1", drop_rate=0.3, delay_ns=1000,
                              jitter_ns=500),
            ),
            watchdog=WatchdogConfig(),
        )
        sc = dumbbell_scenario(cc="dcqcn", faults=plan, duration_ns=units.ms(1))
        seeds = scale.seeds_for(4)
        monkeypatch.setenv(cache.CACHE_ENV, "off")
        monkeypatch.setenv(executor.JOBS_ENV, "1")
        serial = run_scenario(sc, seeds)
        monkeypatch.setenv(executor.JOBS_ENV, "4")
        parallel = run_scenario(sc, seeds)
        assert [dataclasses.asdict(r) for r in serial] == [
            dataclasses.asdict(r) for r in parallel
        ]

    def test_fault_runs_hit_the_cache(self, isolated_results, monkeypatch):
        sc = dumbbell_scenario(faults=storm_plan())
        first = run_scenario(sc, [3])
        second = run_scenario(sc, [3])
        assert dataclasses.asdict(first[0]) == dataclasses.asdict(second[0])


class TestFlowFailureRegression:
    """A QP that exhausts max_rto_retries must fail loudly (telemetry)."""

    def test_retry_exhaustion_emits_event_and_counter(self, isolated_results):
        from repro.sim.nic import NicConfig
        from repro.telemetry import NIC_FLOW_FAILED, TelemetrySpec

        plan = FaultPlan(injectors=(
            ErrorBurst(a="S1", b="H2", rate=0.99, start_ns=0,
                       duration_ns=units.us(500)),
        ))
        sc = Scenario(
            topology="single_switch",
            topology_kwargs={
                "n_hosts": 2,
                "nic_config": NicConfig(
                    rto_ns=units.us(20), max_rto_retries=2
                ),
            },
            flows=(FlowSpec(name="doomed", src="H1", dst="H2", cc="none"),),
            duration_ns=units.us(500),
            label="rto-exhaustion",
            telemetry=TelemetrySpec(trace="cc", sink="ring"),
            faults=plan,
        )
        telemetry = Telemetry.from_spec(sc.telemetry, seed=0)
        res, _ = run_scenario_inline(sc, 0, telemetry=telemetry)
        assert res.metric("nic.flows_failed") == 1
        assert telemetry.trace_counts().get(NIC_FLOW_FAILED, 0) == 1
        # a failed QP stops retransmitting: goodput flatlines
        assert res.flows_bps["doomed"] < units.gbps(1)
