"""The example scripts stay runnable.

Each example is compiled and its entry module imported; the cheapest
(quickstart) is executed end to end with a shortened duration.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # quickstart + at least two scenarios


def test_quickstart_runs_end_to_end(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES[0].parent / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "bottleneck queue peak" in result.stdout
    assert "PFC PAUSE frames sent by the switch: 0" in result.stdout
