"""Trace/result helper objects in the fluid package."""

import numpy as np
import pytest

from repro import units
from repro.fluid.model import FluidParams, simulate
from repro.fluid.sweep import SweepResult, convergence_metric, sweep_timer


@pytest.fixture(scope="module")
def short_trace():
    return simulate(FluidParams(num_flows=2), duration_s=0.004, dt_s=2e-6)


class TestFluidTrace:
    def test_flow_rate_gbps(self, short_trace):
        series = short_trace.flow_rate_gbps(0)
        assert len(series) == len(short_trace.times_s)
        assert series[0] == pytest.approx(40.0)

    def test_queue_kb(self, short_trace):
        assert np.all(short_trace.queue_kb() >= 0)

    def test_final_rates_shape(self, short_trace):
        assert short_trace.final_rates_bps().shape == (1, 2)

    def test_times_monotone(self, short_trace):
        assert np.all(np.diff(short_trace.times_s) > 0)

    def test_alpha_within_unit_interval(self, short_trace):
        assert np.all(short_trace.alpha >= 0)
        assert np.all(short_trace.alpha <= 1)


class TestSweepResultHelpers:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_timer(values_s=(1.5e-3, 55e-6), duration_s=0.03)

    def test_final_diff_length(self, sweep):
        assert len(sweep.final_diff_gbps()) == 2

    def test_tail_fraction_changes_window(self, sweep):
        narrow = sweep.final_diff_gbps(tail_fraction=0.1)
        wide = sweep.final_diff_gbps(tail_fraction=0.9)
        assert narrow.shape == wide.shape

    def test_best_value_among_inputs(self, sweep):
        assert sweep.best_value() in sweep.values

    def test_convergence_metric_shape(self, sweep):
        metric = convergence_metric(sweep.trace)
        assert metric.shape == (len(sweep.times_s), 2)
        assert np.all(metric >= 0)

    def test_parameter_recorded(self, sweep):
        assert sweep.parameter == "timer_s"
