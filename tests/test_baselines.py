"""DCTCP and QCN baseline transports."""

import pytest

from repro import units
from repro.baselines.dctcp import DctcpFlow, add_dctcp_flow
from repro.baselines.qcn import (
    QCN_FB_LEVELS,
    QcnReactionPoint,
    QcnSwitch,
    add_qcn_flow,
)
from repro.core.params import DCQCNParams
from repro.engine import EventScheduler
from repro.sim.network import Network
from repro.sim.switch import SwitchConfig
from repro.sim.topology import single_switch


def dctcp_net(n_hosts=5, threshold=units.kb(160)):
    config = SwitchConfig(
        marking=DCQCNParams.deployed().with_cutoff_marking(threshold)
    )
    return single_switch(n_hosts, switch_config=config, seed=9)


class TestDctcpFlow:
    def test_window_gates_transmission(self):
        net, _, hosts = dctcp_net(3)
        flow = add_dctcp_flow(net, hosts[0], hosts[1], initial_cwnd_pkts=4)
        flow.set_greedy()
        # the first ACK cannot return within one RTT (~1.4 us here)
        net.run_for(units.ns(900))
        assert flow.next_seq <= 4

    def test_slow_start_grows_window(self):
        net, _, hosts = dctcp_net(3)
        flow = add_dctcp_flow(net, hosts[0], hosts[1], initial_cwnd_pkts=4)
        flow.set_greedy()
        net.run_for(units.ms(1))
        assert flow.cwnd_pkts > 4

    def test_saturates_uncongested_link(self):
        net, _, hosts = dctcp_net(3)
        flow = add_dctcp_flow(net, hosts[0], hosts[1])
        flow.set_greedy()
        net.run_for(units.ms(10))
        rate = flow.bytes_delivered * 8e9 / units.ms(10)
        assert rate > units.gbps(30)

    def test_marks_cut_window(self):
        net, switch, hosts = dctcp_net(6)
        receiver = hosts[-1]
        flows = [add_dctcp_flow(net, h, receiver) for h in hosts[:5]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(10))
        assert switch.marked_packets > 0
        assert all(f.dctcp_alpha > 0 for f in flows)
        assert all(not f.in_slow_start for f in flows)

    def test_incast_fair_and_bounded_queue(self):
        net, switch, hosts = dctcp_net(6)
        receiver = hosts[-1]
        flows = [add_dctcp_flow(net, h, receiver) for h in hosts[:5]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(15))
        rates = [f.bytes_delivered * 8e9 / units.ms(15) for f in flows]
        assert min(rates) > units.gbps(3)  # fair-ish at 8 G shares
        assert sum(rates) > units.gbps(34)

    def test_validation(self):
        net, _, hosts = dctcp_net(3)
        with pytest.raises(ValueError):
            DctcpFlow(0, hosts[0], hosts[1], initial_cwnd_pkts=0)
        with pytest.raises(ValueError):
            DctcpFlow(0, hosts[0], hosts[1], g=0)


class TestQcnReactionPoint:
    def test_feedback_cuts_rate(self):
        engine = EventScheduler()
        rp = QcnReactionPoint(
            engine,
            DCQCNParams.strawman(),
            units.gbps(40),
        )
        rp.on_feedback(32)
        assert rp.rc_bps == pytest.approx(units.gbps(40) * (1 - 0.25))
        assert rp.rt_bps == units.gbps(40)

    def test_max_feedback_halves(self):
        engine = EventScheduler()
        rp = QcnReactionPoint(engine, DCQCNParams.strawman(), units.gbps(40))
        rp.on_feedback(QCN_FB_LEVELS)  # saturating
        assert rp.rc_bps == pytest.approx(units.gbps(20))

    def test_zero_feedback_ignored(self):
        engine = EventScheduler()
        rp = QcnReactionPoint(engine, DCQCNParams.strawman(), units.gbps(40))
        rp.on_feedback(0)
        assert rp.rc_bps == units.gbps(40)

    def test_cnp_rejected(self):
        engine = EventScheduler()
        rp = QcnReactionPoint(engine, DCQCNParams.strawman(), units.gbps(40))
        with pytest.raises(TypeError):
            rp.on_cnp()


def qcn_net(n_hosts):
    params = DCQCNParams.deployed()
    net = Network(seed=13, dcqcn_params=params)
    switch = QcnSwitch(
        net.engine, net._device_id(), "S", config=SwitchConfig(marking=params)
    )
    net.switches.append(switch)
    hosts = []
    for index in range(n_hosts):
        host = net.new_host(f"H{index}")
        net.connect(host, switch)
        hosts.append(host)
    net.build_routes()
    return net, switch, hosts


class TestQcnEndToEnd:
    def test_congestion_generates_feedback(self):
        net, switch, hosts = qcn_net(5)
        receiver = hosts[-1]
        flows = [add_qcn_flow(net, h, receiver) for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        assert switch.qcn_feedback_sent > 0
        assert all(f.rate_bps < units.gbps(40) for f in flows)

    def test_no_feedback_without_congestion(self):
        net, switch, hosts = qcn_net(3)
        flow = add_qcn_flow(net, hosts[0], hosts[1])
        flow.set_greedy()
        net.run_for(units.ms(3))
        assert switch.qcn_feedback_sent == 0

    def test_improves_fairness_over_pfc_only(self):
        """QCN is a *working* L2 congestion control — the paper's issue
        is deployability on L3 fabrics, not the control law."""
        from repro.analysis.stats import jain_fairness

        net, switch, hosts = qcn_net(5)
        receiver = hosts[-1]
        flows = [add_qcn_flow(net, h, receiver) for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(60))
        # measure fairness over the second half (QCN's strawman-speed
        # increase timers converge slowly)
        before = [f.bytes_delivered for f in flows]
        net.run_for(units.ms(60))
        rates = [f.bytes_delivered - b for f, b in zip(flows, before)]
        assert jain_fairness(rates) > 0.8
