"""The unified scenario/runner layer (executor, cache, scenarios, registry)."""

import json
import os
import time

import pytest

from repro import units
from repro.cli import main
from repro.core.params import DCQCNParams
from repro.runner import (
    Cell,
    ExperimentRegistry,
    FlowSpec,
    REGISTRY,
    RunResult,
    Scenario,
    SweepPoint,
    SweepResult,
    execute,
    run_scenario,
)
from repro.runner import cache, executor, scale
from repro.runner.scenario import decode_value, encode_value

#: a cheap, importable, pure cell function for executor plumbing tests
SEEDS_FN = "repro.runner.scale:seeds_for"


@pytest.fixture
def isolated_results(tmp_path, monkeypatch):
    """Point the cache at a fresh directory and clear stale env knobs."""
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    monkeypatch.delenv(executor.JOBS_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    monkeypatch.delenv(scale.SCALE_ENV, raising=False)
    return tmp_path


class TestScale:
    def test_smoke_scale(self, monkeypatch):
        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        assert scale.scale() == "smoke"
        assert scale.pick(1, 2, 3) == 3

    def test_smoke_falls_back_to_quick(self, monkeypatch):
        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        assert scale.pick(1, 2) == 1

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv(scale.SCALE_ENV, "enormous")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale.scale()

    def test_seeds_are_deterministic_and_distinct(self):
        seeds = scale.seeds_for(10)
        assert seeds == scale.seeds_for(10)
        assert len(set(seeds)) == 10
        assert scale.seeds_for(3, base=2000)[0] == 2000


class TestExecutor:
    def test_results_in_input_order(self, isolated_results):
        cells = [
            Cell(SEEDS_FN, {"repetitions": n, "base": 10 * n}) for n in (3, 1, 2)
        ]
        assert execute(cells, jobs=1) == [
            scale.seeds_for(3, base=30),
            scale.seeds_for(1, base=10),
            scale.seeds_for(2, base=20),
        ]

    def test_parallel_matches_serial(self, isolated_results):
        cells = [Cell(SEEDS_FN, {"repetitions": n}) for n in range(1, 6)]
        serial = execute(cells, jobs=1, cache=False)
        parallel = execute(cells, jobs=4, cache=False)
        assert serial == parallel

    def test_default_jobs_parsing(self, monkeypatch):
        monkeypatch.delenv(executor.JOBS_ENV, raising=False)
        assert executor.default_jobs() == 1
        monkeypatch.setenv(executor.JOBS_ENV, "3")
        assert executor.default_jobs() == 3
        monkeypatch.setenv(executor.JOBS_ENV, "auto")
        assert executor.default_jobs() == (os.cpu_count() or 1)
        for bad in ("0", "-2", "many"):
            monkeypatch.setenv(executor.JOBS_ENV, bad)
            with pytest.raises(ValueError, match="REPRO_JOBS"):
                executor.default_jobs()

    def test_bad_fn_path_rejected(self):
        with pytest.raises(ValueError, match="package.module:function"):
            executor.resolve("no-colon-here")

    def test_missing_function_propagates(self, isolated_results):
        with pytest.raises(AttributeError):
            execute([Cell("repro.runner.scale:no_such_fn", {})])

    def test_stats_account_for_cache_hits(self, isolated_results):
        cells = [Cell(SEEDS_FN, {"repetitions": n}) for n in (2, 4)]
        execute(cells)
        assert executor.LAST_STATS.computed == 2
        assert executor.LAST_STATS.cached == 0
        execute(cells)
        assert executor.LAST_STATS.computed == 0
        assert executor.LAST_STATS.cached == 2
        assert executor.LAST_STATS.total == 2


class TestCache:
    def test_round_trip(self, isolated_results):
        cache.store("m:f", {"a": 1}, {"x": [1.5, 2]})
        assert cache.load("m:f", {"a": 1}) == {"x": [1.5, 2]}
        assert cache.load("m:f", {"a": 2}) is cache.MISS

    def test_corrupt_entry_is_a_miss(self, isolated_results):
        path = cache.store("m:f", {"a": 1}, 42)
        path.write_text("not json{")
        assert cache.load("m:f", {"a": 1}) is cache.MISS

    def test_cache_off_recomputes(self, isolated_results, monkeypatch):
        cells = [Cell(SEEDS_FN, {"repetitions": 2})]
        execute(cells)
        monkeypatch.setenv(cache.CACHE_ENV, "off")
        execute(cells)
        assert executor.LAST_STATS.computed == 1

    def test_invalid_cache_env_rejected(self, monkeypatch):
        monkeypatch.setenv(cache.CACHE_ENV, "maybe")
        with pytest.raises(ValueError, match="REPRO_CACHE"):
            cache.enabled()


class TestScenario:
    def scenario(self):
        return Scenario(
            topology="single_switch",
            flows=(
                FlowSpec(name="f1", src="0", dst="-1", cc="dcqcn"),
                FlowSpec(name="f2", src="1", dst="-1"),
            ),
            warmup_ns=units.ms(1),
            duration_ns=units.ms(2),
            topology_kwargs={"n_hosts": 3},
            label="test",
        )

    def test_spec_round_trips_through_json(self):
        scenario = self.scenario()
        spec = json.loads(json.dumps(scenario.spec()))
        rebuilt = Scenario.from_spec(spec)
        assert rebuilt.flows == scenario.flows
        assert rebuilt.duration_ns == scenario.duration_ns
        assert dict(rebuilt.topology_kwargs) == dict(scenario.topology_kwargs)

    def test_config_objects_encode(self):
        params = DCQCNParams.deployed()
        decoded = decode_value(json.loads(json.dumps(encode_value(params))))
        assert decoded == params

    def test_unencodable_value_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown topology"):
            Scenario(topology="torus", flows=(FlowSpec("f", "0", "1"),))
        with pytest.raises(ValueError, match="at least one flow"):
            Scenario(topology="single_switch", flows=())
        with pytest.raises(ValueError, match="unique"):
            Scenario(
                topology="single_switch",
                flows=(FlowSpec("f", "0", "1"), FlowSpec("f", "1", "2")),
            )

    def test_run_scenario_returns_run_results(self, isolated_results):
        runs = run_scenario(self.scenario(), seeds=[1, 2])
        assert [run.seed for run in runs] == [1, 2]
        for run in runs:
            assert set(run.flows_bps) == {"f1", "f2"}
            assert run.flows_bps["f1"] > 0
            assert "pause_frames" in run.counters
        assert "f1" in runs[0].table()


class TestResultsSchema:
    def test_sweep_round_trip(self):
        sweep = SweepResult(
            parameter="k",
            points=[
                SweepPoint(
                    value=2,
                    runs=[
                        RunResult(
                            label="x", seed=1, warmup_ns=0, duration_ns=10,
                            flows_bps={"f": 1e9},
                        )
                    ],
                )
            ],
        )
        rebuilt = SweepResult.from_json(json.loads(json.dumps(sweep.to_json())))
        assert rebuilt == sweep
        assert rebuilt.values == [2]
        assert rebuilt.point(2).flow_samples("f") == [1e9]
        with pytest.raises(KeyError):
            rebuilt.point(3)


class TestRegistry:
    def test_duplicate_id_rejected(self):
        registry = ExperimentRegistry()
        registry.register("x", "first")(lambda: "a")
        with pytest.raises(ValueError, match="duplicate"):
            registry.register("x", "again")(lambda: "b")

    def test_get_unknown_lists_known(self):
        registry = ExperimentRegistry()
        registry.register("fig99", "test")(lambda: "t")
        with pytest.raises(KeyError, match="fig99"):
            registry.get("nope")

    def test_global_registry_is_populated(self):
        assert "fig03" in REGISTRY
        assert "tab14" in REGISTRY
        assert len(REGISTRY) >= 19
        ids = [exp.id for exp in REGISTRY]
        assert ids == sorted(ids)

    def test_commands_compat_view(self):
        from repro.cli import COMMANDS

        assert set(COMMANDS) == set(REGISTRY.ids())
        runner, blurb = COMMANDS["tab14"]
        assert callable(runner) and isinstance(blurb, str)


class TestEndToEnd:
    def test_fig03_identical_serial_and_parallel(
        self, isolated_results, monkeypatch, capsys
    ):
        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        monkeypatch.setenv(cache.CACHE_ENV, "off")
        outputs = []
        for jobs in ("1", "4"):
            monkeypatch.setenv(executor.JOBS_ENV, jobs)
            assert main(["fig03"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_second_invocation_is_fully_cached(
        self, isolated_results, monkeypatch, capsys
    ):
        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        assert main(["fig03"]) == 0
        first = capsys.readouterr().out
        assert executor.LAST_STATS.computed > 0
        assert main(["fig03"]) == 0
        second = capsys.readouterr().out
        assert executor.LAST_STATS.computed == 0
        assert executor.LAST_STATS.cached == executor.LAST_STATS.total > 0
        assert first == second


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup measurement needs >= 4 cores"
)
def test_parallel_speedup(isolated_results):
    """REPRO_JOBS=4 must cut wall-clock by >= 2x on 8 independent cells."""
    scenario = Scenario(
        topology="single_switch",
        flows=(
            FlowSpec(name="f1", src="0", dst="-1", cc="dcqcn"),
            FlowSpec(name="f2", src="1", dst="-1", cc="dcqcn"),
        ),
        duration_ns=units.ms(20),
        topology_kwargs={"n_hosts": 3},
        label="speedup",
    )
    seeds = scale.seeds_for(8)

    start = time.perf_counter()
    serial = run_scenario(scenario, seeds, jobs=1, cache=False)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_scenario(scenario, seeds, jobs=4, cache=False)
    parallel_s = time.perf_counter() - start

    assert serial == parallel
    assert serial_s / parallel_s >= 2.0, (
        f"serial {serial_s:.2f}s vs parallel {parallel_s:.2f}s"
    )
