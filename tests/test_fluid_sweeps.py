"""Parameter sweeps (§5.2) and the DCTCP fluid baseline."""

import numpy as np
import pytest

from repro import units
from repro.fluid.dctcp import DctcpFluidParams, simulate_dctcp
from repro.fluid.sweep import (
    convergence_metric,
    sweep_byte_counter,
    sweep_g_queue,
    sweep_kmax,
    sweep_pmax,
    sweep_timer,
)

DURATION = 0.06  # seconds; enough to separate converging configs


class TestTimerSweep:
    def test_fast_timer_beats_strawman(self):
        """Figure 11(b): 55 us converges, 1.5 ms does not."""
        result = sweep_timer(values_s=(1.5e-3, 55e-6), duration_s=DURATION)
        diffs = result.final_diff_gbps()
        assert diffs[1] < diffs[0] / 3

    def test_best_value_is_fastest_timer(self):
        result = sweep_timer(duration_s=DURATION)
        assert result.best_value() == pytest.approx(55e-6)

    def test_surface_shape(self):
        result = sweep_timer(values_s=(1e-3, 1e-4), duration_s=0.02)
        assert result.rate_diff_gbps.shape == (len(result.times_s), 2)


class TestByteCounterSweep:
    def test_slower_byte_counter_helps(self):
        """Figure 11(a): slowing the byte counter reduces the gap."""
        result = sweep_byte_counter(
            values_bytes=(units.kb(150), units.mb(10)), duration_s=DURATION
        )
        diffs = result.final_diff_gbps()
        assert diffs[1] < diffs[0]

    def test_still_not_converged_without_fast_timer(self):
        """...but the byte counter alone cannot fix convergence."""
        result = sweep_byte_counter(
            values_bytes=(units.mb(10),), duration_s=DURATION
        )
        assert result.final_diff_gbps()[0] > units.gbps(10) / 1e9


class TestMarkingSweeps:
    def test_probabilistic_marking_beats_cutoff(self):
        """Figure 11(d): Pmax well below 1 improves convergence."""
        result = sweep_pmax(values=(1.0, 0.1), duration_s=DURATION)
        diffs = result.final_diff_gbps()
        assert diffs[1] < diffs[0]

    def test_kmax_sweep_runs(self):
        result = sweep_kmax(
            values_bytes=(units.kb(40), units.kb(200)), duration_s=0.02
        )
        assert len(result.final_diff_gbps()) == 2

    def test_convergence_metric_nonnegative(self):
        result = sweep_pmax(values=(0.5,), duration_s=0.01)
        assert np.all(result.rate_diff_gbps >= 0)


class TestGQueueSweep:
    def test_small_g_lowers_queue_variation(self):
        """Figure 12: g = 1/256 gives a steadier queue than 1/16."""
        result = sweep_g_queue(
            g_values=(1 / 16, 1 / 256), incast_degree=2, duration_s=0.1
        )
        stds = result.queue_stddev_kb()
        assert stds[1] <= stds[0]

    def test_degree_raises_queue(self):
        small = sweep_g_queue(g_values=(1 / 256,), incast_degree=2, duration_s=0.05)
        large = sweep_g_queue(g_values=(1 / 256,), incast_degree=16, duration_s=0.05)
        assert large.steady_queue_kb()[0] > small.steady_queue_kb()[0]


class TestDctcpFluid:
    def test_queue_rides_at_marking_threshold(self):
        """DCTCP holds the queue near K — the Figure 19 contrast."""
        params = DctcpFluidParams()
        trace = simulate_dctcp(params, duration_s=0.08)
        steady = trace.steady_queue_bytes()
        assert steady.mean() == pytest.approx(
            params.marking_threshold_bytes, rel=0.3
        )

    def test_queue_scales_with_threshold(self):
        low = simulate_dctcp(
            DctcpFluidParams(marking_threshold_bytes=units.kb(40)), duration_s=0.05
        )
        high = simulate_dctcp(
            DctcpFluidParams(marking_threshold_bytes=units.kb(160)), duration_s=0.05
        )
        assert high.steady_queue_bytes().mean() > low.steady_queue_bytes().mean()

    def test_window_positive(self):
        trace = simulate_dctcp(DctcpFluidParams(), duration_s=0.02)
        assert np.all(trace.window_pkts >= 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DctcpFluidParams(num_flows=0)
        with pytest.raises(ValueError):
            simulate_dctcp(DctcpFluidParams(), duration_s=-1)
