"""Experiment modules: small-scale smoke runs of every paper figure.

These use deliberately tiny durations — full-scale runs live in
``benchmarks/``; here we verify wiring, result structure and the
direction of each effect.
"""

import pytest

from repro import units
from repro.experiments import common
from repro.experiments.benchmark_traffic import (
    RESULT_HEADERS,
    VARIANTS,
    run_benchmark_traffic,
    variant_setup,
)
from repro.experiments.buffer_settings import (
    run_ecn_before_pfc_check,
    section4_table,
)
from repro.experiments.fluid_validation import (
    FIG13_CONFIGS,
    run_fluid_vs_sim,
    run_two_flow_validation,
)
from repro.experiments.latency import run_queue_comparison
from repro.experiments.microbench import run_incast_utilization
from repro.experiments.multibottleneck import run_parking_lot
from repro.experiments.pfc_pathologies import run_unfairness, run_victim_flow
from repro.experiments.qcn_ablation import run_single_switch_fairness
from repro.experiments.sweeps import fig11_table, run_fig11_panel, run_fig12
from repro.runner import scale


class TestCommon:
    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv(common.SCALE_ENV, raising=False)
        assert common.scale() == "quick"
        assert scale.pick(1, 2) == 1

    def test_scale_full(self, monkeypatch):
        monkeypatch.setenv(common.SCALE_ENV, "full")
        assert scale.pick(1, 2) == 2

    def test_shims_removed(self):
        # the PR-1 deprecation aliases are gone; repro.runner.scale is
        # the one true home of the scale/seed policy
        assert not hasattr(common, "pick")
        assert not hasattr(common, "seeds_for")

    def test_scale_invalid(self, monkeypatch):
        monkeypatch.setenv(common.SCALE_ENV, "enormous")
        with pytest.raises(ValueError):
            common.scale()

    def test_format_table(self):
        table = common.format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_write_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = common.write_result("probe", "hello")
        assert path.read_text() == "hello\n"

    def test_seeds_are_distinct(self):
        seeds = scale.seeds_for(10)
        assert len(set(seeds)) == 10


class TestPfcPathologies:
    def test_unfairness_structure(self):
        result = run_unfairness(
            "none", repetitions=1, duration_ns=units.ms(3)
        )
        assert set(result.throughputs_bps) == {"H1", "H2", "H3", "H4"}
        assert "H4" in result.table()

    def test_h4_advantage_without_dcqcn(self):
        result = run_unfairness("none", repetitions=2, duration_ns=units.ms(4))
        _, h4_median, _ = result.stats_gbps("H4")
        others = [result.stats_gbps(h)[1] for h in ("H1", "H2", "H3")]
        assert h4_median > min(others)

    def test_victim_flow_structure(self):
        result = run_victim_flow(
            "none", t3_sender_counts=(0, 2), repetitions=1,
            duration_ns=units.ms(3),
        )
        assert set(result.victim_bps) == {0, 2}
        assert result.median_gbps(0) > 0


class TestFluidValidation:
    def test_fluid_vs_sim_correlate(self):
        result = run_fluid_vs_sim(
            duration_ns=units.ms(40), second_start_ns=units.ms(5)
        )
        assert result.correlation() > 0.6
        assert result.normalized_rmse() < 0.5
        assert "sim Gbps" in result.table()

    def test_all_fig13_configs_run(self):
        for name in FIG13_CONFIGS:
            result = run_two_flow_validation(name, duration_ns=units.ms(10))
            assert result.rate_gap_gbps >= 0

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            run_two_flow_validation("bogus")

    def test_deployed_beats_strawman(self):
        strawman = run_two_flow_validation("strawman", duration_ns=units.ms(40))
        deployed = run_two_flow_validation("deployed", duration_ns=units.ms(40))
        assert deployed.rate_gap_gbps < strawman.rate_gap_gbps


class TestSweepWrappers:
    def test_fig11_panel(self):
        result = run_fig11_panel("timer", duration_s=0.02)
        assert len(result.values) == 5
        assert "steady" in fig11_table("timer", result)

    def test_unknown_panel(self):
        with pytest.raises(ValueError):
            run_fig11_panel("jitter")

    def test_fig12(self):
        result = run_fig12(degrees=(2,), duration_s=0.02)
        assert "2:1" in result.table()


class TestBenchmarkTraffic:
    def test_variant_setups(self):
        for variant in VARIANTS:
            cc, config = variant_setup(variant)
            assert cc in ("none", "dcqcn")
        assert variant_setup("dcqcn_no_pfc")[1].pfc_mode == "off"
        assert variant_setup("dcqcn_misconfigured")[1].pfc_mode == "static"

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_setup("tcp")

    def test_result_row_matches_headers(self):
        result = run_benchmark_traffic(
            "dcqcn", incast_degree=2, n_pairs=4, repetitions=1,
            warmup_ns=units.ms(1), measure_ns=units.ms(2), hosts_per_tor=2,
        )
        assert len(result.row()) == len(RESULT_HEADERS)
        assert result.incast_median_gbps() > 0
        assert result.user_p10_gbps() >= 0


class TestLatencyAndParkingLot:
    def test_queue_comparison_direction(self):
        dcqcn = run_queue_comparison(
            "dcqcn", warmup_ns=units.ms(5), measure_ns=units.ms(5)
        )
        dctcp = run_queue_comparison(
            "dctcp", warmup_ns=units.ms(5), measure_ns=units.ms(5)
        )
        assert dcqcn.percentile_kb(90) < dctcp.percentile_kb(90)

    def test_queue_comparison_validates_protocol(self):
        with pytest.raises(ValueError):
            run_queue_comparison("cubic")

    def test_parking_lot_red_helps_f2(self):
        cutoff = run_parking_lot(
            "cutoff", warmup_ns=units.ms(10), measure_ns=units.ms(8)
        )
        red = run_parking_lot(
            "red", warmup_ns=units.ms(10), measure_ns=units.ms(8)
        )
        assert red.flow_gbps["f2"] > cutoff.flow_gbps["f2"]
        assert red.two_bottleneck_share > cutoff.two_bottleneck_share

    def test_parking_lot_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_parking_lot("blue")


class TestMicrobenchAndBuffers:
    def test_incast_utilization(self):
        result = run_incast_utilization(
            2, warmup_ns=units.ms(20), measure_ns=units.ms(10)
        )
        assert result.total_goodput_gbps > 36
        assert result.pause_frames == 0

    def test_incast_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            run_incast_utilization(0)

    def test_section4_table_contains_paper_numbers(self):
        table = section4_table()
        assert "24.48 KB" in table
        assert "21.76 KB" in table
        assert "True" in table

    def test_ecn_before_pfc_check(self):
        good = run_ecn_before_pfc_check(
            misconfigured=False, duration_ns=units.ms(4)
        )
        bad = run_ecn_before_pfc_check(
            misconfigured=True, duration_ns=units.ms(4)
        )
        assert good.ecn_first
        assert not bad.ecn_first
        assert bad.pause_frames > 0


class TestQcnAblation:
    def test_all_schemes_run(self):
        for scheme in ("none", "qcn", "dcqcn"):
            result = run_single_switch_fairness(
                scheme, warmup_ns=units.ms(3), measure_ns=units.ms(3)
            )
            assert result.total_gbps > 0
            assert 0 < result.fairness <= 1

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            run_single_switch_fairness("timely")
