"""repro.shard: partitioner, sharding spec, codec, barrier schedule."""

import pytest

from repro import units
from repro.fabric import build_fabric
from repro.runner.scenario import FlowSpec, Scenario
from repro.shard import (
    SHARDS_ENV,
    ShardingSpec,
    barrier_schedule,
    can_shard,
    effective_shards,
    partition_fabric,
)
from repro.shard.boundary import decode_packet, encode_packet
from repro.sim.packet import Packet


def _fabric(seed=0, **kwargs):
    kwargs.setdefault("kind", "fat_tree")
    return build_fabric(seed=seed, **kwargs)


def _assert_plan_well_formed(fabric, plan):
    # every device in exactly one shard
    names = {sw.name for sw in fabric.net.switches}
    names |= {h.name for h in fabric.net.hosts}
    names |= {h.nic.name for h in fabric.net.hosts}
    assert set(plan.owner) == names
    assert all(0 <= s < plan.shards for s in plan.owner.values())
    partition = [plan.local_names(s) for s in range(plan.shards)]
    assert sorted(n for part in partition for n in part) == sorted(names)

    # every cross-shard link is agg<->core (pods only meet at the core)
    cores = {c.name for c in fabric.cores}
    aggs = {a.name for a in fabric.aggs}
    for channel in plan.channels:
        endpoints = {channel.tx_dev, channel.rx_dev}
        assert endpoints & cores, f"boundary {endpoints} misses the core tier"
        assert endpoints & aggs, f"boundary {endpoints} misses the agg tier"
        assert plan.owner[channel.tx_dev] == channel.tx_shard
        assert plan.owner[channel.rx_dev] == channel.rx_shard
        assert channel.tx_shard != channel.rx_shard
        assert channel.prop_delay_ns >= plan.lookahead_ns

    assert plan.lookahead_ns > 0


class TestPartition:
    def test_k4_two_shards(self):
        fabric = _fabric(k=4)
        plan = partition_fabric(fabric, 2)
        _assert_plan_well_formed(fabric, plan)
        # pods alternate: pod p -> shard p % 2
        assert plan.owner["p0e0"] == 0
        assert plan.owner["p1e0"] == 1
        assert plan.owner["p2a1"] == 0
        assert plan.owner["p3e1h0"] == 1
        # cores round-robin
        assert [plan.owner[f"c{i}"] for i in range(4)] == [0, 1, 0, 1]

    def test_k8_four_shards(self):
        fabric = _fabric(k=8)
        plan = partition_fabric(fabric, 4)
        _assert_plan_well_formed(fabric, plan)

    def test_oversubscribed_clos(self):
        fabric = _fabric(
            kind="clos",
            pods=4,
            tors_per_pod=2,
            leaves_per_pod=2,
            spines=2,
            hosts_per_tor=4,
        )
        assert fabric.spec.oversubscription() > 1.0
        plan = partition_fabric(fabric, 3)
        _assert_plan_well_formed(fabric, plan)

    def test_hosts_follow_their_edge(self):
        fabric = _fabric(k=4)
        plan = partition_fabric(fabric, 2)
        for rack, edge in zip(fabric.hosts, fabric.edges):
            for host in rack:
                assert plan.owner[host.name] == plan.owner[edge.name]
                assert plan.owner[host.nic.name] == plan.owner[edge.name]

    def test_single_shard_has_no_boundary(self):
        plan = partition_fabric(_fabric(k=4), 1)
        assert plan.channels == ()
        assert plan.lookahead_ns == 0

    def test_more_shards_than_pods(self):
        fabric = _fabric(k=4)
        plan = partition_fabric(fabric, 6)  # 4 pods, 4 cores
        assert set(plan.owner.values()) <= set(range(6))
        _assert_plan_well_formed(fabric, plan)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            partition_fabric(_fabric(k=4), 0)

    def test_channel_ids_are_dense_and_stable(self):
        plan_a = partition_fabric(_fabric(k=4), 2)
        plan_b = partition_fabric(_fabric(k=4), 2)
        assert [c.channel_id for c in plan_a.channels] == list(
            range(len(plan_a.channels))
        )
        assert plan_a == plan_b


class TestShardingSpec:
    def test_defaults_are_serial(self):
        spec = ShardingSpec()
        assert spec.shards == 1 and spec.window_ns is None

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ShardingSpec(shards=0)
        with pytest.raises(ValueError):
            ShardingSpec(shards=2, window_ns=0)

    def test_scenario_spec_round_trip(self):
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(FlowSpec(name="f0", src="0:0:0", dst="1:0:0"),),
            sharding=ShardingSpec(shards=2, window_ns=250),
        )
        assert Scenario.from_spec(scenario.spec()) == scenario

    def test_no_sharding_key_when_unset(self):
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(FlowSpec(name="f0", src="0:0:0", dst="1:0:0"),),
        )
        # absent, not null: adding the field must not shift the content
        # hash of every pre-existing cached cell
        assert "sharding" not in scenario.spec()

    def test_scenario_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Scenario(
                topology="fabric",
                topology_kwargs={"k": 4},
                flows=(FlowSpec(name="f0", src="0:0:0", dst="1:0:0"),),
                sharding={"shards": 2},
            )


class TestDispatch:
    def test_non_fabric_cannot_shard(self):
        scenario = Scenario(
            topology="single_switch",
            flows=(FlowSpec(name="f0", src="0", dst="1"),),
        )
        assert not can_shard(scenario)

    def test_effective_shards_env(self, monkeypatch):
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(FlowSpec(name="f0", src="0:0:0", dst="1:0:0"),),
        )
        monkeypatch.delenv(SHARDS_ENV, raising=False)
        assert effective_shards(scenario) == 1
        monkeypatch.setenv(SHARDS_ENV, "3")
        assert effective_shards(scenario) == 3
        # an embedded spec wins over the environment
        sharded = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=scenario.flows,
            sharding=ShardingSpec(shards=2),
        )
        assert effective_shards(sharded) == 2

    def test_effective_shards_rejects_junk(self, monkeypatch):
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"k": 4},
            flows=(FlowSpec(name="f0", src="0:0:0", dst="1:0:0"),),
        )
        monkeypatch.setenv(SHARDS_ENV, "many")
        with pytest.raises(ValueError, match=SHARDS_ENV):
            effective_shards(scenario)

    def test_non_fabric_run_stays_serial(self, monkeypatch):
        from repro.runner.scenario import run_scenario_inline

        monkeypatch.setenv(SHARDS_ENV, "2")
        scenario = Scenario(
            topology="single_switch",
            topology_kwargs={"n_hosts": 2},
            flows=(FlowSpec(name="f0", src="0", dst="1"),),
            duration_ns=units.us(50),
        )
        result, net = run_scenario_inline(scenario, 0)
        assert net is not None  # serial path returns the live network
        assert "shard.count" not in result.metrics["gauges"]


class TestPacketCodec:
    def test_round_trip(self):
        pkt = Packet(
            kind=1,
            flow_id=7,
            src=3,
            dst=12,
            size=1000,
            seq=42,
            priority=3,
            ecn=1,
            msg_id=2,
            pause_priority=1,
            pause=True,
            qcn_fb=5,
        )
        clone = decode_packet(encode_packet(pkt))
        for name in (
            "kind", "flow_id", "src", "dst", "size", "seq", "priority",
            "ecn", "msg_id", "pause_priority", "pause", "qcn_fb",
        ):
            assert getattr(clone, name) == getattr(pkt, name), name


class TestBarrierSchedule:
    def test_covers_horizon_with_bounded_gaps(self):
        barriers = barrier_schedule(500, units.us(1), units.us(3))
        assert barriers == sorted(set(barriers))
        assert barriers[-1] == units.us(3)
        assert units.us(1) in barriers
        previous = 0
        for barrier in barriers:
            assert barrier - previous <= 500
            previous = barrier

    def test_uneven_window(self):
        barriers = barrier_schedule(700, 0, 2000)
        assert barriers == [700, 1400, 2000]

    def test_warmup_not_duplicated(self):
        barriers = barrier_schedule(500, 1000, 2000)
        assert barriers.count(1000) == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            barrier_schedule(0, 0, 1000)
