"""Property-based tests over randomized small networks.

Hypothesis drives topology size, flow placement and run length; the
invariants must hold for every draw:

* switch buffer accounting balances (occupancy drains to zero);
* no packet is ever delivered that was not sent;
* with PFC on and sane thresholds, nothing is dropped;
* DCQCN rates always stay within [min_rate, line_rate];
* the simulation is deterministic given the seed.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import units
from repro.core.params import DCQCNParams
from repro.sim.topology import single_switch

slow = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

network_draw = st.tuples(
    st.integers(min_value=2, max_value=6),   # senders
    st.integers(min_value=0, max_value=1000), # seed
    st.sampled_from(["dcqcn", "none"]),       # congestion control
    st.integers(min_value=1, max_value=4),    # run length (ms)
)


def run_incast(n_senders, seed, cc, run_ms):
    net, switch, hosts = single_switch(n_senders + 1, seed=seed)
    receiver = hosts[-1]
    flows = [net.add_flow(h, receiver, cc=cc) for h in hosts[:n_senders]]
    for flow in flows:
        flow.set_greedy()
    net.run_for(units.ms(run_ms))
    return net, switch, flows


class TestSimulatorInvariants:
    @slow
    @given(network_draw)
    def test_buffer_accounting_balances(self, draw):
        n, seed, cc, run_ms = draw
        net, switch, flows = run_incast(n, seed, cc, run_ms)
        # stop the sources, let everything drain
        for flow in flows:
            flow.greedy = False
            flow.end_seq = flow.next_seq
        net.run_for(units.ms(5))
        assert switch.occupied_bytes == 0
        for port_index in range(len(switch.ports)):
            assert switch.egress_queue_bytes(port_index) == 0
            for prio in range(switch.num_priorities):
                assert switch.ingress_queue_bytes(port_index, prio) == 0

    @slow
    @given(network_draw)
    def test_conservation(self, draw):
        n, seed, cc, run_ms = draw
        _, _, flows = run_incast(n, seed, cc, run_ms)
        for flow in flows:
            assert 0 <= flow.bytes_delivered <= flow.bytes_sent

    @slow
    @given(network_draw)
    def test_lossless_with_pfc(self, draw):
        n, seed, cc, run_ms = draw
        net, switch, _ = run_incast(n, seed, cc, run_ms)
        assert switch.dropped_packets == 0

    @slow
    @given(network_draw)
    def test_dcqcn_rates_bounded(self, draw):
        n, seed, _, run_ms = draw
        _, _, flows = run_incast(n, seed, "dcqcn", run_ms)
        params = DCQCNParams.deployed()
        for flow in flows:
            assert params.min_rate_bps <= flow.rp.rc_bps <= units.gbps(40)
            assert params.min_rate_bps <= flow.rp.rt_bps <= units.gbps(40)

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=100))
    def test_determinism(self, seed):
        def signature(run_seed):
            _, switch, flows = run_incast(3, run_seed, "dcqcn", 2)
            return (
                tuple(f.bytes_delivered for f in flows),
                switch.marked_packets,
                switch.pause_frames_sent,
            )

        assert signature(seed) == signature(seed)

    @slow
    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=0, max_value=50))
    def test_utilization_never_exceeds_line_rate(self, n, seed):
        run_ms = 3
        _, _, flows = run_incast(n, seed, "none", run_ms)
        total = sum(f.bytes_delivered for f in flows) * 8e9 / units.ms(run_ms)
        assert total <= units.gbps(40) * 1.01
