"""Registry-driven CLI smoke tests.

Every registered experiment must run end-to-end at the tiny ``smoke``
scale and print a non-empty table.  Iterating the registry (instead of
naming commands) means a newly registered experiment is covered
automatically.
"""

import pytest

from repro.cli import main
from repro.runner import REGISTRY
from repro.runner.cache import RESULTS_ENV
from repro.runner.scale import SCALE_ENV


@pytest.fixture(scope="module")
def smoke_results_dir(tmp_path_factory):
    """One shared cache dir so repeated cells amortize within the module."""
    return tmp_path_factory.mktemp("smoke-results")


@pytest.mark.parametrize("experiment_id", REGISTRY.ids())
def test_experiment_smoke(experiment_id, smoke_results_dir, monkeypatch, capsys):
    monkeypatch.setenv(SCALE_ENV, "smoke")
    monkeypatch.setenv(RESULTS_ENV, str(smoke_results_dir))
    assert main([experiment_id]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.strip()]
    # header banner, column headers, separator, and at least one data row
    assert lines[0].startswith(f"=== {experiment_id}:")
    assert len(lines) >= 4, f"{experiment_id} printed no table:\n{out}"


def test_run_subcommand(monkeypatch, capsys, tmp_path):
    monkeypatch.setenv(SCALE_ENV, "smoke")
    monkeypatch.setenv(RESULTS_ENV, str(tmp_path))
    assert main(["run", "tab14"]) == 0
    assert "1/256" in capsys.readouterr().out
    assert main(["run"]) == 2
    assert "usage" in capsys.readouterr().err
