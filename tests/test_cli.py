"""Command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, list_experiments, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig03", "--scale", "huge"])


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_command_is_listed(self):
        listing = list_experiments()
        assert listing.count("\n") == len(COMMANDS) + 1

    def test_tab14_runs(self, capsys):
        assert main(["tab14"]) == 0
        out = capsys.readouterr().out
        assert "Kmin" in out
        assert "1/256" in out

    def test_sec4_runs(self, capsys):
        assert main(["sec4"]) == 0
        assert "24.48 KB" in capsys.readouterr().out

    def test_fig01_runs(self, capsys):
        assert main(["fig01"]) == 0
        out = capsys.readouterr().out
        assert "TCP" in out and "latency" in out

    def test_scale_override(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["tab14", "--scale", "full"]) == 0
        assert os.environ["REPRO_SCALE"] == "full"
