"""Command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, list_experiments, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig03", "--scale", "huge"])


class TestDispatch:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_command_is_listed(self):
        listing = list_experiments()
        assert listing.count("\n") == len(COMMANDS) + 1

    def test_tab14_runs(self, capsys):
        assert main(["tab14"]) == 0
        out = capsys.readouterr().out
        assert "Kmin" in out
        assert "1/256" in out

    def test_sec4_runs(self, capsys):
        assert main(["sec4"]) == 0
        assert "24.48 KB" in capsys.readouterr().out

    def test_fig01_runs(self, capsys):
        assert main(["fig01"]) == 0
        out = capsys.readouterr().out
        assert "TCP" in out and "latency" in out

    def test_scale_override(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert main(["tab14", "--scale", "full"]) == 0
        assert os.environ["REPRO_SCALE"] == "full"


class TestFaultCommands:
    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for kind in ("link_flap", "pause_storm", "cnp_impairment"):
            assert kind in out

    def test_faults_example_is_a_loadable_plan(self, capsys):
        import json

        from repro.faults import FaultPlan

        assert main(["faults", "example"]) == 0
        plan = FaultPlan.from_json(json.loads(capsys.readouterr().out))
        assert len(plan.injectors) == 2
        assert plan.watchdog is not None

    def test_run_named_scenario_with_plan(
        self, capsys, tmp_path, monkeypatch
    ):
        import json

        monkeypatch.setenv("REPRO_SCALE", "smoke")
        plan_file = tmp_path / "plan.json"
        assert main(["faults", "example"]) == 0
        plan_file.write_text(capsys.readouterr().out)
        assert main(["run", "storm", "--faults", str(plan_file)]) == 0
        out = capsys.readouterr().out
        assert "feeder" in out and "victim" in out

    def test_bad_plan_file_is_reported(self, capsys, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text('{"injectors": [{"kind": "gremlin"}]}')
        assert main(["run", "storm", "--faults", str(plan_file)]) == 2
        assert "bad fault plan" in capsys.readouterr().err
