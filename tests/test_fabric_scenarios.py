"""Fabric scenarios end to end: runner integration, scale, determinism."""

from repro import units
from repro.runner.scenario import (
    FlowSpec,
    Scenario,
    run_scenario,
    run_scenario_inline,
)


def small_fabric_scenario(**overrides):
    kwargs = dict(
        topology="fabric",
        topology_kwargs={"kind": "fat_tree", "k": 4},
        flows=(
            FlowSpec(name="f0", src="1:0:0", dst="0:0:0", cc="dcqcn"),
            FlowSpec(name="f1", src="2:0:0", dst="0:0:0", cc="dcqcn"),
            FlowSpec(
                name="probe",
                src="3:1:1",
                dst="0:0:1",
                cc="dcqcn",
                greedy=False,
                message_bytes=20_000,
                message_start_ns=units.us(20),
            ),
        ),
        duration_ns=units.us(400),
        label="fabric-test",
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestFabricScenario:
    def test_locator_forms(self):
        """Pod-relative, edge-relative, flat-index and by-name locators
        all resolve to the same hosts."""
        from repro.runner.scenario import build_scenario_network

        net, resolve, probes = build_scenario_network(
            small_fabric_scenario(), seed=0
        )
        assert resolve("0:0:0") is resolve("0:0")  # pod 0 edge 0 == edge 0
        assert resolve("0:0:0") is resolve("0")  # first host overall
        assert resolve("p0e0h0") is resolve("0:0:0")
        assert resolve("3:1:1") is resolve("p3e1h1")
        assert set(probes) == {
            f"{direction}.{tier}"
            for direction in ("pause_rx", "pause_tx")
            for tier in ("edge", "agg", "core")
        }

    def test_inline_run_reports_tier_counters(self):
        result, net = run_scenario_inline(small_fabric_scenario(), seed=1)
        for tier in ("edge", "agg", "core"):
            assert f"pause_rx.{tier}" in result.counters
            assert f"pause_tx.{tier}" in result.counters
        assert result.flows_bps["f0"] > 0

    def test_strict_invariants_clean(self):
        from repro.invariants import InvariantConfig

        scenario = small_fabric_scenario(
            invariants=InvariantConfig(mode="strict")
        )
        result, _ = run_scenario_inline(scenario, seed=1)
        assert result.invariant_report["violation_count"] == 0
        assert result.invariant_report["checks"] > 0

    def test_serial_equals_parallel(self):
        """jobs=1 and jobs=2 produce identical results: fabric builds
        (ids, names, salts) are a pure function of (spec, seed)."""
        scenario = small_fabric_scenario()
        serial = run_scenario(scenario, seeds=[3], jobs=1, cache=False)
        parallel = run_scenario(scenario, seeds=[3], jobs=2, cache=False)
        assert serial[0].to_json() == parallel[0].to_json()

    def test_cache_round_trip(self, tmp_path, monkeypatch):
        """A fabric scenario is content-hash cacheable: the second call
        is served from cache and equals the first."""
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        scenario = small_fabric_scenario()
        first = run_scenario(scenario, seeds=[4], jobs=1, cache=True)
        second = run_scenario(scenario, seeds=[4], jobs=1, cache=True)
        assert first[0].to_json() == second[0].to_json()

    def test_tier_queue_sampler_installed(self):
        from repro.telemetry import TelemetrySpec

        scenario = small_fabric_scenario(
            telemetry=TelemetrySpec(queue_sample_ns=units.us(20))
        )
        result, _ = run_scenario_inline(scenario, seed=1)
        metrics = result.metrics
        histograms = metrics.get("histograms", metrics)
        names = set(histograms)
        for tier in ("edge", "agg", "core"):
            assert f"switch.occupied_bytes.{tier}" in names


class TestRegisteredScenarios:
    def test_named_fabric_scenarios_build(self):
        from repro.experiments import catalog  # noqa: F401 — registers
        from repro.runner.registry import SCENARIOS

        for name in ("fabric-smoke", "fabric-k8", "fabric-bench", "fabric-1024"):
            scenario = SCENARIOS.build(name)
            assert scenario.topology == "fabric"
            names = [flow.name for flow in scenario.flows]
            assert len(set(names)) == len(names)

    def test_experiments_registered(self):
        from repro.experiments import catalog  # noqa: F401 — registers
        from repro.runner import REGISTRY

        assert "fabric" in REGISTRY
        assert "fabric1024" in REGISTRY

    def test_benchmark_scenario_deterministic(self):
        """Two constructions draw identical sizes and placements."""
        from repro.experiments.fabric_scale import fabric_benchmark_scenario

        assert fabric_benchmark_scenario() == fabric_benchmark_scenario()


class TestThousandHosts:
    def test_1024_host_incast_completes(self):
        """The headline: a k=16 fat-tree (1024 hosts, 320 switches)
        builds, routes, and simulates a 32:1 incast with invariants
        clean and FCT slowdowns measurable."""
        from repro.analysis import fct
        from repro.experiments.fabric_scale import (
            FABRIC_HOPS,
            thousand_host_scenario,
        )

        scenario = thousand_host_scenario(duration_ns=units.us(400))
        result, net = run_scenario_inline(scenario, seed=2015)
        assert len(net.hosts) == 1024
        assert len(net.switches) == 320
        assert result.invariant_report["violation_count"] == 0
        records = fct.records_from_runs([result])
        summaries = fct.summarize_slowdowns(
            records, fct.base_rtt_ns(hops=FABRIC_HOPS)
        )
        assert summaries["all"].count >= 1
        assert summaries["all"].p50 >= 1.0
