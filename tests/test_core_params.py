"""DCQCN parameter sets (Table 14 / strawman) and their validation."""

import pytest

from repro import units
from repro.core.params import DCQCNParams


class TestDeployedValues:
    """Table 14 — the deployed configuration."""

    def test_table14(self):
        p = DCQCNParams.deployed()
        assert p.rate_increase_timer_ns == units.us(55)
        assert p.byte_counter_bytes == units.mb(10)
        assert p.kmax_bytes == units.kb(200)
        assert p.kmin_bytes == units.kb(5)
        assert p.pmax == pytest.approx(0.01)
        assert p.g == pytest.approx(1 / 256)

    def test_cnp_interval_50us(self):
        assert DCQCNParams.deployed().cnp_interval_ns == units.us(50)

    def test_alpha_timer_exceeds_cnp_interval(self):
        p = DCQCNParams.deployed()
        assert p.alpha_timer_ns > p.cnp_interval_ns

    def test_initial_alpha_is_one(self):
        assert DCQCNParams.deployed().initial_alpha == 1.0

    def test_rate_steps(self):
        p = DCQCNParams.deployed()
        assert p.rai_bps == units.mbps(40)
        assert p.rhai_bps == units.mbps(400)
        assert p.fast_recovery_threshold == 5


class TestStrawman:
    """§5.2's QCN/DCTCP starting point."""

    def test_values(self):
        p = DCQCNParams.strawman()
        assert p.byte_counter_bytes == units.kb(150)
        assert p.rate_increase_timer_ns == units.ms(1.5)
        assert p.g == pytest.approx(1 / 16)

    def test_cutoff_marking(self):
        p = DCQCNParams.strawman()
        assert p.kmin_bytes == p.kmax_bytes == units.kb(40)
        assert p.pmax == 1.0


class TestDerivedConfigs:
    def test_with_cutoff_marking(self):
        p = DCQCNParams.deployed().with_cutoff_marking(units.kb(160))
        assert p.kmin_bytes == p.kmax_bytes == units.kb(160)
        assert p.pmax == 1.0
        # everything else untouched
        assert p.g == DCQCNParams.deployed().g

    def test_with_red_marking(self):
        p = DCQCNParams.deployed().with_red_marking(units.kb(10), units.kb(100), 0.05)
        assert (p.kmin_bytes, p.kmax_bytes, p.pmax) == (10_000, 100_000, 0.05)

    def test_frozen(self):
        with pytest.raises(Exception):
            DCQCNParams.deployed().g = 0.5


class TestValidation:
    def test_kmin_above_kmax_rejected(self):
        with pytest.raises(ValueError):
            DCQCNParams(kmin_bytes=units.kb(100), kmax_bytes=units.kb(50))

    def test_pmax_zero_rejected(self):
        with pytest.raises(ValueError):
            DCQCNParams(pmax=0.0)

    def test_pmax_above_one_rejected(self):
        with pytest.raises(ValueError):
            DCQCNParams(pmax=1.5)

    def test_g_zero_rejected(self):
        with pytest.raises(ValueError):
            DCQCNParams(g=0.0)

    def test_alpha_timer_below_cnp_interval_rejected(self):
        # "Note that K must be larger than the CNP generation timer"
        with pytest.raises(ValueError):
            DCQCNParams(alpha_timer_ns=units.us(10), cnp_interval_ns=units.us(50))

    def test_increase_timer_below_cnp_interval_rejected(self):
        # "the timer cannot be smaller than 50us, which is NP's CNP
        # generation interval"
        with pytest.raises(ValueError):
            DCQCNParams(rate_increase_timer_ns=units.us(10))

    def test_byte_counter_positive(self):
        with pytest.raises(ValueError):
            DCQCNParams(byte_counter_bytes=0)

    def test_fast_recovery_threshold_positive(self):
        with pytest.raises(ValueError):
            DCQCNParams(fast_recovery_threshold=0)

    def test_jitter_must_stay_below_timer(self):
        with pytest.raises(ValueError):
            DCQCNParams(rate_increase_timer_jitter_ns=units.us(55))

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            DCQCNParams(rai_bps=-1)
