"""Figure 1 host-stack model: calibration points and shapes."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.hoststack.model import (
    HostSpec,
    RdmaStackModel,
    TcpStackModel,
    compare_stacks,
)


class TestTcpModel:
    def test_cpu_bound_at_small_messages(self):
        """Figure 1(a): TCP cannot saturate 40 G with 4 KB messages."""
        tcp = TcpStackModel()
        assert tcp.throughput_bps(units.kb(4)) < units.gbps(40)
        assert tcp.cpu_utilization(units.kb(4)) == pytest.approx(1.0)

    def test_saturates_with_large_messages(self):
        tcp = TcpStackModel()
        assert tcp.throughput_bps(units.mb(4)) == units.gbps(40)

    def test_over_20_pct_cpu_at_line_rate(self):
        """'with 4MB message size, to drive full throughput, TCP
        consumes, on average, over 20% CPU cycles across all cores'."""
        tcp = TcpStackModel()
        assert tcp.cpu_utilization(units.mb(4)) > 0.20

    def test_latency_matches_paper(self):
        """25.4 us for a 2 KB transfer."""
        assert TcpStackModel().latency_us(2048) == pytest.approx(25.4, abs=0.1)

    def test_throughput_monotone_in_message_size(self):
        tcp = TcpStackModel()
        sizes = [units.kb(4), units.kb(16), units.kb(64), units.mb(1)]
        rates = [tcp.throughput_bps(s) for s in sizes]
        assert rates == sorted(rates)

    @given(st.integers(min_value=1, max_value=10**8))
    def test_cpu_utilization_is_a_fraction(self, size):
        u = TcpStackModel().cpu_utilization(size)
        assert 0.0 <= u <= 1.0

    def test_rejects_nonpositive_message(self):
        with pytest.raises(ValueError):
            TcpStackModel().throughput_bps(0)


class TestRdmaModel:
    def test_single_flow_saturates(self):
        """'With RDMA, a single thread saturates the link.'"""
        rdma = RdmaStackModel()
        assert rdma.throughput_bps(units.kb(4)) == units.gbps(40)

    def test_client_cpu_under_3_pct(self):
        """'CPU utilization of the RDMA client is under 3%, even for
        small message sizes.'"""
        rdma = RdmaStackModel()
        for size in (units.kb(4), units.kb(64), units.mb(4)):
            assert rdma.client_cpu_utilization(size) < 0.03

    def test_server_cpu_is_zero(self):
        rdma = RdmaStackModel()
        assert rdma.server_cpu_utilization(units.mb(1)) == 0.0

    def test_latencies_match_paper(self):
        """1.7 us read/write, 2.8 us send."""
        rdma = RdmaStackModel()
        assert rdma.latency_us(2048, "write") == pytest.approx(1.7, abs=0.05)
        assert rdma.latency_us(2048, "read") == pytest.approx(1.7, abs=0.05)
        assert rdma.latency_us(2048, "send") == pytest.approx(2.8, abs=0.05)

    def test_latency_far_below_tcp(self):
        assert RdmaStackModel().latency_us(2048) < TcpStackModel().latency_us(2048) / 5

    def test_nic_message_rate_caps_tiny_messages(self):
        rdma = RdmaStackModel()
        assert rdma.throughput_bps(64) < units.gbps(40)

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            RdmaStackModel().latency_us(2048, "atomic")


class TestComparison:
    def test_figure1_rows(self):
        rows = compare_stacks()
        assert len(rows) == 6
        for size, row in rows.items():
            assert row.rdma_throughput_gbps >= row.tcp_throughput_gbps
            assert row.rdma_client_cpu_pct < row.tcp_cpu_pct

    def test_custom_spec_propagates(self):
        spec = HostSpec(cores=4, clock_hz=2e9)
        tcp = TcpStackModel(spec=spec)
        # a quarter of the cores: CPU-bound ceiling drops accordingly
        assert tcp.throughput_bps(units.kb(16)) < TcpStackModel().throughput_bps(
            units.kb(16)
        )
