"""Ports and links: serialization, propagation, pause, no preemption."""

from typing import List, Optional

import pytest

from repro import units
from repro.engine import EventScheduler
from repro.sim.device import Device
from repro.sim.link import Port, connect
from repro.sim.packet import Packet, KIND_DATA, pause_frame


class StubDevice(Device):
    """Minimal device: queue of outgoing packets, log of arrivals."""

    def __init__(self, engine, device_id, name):
        super().__init__(engine, device_id, name)
        self.outbox: List[Packet] = []
        self.received: List[tuple] = []
        self.tx_completed: List[Packet] = []

    def receive(self, pkt, in_port):
        self.received.append((self.engine.now, pkt))

    def next_packet(self, port) -> Optional[Packet]:
        for index, pkt in enumerate(self.outbox):
            if port.can_send(pkt.priority):
                return self.outbox.pop(index)
        return None

    def tx_complete(self, port, pkt):
        self.tx_completed.append(pkt)

    def push(self, pkt):
        self.outbox.append(pkt)
        self.ports[0].notify()


def make_pair(rate=units.gbps(40), delay=500):
    engine = EventScheduler()
    a = StubDevice(engine, 0, "a")
    b = StubDevice(engine, 1, "b")
    port_a, port_b = connect(engine, a, b, rate, delay)
    return engine, a, b, port_a, port_b


class TestTiming:
    def test_delivery_time_is_serialization_plus_propagation(self):
        engine, a, b, *_ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        # 1000B @ 40G = 200ns + 500ns propagation
        assert b.received[0][0] == 700

    def test_back_to_back_serialization(self):
        engine, a, b, *_ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        times = [t for t, _ in b.received]
        assert times == [700, 900]  # second waits for the wire

    def test_propagation_pipelines(self):
        """Propagation overlaps with the next serialization."""
        engine, a, b, *_ = make_pair(delay=10_000)
        for _ in range(3):
            a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        times = [t for t, _ in b.received]
        assert times == [10_200, 10_400, 10_600]

    def test_tx_complete_fires_at_serialization_end(self):
        engine, a, b, *_ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        engine.run_until(200)
        assert len(a.tx_completed) == 1
        assert not b.received  # still propagating

    def test_counters(self):
        engine, a, _, port_a, _ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        a.push(Packet(KIND_DATA, size=500))
        engine.run()
        assert port_a.tx_packets == 2
        assert port_a.tx_bytes == 1500

    def test_utilization(self):
        engine, a, _, port_a, _ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        engine.run_until(400)
        assert port_a.utilization(400) == pytest.approx(0.5)


class TestPause:
    def test_paused_priority_not_sent(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        a.push(Packet(KIND_DATA, size=1000, priority=0))
        engine.run()
        assert b.received == []

    def test_other_priorities_flow_during_pause(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        a.push(Packet(KIND_DATA, size=1000, priority=0))
        a.push(Packet(KIND_DATA, size=1000, priority=6))
        engine.run()
        assert [pkt.priority for _, pkt in b.received] == [6]

    def test_resume_restarts_transmission(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        port_a.set_paused(0, False)
        engine.run()
        assert len(b.received) == 1

    def test_no_preemption_of_inflight_frame(self):
        """A frame whose serialization began always completes (the
        paper's headroom math depends on this)."""
        engine, a, b, port_a, _ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        engine.run_until(100)  # mid-serialization
        port_a.set_paused(0, True)
        engine.run()
        assert len(b.received) == 1

    def test_can_send_reflects_mask(self):
        engine, a, _, port_a, _ = make_pair()
        port_a.set_paused(3, True)
        assert not port_a.can_send(3)
        assert port_a.can_send(0)
        port_a.set_paused(3, False)
        assert port_a.can_send(3)


class TestPausedAccounting:
    """total_paused_ns edge cases (the cascade-damage metric)."""

    def test_counts_closed_pause_window(self):
        engine, _, _, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        engine.run_until(1_000)
        port_a.set_paused(0, False)
        assert port_a.total_paused_ns(0) == 1_000

    def test_open_pause_counts_up_to_now(self):
        """A pause still open at sim end must count to the clock."""
        engine, _, _, port_a, _ = make_pair()
        engine.run_until(200)
        port_a.set_paused(0, True)
        engine.run_until(1_700)
        assert port_a.total_paused_ns(0) == 1_500

    def test_repeated_pause_refresh_does_not_reset_start(self):
        """PFC refreshes re-assert PAUSE; the window must not restart."""
        engine, _, _, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        engine.run_until(400)
        port_a.set_paused(0, True)  # refresh mid-window
        engine.run_until(900)
        port_a.set_paused(0, False)
        assert port_a.total_paused_ns(0) == 900

    def test_resume_without_pause_is_harmless(self):
        engine, _, _, port_a, _ = make_pair()
        engine.run_until(300)
        port_a.set_paused(0, False)
        assert port_a.total_paused_ns(0) == 0
        assert port_a.can_send(0)

    def test_per_priority_isolation(self):
        engine, _, _, port_a, _ = make_pair()
        port_a.set_paused(3, True)
        engine.run_until(600)
        port_a.set_paused(3, False)
        assert port_a.total_paused_ns(3) == 600
        assert port_a.total_paused_ns(0) == 0

    def test_two_windows_accumulate(self):
        engine, _, _, port_a, _ = make_pair()
        port_a.set_paused(0, True)
        engine.run_until(100)
        port_a.set_paused(0, False)
        engine.run_until(500)
        port_a.set_paused(0, True)
        engine.run_until(800)
        port_a.set_paused(0, False)
        assert port_a.total_paused_ns(0) == 400


class TestFaultHooks:
    """set_link_up / set_rate (the LinkFlap and SlowReceiver hooks)."""

    def test_down_link_starts_nothing(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_link_up(False)
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        assert b.received == []
        assert port_a.link_down_drops == 0  # never started, nothing lost

    def test_frame_mid_serialization_is_lost(self):
        engine, a, b, port_a, _ = make_pair()
        a.push(Packet(KIND_DATA, size=1000))
        engine.run_until(100)  # mid-serialization
        port_a.set_link_up(False)
        engine.run()
        assert b.received == []
        assert port_a.link_down_drops == 1

    def test_up_restarts_transmission(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_link_up(False)
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        port_a.set_link_up(True)
        engine.run()
        assert len(b.received) == 1

    def test_set_link_up_is_idempotent(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.set_link_up(True)  # already up: no-op, no notify loop
        a.push(Packet(KIND_DATA, size=1000))
        engine.run()
        assert len(b.received) == 1

    def test_set_rate_applies_to_next_frame(self):
        engine, a, b, port_a, _ = make_pair()  # 40G: 200ns/1000B
        a.push(Packet(KIND_DATA, size=1000))
        a.push(Packet(KIND_DATA, size=1000))
        engine.run_until(100)  # first frame in flight
        port_a.set_rate(units.gbps(20))
        engine.run()
        times = [t for t, _ in b.received]
        # first keeps its 200ns schedule; second serializes 400ns
        assert times == [700, 1_100]

    def test_set_rate_rejects_nonpositive(self):
        _, _, _, port_a, _ = make_pair()
        with pytest.raises(ValueError):
            port_a.set_rate(0)
        with pytest.raises(ValueError):
            port_a.set_rate(-1)


class TestControlBypass:
    def test_control_frame_jumps_queue(self):
        engine, a, b, port_a, _ = make_pair()
        for _ in range(5):
            a.push(Packet(KIND_DATA, size=1000))
        engine.run_until(100)  # first frame in flight
        port_a.send_control(pause_frame(0, 0, pause=True))
        engine.run()
        kinds = [pkt.kind for _, pkt in b.received]
        # control is second on the wire: right after the inflight frame
        assert kinds[1] == pause_frame(0, 0, True).kind

    def test_control_ignores_pause(self):
        engine, a, b, port_a, _ = make_pair()
        port_a.paused_mask = 0xFF  # everything paused
        port_a.send_control(pause_frame(0, 0, pause=True))
        engine.run()
        assert len(b.received) == 1

    def test_tx_pause_frame_counter(self):
        engine, a, _, port_a, _ = make_pair()
        port_a.send_control(pause_frame(0, 0, pause=True))
        port_a.send_control(pause_frame(0, 0, pause=False))
        engine.run()
        assert port_a.tx_pause_frames == 1  # RESUME doesn't count


class TestValidation:
    def test_bad_rate(self):
        engine = EventScheduler()
        a = StubDevice(engine, 0, "a")
        with pytest.raises(ValueError):
            Port(engine, a, 0, 10)

    def test_bad_delay(self):
        engine = EventScheduler()
        a = StubDevice(engine, 0, "a")
        with pytest.raises(ValueError):
            Port(engine, a, units.gbps(40), -1)

    def test_port_to(self):
        _, a, b, port_a, port_b = make_pair()
        assert a.port_to(b) is port_a
        assert b.port_to(a) is port_b

    def test_port_to_missing(self):
        engine = EventScheduler()
        a = StubDevice(engine, 0, "a")
        c = StubDevice(engine, 2, "c")
        with pytest.raises(LookupError):
            a.port_to(c)
