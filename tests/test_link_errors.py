"""Loss injection, pause-duration accounting, and the §7 experiment."""

import pytest

from repro import units
from repro.experiments.link_errors import run_loss_point, run_loss_sweep
from repro.sim.nic import NicConfig
from repro.sim.topology import single_switch


class TestErrorInjection:
    def test_rejects_bad_rate(self):
        net, switch, hosts = single_switch(2)
        with pytest.raises(ValueError):
            switch.ports[0].set_error_rate(1.0)
        with pytest.raises(ValueError):
            switch.ports[0].set_error_rate(-0.1)

    def test_zero_rate_drops_nothing(self):
        net, switch, hosts = single_switch(2)
        switch.port_to(hosts[1].nic).set_error_rate(0.0)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(2))
        assert switch.port_to(hosts[1].nic).corrupted_frames == 0
        assert flow.bytes_delivered == flow.bytes_sent - (
            flow.bytes_sent - flow.bytes_delivered
        )

    def test_losses_occur_at_configured_rate(self):
        net, switch, hosts = single_switch(2, seed=31)
        port = switch.port_to(hosts[1].nic)
        port.set_error_rate(0.05, seed=1)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(5))
        observed = port.corrupted_frames / port.tx_packets
        assert observed == pytest.approx(0.05, rel=0.3)

    def test_goodput_survives_losses(self):
        """go-back-N recovers: delivery continues despite drops."""
        net, switch, hosts = single_switch(
            2, seed=31, nic_config=NicConfig(rto_ns=units.ms(1))
        )
        switch.port_to(hosts[1].nic).set_error_rate(0.02, seed=2)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(10))
        assert flow.bytes_delivered * 8e9 / units.ms(10) > units.gbps(10)
        assert flow.retransmitted_packets > 0

    def test_deterministic_with_seed(self):
        def run(seed):
            net, switch, hosts = single_switch(2, seed=31)
            switch.port_to(hosts[1].nic).set_error_rate(0.05, seed=seed)
            flow = net.add_flow(hosts[0], hosts[1], cc="none")
            flow.set_greedy()
            net.run_for(units.ms(2))
            return flow.bytes_delivered

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestPauseDurationAccounting:
    def test_unpaused_port_reports_zero(self):
        net, switch, hosts = single_switch(2)
        net.run_for(units.ms(1))
        assert hosts[0].nic.port.total_paused_ns() == 0

    def test_pause_time_accumulates(self):
        from repro.engine import EventScheduler
        from repro.sim.link import connect
        from repro.sim.nic import HostNic

        engine = EventScheduler()
        a = HostNic(engine, 0, "a")
        b = HostNic(engine, 1, "b")
        port_a, _ = connect(engine, a, b, units.gbps(40), 100)
        engine.run_until(1_000)
        port_a.set_paused(0, True)
        engine.run_until(5_000)
        assert port_a.total_paused_ns(0) == 4_000  # ongoing pause counted
        port_a.set_paused(0, False)
        engine.run_until(9_000)
        assert port_a.total_paused_ns(0) == 4_000  # frozen after resume
        port_a.set_paused(0, True)
        engine.run_until(10_000)
        assert port_a.total_paused_ns(0) == 5_000  # second episode adds

    def test_incast_pauses_sender_ports(self):
        net, switch, hosts = single_switch(9, seed=37)
        receiver = hosts[-1]
        for host in hosts[:8]:
            flow = net.add_flow(host, receiver, cc="none")
            flow.set_greedy()
        net.run_for(units.ms(5))
        paused = sum(h.nic.port.total_paused_ns() for h in hosts[:8])
        assert paused > 0


class TestLossSweepExperiment:
    def test_zero_loss_point_is_clean(self):
        point = run_loss_point(0.0, duration_ns=units.ms(3))
        assert point.goodput_gbps > 38
        assert point.retransmitted_packets == 0
        assert point.efficiency > 0.95

    def test_goodput_decreases_with_loss(self):
        points = run_loss_sweep(
            loss_rates=(0.0, 0.02), duration_ns=units.ms(4)
        )
        assert points[1].goodput_gbps < points[0].goodput_gbps
        assert points[1].retransmitted_packets > 0

    def test_gobackn_below_selective_bound(self):
        point = run_loss_point(0.02, duration_ns=units.ms(4))
        assert point.goodput_gbps < point.ideal_selective_gbps
