"""Structured fabric routing: ECMP widths, BFS equivalence, resilience."""

import pytest

from repro import units
from repro.fabric import FabricSpec, build_fabric
from repro.sim.routing import adjacency, hop_distances, install_routes


def effective_routes(net):
    """(switch id, host nic id) -> the ECMP set the switch forwards on."""
    return {
        (switch.device_id, host.nic.device_id): switch.route_to(
            host.nic.device_id
        )
        for switch in net.switches
        for host in net.hosts
    }


def assert_matches_bfs(fabric):
    """Wipe the structured tables, re-route via BFS, demand equality.

    Exact tuple equality, not set equality: ECMP picks
    ``choices[hash % len]``, so a reordered tuple silently changes
    every path selection even though the route set is "the same".
    """
    structured = effective_routes(fabric.net)
    for switch in fabric.net.switches:
        switch.routing_table.clear()
        switch.default_route = ()
    install_routes(
        fabric.net.switches, (host.nic for host in fabric.net.hosts)
    )
    for switch in fabric.net.switches:
        for host in fabric.net.hosts:
            key = (switch.device_id, host.nic.device_id)
            assert structured[key] == switch.routing_table[host.nic.device_id], (
                f"{switch.name} -> {host.name}: structured {structured[key]} "
                f"!= BFS {switch.routing_table[host.nic.device_id]}"
            )


class TestEcmpWidths:
    @pytest.mark.parametrize("k", [4, 8])
    def test_fat_tree_path_counts(self, k):
        """Edge switches fan cross-pod traffic over (k/2)^2 paths and
        intra-pod cross-edge traffic over k/2 — the fat-tree formulas."""
        fabric = build_fabric(kind="fat_tree", k=k)
        spec = fabric.spec
        edge = fabric.edges[0]
        cross_pod = fabric.host_in_pod(k - 1, 0, 0)
        same_pod = fabric.host_in_pod(0, 1, 0)
        local = fabric.host_in_pod(0, 0, 0)
        # the edge's ECMP set is its k/2 uplinks; the (k/2)^2 total paths
        # come from each agg fanning over its k/2 cores
        assert len(edge.route_to(cross_pod.nic.device_id)) == k // 2
        agg = fabric.aggs[0]
        far_id = cross_pod.nic.device_id
        assert len(agg.route_to(far_id)) == k // 2
        assert spec.ecmp_paths(cross_pod=True) == (k // 2) ** 2
        assert len(edge.route_to(same_pod.nic.device_id)) == k // 2
        assert len(edge.route_to(local.nic.device_id)) == 1

    def test_core_single_downlink(self):
        """A fat-tree core has exactly one port into each pod."""
        fabric = build_fabric(kind="fat_tree", k=4)
        for host in fabric.all_hosts():
            for core in fabric.cores:
                assert len(core.route_to(host.nic.device_id)) == 1

    def test_clos_agg_width(self):
        fabric = build_fabric(
            kind="clos", pods=2, tors_per_pod=2, leaves_per_pod=3, spines=4,
            hosts_per_tor=1,
        )
        edge = fabric.edges[0]
        far = fabric.host_in_pod(1, 1, 0)
        assert len(edge.route_to(far.nic.device_id)) == 3  # leaves_per_pod
        agg = fabric.aggs[0]
        assert len(agg.route_to(far.nic.device_id)) == 4  # spines


class TestBfsEquivalence:
    def test_fat_tree_k4(self):
        assert_matches_bfs(build_fabric(kind="fat_tree", k=4))

    def test_fat_tree_k8(self):
        assert_matches_bfs(build_fabric(kind="fat_tree", k=8))

    def test_oversubscribed_fat_tree(self):
        assert_matches_bfs(build_fabric(kind="fat_tree", k=4, hosts_per_edge=5))

    def test_heterogeneous_rates(self):
        """Link rates do not affect shortest-hop routing — the tables
        must match BFS even when tiers run at different speeds."""
        assert_matches_bfs(
            build_fabric(
                kind="fat_tree",
                k=4,
                host_rate_bps=units.gbps(10),
                agg_rate_bps=units.gbps(40),
                core_rate_bps=units.gbps(100),
            )
        )

    def test_generalized_clos(self):
        assert_matches_bfs(
            build_fabric(
                kind="clos",
                pods=3,
                tors_per_pod=2,
                leaves_per_pod=3,
                spines=2,
                hosts_per_tor=2,
            )
        )


class TestSymmetryAndReachability:
    def test_route_symmetry(self):
        """Hop distance between any two hosts is direction-independent."""
        fabric = build_fabric(kind="fat_tree", k=4)
        devices = [s for s in fabric.net.switches] + [
            h.nic for h in fabric.net.hosts
        ]
        neighbors = adjacency(devices)
        hosts = fabric.all_hosts()[::5]  # a spread sample, keeps it fast
        dist = {
            h.nic.device_id: hop_distances(h.nic, neighbors) for h in hosts
        }
        for a in hosts:
            for b in hosts:
                assert (
                    dist[a.nic.device_id][b.nic.device_id]
                    == dist[b.nic.device_id][a.nic.device_id]
                )

    def test_next_hops_decrease_distance(self):
        """Every ECMP choice strictly approaches the target: no loops,
        no blackholes, on an asymmetric (oversubscribed) fabric too."""
        fabric = build_fabric(kind="fat_tree", k=4, hosts_per_edge=3)
        devices = [s for s in fabric.net.switches] + [
            h.nic for h in fabric.net.hosts
        ]
        neighbors = adjacency(devices)
        for host in fabric.all_hosts():
            dist = hop_distances(host.nic, neighbors)
            for switch in fabric.net.switches:
                for port_index in switch.route_to(host.nic.device_id):
                    peer = switch.ports[port_index].peer.owner
                    assert dist[peer.device_id] == dist[switch.device_id] - 1


class TestFailedLinks:
    def test_transfer_survives_core_link_flap(self):
        """A flapped agg-core link must not blackhole the fabric: the
        probe transfer still completes once go-back-N recovers."""
        from repro.faults.plan import FaultPlan, LinkFlap
        from repro.runner.scenario import FlowSpec, Scenario, run_scenario_inline

        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"kind": "fat_tree", "k": 4},
            flows=(
                FlowSpec(
                    name="probe",
                    src="0:0:0",
                    dst="3:1:1",
                    cc="dcqcn",
                    greedy=False,
                    message_bytes=units.kb(200),
                    message_start_ns=0,
                ),
            ),
            duration_ns=units.ms(4),
            faults=FaultPlan(
                injectors=(
                    LinkFlap(
                        a="p0a0",
                        b="c0",
                        start_ns=units.us(10),
                        down_ns=units.us(200),
                    ),
                )
            ),
        )
        result, net = run_scenario_inline(scenario, seed=1)
        assert result.counters["fct_ns.probe"] > 0

    def test_whole_agg_outage_recovers(self):
        """Both uplinks of one aggregation switch dark for a window:
        ECMP is hash-pinned (no adaptive rerouting, by design), so a
        flow pinned to the dark agg stalls — but go-back-N must bring
        it home once the links return, with no permanent blackhole."""
        from repro.faults.plan import FaultPlan, LinkFlap
        from repro.runner.scenario import FlowSpec, Scenario, run_scenario_inline

        flaps = tuple(
            LinkFlap(
                a="p0a0",
                b=f"c{c}",
                start_ns=0,
                down_ns=units.us(400),
            )
            for c in range(2)  # agg 0 of a k=4 fat-tree uplinks to c0, c1
        )
        scenario = Scenario(
            topology="fabric",
            topology_kwargs={"kind": "fat_tree", "k": 4},
            flows=(
                FlowSpec(
                    name="probe",
                    src="0:0:0",
                    dst="2:0:0",
                    cc="dcqcn",
                    greedy=False,
                    message_bytes=units.kb(100),
                    message_start_ns=units.us(50),
                ),
            ),
            duration_ns=units.ms(8),
            faults=FaultPlan(injectors=flaps),
        )
        result, _ = run_scenario_inline(scenario, seed=1)
        assert result.counters["fct_ns.probe"] > 0
