"""Event scheduler: ordering, cancellation, timers."""

import pytest
from hypothesis import given, strategies as st

from repro.engine import EventScheduler, PeriodicTimer


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = EventScheduler()
        log = []
        engine.schedule_at(30, log.append, "c")
        engine.schedule_at(10, log.append, "a")
        engine.schedule_at(20, log.append, "b")
        engine.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = EventScheduler()
        log = []
        for tag in range(10):
            engine.schedule_at(100, log.append, tag)
        engine.run()
        assert log == list(range(10))

    def test_now_advances_to_event_time(self):
        engine = EventScheduler()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_cannot_schedule_in_past(self):
        engine = EventScheduler()
        engine.schedule_at(10, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        engine = EventScheduler()
        with pytest.raises(ValueError):
            engine.schedule(-1, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        engine = EventScheduler()
        log = []

        def first():
            log.append("first")
            engine.schedule(5, lambda: log.append("second"))

        engine.schedule(1, first)
        engine.run()
        assert log == ["first", "second"]

    def test_events_processed_counter(self):
        engine = EventScheduler()
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.events_processed == 5

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_arbitrary_times_fire_sorted(self, times):
        engine = EventScheduler()
        fired = []
        for t in times:
            engine.schedule_at(t, fired.append, t)
        engine.run()
        assert fired == sorted(times)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = EventScheduler()
        log = []
        handle = engine.schedule(10, log.append, "x")
        handle.cancel()
        engine.run()
        assert log == []

    def test_cancel_twice_is_safe(self):
        engine = EventScheduler()
        handle = engine.schedule(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self):
        engine = EventScheduler()
        keep = engine.schedule(10, lambda: None)
        drop = engine.schedule(20, lambda: None)
        drop.cancel()
        assert engine.pending() == 1
        assert not keep.cancelled

    def test_peek_time_skips_cancelled(self):
        engine = EventScheduler()
        first = engine.schedule(5, lambda: None)
        engine.schedule(10, lambda: None)
        first.cancel()
        assert engine.peek_time() == 10

    def test_peek_time_empty(self):
        assert EventScheduler().peek_time() is None


class TestRunUntil:
    def test_stops_at_boundary(self):
        engine = EventScheduler()
        log = []
        engine.schedule_at(10, log.append, "early")
        engine.schedule_at(100, log.append, "late")
        engine.run_until(50)
        assert log == ["early"]
        assert engine.now == 50

    def test_boundary_inclusive(self):
        engine = EventScheduler()
        log = []
        engine.schedule_at(50, log.append, "edge")
        engine.run_until(50)
        assert log == ["edge"]

    def test_clock_advances_even_when_idle(self):
        engine = EventScheduler()
        engine.run_until(1234)
        assert engine.now == 1234

    def test_remaining_events_still_pending(self):
        engine = EventScheduler()
        engine.schedule_at(100, lambda: None)
        engine.run_until(50)
        assert engine.pending() == 1

    def test_run_max_events(self):
        engine = EventScheduler()
        for _ in range(10):
            engine.schedule(1, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending() == 7


class TestPeriodicTimer:
    def test_fires_every_period(self):
        engine = EventScheduler()
        ticks = []
        timer = PeriodicTimer(engine, 100, lambda: ticks.append(engine.now))
        timer.start()
        engine.run_until(450)
        assert ticks == [100, 200, 300, 400]

    def test_reset_restarts_phase(self):
        engine = EventScheduler()
        ticks = []
        timer = PeriodicTimer(engine, 100, lambda: ticks.append(engine.now))
        timer.start()
        engine.run_until(150)
        timer.reset()  # now=150; next fire at 250
        engine.run_until(260)
        assert ticks == [100, 250]

    def test_stop(self):
        engine = EventScheduler()
        ticks = []
        timer = PeriodicTimer(engine, 100, lambda: ticks.append(1))
        timer.start()
        engine.run_until(150)
        timer.stop()
        engine.run_until(1000)
        assert ticks == [1]
        assert not timer.running

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(EventScheduler(), 0, lambda: None)

    def test_jitter_bounds(self):
        engine = EventScheduler()
        ticks = []
        timer = PeriodicTimer(
            engine, 100, lambda: ticks.append(engine.now), jitter_ns=20, seed=3
        )
        timer.start()
        engine.run_until(10_000)
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert gaps, "timer never fired"
        assert all(80 <= gap <= 120 for gap in gaps)
        assert len(set(gaps)) > 1, "jitter should vary the gaps"

    def test_jitter_must_be_smaller_than_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(EventScheduler(), 100, lambda: None, jitter_ns=100)

    @pytest.mark.parametrize("jitter_ns", [-1, -50, 100, 250])
    def test_jitter_out_of_range_rejected(self, jitter_ns):
        with pytest.raises(ValueError, match=r"jitter must be in \[0, period\)"):
            PeriodicTimer(EventScheduler(), 100, lambda: None, jitter_ns=jitter_ns)

    @pytest.mark.parametrize("jitter_ns", [0, 1, 99])
    def test_jitter_in_range_accepted(self, jitter_ns):
        timer = PeriodicTimer(
            EventScheduler(), 100, lambda: None, jitter_ns=jitter_ns, seed=1
        )
        assert timer.period == 100

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            engine = EventScheduler()
            ticks = []
            PeriodicTimer(
                engine, 100, lambda: ticks.append(engine.now), jitter_ns=30, seed=seed
            ).start()
            engine.run_until(5_000)
            return ticks

        assert run(7) == run(7)
        assert run(7) != run(8)
