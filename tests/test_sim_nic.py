"""Host NIC: pacing arbitration, reliability, DCQCN attach points."""

import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.sim.network import Network
from repro.sim.nic import NicConfig
from repro.sim.switch import SwitchConfig
from repro.sim.topology import single_switch


def star(n_hosts=3, **kwargs):
    return single_switch(n_hosts, **kwargs)


class TestTransmitScheduling:
    def test_single_flow_saturates_line(self):
        net, _, hosts = star()
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(5))
        rate = flow.bytes_delivered * 8e9 / units.ms(5)
        assert rate > units.gbps(39)

    def test_two_local_flows_share_port_evenly(self):
        """Two line-rate flows from one host interleave ~50/50."""
        net, _, hosts = star(4)
        f1 = net.add_flow(hosts[0], hosts[1], cc="none")
        f2 = net.add_flow(hosts[0], hosts[2], cc="none")
        f1.set_greedy()
        f2.set_greedy()
        net.run_for(units.ms(5))
        r1 = f1.bytes_delivered
        r2 = f2.bytes_delivered
        assert abs(r1 - r2) / max(r1, r2) < 0.05

    def test_paced_flows_sum_correctly(self):
        net, _, hosts = star(4)
        f1 = net.add_flow(hosts[0], hosts[1], cc="none", static_rate_bps=units.gbps(5))
        f2 = net.add_flow(hosts[0], hosts[2], cc="none", static_rate_bps=units.gbps(10))
        f1.set_greedy()
        f2.set_greedy()
        net.run_for(units.ms(10))
        assert f1.bytes_delivered * 8e9 / units.ms(10) == pytest.approx(
            units.gbps(5), rel=0.03
        )
        assert f2.bytes_delivered * 8e9 / units.ms(10) == pytest.approx(
            units.gbps(10), rel=0.03
        )

    def test_delayed_start(self):
        net, _, hosts = star()
        flow = net.add_flow(hosts[0], hosts[1], cc="none", start_ns=units.ms(2))
        flow.set_greedy()
        net.run_for(units.ms(1))
        assert flow.bytes_delivered == 0
        net.run_for(units.ms(2))
        assert flow.bytes_delivered > 0

    def test_flow_starts_at_line_rate_with_dcqcn(self):
        """Hyper-fast start: no slow-start phase."""
        net, _, hosts = star()
        flow = net.add_flow(hosts[0], hosts[1], cc="dcqcn")
        flow.set_greedy()
        net.run_for(units.us(100))
        # ~100 us at 40 Gbps = ~500 KB minus one RTT of pipe fill
        assert flow.bytes_sent > units.kb(400)


class TestDcqcnAttach:
    def test_congestion_generates_cnps_and_cuts(self):
        net, switch, hosts = star(4)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:3]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        assert switch.marked_packets > 0
        assert all(f.rp.cnps_received > 0 for f in flows)
        assert all(f.rp.rc_bps < units.gbps(40) for f in flows)

    def test_no_cnps_without_congestion(self):
        net, switch, hosts = star()
        flow = net.add_flow(hosts[0], hosts[1], cc="dcqcn")
        flow.set_greedy()
        net.run_for(units.ms(5))
        assert flow.rp.cnps_received == 0
        assert hosts[1].nic.cnps_sent == 0

    def test_cnp_counters_line_up(self):
        net, _, hosts = star(4)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:3]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        sent = receiver.nic.cnps_sent
        got = sum(h.nic.cnps_received for h in hosts[:3])
        assert sent == got  # lossless fabric: every CNP arrives

    def test_byte_counter_fed_by_tx(self):
        params = DCQCNParams(byte_counter_bytes=units.kb(100))
        net, _, hosts = star(4, dcqcn_params=params)
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="dcqcn") for h in hosts[:3]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        assert any(f.rp.byte_counter_count > 0 or f.rp.cnps_received > 0 for f in flows)


class TestReliability:
    def lossy_star(self):
        """Tiny buffer, no PFC: guaranteed drops under incast."""
        profile_config = SwitchConfig(pfc_mode="off")
        from repro.buffers.thresholds import SwitchProfile

        profile_config.profile = SwitchProfile(
            buffer_bytes=units.kb(60), headroom_bytes=0, num_ports=8
        )
        return star(5, switch_config=profile_config)

    def test_drops_trigger_nacks_and_recovery(self):
        net, switch, hosts = self.lossy_star()
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="none") for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        assert switch.dropped_packets > 0
        assert sum(h.nic.nacks_sent for h in [receiver]) > 0
        assert sum(f.retransmitted_packets for f in flows) > 0
        # goodput continues despite the loss
        assert all(f.bytes_delivered > 0 for f in flows)

    def test_in_order_delivery_only(self):
        """bytes_delivered counts in-order bytes: never exceeds sent."""
        net, switch, hosts = self.lossy_star()
        receiver = hosts[-1]
        flows = [net.add_flow(h, receiver, cc="none") for h in hosts[:4]]
        for flow in flows:
            flow.set_greedy()
        net.run_for(units.ms(5))
        for flow in flows:
            assert flow.bytes_delivered <= flow.bytes_sent

    def test_message_completes_despite_loss(self):
        net, switch, hosts = self.lossy_star()
        receiver = hosts[-1]
        # background incast creating loss
        for h in hosts[:3]:
            bg = net.add_flow(h, receiver, cc="none")
            bg.set_greedy()
        flow = net.add_flow(hosts[3], receiver, cc="none")
        message = flow.send_message(units.mb(1))
        net.run_for(units.ms(50))
        assert message.completed

    def test_rto_recovers_tail_loss(self):
        """Drop the very last packets: only the timeout can recover."""
        net, switch, hosts = star(
            3, nic_config=NicConfig(rto_ns=units.ms(1))
        )
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        message = flow.send_message(units.kb(10))
        # sabotage: receiver silently loses the first delivery attempt
        # by rewinding its own expected_seq is not possible; instead we
        # emulate tail loss by dropping at the switch via a full buffer
        # -- simpler: force the sender to "lose" its progress and rely
        # on NACK-free silence + RTO
        net.run_for(units.us(20))
        rx = hosts[1].nic.rx_state(flow.flow_id)
        rx.expected_seq = 0  # pretend nothing arrived (dropped tail)
        flow.bytes_delivered = 0
        net.run_for(units.ms(10))
        assert hosts[0].nic.rto_fires >= 0  # timer path exercised
        assert message.completed  # eventually healed


class TestAckCadence:
    def test_periodic_acks_bound_outstanding_state(self):
        net, _, hosts = star(3, nic_config=NicConfig(ack_interval_packets=16))
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(2))
        assert hosts[1].nic.acks_sent > 10
        # ack point trails the send pointer by a bounded amount
        assert flow.next_seq - flow.acked_seq < 16 + 64

    def test_control_uses_high_priority(self):
        net, _, hosts = star()
        flow = net.add_flow(hosts[0], hosts[1], cc="dcqcn")
        flow.send_message(units.kb(100))
        net.run_for(units.ms(1))
        # ACK arrived back at the sender: message completed
        assert flow.messages_completed == 1


class TestQpRetryLimit:
    def test_flow_fails_after_retry_budget(self):
        """A black-holed QP gives up after max_rto_retries (RoCE
        retry_cnt semantics) instead of retrying forever."""
        net, switch, hosts = star(
            3, nic_config=NicConfig(rto_ns=units.us(200), max_rto_retries=3)
        )
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        # black hole: every frame toward the receiver is lost
        switch.port_to(hosts[1].nic).set_error_rate(0.999999, seed=1)
        flow.send_message(units.kb(50))
        net.run_for(units.ms(10))
        assert flow.failed
        assert hosts[0].nic.failed_flows == 1
        assert not flow.has_backlog()

    def test_default_retries_forever(self):
        net, switch, hosts = star(3)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.send_message(units.kb(50))
        net.run_for(units.ms(5))
        assert not flow.failed
        assert flow.messages_completed == 1

    def test_progress_resets_retry_budget(self):
        net, switch, hosts = star(
            3, nic_config=NicConfig(rto_ns=units.us(500), max_rto_retries=2)
        )
        switch.port_to(hosts[1].nic).set_error_rate(0.3, seed=5)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        net.run_for(units.ms(10))
        # 30% loss stalls repeatedly but progress keeps resetting the
        # budget: the flow survives
        assert not flow.failed
        assert flow.bytes_delivered > 0
