"""Unit tests for the FCT analytics and the stdlib figure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.fct import (
    BUCKETS,
    MICE_THRESHOLD_BYTES,
    base_rtt_ns,
    bucket_of,
    completed_transfers,
    fct_table,
    ideal_fct_ns,
    records_from_runs,
    serialization_ns,
    slowdown,
    slowdown_cdf,
    slowdowns,
    summarize_slowdowns,
)
from repro.analysis.figures import (
    matplotlib_available,
    nice_ticks,
    ramp_color,
    svg_heatmap,
    svg_line_chart,
    write_heatmap,
    write_line_chart,
)
from repro.runner import RunResult
from repro.telemetry import FlowStats

RATE = 40e9


def transfer(size_bytes, fct_ns, msg=0, flow="probe"):
    return FlowStats(
        flow=flow,
        flow_id=1,
        msg=msg,
        cc="dcqcn",
        size_bytes=size_bytes,
        start_ns=0,
        first_byte_ns=1,
        finish_ns=fct_ns,
        fct_ns=fct_ns,
        retransmits=0,
        pauses_rx=0,
        line_rate_bps=RATE,
        mtu_bytes=1000,
    )


def open_row(flow="greedy"):
    return FlowStats(
        flow=flow,
        flow_id=2,
        msg=-1,
        cc="dcqcn",
        size_bytes=123_456,
        start_ns=0,
        first_byte_ns=None,
        finish_ns=None,
        fct_ns=None,
        retransmits=0,
        pauses_rx=0,
        line_rate_bps=RATE,
        mtu_bytes=1000,
    )


class TestIdealFct:
    def test_serialization(self):
        assert serialization_ns(1000, RATE) == pytest.approx(200.0)

    def test_base_rtt_single_switch(self):
        # 1 MTU store-and-forward + 4 propagation legs + 2 control frames
        expected = 200.0 + 4 * 500 + 2 * serialization_ns(64, RATE)
        assert base_rtt_ns(hops=1) == pytest.approx(expected)

    def test_base_rtt_grows_with_hops(self):
        assert base_rtt_ns(hops=5) > base_rtt_ns(hops=3) > base_rtt_ns(hops=1)

    def test_whole_packet_padding(self):
        rtt = base_rtt_ns()
        one_packet = ideal_fct_ns(1, RATE, rtt)
        assert one_packet == pytest.approx(serialization_ns(1000, RATE) + rtt)
        # 1001 bytes needs a second (padded) packet
        assert ideal_fct_ns(1001, RATE, rtt) == pytest.approx(
            serialization_ns(2000, RATE) + rtt
        )


class TestBuckets:
    def test_threshold_is_inclusive(self):
        assert bucket_of(MICE_THRESHOLD_BYTES) == "mice"
        assert bucket_of(MICE_THRESHOLD_BYTES + 1) == "elephants"

    def test_bucket_order(self):
        assert BUCKETS == ("all", "mice", "elephants")


class TestSlowdowns:
    def test_open_rows_are_excluded(self):
        rows = [transfer(20_000, 10_000), open_row()]
        assert completed_transfers(rows) == rows[:1]
        assert len(slowdowns(rows, base_rtt_ns())) == 1

    def test_slowdown_of_ideal_transfer_is_one(self):
        rtt = base_rtt_ns()
        ideal = ideal_fct_ns(20_000, RATE, rtt)
        record = transfer(20_000, int(ideal))
        assert slowdown(record, rtt) == pytest.approx(1.0, rel=1e-4)

    def test_slowdown_raises_on_open_row(self):
        with pytest.raises(ValueError, match="did not complete"):
            slowdown(open_row(), base_rtt_ns())

    def test_summaries_split_mice_and_elephants(self):
        rtt = base_rtt_ns()
        rows = [
            transfer(20_000, 2 * int(ideal_fct_ns(20_000, RATE, rtt)), msg=m)
            for m in range(5)
        ] + [
            transfer(
                1_000_000,
                3 * int(ideal_fct_ns(1_000_000, RATE, rtt)),
                msg=m,
                flow="eleph",
            )
            for m in range(5)
        ]
        summaries = summarize_slowdowns(rows, rtt)
        assert set(summaries) == set(BUCKETS)
        assert summaries["mice"].count == 5
        assert summaries["mice"].p50 == pytest.approx(2.0, rel=1e-3)
        assert summaries["elephants"].p99 == pytest.approx(3.0, rel=1e-3)
        assert summaries["all"].count == 10
        table = fct_table(summaries)
        assert "mice" in table and "elephants" in table

    def test_empty_buckets_are_omitted(self):
        rtt = base_rtt_ns()
        rows = [transfer(20_000, 50_000)]
        summaries = summarize_slowdowns(rows, rtt)
        assert set(summaries) == {"all", "mice"}

    def test_cdf_is_monotone_and_ends_at_one(self):
        rtt = base_rtt_ns()
        rows = [transfer(20_000, 10_000 + 997 * m, msg=m) for m in range(20)]
        for points in slowdown_cdf(rows, rtt).values():
            fractions = [f for _, f in points]
            assert fractions == sorted(fractions)
            assert fractions[-1] == pytest.approx(1.0)
            xs = [x for x, _ in points]
            assert xs == sorted(xs)

    def test_records_from_runs_flattens(self):
        run = RunResult(
            label="x",
            seed=1,
            warmup_ns=0,
            duration_ns=1000,
            flow_stats=[transfer(20_000, 10_000).to_json(), open_row().to_json()],
        )
        records = records_from_runs([run, run])
        assert len(records) == 4


class TestFigures:
    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0.3, 9.7)
        assert ticks[0] <= 0.3 and ticks[-1] >= 9.7
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing from the 1-2-5 ladder

    def test_ramp_color_shape(self):
        for fraction in (0.0, 0.5, 1.0):
            color = ramp_color(fraction)
            assert color.startswith("#") and len(color) == 7

    def test_line_chart_is_valid_svg(self):
        svg = svg_line_chart(
            {"mice": [(1.0, 0.5), (2.0, 1.0)], "elephants": [(1.5, 1.0)]},
            title="slowdown CDF",
            xlabel="slowdown",
            ylabel="fraction",
        )
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_line_chart_rejects_empty(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            svg_line_chart({"mice": []})

    def test_heatmap_is_valid_svg_with_none_cells(self):
        svg = svg_heatmap(
            ["2", "8"],
            ["K5/50 P0.01", "K5/200 P0.1"],
            [[1.5, None], [2.0, 9.0]],
            title="grid",
        )
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_heatmap_rejects_ragged_grid(self):
        with pytest.raises(ValueError, match="mismatch"):
            svg_heatmap(["a"], ["r1"], [[1.0, 2.0]])

    def test_writers_emit_svg_files(self, tmp_path):
        chart = write_line_chart(
            tmp_path / "cdf", {"mice": [(1.0, 0.5), (2.0, 1.0)]}
        )
        heat = write_heatmap(tmp_path / "grid", ["2"], ["r"], [[1.0]])
        for paths in (chart, heat):
            assert paths[0].suffix == ".svg" and paths[0].exists()
            ET.parse(paths[0])
            # matplotlib is optional: .png only rides along when present
            assert (len(paths) == 2) == matplotlib_available()
