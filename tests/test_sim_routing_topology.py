"""Route computation and topology builders."""

import pytest

from repro import units
from repro.sim.routing import adjacency, hop_distances, install_routes
from repro.sim.topology import (
    dumbbell,
    parking_lot,
    single_switch,
    three_tier_clos,
)


class TestSingleSwitch:
    def test_structure(self):
        net, switch, hosts = single_switch(4)
        assert len(hosts) == 4
        assert len(switch.ports) == 4
        assert len(net.switches) == 1

    def test_every_host_routable(self):
        net, switch, hosts = single_switch(4)
        for host in hosts:
            assert host.nic.device_id in switch.routing_table

    def test_rejects_single_host(self):
        with pytest.raises(ValueError):
            single_switch(1)

    def test_end_to_end(self):
        net, _, hosts = single_switch(3)
        flow = net.add_flow(hosts[0], hosts[2])
        flow.send_message(units.kb(10))
        net.run_for(units.ms(1))
        assert flow.messages_completed == 1


class TestDumbbell:
    def test_structure(self):
        net, lefts, rights = dumbbell(2, 3)
        assert len(lefts) == 2 and len(rights) == 3
        assert len(net.switches) == 2

    def test_cross_traffic_shares_trunk(self):
        net, lefts, rights = dumbbell(2, 2)
        f1 = net.add_flow(lefts[0], rights[0], cc="none")
        f2 = net.add_flow(lefts[1], rights[1], cc="none")
        f1.set_greedy()
        f2.set_greedy()
        net.run_for(units.ms(5))
        total = (f1.bytes_delivered + f2.bytes_delivered) * 8e9 / units.ms(5)
        # both squeeze through one 40G trunk
        assert total < units.gbps(41)
        assert total > units.gbps(35)


class TestParkingLot:
    def test_structure(self):
        net, hosts = parking_lot()
        assert set(hosts) == {"H1", "H2", "H3", "R1", "R2"}

    def test_flow_paths_share_expected_links(self):
        net, hosts = parking_lot()
        f1 = net.add_flow(hosts["H1"], hosts["R1"], cc="none")
        f2 = net.add_flow(hosts["H2"], hosts["R2"], cc="none")
        f1.set_greedy()
        f2.set_greedy()
        net.run_for(units.ms(5))
        trunk = net.switches[0].port_to(net.switches[1])
        # both flows crossed the A->B trunk
        assert trunk.tx_bytes >= f1.bytes_delivered + f2.bytes_delivered


class TestClos:
    def test_structure(self):
        spec = three_tier_clos(hosts_per_tor=3)
        assert len(spec.tors) == 4
        assert len(spec.leaves) == 4
        assert len(spec.spines) == 2
        assert len(spec.all_hosts()) == 12

    def test_tor_port_counts(self):
        spec = three_tier_clos(hosts_per_tor=3)
        # 2 leaf uplinks + 3 hosts
        assert all(len(tor.ports) == 5 for tor in spec.tors)

    def test_leaf_port_counts(self):
        spec = three_tier_clos(hosts_per_tor=3)
        # 2 ToRs + 2 spines
        assert all(len(leaf.ports) == 4 for leaf in spec.leaves)

    def test_cross_pod_ecmp_width(self):
        """A ToR has two equal-cost uplinks toward a cross-pod host."""
        spec = three_tier_clos(hosts_per_tor=1)
        t1 = spec.tors[0]
        far_host = spec.host(3, 0)
        assert len(t1.route_to(far_host.nic.device_id)) == 2

    def test_local_host_single_route(self):
        spec = three_tier_clos(hosts_per_tor=2)
        t1 = spec.tors[0]
        local = spec.host(0, 0)
        assert len(t1.route_to(local.nic.device_id)) == 1

    def test_cross_pod_transfer(self):
        spec = three_tier_clos(hosts_per_tor=1)
        flow = spec.net.add_flow(spec.host(0, 0), spec.host(3, 0))
        flow.send_message(units.kb(100))
        spec.net.run_for(units.ms(2))
        assert flow.messages_completed == 1

    def test_same_tor_transfer(self):
        spec = three_tier_clos(hosts_per_tor=2)
        flow = spec.net.add_flow(spec.host(0, 0), spec.host(0, 1))
        flow.send_message(units.kb(100))
        spec.net.run_for(units.ms(2))
        assert flow.messages_completed == 1

    def test_rejects_zero_hosts(self):
        with pytest.raises(ValueError):
            three_tier_clos(hosts_per_tor=0)

    def test_spine_pause_counter_initially_zero(self):
        spec = three_tier_clos(hosts_per_tor=1)
        assert spec.spine_pause_frames() == 0


class TestRoutingPrimitives:
    def test_hop_distances_on_clos(self):
        spec = three_tier_clos(hosts_per_tor=1)
        devices = [s for s in spec.net.switches] + [
            h.nic for h in spec.net.hosts
        ]
        neighbors = adjacency(devices)
        target = spec.host(3, 0).nic
        dist = hop_distances(target, neighbors)
        assert dist[spec.tors[3].device_id] == 1
        assert dist[spec.tors[0].device_id] == 5  # ToR-leaf-spine-leaf-ToR-host

    def test_routes_follow_shortest_paths(self):
        """Next hops strictly decrease the distance to the target."""
        spec = three_tier_clos(hosts_per_tor=2)
        devices = [s for s in spec.net.switches] + [h.nic for h in spec.net.hosts]
        neighbors = adjacency(devices)
        for host in spec.net.hosts:
            dist = hop_distances(host.nic, neighbors)
            for switch in spec.net.switches:
                for port_index in switch.route_to(host.nic.device_id):
                    peer = switch.ports[port_index].peer.owner
                    assert dist[peer.device_id] == dist[switch.device_id] - 1
