"""Unit-conversion helpers."""

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestTimeConversions:
    def test_us(self):
        assert units.us(50) == 50_000

    def test_ms(self):
        assert units.ms(1.5) == 1_500_000

    def test_seconds(self):
        assert units.seconds(2) == 2_000_000_000

    def test_ns_rounds(self):
        assert units.ns(1.6) == 2

    def test_roundtrip_to_seconds(self):
        assert units.to_seconds(units.seconds(3)) == 3.0

    def test_roundtrip_to_us(self):
        assert units.to_us(units.us(55)) == 55.0

    def test_roundtrip_to_ms(self):
        assert units.to_ms(units.ms(7)) == 7.0

    @given(st.integers(min_value=0, max_value=10**9))
    def test_us_monotone(self, value):
        assert units.us(value + 1) > units.us(value)


class TestSizeConversions:
    def test_kb_is_decimal(self):
        # the paper's 12 MB buffer only reproduces t_PFC = 24.47 KB
        # with decimal megabytes
        assert units.kb(1) == 1000

    def test_mb(self):
        assert units.mb(12) == 12_000_000

    def test_gb(self):
        assert units.gb(1) == 10**9

    def test_fractional_kb(self):
        assert units.kb(22.4) == 22_400

    def test_to_kb(self):
        assert units.to_kb(5_000) == 5.0


class TestRates:
    def test_gbps(self):
        assert units.gbps(40) == 40e9

    def test_mbps(self):
        assert units.mbps(40) == 40e6

    def test_to_gbps(self):
        assert units.to_gbps(40e9) == 40.0

    def test_bytes_per_ns(self):
        # 40 Gbps = 5 bytes per ns
        assert units.bytes_per_ns(units.gbps(40)) == pytest.approx(5.0)


class TestSerializationTime:
    def test_mtu_at_40g(self):
        # 1000 B at 40 Gbps = 200 ns exactly
        assert units.serialization_time_ns(1000, units.gbps(40)) == 200

    def test_rounds_up(self):
        # 64 B at 40 Gbps = 12.8 ns -> 13
        assert units.serialization_time_ns(64, units.gbps(40)) == 13

    def test_zero_bytes(self):
        assert units.serialization_time_ns(0, units.gbps(40)) == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            units.serialization_time_ns(1000, 0)

    @given(
        st.integers(min_value=1, max_value=10**7),
        st.floats(min_value=1e6, max_value=1e12),
    )
    def test_never_underestimates(self, size, rate):
        ns = units.serialization_time_ns(size, rate)
        assert ns >= size * 8 / rate * 1e9 - 1e-6

    @given(st.integers(min_value=1, max_value=10**6))
    def test_additive_upper_bound(self, size):
        """Rounding up never costs more than 1 ns per packet."""
        rate = units.gbps(40)
        exact = size * 8 / rate * 1e9
        assert units.serialization_time_ns(size, rate) <= exact + 1
