"""RP algorithm: the DCQCN rate state machine (Figure 7, Eqs 1-4)."""

import pytest

from repro import units
from repro.core.params import DCQCNParams
from repro.core.rp import ReactionPoint, RpPhase
from repro.engine import EventScheduler

LINE = units.gbps(40)


def make_rp(engine=None, **overrides):
    engine = engine or EventScheduler()
    params = DCQCNParams(rate_increase_timer_jitter_ns=0, **overrides)
    return engine, ReactionPoint(engine, params, LINE)


class TestInitialState:
    def test_starts_at_line_rate(self):
        """DCQCN has no slow start."""
        _, rp = make_rp()
        assert rp.rc_bps == LINE
        assert rp.rt_bps == LINE

    def test_inactive_until_first_cnp(self):
        _, rp = make_rp()
        assert not rp.active

    def test_no_timer_events_while_idle(self):
        engine, rp = make_rp()
        engine.run_until(units.ms(10))
        assert rp.increase_events == 0

    def test_alpha_reported_as_initial(self):
        engine, rp = make_rp()
        engine.run_until(units.ms(5))
        assert rp.current_alpha() == 1.0


class TestCutSemantics:
    def test_first_cnp_halves_rate(self):
        """alpha starts at 1, so the first cut is R_C * (1 - 1/2)."""
        _, rp = make_rp()
        rp.on_cnp()
        assert rp.rc_bps == pytest.approx(LINE / 2)

    def test_target_remembers_pre_cut_rate(self):
        _, rp = make_rp()
        rp.on_cnp()
        assert rp.rt_bps == LINE

    def test_equation_1_order(self):
        """The cut uses alpha *before* its own update."""
        _, rp = make_rp()
        rp.on_cnp()  # alpha was 1 -> cut 50%; alpha stays (1-g)+g = 1
        first = rp.rc_bps
        rp.on_cnp()
        assert rp.rc_bps == pytest.approx(first * 0.5)

    def test_rate_never_below_min(self):
        _, rp = make_rp()
        for _ in range(200):
            rp.on_cnp()
        assert rp.rc_bps >= rp.params.min_rate_bps

    def test_cnp_resets_counters(self):
        engine, rp = make_rp()
        rp.on_cnp()
        engine.run_until(units.us(300))  # a few timer events
        assert rp.timer_count > 0
        rp.on_cnp()
        assert rp.timer_count == 0
        assert rp.byte_counter_count == 0

    def test_cnp_counter(self):
        _, rp = make_rp()
        rp.on_cnp()
        rp.on_cnp()
        assert rp.cnps_received == 2


class TestAlphaDynamics:
    def test_alpha_decays_without_feedback(self):
        """Equation 2: alpha *= (1-g) every K without a CNP."""
        engine, rp = make_rp()
        rp.on_cnp()  # engage; alpha == 1 afterwards
        engine.run_until(engine.now + 10 * rp.params.alpha_timer_ns)
        expected = (1 - rp.params.g) ** 10
        assert rp.current_alpha() == pytest.approx(expected)

    def test_lazy_decay_matches_step_count(self):
        engine, rp = make_rp()
        rp.on_cnp()
        k = rp.params.alpha_timer_ns
        engine.run_until(engine.now + 3 * k + k // 2)  # 3.5 periods -> 3 decays
        assert rp.current_alpha() == pytest.approx((1 - rp.params.g) ** 3)

    def test_second_cut_uses_decayed_alpha(self):
        engine, rp = make_rp()
        rp.on_cnp()
        engine.run_until(engine.now + 20 * rp.params.alpha_timer_ns)
        alpha = rp.current_alpha()
        rate = rp.rc_bps
        rp.on_cnp()
        assert rp.rc_bps == pytest.approx(rate * (1 - alpha / 2), rel=1e-6)

    def test_fresh_episode_resets_alpha(self):
        """After full recovery the limiter is released; a later episode
        starts from initial alpha again."""
        engine, rp = make_rp()
        rp.on_cnp()
        # force instant recovery by brute timer events
        while rp.active:
            engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        rp.on_cnp()
        assert rp.rc_bps == pytest.approx(LINE / 2)


class TestIncreasePhases:
    def test_phase_starts_in_fast_recovery(self):
        _, rp = make_rp()
        rp.on_cnp()
        assert rp.phase is RpPhase.FAST_RECOVERY

    def test_fast_recovery_halves_gap(self):
        engine, rp = make_rp()
        rp.on_cnp()
        rc, rt = rp.rc_bps, rp.rt_bps
        engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        assert rp.rc_bps == pytest.approx((rc + rt) / 2)
        assert rp.rt_bps == pytest.approx(rt)  # target unchanged in FR

    def test_additive_after_f_timer_events(self):
        engine, rp = make_rp()
        rp.on_cnp()
        f = rp.params.fast_recovery_threshold
        for _ in range(f):
            engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        assert rp.timer_count == f
        assert rp.phase is RpPhase.ADDITIVE_INCREASE

    def test_additive_increase_bumps_target(self):
        engine, rp = make_rp()
        rp.on_cnp()
        f = rp.params.fast_recovery_threshold
        for _ in range(f):
            engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        target = rp.rt_bps
        engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        assert rp.rt_bps == pytest.approx(
            min(target + rp.params.rai_bps, LINE)
        )

    def test_hyper_increase_needs_both_counters(self):
        """min(T, BC) > F -> hyper; timer events alone stay additive."""
        engine, rp = make_rp()
        rp.on_cnp()
        for _ in range(20):
            engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
        assert rp.phase is RpPhase.ADDITIVE_INCREASE

    def test_hyper_increase_via_bytes_and_timer(self):
        engine, rp = make_rp(byte_counter_bytes=units.kb(100))
        rp.on_cnp()
        f = rp.params.fast_recovery_threshold
        for _ in range(f + 1):
            engine.run_until(engine.now + rp.params.rate_increase_timer_ns)
            rp.on_bytes_sent(units.kb(100))
        assert rp.phase is RpPhase.HYPER_INCREASE

    def test_byte_counter_triggers_increase(self):
        _, rp = make_rp(byte_counter_bytes=units.kb(100))
        rp.on_cnp()
        rc = rp.rc_bps
        rp.on_bytes_sent(units.kb(100))
        assert rp.byte_counter_count == 1
        assert rp.rc_bps > rc

    def test_byte_counter_accumulates_partial(self):
        _, rp = make_rp(byte_counter_bytes=units.kb(100))
        rp.on_cnp()
        rp.on_bytes_sent(units.kb(60))
        assert rp.byte_counter_count == 0
        rp.on_bytes_sent(units.kb(60))
        assert rp.byte_counter_count == 1

    def test_bytes_ignored_while_unconstrained(self):
        _, rp = make_rp()
        rp.on_bytes_sent(units.mb(100))
        assert rp.byte_counter_count == 0


class TestRecoveryAndQuiescence:
    def test_rate_never_exceeds_line_rate(self):
        engine, rp = make_rp()
        rp.on_cnp()
        engine.run_until(engine.now + units.ms(500))
        assert rp.rc_bps <= LINE
        assert rp.rt_bps <= LINE

    def test_eventual_full_recovery(self):
        engine, rp = make_rp()
        rp.on_cnp()
        engine.run_until(engine.now + units.seconds(2))
        assert rp.rc_bps == LINE
        assert not rp.active

    def test_quiescent_after_recovery(self):
        """No more timer events once back at line rate."""
        engine, rp = make_rp()
        rp.on_cnp()
        engine.run_until(engine.now + units.seconds(2))
        before = engine.events_processed
        engine.run_until(engine.now + units.ms(100))
        assert engine.events_processed == before

    def test_rate_change_callback(self):
        engine = EventScheduler()
        rates = []
        params = DCQCNParams(rate_increase_timer_jitter_ns=0)
        rp = ReactionPoint(engine, params, LINE, on_rate_change=rates.append)
        rp.on_cnp()
        assert rates[-1] == pytest.approx(LINE / 2)
        engine.run_until(units.us(60))
        assert len(rates) >= 2
        assert rates[-1] > rates[0]

    def test_rejects_nonpositive_line_rate(self):
        with pytest.raises(ValueError):
            ReactionPoint(EventScheduler(), DCQCNParams(), 0)
