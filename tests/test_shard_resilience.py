"""Supervision + checkpoint/resume: faults change nothing but the report.

The contract of DESIGN.md §15, end to end: a sharded run that loses a
worker (SIGKILL), sees one stall, degrades to serial, or is
interrupted and resumed, must produce a RunResult **bit-identical** to
the undisturbed run — counters, metrics, invariant report, flow_stats.
The only trace of the ordeal is the ``shard_report`` (absent from an
undisturbed run, so these tests pop it before comparing) and, for a
run the policy cannot save, a structured
:class:`~repro.shard.supervise.ShardRunError` instead of a hang.

The fault injection uses the ``REPRO_SHARD_CHAOS`` hook
(:mod:`repro.shard.boundary`): the targeted shard's first incarnation
SIGKILLs itself (or sleeps) right before a chosen live barrier
exchange, exactly the mid-protocol death the supervisor must absorb.
"""

import dataclasses

import pytest

from repro import units
from repro.experiments.fabric_scale import fabric_incast_scenario
from repro.invariants import InvariantConfig
from repro.runner import cache
from repro.runner.resilience import RESUME_ENV
from repro.runner.scenario import run_scenario_inline
from repro.shard import SHARD_CHAOS_ENV, ShardingSpec, ShardRunError
from repro.shard import runner as shard_runner
from repro.shard.checkpoint import SHARD_CHECKPOINT_ENV


def _scenario():
    return dataclasses.replace(
        fabric_incast_scenario(k=4, duration_ns=units.us(200)),
        warmup_ns=units.us(50),
        invariants=InvariantConfig(mode="strict"),
        label="shard-resilience",
    )


SEED = 7


@pytest.fixture(scope="module")
def serial_json():
    result, _ = run_scenario_inline(_scenario(), SEED)
    return result.to_json()


def _sharded_json(monkeypatch, tmp_path, spec, chaos=None, seed=SEED):
    """One sharded run in an isolated results dir; returns
    (stripped result json, shard_report)."""
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    if chaos is not None:
        monkeypatch.setenv(SHARD_CHAOS_ENV, chaos)
    else:
        monkeypatch.delenv(SHARD_CHAOS_ENV, raising=False)
    scenario = dataclasses.replace(_scenario(), sharding=spec)
    try:
        result, _ = run_scenario_inline(scenario, seed)
    finally:
        monkeypatch.delenv(SHARD_CHAOS_ENV, raising=False)
    data = result.to_json()
    report = data.pop("shard_report", {})
    for gauge in ("shard.count", "shard.stall_fraction"):
        data["metrics"]["gauges"].pop(gauge, None)
    return data, report


class TestWorkerKill:
    def test_sigkill_mid_run_restarts_bit_identical(
        self, monkeypatch, tmp_path, serial_json
    ):
        data, report = _sharded_json(
            monkeypatch,
            tmp_path,
            ShardingSpec(shards=2, max_restarts=2),
            chaos="kill:1:2",
        )
        assert data == serial_json
        assert report["mode"] == "sharded"
        assert report["restarts"] == 1
        (failure,) = report["failures"]
        assert failure["shard_id"] == 1
        assert failure["kind"] == "death"
        assert failure["action"] == "restart"

    def test_sigkill_at_four_shards(self, monkeypatch, tmp_path, serial_json):
        data, report = _sharded_json(
            monkeypatch,
            tmp_path,
            ShardingSpec(shards=4, max_restarts=1),
            chaos="kill:3:1",
        )
        assert data == serial_json
        assert report["restarts"] == 1
        assert report["failures"][0]["shard_id"] == 3

    def test_restart_works_without_disk_checkpointing(
        self, monkeypatch, tmp_path, serial_json
    ):
        # the replay log lives in parent memory: restarts must not
        # depend on the on-disk journal being enabled
        monkeypatch.setenv(SHARD_CHECKPOINT_ENV, "off")
        data, report = _sharded_json(
            monkeypatch,
            tmp_path,
            ShardingSpec(shards=2, max_restarts=1),
            chaos="kill:0:3",
        )
        assert data == serial_json
        assert report["restarts"] == 1


class TestDegradationLadder:
    def test_exhausted_budget_degrades_to_serial_same_answer(
        self, monkeypatch, tmp_path, serial_json
    ):
        data, report = _sharded_json(
            monkeypatch,
            tmp_path,
            ShardingSpec(shards=2, max_restarts=0),
            chaos="kill:0:2",
        )
        assert data == serial_json
        assert report["mode"] == "serial-degraded"
        assert report["failures"][0]["action"] == "degrade"
        assert shard_runner.LAST_STATS["degraded"] is True

    def test_degradation_disabled_raises_structured_error(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        monkeypatch.setenv(SHARD_CHAOS_ENV, "kill:0:1")
        scenario = dataclasses.replace(
            _scenario(),
            sharding=ShardingSpec(shards=2, max_restarts=0, degrade=False),
        )
        with pytest.raises(ShardRunError) as excinfo:
            run_scenario_inline(scenario, SEED)
        failure = excinfo.value.failure
        assert failure.kind == "death"
        assert failure.action == "abort"
        assert failure.shard_id == 0

    def test_stall_detection_recycles_the_silent_worker(
        self, monkeypatch, tmp_path, serial_json
    ):
        # shard 0 sleeps 60s mid-protocol; a 2s deadline must catch it
        data, report = _sharded_json(
            monkeypatch,
            tmp_path,
            ShardingSpec(shards=2, max_restarts=1, stall_timeout_s=2.0),
            chaos="stall:0:2:60",
        )
        assert data == serial_json
        assert report["failures"][0]["kind"] == "stall"
        assert report["restarts"] == 1


class TestInterruptAndResume:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_parent_interrupt_then_resume_bit_identical(
        self, monkeypatch, tmp_path, serial_json, shards
    ):
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        scenario = dataclasses.replace(
            _scenario(),
            sharding=ShardingSpec(shards=shards, checkpoint_every=2),
        )
        # ctrl-C stand-in: the parent aborts after three routed rounds
        monkeypatch.setattr(shard_runner, "_TEST_ABORT_AFTER_ROUNDS", 3)
        with pytest.raises(KeyboardInterrupt):
            run_scenario_inline(scenario, SEED)
        monkeypatch.setattr(shard_runner, "_TEST_ABORT_AFTER_ROUNDS", None)
        journals = list((tmp_path / ".checkpoints" / "shard").iterdir())
        assert len(journals) == 1  # the interrupted run left its journal

        monkeypatch.setenv(RESUME_ENV, "on")
        result, _ = run_scenario_inline(scenario, SEED)
        data = result.to_json()
        report = data.pop("shard_report")
        for gauge in ("shard.count", "shard.stall_fraction"):
            data["metrics"]["gauges"].pop(gauge, None)
        assert data == serial_json
        assert report["resumed_barriers"] == 3
        assert not journals[0].exists()  # consumed on success

    def test_without_resume_flag_the_journal_is_ignored(
        self, monkeypatch, tmp_path, serial_json
    ):
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        scenario = dataclasses.replace(
            _scenario(), sharding=ShardingSpec(shards=2)
        )
        monkeypatch.setattr(shard_runner, "_TEST_ABORT_AFTER_ROUNDS", 2)
        with pytest.raises(KeyboardInterrupt):
            run_scenario_inline(scenario, SEED)
        monkeypatch.setattr(shard_runner, "_TEST_ABORT_AFTER_ROUNDS", None)
        monkeypatch.delenv(RESUME_ENV, raising=False)
        result, _ = run_scenario_inline(scenario, SEED)
        data = result.to_json()
        assert "shard_report" not in data  # a fresh, undisturbed run
        for gauge in ("shard.count", "shard.stall_fraction"):
            data["metrics"]["gauges"].pop(gauge, None)
        assert data == serial_json

    def test_clean_run_leaves_no_journal(self, monkeypatch, tmp_path):
        monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
        scenario = dataclasses.replace(
            _scenario(), sharding=ShardingSpec(shards=2)
        )
        result, _ = run_scenario_inline(scenario, SEED)
        assert result.shard_report == {}
        shard_dir = tmp_path / ".checkpoints" / "shard"
        assert not shard_dir.exists() or not list(shard_dir.iterdir())


class TestSpecKnobs:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardingSpec(shards=2, checkpoint_every=0)
        with pytest.raises(ValueError):
            ShardingSpec(shards=2, max_restarts=-1)
        with pytest.raises(ValueError):
            ShardingSpec(shards=2, stall_timeout_s=0.0)

    def test_knobs_participate_in_cache_identity(self):
        base = _scenario()
        plain = dataclasses.replace(base, sharding=ShardingSpec(shards=2))
        tuned = dataclasses.replace(
            base,
            sharding=ShardingSpec(shards=2, max_restarts=3, checkpoint=False),
        )
        assert cache.cell_key(
            "run_scenario_cell", {"spec": plain.spec(), "seed": SEED}
        ) != cache.cell_key(
            "run_scenario_cell", {"spec": tuned.spec(), "seed": SEED}
        )
