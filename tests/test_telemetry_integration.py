"""Telemetry wired end-to-end: sim, runner, CLI, acceptance checks."""

import json
import time

import pytest

from repro import units
from repro.runner import (
    FlowSpec,
    RunResult,
    Scenario,
    run_scenario,
    run_scenario_inline,
)
from repro.runner import cache, executor, scale
from repro.sim.monitor import QueueSampler, RateSampler
from repro.sim.network import Network
from repro.sim.topology import single_switch
from repro.telemetry import (
    RingBufferSink,
    SchedulerProfiler,
    Telemetry,
    TelemetrySpec,
    Tracer,
    events,
)


@pytest.fixture
def isolated_results(tmp_path, monkeypatch):
    """Point the cache at a fresh directory and clear stale env knobs."""
    monkeypatch.setenv(cache.RESULTS_ENV, str(tmp_path))
    monkeypatch.delenv(executor.JOBS_ENV, raising=False)
    monkeypatch.delenv(cache.CACHE_ENV, raising=False)
    monkeypatch.delenv(scale.SCALE_ENV, raising=False)


def incast_scenario(telemetry=None, duration_ns=units.ms(1)) -> Scenario:
    return Scenario(
        topology="single_switch",
        topology_kwargs={"n_hosts": 3},
        flows=(
            FlowSpec(name="f0", src="0", dst="2", cc="dcqcn"),
            FlowSpec(name="f1", src="1", dst="2", cc="dcqcn"),
        ),
        duration_ns=duration_ns,
        label="incast-test",
        telemetry=telemetry,
    )


def traced_network(level="full", seed=1):
    telemetry = Telemetry(tracer=Tracer(RingBufferSink(), level=level))
    net = Network(seed=seed, telemetry=telemetry)
    switch = net.new_switch("S")
    hosts = [net.new_host(f"H{i}") for i in range(3)]
    for host in hosts:
        net.connect(host, switch)
    net.build_routes()
    for sender in hosts[:2]:
        net.add_flow(sender, hosts[2], cc="dcqcn").set_greedy()
    return net, telemetry


class TestSimWiring:
    def test_event_times_are_nondecreasing(self):
        net, telemetry = traced_network()
        net.run_for(units.ms(2))
        times = [e["t"] for e in telemetry.tracer.sink.events]
        assert times, "a congested incast must emit events"
        assert all(a <= b for a, b in zip(times, times[1:]))
        assert times[-1] <= net.engine.now

    def test_all_events_satisfy_schema(self):
        net, telemetry = traced_network()
        net.run_for(units.ms(2))
        for event in telemetry.tracer.sink.events:
            assert events.validate_event(event) == []

    def test_traced_cnps_match_counter(self):
        # the acceptance criterion: with tracing enabled, traced CNP
        # events equal the nic.cnp_tx metric exactly
        net, telemetry = traced_network()
        net.run_for(units.ms(5))
        counters = net.metrics_snapshot()["counters"]
        assert counters["nic.cnp_tx"] > 0
        assert counters["trace.np.cnp_tx"] == counters["nic.cnp_tx"]
        assert counters["trace.rp.cut"] == counters["nic.cnp_rx"]

    def test_ecn_marks_match_counter(self):
        net, telemetry = traced_network()
        net.run_for(units.ms(2))
        counters = net.metrics_snapshot()["counters"]
        assert counters["trace.cp.ecn_mark"] == counters["switch.ecn_marked"]

    def test_disabled_tracing_emits_nothing(self):
        net = Network(seed=1)
        switch = net.new_switch("S")
        hosts = [net.new_host(f"H{i}") for i in range(3)]
        for host in hosts:
            net.connect(host, switch)
        net.build_routes()
        for sender in hosts[:2]:
            net.add_flow(sender, hosts[2], cc="dcqcn").set_greedy()
        net.run_for(units.ms(1))
        assert net.tracer is None
        assert switch.tracer is None
        assert all(host.nic.tracer is None for host in net.hosts)
        assert all(flow.rp.tracer is None for flow in net.flows)
        assert net.engine.profiler is None
        snapshot = net.metrics_snapshot()
        assert not any(k.startswith("trace.") for k in snapshot["counters"])

    def test_disabled_tracing_overhead_sanity(self):
        # loose sanity only (not a benchmark): the untraced run must
        # not be slower than the fully traced run by any real margin
        def timed(level):
            start = time.perf_counter()
            if level is None:
                net = Network(seed=3)
            else:
                net = Network(
                    seed=3,
                    telemetry=Telemetry(
                        tracer=Tracer(RingBufferSink(), level=level)
                    ),
                )
            switch = net.new_switch("S")
            hosts = [net.new_host(f"H{i}") for i in range(3)]
            for host in hosts:
                net.connect(host, switch)
            net.build_routes()
            for sender in hosts[:2]:
                net.add_flow(sender, hosts[2], cc="dcqcn").set_greedy()
            net.run_for(units.ms(2))
            return time.perf_counter() - start

        timed(None)  # warm caches
        assert timed(None) < 2.0 * timed("full") + 0.25

    def test_attach_telemetry_after_construction(self):
        net, _, hosts = single_switch(3, seed=2)
        telemetry = net.attach_telemetry(
            Telemetry(tracer=Tracer(RingBufferSink(), level="cc"))
        )
        flow = net.add_flow(hosts[0], hosts[2], cc="dcqcn")
        flow.set_greedy()
        net.run_for(units.ms(2))
        assert net.switches[0].tracer is telemetry.tracer
        assert flow.rp.tracer is telemetry.tracer


class TestSamplers:
    def test_queue_sampler_stops_at_horizon(self):
        net, switch, hosts = single_switch(3, seed=1)
        for sender in hosts[:2]:
            net.add_flow(sender, hosts[2], cc="none").set_greedy()
        port = switch.port_to(hosts[2].nic).index
        sampler = QueueSampler(
            net.engine, switch, port, interval_ns=units.us(10),
            stop_ns=units.us(100),
        )
        net.run_for(units.ms(1))
        assert sampler.detached
        assert len(sampler.samples_bytes) == 10
        assert max(sampler.times_ns) <= units.us(100)

    def test_rate_sampler_stops_at_horizon(self):
        net, _, hosts = single_switch(2, seed=1)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        sampler = RateSampler(
            net.engine, [flow], interval_ns=units.us(50), stop_ns=units.us(200)
        )
        net.run_for(units.ms(1))
        assert sampler.detached
        assert len(sampler.series(flow)) == 4

    def test_detach_stops_future_samples(self):
        net, _, hosts = single_switch(2, seed=1)
        flow = net.add_flow(hosts[0], hosts[1], cc="none")
        flow.set_greedy()
        sampler = RateSampler(net.engine, [flow], interval_ns=units.us(50))
        net.run_for(units.us(120))
        sampler.detach()
        count = len(sampler.series(flow))
        net.run_for(units.ms(1))
        assert len(sampler.series(flow)) == count == 2

    def test_rejects_stop_before_start(self):
        net, _, _ = single_switch(2)
        with pytest.raises(ValueError):
            RateSampler(
                net.engine, [], interval_ns=10, start_ns=100, stop_ns=50
            )

    def test_samplers_publish_to_trace_and_histogram(self):
        net, telemetry = traced_network()
        histogram = telemetry.metrics.histogram("switch.queue_bytes")
        switch = net.switches[0]
        QueueSampler(
            net.engine,
            switch,
            switch.port_to(net.hosts[2].nic).index,
            interval_ns=units.us(10),
            stop_ns=units.ms(1),
            tracer=telemetry.tracer,
            histogram=histogram,
        )
        RateSampler(
            net.engine,
            net.flows,
            interval_ns=units.us(100),
            stop_ns=units.ms(1),
            tracer=telemetry.tracer,
        )
        net.run_for(units.ms(1))
        counts = telemetry.trace_counts()
        assert counts[events.SAMPLE_QUEUE] == 100
        assert counts[events.SAMPLE_RATE] == 20  # 10 ticks x 2 flows
        assert histogram.count == 100


class TestRunnerIntegration:
    def test_run_result_carries_metrics(self, isolated_results):
        (run,) = run_scenario(incast_scenario(), seeds=[1])
        assert run.metric("nic.cnp_tx") > 0
        assert run.metric("pfc.pause_tx") == run.counters["pause_frames"]
        with pytest.raises(KeyError):
            run.metric("nic.nonexistent")

    def test_metrics_survive_json_round_trip(self, isolated_results):
        spec = TelemetrySpec(trace="full", queue_sample_ns=units.us(10))
        (run,) = run_scenario(incast_scenario(telemetry=spec), seeds=[1])
        clone = RunResult.from_json(json.loads(json.dumps(run.to_json())))
        assert clone.metrics == run.metrics
        hist = clone.histogram("switch.queue_bytes")
        assert hist.count > 0
        with pytest.raises(KeyError):
            clone.histogram("no.such.histogram")

    def test_scenario_spec_round_trips_telemetry(self):
        spec = TelemetrySpec(
            trace="cc", sink="null", sample_stride=4,
            rate_sample_ns=units.us(50),
        )
        scenario = incast_scenario(telemetry=spec)
        clone = Scenario.from_spec(
            json.loads(json.dumps(scenario.spec()))
        )
        assert clone == scenario
        assert clone.telemetry == spec

    def test_traced_and_untraced_runs_agree(self, isolated_results):
        # tracing must observe, never perturb: identical throughput
        # and protocol counters with tracing off and fully on
        base = incast_scenario()
        traced = incast_scenario(telemetry=TelemetrySpec(trace="full"))
        (run_off,) = run_scenario(base, seeds=[5], cache=False)
        (run_on,) = run_scenario(traced, seeds=[5], cache=False)
        assert run_on.flows_bps == run_off.flows_bps
        assert (
            run_on.metric("nic.cnp_tx") == run_off.metric("nic.cnp_tx")
        )

    def test_serial_and_parallel_snapshots_identical(self, isolated_results):
        scenario = incast_scenario(telemetry=TelemetrySpec(trace="cc"))
        seeds = [1, 2]
        serial = run_scenario(scenario, seeds, jobs=1, cache=False)
        parallel = run_scenario(scenario, seeds, jobs=2, cache=False)
        assert [r.to_json() for r in serial] == [
            r.to_json() for r in parallel
        ]

    def test_traced_cnp_acceptance_through_runner(self, isolated_results):
        # the ISSUE's acceptance test, end to end through the cell
        # runner: traced CNP events == nic.cnp_tx counter
        scenario = incast_scenario(telemetry=TelemetrySpec(trace="cc"))
        (run,) = run_scenario(scenario, seeds=[3])
        assert run.metric("nic.cnp_tx") > 0
        assert run.metric("trace.np.cnp_tx") == run.metric("nic.cnp_tx")

    def test_inline_runner_exposes_network(self, isolated_results):
        telemetry = Telemetry(tracer=Tracer(RingBufferSink(), level="cc"))
        result, net = run_scenario_inline(
            incast_scenario(), seed=1, telemetry=telemetry
        )
        assert net.telemetry is telemetry
        assert result.flows_bps["f0"] > 0
        assert telemetry.tracer.sink.events

    def test_inline_runner_installs_profiler(self, isolated_results):
        profiler = SchedulerProfiler()
        _, net = run_scenario_inline(
            incast_scenario(), seed=1, profiler=profiler
        )
        assert net.engine.profiler is profiler
        assert profiler.events > 0
        assert "tx_done" in profiler.table()

    def test_jsonl_spec_writes_per_seed_files(self, isolated_results, tmp_path):
        spec = TelemetrySpec(
            trace="cc",
            sink="jsonl",
            path=str(tmp_path / "run-{seed}.jsonl"),
        )
        run_scenario(
            incast_scenario(telemetry=spec), seeds=[4, 5], cache=False
        )
        from repro.telemetry.lint import lint_file

        for seed in (4, 5):
            lines, errors = lint_file(str(tmp_path / f"run-{seed}.jsonl"))
            assert lines > 0
            assert errors == []


class TestTraceReaders:
    def run_traced(self):
        spec = TelemetrySpec(
            trace="full",
            queue_sample_ns=units.us(10),
            rate_sample_ns=units.us(100),
        )
        telemetry = Telemetry.from_spec(spec, seed=1)
        run_scenario_inline(
            incast_scenario(telemetry=spec), seed=1, telemetry=telemetry
        )
        return telemetry.tracer.sink.events

    def test_queue_cdf_and_rate_timeline(self):
        from repro.analysis.trace import (
            event_counts,
            queue_cdf,
            rate_timeline,
        )

        trace = self.run_traced()
        cdf = queue_cdf(trace)
        assert cdf[-1][1] == pytest.approx(1.0)
        timeline = rate_timeline(trace)
        assert set(timeline) == {0, 1}
        counts = event_counts(trace)
        assert counts[events.SAMPLE_QUEUE] == len(cdf)

    def test_pause_counts_and_cut_timeline(self):
        from repro.analysis.trace import pause_counts, rate_cut_timeline

        trace = self.run_traced()
        assert isinstance(pause_counts(trace), dict)
        cuts = rate_cut_timeline(trace)
        assert cuts, "DCQCN incast must cut rates"
        kinds = {kind for series in cuts.values() for _, kind, _ in series}
        assert "cut" in kinds

    def test_readers_accept_jsonl_files(self, tmp_path):
        from repro.analysis.trace import event_counts, read_events

        path = tmp_path / "trace.jsonl"
        trace = self.run_traced()
        path.write_text(
            "".join(json.dumps(event) + "\n" for event in trace)
        )
        assert list(read_events(str(path))) == [dict(e) for e in trace]
        assert event_counts(str(path)) == event_counts(trace)


class TestCli:
    def test_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "unfairness", "victim"):
            assert name in out

    def test_trace_to_file(self, isolated_results, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.telemetry.lint import lint_file

        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        out_path = str(tmp_path / "trace.jsonl")
        assert main(["trace", "smoke", "--out", out_path]) == 0
        lines, errors = lint_file(out_path)
        assert lines > 0
        assert errors == []
        assert "np.cnp_tx" in capsys.readouterr().out

    def test_trace_to_stdout_is_parseable(self, isolated_results, capsys,
                                          monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        assert main(["trace", "smoke", "--level", "cc"]) == 0
        out = capsys.readouterr().out
        decoded = [json.loads(line) for line in out.splitlines() if line]
        assert decoded
        assert all(events.validate_event(event) == [] for event in decoded)

    def test_profile_prints_hotspots(self, isolated_results, capsys,
                                     monkeypatch):
        from repro.cli import main

        monkeypatch.setenv(scale.SCALE_ENV, "smoke")
        assert main(["profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "callback site" in out
        assert "tx_done" in out

    def test_unknown_scenario_rejected(self, capsys):
        from repro.cli import main

        assert main(["trace", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_microbench_alias_registered(self):
        from repro.cli import COMMANDS

        assert "microbench" in COMMANDS
        assert "sec61" in COMMANDS
