"""Shared-buffer switch: forwarding, ECMP, ECN, PFC, accounting."""

import pytest

from repro import units
from repro.buffers.thresholds import SwitchProfile, dynamic_pfc_threshold
from repro.core.params import DCQCNParams
from repro.engine import EventScheduler
from repro.sim.host import Host
from repro.sim.link import connect
from repro.sim.nic import HostNic
from repro.sim.packet import (
    ECN_CE,
    ECN_ECT,
    KIND_DATA,
    Packet,
    data_packet,
    pause_frame,
)
from repro.sim.switch import Switch, SwitchConfig, ecmp_hash


def make_switch(config=None, n_neighbors=3):
    """A switch wired to n stub NICs (hosts 100..)."""
    engine = EventScheduler()
    switch = Switch(engine, 0, "S", config=config)
    nics = []
    for index in range(n_neighbors):
        nic = HostNic(engine, 100 + index, f"h{index}.nic")
        Host(f"h{index}", nic)
        connect(engine, nic, switch, units.gbps(40), 500)
        switch.set_route(nic.device_id, (index,))
        nics.append(nic)
    return engine, switch, nics


class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(1, 2, 3, 4) == ecmp_hash(1, 2, 3, 4)

    def test_flow_sensitivity(self):
        assert ecmp_hash(1, 2, 3, 4) != ecmp_hash(2, 2, 3, 4)

    def test_salt_rerolls(self):
        values = {ecmp_hash(1, 2, 3, salt) % 2 for salt in range(64)}
        assert values == {0, 1}

    def test_direction_independence(self):
        """Forward and reverse five-tuples hash independently."""
        assert ecmp_hash(1, 2, 3, 0) != ecmp_hash(1, 3, 2, 0)

    def test_spread_is_roughly_uniform(self):
        counts = [0, 0]
        for flow in range(2000):
            counts[ecmp_hash(flow, 1, 2, 99) % 2] += 1
        assert abs(counts[0] - counts[1]) < 300


class TestForwarding:
    def test_routes_to_destination(self):
        engine, switch, nics = make_switch()
        pkt = data_packet(0, nics[0].device_id, nics[1].device_id, 1000, 0, 0)
        # fake a receiver-side flow so the NIC accepts it
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        switch.receive(pkt, switch.ports[0])
        engine.run()
        assert nics[1].data_received == 1
        assert switch.forwarded_packets == 1

    def test_unknown_destination_raises(self):
        engine, switch, nics = make_switch()
        pkt = data_packet(0, 1, 999, 1000, 0, 0)
        with pytest.raises(LookupError):
            switch.receive(pkt, switch.ports[0])

    def test_set_route_validates_ports(self):
        _, switch, _ = make_switch()
        with pytest.raises(ValueError):
            switch.set_route(5, (99,))
        with pytest.raises(ValueError):
            switch.set_route(5, ())

    def test_strict_priority_scheduling(self):
        engine, switch, nics = make_switch()
        from repro.sim.host import Flow

        for fid in (0, 1):
            flow = Flow(fid, nics[0].host, nics[1].host)
            nics[0].register_tx_flow(flow)  # NACK/ACK land here
            nics[1].register_rx_flow(flow)
        # hold the egress busy so both enqueue, then watch order
        lo = data_packet(0, nics[0].device_id, nics[1].device_id, 1000, 0, 0)
        hi = data_packet(1, nics[0].device_id, nics[1].device_id, 1000, 0, 6)
        blocker = data_packet(0, nics[0].device_id, nics[1].device_id, 1000, 1, 0)
        switch.receive(blocker, switch.ports[0])
        switch.receive(lo, switch.ports[0])
        switch.receive(hi, switch.ports[0])
        engine.run()
        # track arrival order via the rx seq handling: hi (prio 6) must
        # have left before lo even though it was enqueued after
        assert nics[1].rx_state(1).expected_seq == 1
        assert nics[1].rx_state(0).expected_seq == 1  # blocker then... lo dropped OOO?
        # more direct: switch served prio 6 before prio 0's second packet
        assert switch.egress_queue_bytes(1) == 0


class TestEcnMarking:
    def test_marks_when_queue_deep(self):
        config = SwitchConfig(
            marking=DCQCNParams.deployed().with_cutoff_marking(units.kb(2))
        )
        engine, switch, nics = make_switch(config)
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow, dcqcn_params=DCQCNParams.deployed())
        for seq in range(10):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.marked_packets > 0

    def test_no_marks_when_disabled(self):
        config = SwitchConfig(
            ecn_enabled=False,
            marking=DCQCNParams.deployed().with_cutoff_marking(0),
        )
        engine, switch, nics = make_switch(config)
        for seq in range(10):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.marked_packets == 0

    def test_only_ect_packets_marked(self):
        config = SwitchConfig(
            marking=DCQCNParams.deployed().with_cutoff_marking(0)
        )
        engine, switch, nics = make_switch(config)
        pkt = Packet(
            KIND_DATA,
            flow_id=0,
            src=nics[0].device_id,
            dst=nics[1].device_id,
            size=1000,
            ecn=0,  # not ECT
        )
        # enqueue two, the second sees a non-empty queue
        switch.receive(pkt, switch.ports[0])
        pkt2 = Packet(
            KIND_DATA,
            flow_id=0,
            src=nics[0].device_id,
            dst=nics[1].device_id,
            size=1000,
            ecn=0,
        )
        switch.receive(pkt2, switch.ports[0])
        assert switch.marked_packets == 0


class TestBufferAccounting:
    def test_occupancy_returns_to_zero(self):
        engine, switch, nics = make_switch()
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(20):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.occupied_bytes > 0
        engine.run()
        assert switch.occupied_bytes == 0
        assert switch.ingress_queue_bytes(0, 0) == 0
        assert switch.egress_queue_bytes(1) == 0

    def test_peak_occupancy_tracked(self):
        engine, switch, nics = make_switch()
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(5):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.peak_occupancy_bytes == 5000

    def test_drops_when_buffer_full(self):
        tiny = SwitchProfile(
            buffer_bytes=units.kb(40), headroom_bytes=0, num_ports=4
        )
        config = SwitchConfig(profile=tiny, pfc_mode="off")
        engine, switch, nics = make_switch(config)
        for seq in range(100):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.dropped_packets > 0
        assert switch.occupied_bytes <= tiny.buffer_bytes


class TestPfc:
    def build_loaded(self, pfc_mode="dynamic", static_bytes=units.kb(24.47)):
        config = SwitchConfig(
            pfc_mode=pfc_mode,
            t_pfc_static_bytes=static_bytes,
            marking=DCQCNParams.deployed(),
        )
        return make_switch(config)

    def test_pause_sent_above_static_threshold(self):
        engine, switch, nics = self.build_loaded("static", units.kb(10))
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(15):  # 15 KB through one ingress
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.pause_frames_sent >= 1

    def test_resume_after_drain(self):
        engine, switch, nics = self.build_loaded("static", units.kb(10))
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(15):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        engine.run()
        assert switch.resume_frames_sent >= 1

    def test_no_pause_when_disabled(self):
        engine, switch, nics = self.build_loaded("off")
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(500):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        assert switch.pause_frames_sent == 0

    def test_dynamic_threshold_matches_reference_formula(self):
        engine, switch, nics = make_switch()
        from repro.sim.host import Flow

        flow = Flow(0, nics[0].host, nics[1].host)
        nics[1].register_rx_flow(flow)
        for seq in range(10):
            switch.receive(
                data_packet(0, nics[0].device_id, nics[1].device_id, 1000, seq, 0),
                switch.ports[0],
            )
        expected = dynamic_pfc_threshold(
            switch.config.profile, switch.occupied_bytes, switch.config.beta
        )
        assert switch.current_pfc_threshold() == pytest.approx(expected)

    def test_dynamic_threshold_shrinks_with_occupancy(self):
        _, switch, _ = make_switch()
        empty = switch.current_pfc_threshold()
        switch.occupied_bytes = units.mb(1)
        assert switch.current_pfc_threshold() < empty

    def test_pause_frame_handling_sets_port_state(self):
        engine, switch, nics = make_switch()
        switch.receive(pause_frame(42, 0, pause=True), switch.ports[2])
        assert not switch.ports[2].can_send(0)
        switch.receive(pause_frame(42, 0, pause=False), switch.ports[2])
        assert switch.ports[2].can_send(0)

    def test_rx_pause_counter(self):
        engine, switch, nics = make_switch()
        switch.receive(pause_frame(42, 0, pause=True), switch.ports[2])
        assert switch.pause_frames_received == 1
        assert switch.ports[2].rx_pause_frames == 1


class TestConfigValidation:
    def test_bad_pfc_mode(self):
        with pytest.raises(ValueError):
            SwitchConfig(pfc_mode="sometimes")

    def test_bad_beta(self):
        with pytest.raises(ValueError):
            SwitchConfig(beta=0)
