"""The repro.fabric subsystem: specs, builder, fig2 equivalence."""

import pytest

from repro import units
from repro.fabric import Fabric, FabricSpec, TIERS, build_fabric
from repro.runner.scenario import decode_value, encode_value


class TestFabricSpec:
    def test_fat_tree_shape(self):
        spec = FabricSpec(kind="fat_tree", k=4)
        assert spec.tier_counts() == {"edge": 8, "agg": 8, "core": 4}
        assert spec.host_count() == 16  # k^3/4
        assert spec.switch_count() == 20

    def test_k8_shape(self):
        spec = FabricSpec(kind="fat_tree", k=8)
        assert spec.host_count() == 128
        assert spec.tier_counts() == {"edge": 32, "agg": 32, "core": 16}

    def test_clos_shape(self):
        spec = FabricSpec(
            kind="clos",
            pods=2,
            tors_per_pod=2,
            leaves_per_pod=2,
            spines=2,
            hosts_per_tor=5,
        )
        assert spec.tier_counts() == {"edge": 4, "agg": 4, "core": 2}
        assert spec.host_count() == 20

    def test_rejects_odd_k(self):
        with pytest.raises(ValueError):
            FabricSpec(kind="fat_tree", k=5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FabricSpec(kind="hypercube")

    def test_rejects_fig2_naming_on_fat_tree(self):
        with pytest.raises(ValueError):
            FabricSpec(kind="fat_tree", k=4, naming="fig2")

    def test_rejects_zero_hosts(self):
        with pytest.raises(ValueError):
            FabricSpec(kind="clos", hosts_per_tor=0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            FabricSpec(kind="fat_tree", k=4, agg_rate_bps=-1.0)

    def test_oversubscription_full_bisection(self):
        assert FabricSpec(kind="fat_tree", k=4).oversubscription() == 1.0

    def test_oversubscription_with_extra_hosts(self):
        spec = FabricSpec(kind="fat_tree", k=4, hosts_per_edge=4)
        assert spec.oversubscription() == 2.0

    def test_oversubscription_heterogeneous_rates(self):
        spec = FabricSpec(
            kind="fat_tree",
            k=4,
            host_rate_bps=units.gbps(10),
            agg_rate_bps=units.gbps(40),
        )
        assert spec.oversubscription() == 0.25

    def test_ecmp_path_formulas(self):
        assert FabricSpec(kind="fat_tree", k=4).ecmp_paths() == 4
        assert FabricSpec(kind="fat_tree", k=4).ecmp_paths(cross_pod=False) == 2
        assert FabricSpec(kind="fat_tree", k=8).ecmp_paths() == 16
        clos = FabricSpec(kind="clos", leaves_per_pod=2, spines=2)
        assert clos.ecmp_paths() == 8  # leaf x spine x leaf
        assert clos.ecmp_paths(cross_pod=False) == 2

    def test_encode_decode_round_trip(self):
        spec = FabricSpec(
            kind="fat_tree",
            k=8,
            hosts_per_edge=6,
            host_rate_bps=units.gbps(10),
            prop_delay_ns=700,
        )
        assert decode_value(encode_value(spec)) == spec


class TestBuilder:
    def test_k4_validates(self):
        fabric = build_fabric(kind="fat_tree", k=4)
        assert fabric.validate() == []
        assert len(fabric.all_hosts()) == 16

    def test_k8_validates(self):
        fabric = build_fabric(kind="fat_tree", k=8)
        assert fabric.validate() == []
        assert len(fabric.all_hosts()) == 128

    def test_oversubscribed_validates(self):
        fabric = build_fabric(kind="fat_tree", k=4, hosts_per_edge=6)
        assert fabric.validate() == []
        assert len(fabric.all_hosts()) == 48

    def test_clos_validates(self):
        fabric = build_fabric(
            kind="clos",
            pods=3,
            tors_per_pod=2,
            leaves_per_pod=3,
            spines=4,
            hosts_per_tor=2,
        )
        assert fabric.validate() == []
        assert len(fabric.all_hosts()) == 12

    def test_tier_handles(self):
        fabric = build_fabric(kind="fat_tree", k=4)
        tiers = fabric.tiers()
        assert set(tiers) == set(TIERS)
        assert [len(tiers[t]) for t in TIERS] == [8, 8, 4]

    def test_spec_and_kwargs_conflict(self):
        with pytest.raises(TypeError):
            build_fabric(FabricSpec(kind="fat_tree", k=4), k=8)

    def test_network_back_reference(self):
        fabric = build_fabric(kind="fat_tree", k=4)
        assert fabric.net.fabric is fabric
        assert fabric.net.route_install_s >= 0.0

    def test_pause_probes_cover_all_tiers(self):
        fabric = build_fabric(kind="fat_tree", k=4)
        probes = fabric.pause_probes()
        assert set(probes) == {
            f"{direction}.{tier}"
            for direction in ("pause_rx", "pause_tx")
            for tier in TIERS
        }
        assert all(probe() == 0 for probe in probes.values())

    def test_cross_pod_transfer(self):
        fabric = build_fabric(kind="fat_tree", k=4)
        flow = fabric.net.add_flow(
            fabric.host_in_pod(0, 0, 0), fabric.host_in_pod(3, 1, 1)
        )
        flow.send_message(units.kb(100))
        fabric.net.run_for(units.ms(2))
        assert flow.messages_completed == 1


class TestDeterminism:
    """Device naming, ids and salts are a pure function of (spec, seed)."""

    def test_identical_rebuild(self):
        a = build_fabric(kind="fat_tree", k=4, seed=7)
        b = build_fabric(kind="fat_tree", k=4, seed=7)
        assert [s.name for s in a.net.switches] == [s.name for s in b.net.switches]
        assert [s.device_id for s in a.net.switches] == [
            s.device_id for s in b.net.switches
        ]
        assert [s.ecmp_salt for s in a.net.switches] == [
            s.ecmp_salt for s in b.net.switches
        ]
        assert [h.name for h in a.all_hosts()] == [h.name for h in b.all_hosts()]
        for sa, sb in zip(a.net.switches, b.net.switches):
            assert sa.routing_table == sb.routing_table
            assert sa.default_route == sb.default_route

    def test_scoped_names_stable_across_sizes(self):
        """A device's name depends on its position, not the fabric size."""
        small = build_fabric(kind="fat_tree", k=4)
        large = build_fabric(kind="fat_tree", k=8)
        assert small.edges[0].name == "p0e0" == large.edges[0].name
        assert small.aggs[0].name == "p0a0" == large.aggs[0].name
        assert small.cores[0].name == "c0" == large.cores[0].name
        assert (
            small.host_in_pod(0, 0, 0).name
            == "p0e0h0"
            == large.host_in_pod(0, 0, 0).name
        )

    def test_seed_changes_salts_not_structure(self):
        a = build_fabric(kind="fat_tree", k=4, seed=1)
        b = build_fabric(kind="fat_tree", k=4, seed=2)
        assert [s.name for s in a.net.switches] == [s.name for s in b.net.switches]
        assert [s.ecmp_salt for s in a.net.switches] != [
            s.ecmp_salt for s in b.net.switches
        ]


class TestFig2Equivalence:
    """three_tier_clos is a thin fabric wrapper — byte-identical."""

    def _fig2(self, hosts_per_tor=5, seed=0):
        from repro.sim.topology import three_tier_clos

        return three_tier_clos(hosts_per_tor=hosts_per_tor, seed=seed)

    def test_names_and_ids(self):
        spec = self._fig2()
        assert [s.name for s in spec.net.switches] == [
            "T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4", "S1", "S2",
        ]
        assert [s.device_id for s in spec.net.switches] == list(range(10))
        assert spec.host(0, 0).name == "H11"
        assert spec.host(3, 4).name == "H45"

    def test_fabric_spec_shape(self):
        spec = self._fig2()
        fabric = spec.net.fabric
        assert isinstance(fabric, Fabric)
        assert fabric.spec.kind == "clos"
        assert fabric.spec.naming == "fig2"
        assert fabric.spec.tier_counts() == {"edge": 4, "agg": 4, "core": 2}

    def test_salts_match_legacy_draw_order(self):
        """Switch ECMP salts replay the legacy builder's RNG draws."""
        import random

        spec = self._fig2(seed=3)
        rng = random.Random(3)
        expected = [rng.getrandbits(64) for _ in range(10)]
        assert [s.ecmp_salt for s in spec.net.switches] == expected

    def test_structured_routes_equal_bfs(self):
        """Every effective ECMP set matches what the BFS would install."""
        from repro.sim.routing import install_routes

        spec = self._fig2(hosts_per_tor=2)
        structured = {
            (switch.device_id, host.nic.device_id): switch.route_to(
                host.nic.device_id
            )
            for switch in spec.net.switches
            for host in spec.net.hosts
        }
        for switch in spec.net.switches:
            switch.routing_table.clear()
            switch.default_route = ()
        install_routes(
            spec.net.switches, (host.nic for host in spec.net.hosts)
        )
        for switch in spec.net.switches:
            for host in spec.net.hosts:
                key = (switch.device_id, host.nic.device_id)
                assert structured[key] == switch.routing_table[host.nic.device_id]
