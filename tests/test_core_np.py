"""NP algorithm: CNP pacing (Figure 6)."""

import pytest

from repro import units
from repro.core.np import NotificationPoint


def make_np(interval=units.us(50)):
    sent = []
    np_ = NotificationPoint(interval, lambda: sent.append(True))
    return np_, sent


class TestCnpGeneration:
    def test_first_marked_packet_fires_immediately(self):
        np_, sent = make_np()
        assert np_.on_data_packet(0, ce_marked=True)
        assert len(sent) == 1

    def test_unmarked_packets_never_fire(self):
        """'No CNPs are generated in the common case of no congestion.'"""
        np_, sent = make_np()
        for t in range(0, 10**6, 1000):
            assert not np_.on_data_packet(t, ce_marked=False)
        assert sent == []

    def test_suppressed_within_window(self):
        np_, sent = make_np()
        np_.on_data_packet(0, ce_marked=True)
        assert not np_.on_data_packet(units.us(49), ce_marked=True)
        assert len(sent) == 1

    def test_fires_after_window(self):
        np_, sent = make_np()
        np_.on_data_packet(0, ce_marked=True)
        assert np_.on_data_packet(units.us(50), ce_marked=True)
        assert len(sent) == 2

    def test_at_most_one_per_window_under_continuous_marking(self):
        np_, sent = make_np()
        # marked packet every microsecond for 1 ms
        for t in range(0, units.ms(1), units.us(1)):
            np_.on_data_packet(t, ce_marked=True)
        assert len(sent) == 20  # 1 ms / 50 us

    def test_window_restarts_from_last_cnp(self):
        np_, sent = make_np()
        np_.on_data_packet(units.us(7), ce_marked=True)
        assert not np_.on_data_packet(units.us(50), ce_marked=True)
        assert np_.on_data_packet(units.us(57), ce_marked=True)

    def test_counters(self):
        np_, _ = make_np()
        np_.on_data_packet(0, ce_marked=True)
        np_.on_data_packet(1, ce_marked=True)
        np_.on_data_packet(2, ce_marked=False)
        assert np_.marked_seen == 2
        assert np_.cnps_sent == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            NotificationPoint(0, lambda: None)
