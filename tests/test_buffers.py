"""§4 buffer-threshold calculations — the paper's exact numbers."""

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.buffers.thresholds import (
    SwitchProfile,
    dynamic_pfc_threshold,
    ecn_threshold_bound_dynamic,
    ecn_threshold_bound_static,
    headroom_bytes,
    plan_thresholds,
    static_pfc_threshold_bound,
)


class TestPaperNumbers:
    """The §4 derivation for the Arista 7050QX32 / Trident II."""

    def test_static_pfc_bound(self):
        # (12 MB - 8*32*22.4 KB) / (8*32) = 24.475 KB
        assert static_pfc_threshold_bound(SwitchProfile()) == pytest.approx(
            24_475, rel=1e-3
        )

    def test_static_ecn_bound_is_infeasible(self):
        """0.76 KB < 1 MTU — the static threshold cannot work."""
        bound = ecn_threshold_bound_static(SwitchProfile())
        assert bound == pytest.approx(764.8, rel=1e-3)
        assert bound < SwitchProfile().mtu_bytes

    def test_dynamic_ecn_bound(self):
        # beta (B - 8n t_flight) / (8n (beta+1)) = 21.75 KB at beta=8
        bound = ecn_threshold_bound_dynamic(SwitchProfile(), beta=8)
        assert bound == pytest.approx(21_755, rel=1e-3)

    def test_deployed_kmin_fits_dynamic_bound(self):
        plan = plan_thresholds()
        assert plan.ecn_before_pfc
        assert plan.kmin_feasible

    def test_shared_pool(self):
        profile = SwitchProfile()
        assert profile.total_headroom_bytes == 8 * 32 * units.kb(22.4)
        assert profile.shared_pool_bytes == profile.buffer_bytes - profile.total_headroom_bytes


class TestDynamicThreshold:
    def test_empty_buffer_gives_max_threshold(self):
        profile = SwitchProfile()
        t = dynamic_pfc_threshold(profile, 0, beta=8)
        assert t == pytest.approx(8 * profile.shared_pool_bytes / 8)

    def test_full_buffer_gives_zero(self):
        profile = SwitchProfile()
        assert dynamic_pfc_threshold(profile, profile.shared_pool_bytes, 8) == 0.0

    def test_never_negative(self):
        profile = SwitchProfile()
        assert dynamic_pfc_threshold(profile, profile.buffer_bytes * 2, 8) == 0.0

    def test_beta_scales_threshold(self):
        profile = SwitchProfile()
        s = units.mb(1)
        assert dynamic_pfc_threshold(profile, s, 16) > dynamic_pfc_threshold(
            profile, s, 8
        )

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            dynamic_pfc_threshold(SwitchProfile(), 0, 0)

    @given(st.floats(min_value=0, max_value=12e6), st.floats(min_value=0.5, max_value=32))
    def test_monotone_decreasing_in_occupancy(self, s, beta):
        profile = SwitchProfile()
        t1 = dynamic_pfc_threshold(profile, s, beta)
        t2 = dynamic_pfc_threshold(profile, s + 1000, beta)
        assert t2 <= t1


class TestHeadroom:
    def test_matches_paper_scale(self):
        """~100 m cable, 40 GbE, 1000 B MTU lands near 22.4 KB."""
        h = headroom_bytes(units.gbps(40), cable_delay_ns=500, mtu_bytes=1000,
                           pause_response_ns=1500)
        assert 15_000 < h < 30_000

    def test_grows_with_cable_length(self):
        short = headroom_bytes(units.gbps(40), 100, 1000)
        long_ = headroom_bytes(units.gbps(40), 2000, 1000)
        assert long_ > short

    def test_grows_with_rate(self):
        slow = headroom_bytes(units.gbps(10), 500, 1000)
        fast = headroom_bytes(units.gbps(40), 500, 1000)
        assert fast > slow

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            headroom_bytes(0, 500, 1000)


class TestProfileValidation:
    def test_headroom_cannot_exceed_buffer(self):
        with pytest.raises(ValueError):
            SwitchProfile(buffer_bytes=units.kb(100), headroom_bytes=units.kb(100))

    def test_rejects_nonpositive_buffer(self):
        with pytest.raises(ValueError):
            SwitchProfile(buffer_bytes=0)

    def test_rejects_negative_headroom(self):
        with pytest.raises(ValueError):
            SwitchProfile(headroom_bytes=-1)


class TestPlan:
    def test_misconfigured_kmin_flagged(self):
        plan = plan_thresholds(kmin_bytes=units.kb(122))
        assert not plan.ecn_before_pfc

    def test_sub_mtu_kmin_flagged(self):
        plan = plan_thresholds(kmin_bytes=500)
        assert not plan.kmin_feasible
