#!/usr/bin/env python
"""Quickstart: two DCQCN flows sharing a 40 Gbps bottleneck.

Builds the smallest interesting network — two senders, one receiver,
one ECN-marking switch — starts the second flow 5 ms after the first,
and prints the rate trajectory: the late flow starts at line rate
(DCQCN has no slow start), both get cut by CNPs, and they converge to
a fair ~20 Gbps each with the queue sitting near Kmin.

The run is traced: every CNP, rate cut and PAUSE frame lands on the
telemetry bus, and the closing summary comes from the metrics registry
(see DESIGN.md §8 for the full catalog).

Run:  python examples/quickstart.py
"""

from repro import DCQCNParams, Network, units
from repro.sim.monitor import QueueSampler, RateSampler
from repro.telemetry import RingBufferSink, Telemetry, Tracer


def main() -> None:
    params = DCQCNParams.deployed()
    telemetry = Telemetry(tracer=Tracer(RingBufferSink(), level="cc"))
    net = Network(seed=1, dcqcn_params=params, telemetry=telemetry)
    switch = net.new_switch("S1")
    alice = net.new_host("alice")
    bob = net.new_host("bob")
    carol = net.new_host("carol")  # the receiver
    for host in (alice, bob, carol):
        net.connect(host, switch, rate_bps=units.gbps(40))
    net.build_routes()

    flow_a = net.add_flow(alice, carol, cc="dcqcn")
    flow_b = net.add_flow(bob, carol, cc="dcqcn", start_ns=units.ms(5))
    flow_a.set_greedy()
    flow_b.set_greedy()

    horizon = units.ms(40)
    rates = RateSampler(
        net.engine, [flow_a, flow_b], interval_ns=units.ms(1), stop_ns=horizon
    )
    queue = QueueSampler(
        net.engine,
        switch,
        switch.port_to(carol.nic).index,
        interval_ns=units.us(50),
        stop_ns=horizon,
    )

    net.run_for(horizon)

    print(f"{'t (ms)':>7} {'alice Gbps':>11} {'bob Gbps':>9}")
    for t, ra, rb in zip(
        rates.times_ns, rates.series(flow_a), rates.series(flow_b)
    ):
        print(f"{t / 1e6:7.1f} {ra / 1e9:11.2f} {rb / 1e9:9.2f}")

    peak_kb = queue.max_bytes() / 1e3
    print(f"\nbottleneck queue peak: {peak_kb:.1f} KB (Kmin = "
          f"{params.kmin_bytes / 1e3:.0f} KB, Kmax = {params.kmax_bytes / 1e3:.0f} KB)")

    # end-of-run metrics: stable names, same values the trace carries
    snapshot = net.metrics_snapshot()
    counters = snapshot["counters"]
    print(f"PFC PAUSE frames sent by the switch: {counters['pfc.pause_tx']:.0f}")
    print(f"CNPs generated: {counters['nic.cnp_tx']:.0f} "
          f"(traced: {counters['trace.np.cnp_tx']:.0f})")

    # the last few control-plane decisions, straight off the trace bus
    print("\nlast 5 trace events:")
    for event in list(telemetry.tracer.sink.events)[-5:]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
