#!/usr/bin/env python
"""Tuning DCQCN with the fluid model, the way the paper's §5 does.

Walks the same path as the paper: start from the QCN/DCTCP "strawman"
parameters, watch the two-flow fluid model fail to converge, then fix
it by (a) speeding up the rate-increase timer and (b) switching to
RED-like probabilistic marking — and finally sanity-check the chosen
operating point against the model's fixed point and the buffer
thresholds of §4.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro import units
from repro.buffers import plan_thresholds
from repro.fluid import (
    FluidParams,
    simulate_two_flow_convergence,
    solve_fixed_point,
    sweep_pmax,
    sweep_timer,
)


def gap_after(trace, seconds: float) -> float:
    """|r1 - r2| (Gbps) averaged over the tail of the run."""
    mask = trace.times_s >= seconds
    diff = np.abs(trace.rc_bps[mask, 0, 0] - trace.rc_bps[mask, 0, 1])
    return float(diff.mean() / 1e9)


def main() -> None:
    strawman = FluidParams(
        kmin_bytes=units.kb(40), kmax_bytes=units.kb(40), pmax=1.0,
        g=1.0 / 16.0, timer_s=1.5e-3, byte_counter_bytes=units.kb(150),
    )
    trace = simulate_two_flow_convergence(strawman, duration_s=0.1)
    print(f"strawman (QCN/DCTCP defaults): steady rate gap "
          f"{gap_after(trace, 0.05):.1f} Gbps  -> flows never converge")

    timer_sweep = sweep_timer(duration_s=0.1)
    print("\nrate-increase timer sweep (10 MB byte counter):")
    for value, diff in zip(timer_sweep.values, timer_sweep.final_diff_gbps()):
        print(f"  T = {value * 1e6:7.0f} us   steady gap {diff:5.2f} Gbps")
    print(f"  -> fastest legal timer ({timer_sweep.best_value() * 1e6:.0f} us; "
          "it may not undercut the 50 us CNP interval) wins")

    pmax_sweep = sweep_pmax(duration_s=0.1)
    print("\nPmax sweep (RED segment Kmin=5KB..Kmax=200KB, slow timer):")
    for value, diff in zip(pmax_sweep.values, pmax_sweep.final_diff_gbps()):
        print(f"  Pmax = {value:5.2f}   steady gap {diff:5.2f} Gbps")
    print("  -> probabilistic marking with small Pmax also restores fairness")

    deployed = FluidParams()  # Table 14
    fp = solve_fixed_point(deployed)
    print(f"\ndeployed parameters, 2-flow fixed point: "
          f"p* = {fp.p * 100:.3f}%  (paper: 'p is less than 1%'), "
          f"queue* = {fp.queue_bytes / 1e3:.1f} KB "
          f"(an order of magnitude above the 5 KB Kmin)")

    plan = plan_thresholds()
    print(f"\nswitch thresholds (Trident II, beta=8): Kmin = "
          f"{plan.kmin_bytes / 1e3:.0f} KB < dynamic t_ECN bound "
          f"{plan.ecn_bound_dynamic_bytes / 1e3:.2f} KB -> "
          f"ECN always fires before PFC: {plan.ecn_before_pfc}")


if __name__ == "__main__":
    main()
