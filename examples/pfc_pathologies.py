#!/usr/bin/env python
"""Demonstrate PFC's pathologies on a Clos fabric, then fix them.

Recreates the paper's two §2.2 experiments:

* the parking-lot unfairness (H4, one hop from the receiver, robs
  bandwidth from H1-H3 because PAUSE works per port, not per flow);
* the victim flow (a transfer whose path shares no congested link
  still loses half its throughput to cascading PAUSEs).

...then repeats both with DCQCN enabled, reproducing Figures 3/4
against Figures 8/9.

Run:  python examples/pfc_pathologies.py
"""

from repro.experiments.pfc_pathologies import run_unfairness, run_victim_flow


def main() -> None:
    print("=== Parking-lot unfairness (Figure 3: PFC only) ===")
    result = run_unfairness("none", repetitions=3)
    print(result.table())
    print(f"PAUSE frames per run: {result.pause_frames}")
    print("\nH4's *minimum* beats the others' typical share: PFC pauses "
          "ports,\nnot flows, and H4 shares its port with nobody.\n")

    print("=== Same scenario with DCQCN (Figure 8) ===")
    result = run_unfairness("dcqcn", repetitions=3)
    print(result.table())
    print(f"PAUSE frames per run: {result.pause_frames}")
    print("\nPer-flow control: everyone converges to a quarter of the "
          "bottleneck\nand PFC never fires.\n")

    print("=== Victim flow (Figure 4: PFC only) ===")
    result = run_victim_flow("none", repetitions=3)
    print(result.table())
    print("\nThe victim shares no congested link with the incast, yet "
          "loses\nthroughput to the PAUSE cascade — and more as senders "
          "are added\nunder T3.\n")

    print("=== Same scenario with DCQCN (Figure 9) ===")
    result = run_victim_flow("dcqcn", repetitions=3)
    print(result.table())
    print("\nWith the incast paced at the true bottleneck, the cascade "
          "never\nstarts and the victim keeps its bandwidth.")


if __name__ == "__main__":
    main()
