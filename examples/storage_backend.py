#!/usr/bin/env python
"""Cloud-storage backend scenario: user traffic + a disk-rebuild incast.

This is the workload that motivates the paper (§6.2): a 3-tier Clos
fabric carrying steady user requests while a failed disk is rebuilt by
fetching erasure-coded chunks from many servers at once.  The script
runs the same scenario twice — PFC-only and DCQCN — and prints the
median and 10th-percentile goodput of both traffic classes plus the
PAUSE storm reaching the spines.

Run:  python examples/storage_backend.py  [--degree 8] [--pairs 20]
"""

import argparse

from repro import units
from repro.analysis.stats import summarize
from repro.experiments.benchmark_traffic import run_benchmark_traffic


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--degree", type=int, default=8,
                        help="disk-rebuild incast degree (senders per rebuild)")
    parser.add_argument("--pairs", type=int, default=20,
                        help="number of user communicating pairs")
    args = parser.parse_args()

    print(f"storage backend: {args.pairs} user pairs, "
          f"{args.degree}:1 disk rebuild, 40 Gbps Clos\n")

    for variant, label in (("none", "PFC only"), ("dcqcn", "DCQCN")):
        result = run_benchmark_traffic(
            variant, incast_degree=args.degree, n_pairs=args.pairs, repetitions=1
        )
        user = summarize(result.user_bps)
        rebuild = summarize(result.incast_bps)
        print(f"=== {label} ===")
        print(f"  user pairs     : median {user.median / 1e9:5.2f} Gbps, "
              f"p10 {user.p10 / 1e9:5.2f} Gbps")
        print(f"  rebuild senders: median {rebuild.median / 1e9:5.2f} Gbps, "
              f"p10 {rebuild.p10 / 1e9:5.2f} Gbps "
              f"(ideal fair share {40 / args.degree:.2f})")
        print(f"  PAUSE frames at spines: {result.total_spine_pauses()}")
        print(f"  packets dropped: {sum(result.dropped_packets)}\n")

    print("DCQCN keeps the rebuild fair and the user traffic unharmed —\n"
          "the PAUSE storm (and the head-of-line blocking it causes) is gone.")


if __name__ == "__main__":
    main()
