"""Structured route computation for built fabrics.

The legacy :func:`repro.sim.routing.install_routes` runs one BFS per
host over the whole device graph and then scans every switch's ports —
O(hosts x (devices + links)) work that dominates construction once the
fabric has hundreds of switches.  On a fat-tree/Clos none of that
search is necessary: shortest paths are fully determined by pod
membership, so routes are written down directly from the wiring maps
the builder recorded.

Per tier the tables are:

* **edge** — one single-port entry per local host, plus a *default
  route* (all uplinks, one ECMP group) for everything else;
* **agg**  — one single-port entry per host of its own pod (via that
  host's edge switch), plus a default route over its core uplinks;
* **core** — one entry per host, but the ECMP tuple is shared per pod
  (for a Clos spine: all leaves of the host's pod; for a fat-tree
  core: the one aggregation switch of its group in that pod).

So the route state is O(hosts_per_edge) per edge switch, O(pod hosts)
per agg, and O(hosts) dict entries per core sharing O(pods) tuples —
no graph traversal anywhere.  Equivalence with the BFS tables on
symmetric and oversubscribed fabrics is pinned by
``tests/test_fabric_routing.py``; hop-count routing is rate-agnostic,
so heterogeneous link rates do not perturb it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.fabric.build import Fabric


def install_fabric_routes(fabric: "Fabric") -> None:
    """Populate every switch's ECMP table from the builder's wiring maps."""
    spec = fabric.spec
    edges_per_pod = spec.edges_per_pod

    for t, edge in enumerate(fabric.edges):
        for host, port in zip(fabric.hosts[t], fabric._edge_host_ports[t]):
            edge.set_route(host.host_id, (port,))
        if fabric._edge_up[t]:
            edge.set_default_route(tuple(fabric._edge_up[t]))

    for g, agg in enumerate(fabric.aggs):
        pod = g // spec.aggs_per_pod
        for local, port in enumerate(fabric._agg_edge_ports[g]):
            route = (port,)
            for host in fabric.hosts[pod * edges_per_pod + local]:
                agg.set_route(host.host_id, route)
        if fabric._agg_up[g]:
            agg.set_default_route(tuple(fabric._agg_up[g]))

    for c, core in enumerate(fabric.cores):
        for pod in range(spec.pod_count):
            route = tuple(fabric._core_pod_ports[c][pod])
            if not route:
                continue  # disconnected pod: validate() reports it
            for t in range(pod * edges_per_pod, (pod + 1) * edges_per_pod):
                for host in fabric.hosts[t]:
                    core.set_route(host.host_id, route)
