"""Fabric construction: spec -> wired :class:`~repro.sim.network.Network`.

The builder follows one deterministic recipe so device ids, names and
per-switch ECMP salts are a pure function of ``(spec, seed)`` — the
property the content-hash result cache and serial==parallel equality
rest on:

1. create every edge switch, pod-major; then every aggregation
   switch, pod-major; then every core switch;
2. wire each pod's edge x agg full mesh;
3. wire agg -> core (per pod for fat-trees, leaf-major for Clos);
4. create and wire hosts, edge-major.

For ``kind="clos"`` with the Figure 2 shape this is exactly the
operation order of the original hand-built
:func:`repro.sim.topology.three_tier_clos`, so the legacy builder is a
thin wrapper over this one and reproduces byte-identically.

Routing is installed structurally (no graph search): see
:mod:`repro.fabric.routing`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.params import DCQCNParams
from repro.fabric.spec import TIERS, FabricSpec
from repro.sim.host import Host
from repro.sim.network import (
    DEFAULT_LINK_RATE_BPS,
    DEFAULT_PROP_DELAY_NS,
    Network,
)
from repro.sim.nic import NicConfig
from repro.sim.switch import Switch, SwitchConfig


class Fabric:
    """A built fabric: the network plus tier-structured handles.

    ``edges`` / ``aggs`` are flat, pod-major lists; ``cores`` are the
    spine tier; ``hosts[t]`` is the rack under global edge index
    ``t``.  The private ``_*_ports`` maps record which local port
    reaches which neighbor — gathered while wiring, they are what lets
    route installation skip the all-pairs BFS.
    """

    def __init__(self, spec: FabricSpec, net: Network):
        self.spec = spec
        self.net = net
        self.edges: List[Switch] = []
        self.aggs: List[Switch] = []
        self.cores: List[Switch] = []
        self.hosts: List[List[Host]] = []
        #: per edge: uplink port indices (ascending, one per pod agg)
        self._edge_up: List[List[int]] = []
        #: per edge: host-facing port indices, aligned with hosts[t]
        self._edge_host_ports: List[List[int]] = []
        #: per agg: uplink port indices toward its cores
        self._agg_up: List[List[int]] = []
        #: per agg: downlink port indices, aligned with the pod's edges
        self._agg_edge_ports: List[List[int]] = []
        #: per core: per pod, downlink port indices into that pod
        self._core_pod_ports: List[List[List[int]]] = []

    # --- handles -----------------------------------------------------------

    def tiers(self) -> Dict[str, List[Switch]]:
        """Switches per tier, innermost first (edge, agg, core)."""
        return {"edge": self.edges, "agg": self.aggs, "core": self.cores}

    def all_hosts(self) -> List[Host]:
        return [host for rack in self.hosts for host in rack]

    def host(self, edge_index: int, host_index: int) -> Host:
        """Host ``host_index`` under global edge ``edge_index``."""
        return self.hosts[edge_index][host_index]

    def host_in_pod(self, pod: int, edge: int, host_index: int) -> Host:
        return self.hosts[pod * self.spec.edges_per_pod + edge][host_index]

    def pod_of_edge(self, edge_index: int) -> int:
        return edge_index // self.spec.edges_per_pod

    # --- per-tier aggregation (telemetry) ----------------------------------

    def tier_pause_rx(self, tier: str) -> int:
        """PAUSE frames received by all switches of ``tier``."""
        return sum(
            port.rx_pause_frames
            for switch in self.tiers()[tier]
            for port in switch.ports
        )

    def tier_pause_tx(self, tier: str) -> int:
        """PAUSE frames sent by all switches of ``tier``."""
        return sum(switch.pause_frames_sent for switch in self.tiers()[tier])

    def tier_drops(self, tier: str) -> int:
        return sum(switch.dropped_packets for switch in self.tiers()[tier])

    def pause_probes(self) -> Dict[str, "callable"]:
        """End-of-run counter probes: per-tier PAUSE rx/tx aggregates.

        These replace per-switch counters at fabric scale — the result
        row stays a handful of numbers whether the fabric has 10
        switches or 320.
        """
        probes: Dict[str, "callable"] = {}
        for tier in TIERS:
            probes[f"pause_rx.{tier}"] = (
                lambda tier=tier: self.tier_pause_rx(tier)
            )
            probes[f"pause_tx.{tier}"] = (
                lambda tier=tier: self.tier_pause_tx(tier)
            )
        return probes

    # --- builder invariants ------------------------------------------------

    def validate(self) -> List[str]:
        """Check builder invariants; returns human-readable violations.

        Covers the CI gate: expected per-tier device counts, per-switch
        port counts, link symmetry, and routing completeness (every
        switch can forward to every host via its table or its default
        route — no blackholes by construction).
        """
        spec = self.spec
        problems: List[str] = []
        counts = spec.tier_counts()
        for tier, expected in counts.items():
            actual = len(self.tiers()[tier])
            if actual != expected:
                problems.append(f"{tier}: {actual} switches, expected {expected}")
        hosts = self.all_hosts()
        if len(hosts) != spec.host_count():
            problems.append(
                f"hosts: {len(hosts)}, expected {spec.host_count()}"
            )
        expected_ports = {
            "edge": spec.aggs_per_pod + spec.hosts_per_edge_switch,
            "agg": spec.edges_per_pod + self._agg_uplink_count(),
            "core": spec.pod_count * self._core_ports_per_pod(),
        }
        for tier, switches in self.tiers().items():
            for switch in switches:
                if len(switch.ports) != expected_ports[tier]:
                    problems.append(
                        f"{switch.name}: {len(switch.ports)} ports, "
                        f"expected {expected_ports[tier]}"
                    )
        for switch in self.net.switches:
            for port in switch.ports:
                if port.peer is None:
                    problems.append(f"{switch.name}: unconnected port {port.index}")
                elif port.peer.peer is not port:
                    problems.append(
                        f"{switch.name}: asymmetric cable on port {port.index}"
                    )
        host_ids = [host.host_id for host in hosts]
        for switch in self.net.switches:
            n_ports = len(switch.ports)
            for indices in switch.routing_table.values():
                bad = [i for i in indices if i < 0 or i >= n_ports]
                if bad:
                    problems.append(f"{switch.name}: route to missing port {bad}")
            missing = sum(
                1
                for host_id in host_ids
                if host_id not in switch.routing_table
                and not switch.default_route
            )
            if missing:
                problems.append(
                    f"{switch.name}: no route (and no default) for "
                    f"{missing} hosts"
                )
        return problems

    def _agg_uplink_count(self) -> int:
        spec = self.spec
        return spec.k // 2 if spec.kind == "fat_tree" else spec.spines

    def _core_ports_per_pod(self) -> int:
        spec = self.spec
        return 1 if spec.kind == "fat_tree" else spec.leaves_per_pod

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.spec.tier_counts()
        return (
            f"Fabric({self.spec.kind}, pods={self.spec.pod_count}, "
            f"switches={sum(counts.values())}, hosts={len(self.all_hosts())})"
        )


def build_fabric(
    spec: Optional[FabricSpec] = None,
    seed: int = 0,
    switch_config: Optional[SwitchConfig] = None,
    dcqcn_params: Optional[DCQCNParams] = None,
    nic_config: Optional[NicConfig] = None,
    **spec_kwargs,
) -> Fabric:
    """Build a fabric from ``spec`` (or ``FabricSpec(**spec_kwargs)``).

    The same ``switch_config`` object is shared by every switch and
    ``dcqcn_params`` / ``nic_config`` go to the :class:`Network`, the
    same sharing contract as the hand-built topologies.  Routing is
    installed structurally; the wall-clock spent doing so is recorded
    as ``net.route_install_s`` for the ``repro bench`` trajectory.
    """
    if spec is None:
        spec = FabricSpec(**spec_kwargs)
    elif spec_kwargs:
        raise TypeError("pass either a spec or spec kwargs, not both")
    net = Network(seed=seed, dcqcn_params=dcqcn_params, nic_config=nic_config)
    fabric = Fabric(spec, net)
    delay = (
        spec.prop_delay_ns
        if spec.prop_delay_ns is not None
        else DEFAULT_PROP_DELAY_NS
    )
    host_rate = spec.host_rate_bps or DEFAULT_LINK_RATE_BPS
    agg_rate = spec.agg_rate_bps or DEFAULT_LINK_RATE_BPS
    core_rate = spec.core_rate_bps or DEFAULT_LINK_RATE_BPS

    # 1. switches, tier by tier, pod-major (fixes ids and ECMP salts)
    for pod in range(spec.pod_count):
        for i in range(spec.edges_per_pod):
            fabric.edges.append(
                net.new_switch(spec.edge_name(pod, i), config=switch_config)
            )
            fabric._edge_up.append([])
            fabric._edge_host_ports.append([])
    for pod in range(spec.pod_count):
        for i in range(spec.aggs_per_pod):
            fabric.aggs.append(
                net.new_switch(spec.agg_name(pod, i), config=switch_config)
            )
            fabric._agg_up.append([])
            fabric._agg_edge_ports.append([])
    for i in range(spec.core_count):
        fabric.cores.append(net.new_switch(spec.core_name(i), config=switch_config))
        fabric._core_pod_ports.append([[] for _ in range(spec.pod_count)])

    # 2. pod meshes: every edge to every agg of its pod
    for pod in range(spec.pod_count):
        for e in range(spec.edges_per_pod):
            t = pod * spec.edges_per_pod + e
            for a in range(spec.aggs_per_pod):
                g = pod * spec.aggs_per_pod + a
                up, down = net.connect(
                    fabric.edges[t], fabric.aggs[g], agg_rate, delay
                )
                fabric._edge_up[t].append(up.index)
                fabric._agg_edge_ports[g].append(down.index)

    # 3. spine wiring
    if spec.kind == "clos":
        # every leaf to every spine, leaf-major (the Figure 2 order)
        for g, agg in enumerate(fabric.aggs):
            pod = g // spec.aggs_per_pod
            for s, core in enumerate(fabric.cores):
                up, down = net.connect(agg, core, core_rate, delay)
                fabric._agg_up[g].append(up.index)
                fabric._core_pod_ports[s][pod].append(down.index)
    else:
        # fat-tree: agg j of every pod to the k/2 cores of group j
        half = spec.k // 2
        for pod in range(spec.pod_count):
            for a in range(spec.aggs_per_pod):
                g = pod * spec.aggs_per_pod + a
                for m in range(half):
                    c = a * half + m
                    up, down = net.connect(
                        fabric.aggs[g], fabric.cores[c], core_rate, delay
                    )
                    fabric._agg_up[g].append(up.index)
                    fabric._core_pod_ports[c][pod].append(down.index)

    # 4. hosts, edge-major
    for t, edge in enumerate(fabric.edges):
        pod, e = divmod(t, spec.edges_per_pod)
        rack: List[Host] = []
        for i in range(spec.hosts_per_edge_switch):
            host = net.new_host(spec.host_name(pod, e, i))
            nic_port, edge_port = net.connect(host, edge, host_rate, delay)
            fabric._edge_host_ports[t].append(edge_port.index)
            rack.append(host)
        fabric.hosts.append(rack)

    # 5. structured routes (recorded for the bench trajectory)
    from repro.fabric.routing import install_fabric_routes

    started = time.perf_counter()
    install_fabric_routes(fabric)
    net.route_install_s = time.perf_counter() - started
    net.fabric = fabric
    return fabric
