"""Declarative fabric shapes: the :class:`FabricSpec`.

A spec is a frozen, JSON-serializable description of a multi-tier
datacenter fabric.  Two kinds are supported:

* ``"fat_tree"`` — the canonical k-ary fat-tree: ``k`` pods, each with
  ``k/2`` edge and ``k/2`` aggregation switches, and ``(k/2)**2`` core
  switches partitioned into ``k/2`` groups (group ``g`` connects to
  aggregation switch ``g`` of every pod).  Full bisection at
  ``hosts_per_edge = k/2`` (the default); larger values oversubscribe
  the edge tier.
* ``"clos"`` — a generalized 3-tier Clos: ``pods`` pods, each a full
  mesh of ``tors_per_pod`` ToRs and ``leaves_per_pod`` leaves, with
  every leaf connected to every one of ``spines`` spine switches.  The
  paper's Figure 2 testbed is ``clos(pods=2, tors_per_pod=2,
  leaves_per_pod=2, spines=2)``.

Tier vocabulary is unified: tier 0 is ``edge`` (ToRs), tier 1 is
``agg`` (leaves), tier 2 is ``core`` (spines).  Heterogeneous link
rates are expressed per tier boundary (``host_rate_bps``,
``agg_rate_bps``, ``core_rate_bps``); ``None`` means the 40 Gbps
testbed default.

Because the spec is a plain dataclass of scalars it round-trips
through :func:`repro.runner.scenario.encode_value` — a
:class:`~repro.runner.scenario.Scenario` names a fabric by value, so
fabric cells stay content-hash cacheable and worker-shippable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: the tier names, innermost (host-facing) first
TIERS = ("edge", "agg", "core")

#: recognised fabric kinds
KINDS = ("fat_tree", "clos")

#: device naming modes: ``scoped`` names are stable across fabric
#: sizes (``p<pod>e<i>``, ``p<pod>a<i>``, ``c<i>``, hosts
#: ``p<pod>e<i>h<j>``); ``fig2`` reproduces the paper-testbed names
#: (``T1..``, ``L1..``, ``S1..``, ``H<tor><i>``) for the 3-tier Clos
NAMINGS = ("scoped", "fig2")


@dataclass(frozen=True)
class FabricSpec:
    """A parameterized fat-tree / Clos fabric, by value."""

    kind: str = "fat_tree"
    # --- fat-tree shape ----------------------------------------------------
    #: pod count (even, >= 2); ignored for kind="clos"
    k: int = 4
    #: hosts under each edge switch; None means k/2 (full bisection)
    hosts_per_edge: Optional[int] = None
    # --- clos shape --------------------------------------------------------
    pods: int = 2
    tors_per_pod: int = 2
    leaves_per_pod: int = 2
    spines: int = 2
    hosts_per_tor: int = 5
    # --- links -------------------------------------------------------------
    #: host <-> edge link rate; None -> DEFAULT_LINK_RATE_BPS
    host_rate_bps: Optional[float] = None
    #: edge <-> agg link rate; None -> DEFAULT_LINK_RATE_BPS
    agg_rate_bps: Optional[float] = None
    #: agg <-> core link rate; None -> DEFAULT_LINK_RATE_BPS
    core_rate_bps: Optional[float] = None
    prop_delay_ns: Optional[int] = None
    # --- naming ------------------------------------------------------------
    naming: str = "scoped"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fabric kind {self.kind!r}; choose from {KINDS}")
        if self.naming not in NAMINGS:
            raise ValueError(
                f"unknown naming {self.naming!r}; choose from {NAMINGS}"
            )
        if self.naming == "fig2" and self.kind != "clos":
            raise ValueError("naming='fig2' applies to kind='clos' only")
        if self.kind == "fat_tree":
            if self.k < 2 or self.k % 2:
                raise ValueError(f"fat-tree k must be even and >= 2, got {self.k}")
            if self.hosts_per_edge is not None and self.hosts_per_edge < 1:
                raise ValueError("hosts_per_edge must be >= 1")
        else:
            for name in ("pods", "tors_per_pod", "leaves_per_pod", "spines"):
                if getattr(self, name) < 1:
                    raise ValueError(f"{name} must be >= 1")
            if self.hosts_per_tor < 1:
                raise ValueError("need at least one host per ToR")
        for name in ("host_rate_bps", "agg_rate_bps", "core_rate_bps"):
            rate = getattr(self, name)
            if rate is not None and rate <= 0:
                raise ValueError(f"{name} must be positive, got {rate}")
        if self.prop_delay_ns is not None and self.prop_delay_ns < 0:
            raise ValueError("prop_delay_ns must be >= 0")

    # --- derived shape -----------------------------------------------------

    @property
    def pod_count(self) -> int:
        return self.k if self.kind == "fat_tree" else self.pods

    @property
    def edges_per_pod(self) -> int:
        return self.k // 2 if self.kind == "fat_tree" else self.tors_per_pod

    @property
    def aggs_per_pod(self) -> int:
        return self.k // 2 if self.kind == "fat_tree" else self.leaves_per_pod

    @property
    def core_count(self) -> int:
        return (self.k // 2) ** 2 if self.kind == "fat_tree" else self.spines

    @property
    def hosts_per_edge_switch(self) -> int:
        if self.kind == "fat_tree":
            return self.hosts_per_edge if self.hosts_per_edge else self.k // 2
        return self.hosts_per_tor

    def tier_counts(self) -> Dict[str, int]:
        """Switch count per tier: ``{"edge": ..., "agg": ..., "core": ...}``."""
        return {
            "edge": self.pod_count * self.edges_per_pod,
            "agg": self.pod_count * self.aggs_per_pod,
            "core": self.core_count,
        }

    def switch_count(self) -> int:
        return sum(self.tier_counts().values())

    def host_count(self) -> int:
        return self.pod_count * self.edges_per_pod * self.hosts_per_edge_switch

    def ecmp_paths(self, cross_pod: bool = True) -> int:
        """Equal-cost path count between two hosts under distinct edges.

        For a fat-tree, inter-pod traffic fans over ``(k/2)**2`` paths
        (any aggregation uplink, then any core of that group) and
        intra-pod cross-edge traffic over ``k/2``; for a generalized
        Clos the inter-pod figure is ``leaves_per_pod**2 * spines``
        (up-leaf x spine x down-leaf) and intra-pod is
        ``leaves_per_pod``.
        """
        if self.kind == "fat_tree":
            half = self.k // 2
            return half * half if cross_pod else half
        if cross_pod:
            return self.leaves_per_pod * self.spines * self.leaves_per_pod
        return self.leaves_per_pod

    def oversubscription(self) -> float:
        """Edge-tier oversubscription ratio (host capacity / uplink capacity).

        1.0 is full bisection; larger means the edge uplinks are the
        squeeze.  Uses the 40 Gbps default for unset rates.
        """
        from repro.sim.network import DEFAULT_LINK_RATE_BPS

        host_rate = self.host_rate_bps or DEFAULT_LINK_RATE_BPS
        agg_rate = self.agg_rate_bps or DEFAULT_LINK_RATE_BPS
        down = self.hosts_per_edge_switch * host_rate
        up = self.aggs_per_pod * agg_rate
        return down / up

    # --- naming ------------------------------------------------------------

    def edge_name(self, pod: int, index: int) -> str:
        if self.naming == "fig2":
            return f"T{pod * self.tors_per_pod + index + 1}"
        return f"p{pod}e{index}"

    def agg_name(self, pod: int, index: int) -> str:
        if self.naming == "fig2":
            return f"L{pod * self.leaves_per_pod + index + 1}"
        return f"p{pod}a{index}"

    def core_name(self, index: int) -> str:
        if self.naming == "fig2":
            return f"S{index + 1}"
        return f"c{index}"

    def host_name(self, pod: int, edge: int, index: int) -> str:
        if self.naming == "fig2":
            return f"H{pod * self.tors_per_pod + edge + 1}{index + 1}"
        return f"p{pod}e{edge}h{index}"
