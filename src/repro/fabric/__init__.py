"""Parameterized large-scale fat-tree / Clos fabrics (DESIGN.md §13).

* :class:`FabricSpec` — declarative, JSON-serializable fabric shape
  (k-ary fat-tree or generalized 3-tier Clos, per-tier link rates,
  oversubscription, deterministic naming).
* :func:`build_fabric` — spec -> wired
  :class:`~repro.sim.network.Network` with structured (search-free)
  ECMP routing, returning a :class:`Fabric` handle with per-tier
  accessors, PAUSE/queue aggregation and builder-invariant checks.

The paper's Figure 2 testbed is the special case
``FabricSpec(kind="clos", pods=2, tors_per_pod=2, leaves_per_pod=2,
spines=2, naming="fig2")``; :func:`repro.sim.topology.three_tier_clos`
delegates here.
"""

from repro.fabric.build import Fabric, build_fabric
from repro.fabric.routing import install_fabric_routes
from repro.fabric.spec import KINDS, NAMINGS, TIERS, FabricSpec

__all__ = [
    "Fabric",
    "FabricSpec",
    "KINDS",
    "NAMINGS",
    "TIERS",
    "build_fabric",
    "install_fabric_routes",
]
