"""Network container: devices, flows and the run loop.

:class:`Network` is the top-level object experiments interact with —
it owns the event scheduler, builds devices, wires cables, installs
ECMP routes and opens flows with the chosen congestion control:

>>> from repro import units
>>> from repro.sim.network import Network
>>> net = Network(seed=1)
>>> sw = net.new_switch("S")
>>> a, b = net.new_host("A"), net.new_host("B")
>>> _ = net.connect(a, sw, units.gbps(40), units.ns(500))
>>> _ = net.connect(b, sw, units.gbps(40), units.ns(500))
>>> net.build_routes()
>>> flow = net.add_flow(a, b, cc="dcqcn")
>>> flow.set_greedy()
>>> net.run_for(units.ms(1))
>>> flow.bytes_delivered > 0
True
"""

from __future__ import annotations

import random
from typing import List, Mapping, Optional, Union

from repro import units
from repro.cc import CcContext, create_cc, create_switch_feedback
from repro.core.params import DCQCNParams
from repro.sim.engine import EventScheduler
from repro.sim.host import DATA_PRIORITY, Flow, Host
from repro.sim.link import connect as connect_ports
from repro.sim.nic import HostNic, NicConfig
from repro.sim.routing import install_routes
from repro.sim.switch import Switch, SwitchConfig
from repro.telemetry import Telemetry

#: Propagation delay used by default for intra-datacenter cables
#: (~100 m of fiber at 5 ns/m).
DEFAULT_PROP_DELAY_NS = units.ns(500)

#: Default link rate — the testbed is all 40 Gbps.
DEFAULT_LINK_RATE_BPS = units.gbps(40)


class Network:
    """A simulated datacenter network and the flows crossing it."""

    def __init__(
        self,
        seed: int = 0,
        dcqcn_params: Optional[DCQCNParams] = None,
        nic_config: Optional[NicConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.engine = EventScheduler()
        self.rng = random.Random(seed)
        self.seed = seed
        self.dcqcn_params = dcqcn_params or DCQCNParams.deployed()
        self.nic_config = nic_config or NicConfig()
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.flows: List[Flow] = []
        self._next_device_id = 0
        #: wall-clock seconds spent installing routes (bench trajectory)
        self.route_install_s = 0.0
        #: the :class:`repro.fabric.Fabric` handle when this network was
        #: built by :func:`repro.fabric.build_fabric`, else None — lets
        #: telemetry aggregate per tier instead of per port at scale
        self.fabric = None
        self.telemetry: Optional[Telemetry] = None
        #: invariant guard (repro.invariants), None when unguarded
        self.invariant_guard = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # --- telemetry ---------------------------------------------------------------

    def attach_telemetry(self, telemetry: Telemetry) -> Telemetry:
        """Bind a telemetry context to this network.

        Safe to call after construction (topology builders create the
        network internally): the tracer is propagated to every existing
        device and reaction point, and anything created later inherits
        it.  With tracing disabled (``telemetry.tracer is None``) the
        per-device ``tracer`` attributes stay ``None`` and the hot
        paths are unchanged.
        """
        self.telemetry = telemetry
        tracer = telemetry.tracer
        for switch in self.switches:
            switch.tracer = tracer
        for host in self.hosts:
            host.nic.tracer = tracer
        for flow in self.flows:
            if flow.cc is not None:
                flow.cc.set_tracer(tracer)
        return telemetry

    @property
    def tracer(self):
        """The active tracer, or ``None`` when tracing is off."""
        return self.telemetry.tracer if self.telemetry is not None else None

    # --- invariants --------------------------------------------------------------

    def attach_invariants(self, guard):
        """Bind an :class:`~repro.invariants.InvariantGuard` to this network.

        Mirrors :meth:`attach_telemetry`: the guard is propagated to
        every existing switch and reaction point, and flows added later
        inherit it.  Without a guard every hook site stays a single
        ``is not None`` test.
        """
        self.invariant_guard = guard
        for switch in self.switches:
            switch.guard = guard
        for flow in self.flows:
            if flow.cc is not None:
                flow.cc.set_guard(guard)
        return guard

    def metrics_snapshot(self) -> dict:
        """Collect fleet-wide metrics into the attached (or a fresh)
        registry and return its JSON snapshot.  End-of-run use only —
        collection adds current totals."""
        from repro.telemetry import MetricsRegistry, collect_network

        registry = (
            self.telemetry.metrics
            if self.telemetry is not None
            else MetricsRegistry()
        )
        collect_network(self, registry)
        if self.telemetry is not None:
            return self.telemetry.snapshot()
        return registry.snapshot()

    # --- construction -------------------------------------------------------------

    def _device_id(self) -> int:
        device_id = self._next_device_id
        self._next_device_id += 1
        return device_id

    def new_switch(self, name: str, config: Optional[SwitchConfig] = None) -> Switch:
        """Create a switch (ECMP salt drawn from the network seed)."""
        switch = Switch(
            self.engine,
            self._device_id(),
            name,
            config=config,
            ecmp_salt=self.rng.getrandbits(64),
        )
        switch.tracer = self.tracer
        switch.guard = self.invariant_guard
        self.switches.append(switch)
        return switch

    def new_host(self, name: str, nic_config: Optional[NicConfig] = None) -> Host:
        """Create a host with its RDMA NIC (port attached via connect)."""
        nic = HostNic(
            self.engine,
            self._device_id(),
            f"{name}.nic",
            config=nic_config or self.nic_config,
        )
        nic.tracer = self.tracer
        host = Host(name, nic)
        self.hosts.append(host)
        return host

    def connect(
        self,
        a: Union[Host, Switch],
        b: Union[Host, Switch],
        rate_bps: float = DEFAULT_LINK_RATE_BPS,
        prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    ):
        """Wire a full-duplex cable; hosts are wired via their NIC."""
        dev_a = a.nic if isinstance(a, Host) else a
        dev_b = b.nic if isinstance(b, Host) else b
        return connect_ports(self.engine, dev_a, dev_b, rate_bps, prop_delay_ns)

    def build_routes(self) -> None:
        """Compute and install ECMP tables on every switch (BFS).

        Hand-built topologies route by graph search; fabrics built via
        :mod:`repro.fabric` install structured routes instead and never
        call this.  Both record ``route_install_s`` so ``repro bench``
        can watch the topology layer.
        """
        import time

        started = time.perf_counter()
        install_routes(self.switches, (host.nic for host in self.hosts))
        self.route_install_s = time.perf_counter() - started

    # --- flows ---------------------------------------------------------------------

    def add_flow(
        self,
        src: Host,
        dst: Host,
        cc: str = "dcqcn",
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
        params: Optional[DCQCNParams] = None,
        static_rate_bps: Optional[float] = None,
        initial_rate_bps: Optional[float] = None,
        cc_params: Optional[Mapping] = None,
    ) -> Flow:
        """Open a flow from ``src`` to ``dst``.

        ``cc`` names any controller in the :mod:`repro.cc` registry:

        * ``"dcqcn"``  — the paper's protocol: RP at the sender, NP at
          the receiver (requires ECN-enabled switches to do anything).
        * ``"none"``   — no end-to-end control; the flow runs at line
          rate (or ``static_rate_bps``) and PFC is the only brake.
        * ``"dctcp"``, ``"qcn"``, ``"timely"``, ``"fncc"`` — the
          baselines and alternatives (see their modules).  Controllers
          declaring ``switch_feedback`` (QCN frames, FNCC fast CNPs)
          get the matching generator auto-installed on every switch —
          build the topology before opening such flows.

        ``cc_params`` passes scalar per-controller overrides (each
        controller documents and validates its accepted keys);
        ``params`` overrides the DCQCN constants for controllers built
        on them.  ``initial_rate_bps`` seeds rate-based controllers at
        a throttled rate when the flow starts — used by convergence
        studies that begin from asymmetric rates (paper §5.2).
        """
        if src is dst:
            raise ValueError("src and dst must differ")
        flow_id = len(self.flows)
        effective = params or self.dcqcn_params
        ctx = CcContext(
            engine=self.engine,
            line_rate_bps=src.nic.line_rate_bps,
            params=effective,
            flow_id=flow_id,
            host_name=src.name,
            rng=self.rng,
            cc_params=dict(cc_params or {}),
        )
        controller = create_cc(cc, ctx)
        if controller is not None:
            controller.set_tracer(self.tracer)
            controller.set_guard(self.invariant_guard)
        if initial_rate_bps is not None:
            if controller is None or not controller.supports_seed_rate:
                raise ValueError(
                    f"initial_rate_bps requires a seedable rate-based "
                    f"controller, and cc={cc!r} is not one"
                )
            self.engine.schedule_at(
                start_ns, controller.seed_rate, initial_rate_bps
            )
        flow = Flow(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
            cc=controller,
            static_rate_bps=static_rate_bps,
        )
        self.flows.append(flow)
        src.flows.append(flow)
        src.nic.register_tx_flow(flow)
        dst.nic.register_rx_flow(
            flow,
            dcqcn_params=(
                effective
                if controller is not None and controller.wants_cnp
                else None
            ),
            echo_ecn=(
                controller is not None
                and (controller.wants_ecn_echo or controller.wants_rtt)
            ),
        )
        if controller is not None and controller.switch_feedback is not None:
            self._ensure_switch_feedback(controller.switch_feedback, flow_id)
        return flow

    def _ensure_switch_feedback(self, kind: str, flow_id: int) -> None:
        """Install (once per switch) and arm the feedback generator ``kind``.

        Switches that already carry a generator of this kind (e.g. a
        pre-built ``QcnSwitch``) are not given a second one — that
        would double-sample.
        """
        for switch in self.switches:
            generators = switch.cc_feedback or ()
            generator = next(
                (g for g in generators if g.kind == kind), None
            )
            if generator is None:
                generator = create_switch_feedback(kind, switch)
                switch.add_cc_feedback(generator)
            generator.watch(flow_id)

    def register_flow(self, flow: Flow, **rx_kwargs) -> None:
        """Register an externally constructed flow (baseline transports)."""
        if flow.flow_id != len(self.flows):
            raise ValueError(
                f"flow id {flow.flow_id} out of order; use next_flow_id()"
            )
        if flow.cc is not None:
            flow.cc.set_tracer(self.tracer)
            flow.cc.set_guard(self.invariant_guard)
        self.flows.append(flow)
        flow.src.flows.append(flow)
        flow.src.nic.register_tx_flow(flow)
        flow.dst.nic.register_rx_flow(flow, **rx_kwargs)

    def next_flow_id(self) -> int:
        """Id the next registered flow must carry."""
        return len(self.flows)

    # --- running --------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.engine.run_until(self.engine.now + duration_ns)

    def run_until(self, time_ns: int) -> None:
        self.engine.run_until(time_ns)

    # --- fleet-wide statistics ---------------------------------------------------------

    def total_pause_frames_sent(self) -> int:
        return sum(sw.pause_frames_sent for sw in self.switches)

    def total_drops(self) -> int:
        return sum(sw.dropped_packets for sw in self.switches)

    def total_marked(self) -> int:
        return sum(sw.marked_packets for sw in self.switches)
