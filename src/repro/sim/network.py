"""Network container: devices, flows and the run loop.

:class:`Network` is the top-level object experiments interact with —
it owns the event scheduler, builds devices, wires cables, installs
ECMP routes and opens flows with the chosen congestion control:

>>> from repro import units
>>> from repro.sim.network import Network
>>> net = Network(seed=1)
>>> sw = net.new_switch("S")
>>> a, b = net.new_host("A"), net.new_host("B")
>>> _ = net.connect(a, sw, units.gbps(40), units.ns(500))
>>> _ = net.connect(b, sw, units.gbps(40), units.ns(500))
>>> net.build_routes()
>>> flow = net.add_flow(a, b, cc="dcqcn")
>>> flow.set_greedy()
>>> net.run_for(units.ms(1))
>>> flow.bytes_delivered > 0
True
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro import units
from repro.core.params import DCQCNParams
from repro.core.rp import ReactionPoint
from repro.sim.engine import EventScheduler
from repro.sim.host import DATA_PRIORITY, Flow, Host
from repro.sim.link import connect as connect_ports
from repro.sim.nic import HostNic, NicConfig
from repro.sim.routing import install_routes
from repro.sim.switch import Switch, SwitchConfig
from repro.telemetry import Telemetry

#: Propagation delay used by default for intra-datacenter cables
#: (~100 m of fiber at 5 ns/m).
DEFAULT_PROP_DELAY_NS = units.ns(500)

#: Default link rate — the testbed is all 40 Gbps.
DEFAULT_LINK_RATE_BPS = units.gbps(40)


class Network:
    """A simulated datacenter network and the flows crossing it."""

    def __init__(
        self,
        seed: int = 0,
        dcqcn_params: Optional[DCQCNParams] = None,
        nic_config: Optional[NicConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.engine = EventScheduler()
        self.rng = random.Random(seed)
        self.seed = seed
        self.dcqcn_params = dcqcn_params or DCQCNParams.deployed()
        self.nic_config = nic_config or NicConfig()
        self.hosts: List[Host] = []
        self.switches: List[Switch] = []
        self.flows: List[Flow] = []
        self._next_device_id = 0
        self.telemetry: Optional[Telemetry] = None
        #: invariant guard (repro.invariants), None when unguarded
        self.invariant_guard = None
        if telemetry is not None:
            self.attach_telemetry(telemetry)

    # --- telemetry ---------------------------------------------------------------

    def attach_telemetry(self, telemetry: Telemetry) -> Telemetry:
        """Bind a telemetry context to this network.

        Safe to call after construction (topology builders create the
        network internally): the tracer is propagated to every existing
        device and reaction point, and anything created later inherits
        it.  With tracing disabled (``telemetry.tracer is None``) the
        per-device ``tracer`` attributes stay ``None`` and the hot
        paths are unchanged.
        """
        self.telemetry = telemetry
        tracer = telemetry.tracer
        for switch in self.switches:
            switch.tracer = tracer
        for host in self.hosts:
            host.nic.tracer = tracer
        for flow in self.flows:
            if flow.rp is not None:
                flow.rp.tracer = tracer
        return telemetry

    @property
    def tracer(self):
        """The active tracer, or ``None`` when tracing is off."""
        return self.telemetry.tracer if self.telemetry is not None else None

    # --- invariants --------------------------------------------------------------

    def attach_invariants(self, guard):
        """Bind an :class:`~repro.invariants.InvariantGuard` to this network.

        Mirrors :meth:`attach_telemetry`: the guard is propagated to
        every existing switch and reaction point, and flows added later
        inherit it.  Without a guard every hook site stays a single
        ``is not None`` test.
        """
        self.invariant_guard = guard
        for switch in self.switches:
            switch.guard = guard
        for flow in self.flows:
            if flow.rp is not None:
                flow.rp.guard = guard
        return guard

    def metrics_snapshot(self) -> dict:
        """Collect fleet-wide metrics into the attached (or a fresh)
        registry and return its JSON snapshot.  End-of-run use only —
        collection adds current totals."""
        from repro.telemetry import MetricsRegistry, collect_network

        registry = (
            self.telemetry.metrics
            if self.telemetry is not None
            else MetricsRegistry()
        )
        collect_network(self, registry)
        if self.telemetry is not None:
            return self.telemetry.snapshot()
        return registry.snapshot()

    # --- construction -------------------------------------------------------------

    def _device_id(self) -> int:
        device_id = self._next_device_id
        self._next_device_id += 1
        return device_id

    def new_switch(self, name: str, config: Optional[SwitchConfig] = None) -> Switch:
        """Create a switch (ECMP salt drawn from the network seed)."""
        switch = Switch(
            self.engine,
            self._device_id(),
            name,
            config=config,
            ecmp_salt=self.rng.getrandbits(64),
        )
        switch.tracer = self.tracer
        switch.guard = self.invariant_guard
        self.switches.append(switch)
        return switch

    def new_host(self, name: str, nic_config: Optional[NicConfig] = None) -> Host:
        """Create a host with its RDMA NIC (port attached via connect)."""
        nic = HostNic(
            self.engine,
            self._device_id(),
            f"{name}.nic",
            config=nic_config or self.nic_config,
        )
        nic.tracer = self.tracer
        host = Host(name, nic)
        self.hosts.append(host)
        return host

    def connect(
        self,
        a: Union[Host, Switch],
        b: Union[Host, Switch],
        rate_bps: float = DEFAULT_LINK_RATE_BPS,
        prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    ):
        """Wire a full-duplex cable; hosts are wired via their NIC."""
        dev_a = a.nic if isinstance(a, Host) else a
        dev_b = b.nic if isinstance(b, Host) else b
        return connect_ports(self.engine, dev_a, dev_b, rate_bps, prop_delay_ns)

    def build_routes(self) -> None:
        """Compute and install ECMP tables on every switch."""
        install_routes(self.switches, (host.nic for host in self.hosts))

    # --- flows ---------------------------------------------------------------------

    def add_flow(
        self,
        src: Host,
        dst: Host,
        cc: str = "dcqcn",
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
        params: Optional[DCQCNParams] = None,
        static_rate_bps: Optional[float] = None,
        initial_rate_bps: Optional[float] = None,
    ) -> Flow:
        """Open a flow from ``src`` to ``dst``.

        ``cc`` selects the congestion control:

        * ``"dcqcn"`` — the paper's protocol: RP at the sender, NP at
          the receiver (requires ECN-enabled switches to do anything).
        * ``"none"``  — no end-to-end control; the flow runs at line
          rate (or ``static_rate_bps``) and PFC is the only brake.

        ``initial_rate_bps`` (DCQCN only) seeds the reaction point at a
        throttled rate when the flow starts — used by convergence
        studies that begin from asymmetric rates (paper §5.2).
        """
        if src is dst:
            raise ValueError("src and dst must differ")
        if cc not in ("dcqcn", "none"):
            raise ValueError(f"unknown congestion control {cc!r}")
        flow_id = len(self.flows)
        effective = params or self.dcqcn_params
        rp = None
        if cc == "dcqcn":
            rp = ReactionPoint(
                self.engine,
                effective,
                src.nic.line_rate_bps,
                timer_seed=self.rng.getrandbits(32),
                flow_id=flow_id,
                component=f"{src.name}.rp",
            )
            rp.tracer = self.tracer
            rp.guard = self.invariant_guard
            if initial_rate_bps is not None:
                self.engine.schedule_at(start_ns, rp.seed_rate, initial_rate_bps)
        elif initial_rate_bps is not None:
            raise ValueError("initial_rate_bps requires cc='dcqcn'")
        flow = Flow(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
            rp=rp,
            static_rate_bps=static_rate_bps,
        )
        self.flows.append(flow)
        src.flows.append(flow)
        src.nic.register_tx_flow(flow)
        dst.nic.register_rx_flow(
            flow, dcqcn_params=effective if cc == "dcqcn" else None
        )
        return flow

    def register_flow(self, flow: Flow, **rx_kwargs) -> None:
        """Register an externally constructed flow (baseline transports)."""
        if flow.flow_id != len(self.flows):
            raise ValueError(
                f"flow id {flow.flow_id} out of order; use next_flow_id()"
            )
        self.flows.append(flow)
        flow.src.flows.append(flow)
        flow.src.nic.register_tx_flow(flow)
        flow.dst.nic.register_rx_flow(flow, **rx_kwargs)

    def next_flow_id(self) -> int:
        """Id the next registered flow must carry."""
        return len(self.flows)

    # --- running --------------------------------------------------------------------

    def run_for(self, duration_ns: int) -> None:
        """Advance the simulation by ``duration_ns``."""
        self.engine.run_until(self.engine.now + duration_ns)

    def run_until(self, time_ns: int) -> None:
        self.engine.run_until(time_ns)

    # --- fleet-wide statistics ---------------------------------------------------------

    def total_pause_frames_sent(self) -> int:
        return sum(sw.pause_frames_sent for sw in self.switches)

    def total_drops(self) -> int:
        return sum(sw.dropped_packets for sw in self.switches)

    def total_marked(self) -> int:
        return sum(sw.marked_packets for sw in self.switches)
