"""Route computation: shortest-path ECMP tables for every switch.

The testbed routes with BGP and spreads flows with ECMP (paper §2,
Figure 2).  We reproduce the data-plane outcome: every switch holds,
per destination host, the set of egress ports that lie on *some*
shortest path, and picks among them with a per-flow hash
(:func:`repro.sim.switch.ecmp_hash`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from repro.sim.device import Device
from repro.sim.nic import HostNic
from repro.sim.switch import Switch


def adjacency(devices: Iterable[Device]) -> Dict[int, List[Device]]:
    """Neighbor map keyed by device id, derived from attached ports."""
    result: Dict[int, List[Device]] = {}
    for device in devices:
        neighbors = []
        for port in device.ports:
            if port.peer is None:
                raise ValueError(f"{device.name} has an unconnected port")
            neighbors.append(port.peer.owner)
        result[device.device_id] = neighbors
    return result


def hop_distances(dst: Device, neighbors: Dict[int, List[Device]]) -> Dict[int, int]:
    """BFS hop counts from every device to ``dst`` (links are equal cost)."""
    dist = {dst.device_id: 0}
    frontier = deque([dst])
    while frontier:
        device = frontier.popleft()
        d = dist[device.device_id]
        for neighbor in neighbors[device.device_id]:
            if neighbor.device_id not in dist:
                dist[neighbor.device_id] = d + 1
                frontier.append(neighbor)
    return dist


def install_routes(switches: Iterable[Switch], nics: Iterable[HostNic]) -> None:
    """Populate every switch's ECMP table for every host destination.

    For each destination, a switch's next-hop set is its neighbors that
    sit one hop closer on a shortest path; the corresponding local port
    indices become the ECMP group.
    """
    switches = list(switches)
    nics = list(nics)
    neighbors = adjacency([*switches, *nics])
    for nic in nics:
        dist = hop_distances(nic, neighbors)
        for switch in switches:
            own = dist.get(switch.device_id)
            if own is None:
                continue  # partitioned topology: no route from here
            ports = tuple(
                port.index
                for port in switch.ports
                if dist.get(port.peer.owner.device_id, -2) == own - 1
            )
            if ports:
                switch.set_route(nic.device_id, ports)
