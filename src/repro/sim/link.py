"""Full-duplex links and serializing ports.

A cable between two devices is modelled as a pair of :class:`Port`
objects, one on each device, cross-linked via ``peer``.  Each port owns
the *transmit* half of its direction: it serializes one frame at a time
at the link rate, then hands the frame to the peer device after the
propagation delay.  Reception needs no modelling beyond the scheduled
delivery callback.

Ports implement the details PFC correctness depends on:

* **No preemption** — a frame whose serialization has begun always
  finishes, even if a PAUSE arrives meanwhile (the paper's headroom
  calculation explicitly accounts for this).
* **Control bypass** — PFC PAUSE/RESUME frames jump ahead of data (they
  wait at most for the in-flight frame) and are never themselves
  subject to pause, mirroring how switches emit PFC out-of-band.
* **Per-priority pause state** — ``paused_mask`` records which
  priorities the *peer* has paused; the owning device consults
  :meth:`Port.can_send` when choosing the next frame.
* **Non-congestion losses** (paper §7) — an optional per-frame error
  probability models CRC-failing frames on a marginal cable.  RoCEv2's
  go-back-N makes such losses expensive, which is exactly the §7
  discussion; :mod:`repro.experiments.link_errors` quantifies it.
* **Fault hooks** (:mod:`repro.faults`) — a port can be taken *down*
  (:meth:`Port.set_link_up`; frames finishing serialization while down
  are lost, nothing new starts) and its rate changed mid-run
  (:meth:`Port.set_rate`, the slow-receiver injector).  Both are
  no-ops for scenarios that never script a fault.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional, Tuple

from repro.sim.device import Device
from repro.sim.engine import EventScheduler
from repro.sim.packet import Packet
from repro.units import serialization_time_ns


class Port:
    """One direction-owning endpoint of a full-duplex cable."""

    __slots__ = (
        "engine",
        "owner",
        "index",
        "peer",
        "rate_bps",
        "_ns_per_byte",
        "prop_delay_ns",
        "busy",
        "paused_mask",
        "_control_queue",
        "tx_bytes",
        "tx_packets",
        "rx_bytes",
        "lost_bytes",
        "tx_pause_frames",
        "rx_pause_frames",
        "busy_since",
        "busy_ns",
        "error_rate",
        "_error_rng",
        "corrupted_frames",
        "_paused_since",
        "_paused_ns",
        "link_up",
        "link_down_drops",
        "remote_sink",
    )

    def __init__(self, engine: EventScheduler, owner: Device, rate_bps: float, prop_delay_ns: int):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay_ns}")
        self.engine = engine
        self.owner = owner
        self.index = owner.attach_port(self)
        self.peer: Optional["Port"] = None
        self.rate_bps = rate_bps
        # Precomputed for the per-packet hot path: ns to serialize one
        # byte.  Serialization time rounds up to a whole nanosecond so
        # back-to-back transmissions never overlap.
        self._ns_per_byte = 8 * 1_000_000_000 / rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.busy = False
        self.paused_mask = 0
        self._control_queue: Deque[Packet] = deque()
        # counters
        self.tx_bytes = 0
        self.tx_packets = 0
        # bytes delivered to this port's owner / lost in flight on the
        # transmit side — together with tx_bytes these close the
        # per-link conservation relation the invariant guard checks
        self.rx_bytes = 0
        self.lost_bytes = 0
        self.tx_pause_frames = 0
        self.rx_pause_frames = 0
        self.busy_since = 0
        self.busy_ns = 0
        # non-congestion loss injection (off by default)
        self.error_rate = 0.0
        self._error_rng: Optional[random.Random] = None
        self.corrupted_frames = 0
        # cumulative time each priority spent PAUSEd (prio -> ns)
        self._paused_since: dict = {}
        self._paused_ns: dict = {}
        # link fault state (LinkFlap injector)
        self.link_up = True
        self.link_down_drops = 0
        # cross-shard cut (repro.shard): when set, frames that survive
        # serialization are handed to the sink (which ships them to the
        # peer's shard) instead of being scheduled on the local engine
        self.remote_sink = None

    # --- pause state --------------------------------------------------------

    def can_send(self, priority: int) -> bool:
        """True unless the peer has PAUSEd ``priority`` on this port."""
        return not (self.paused_mask >> priority) & 1

    def set_paused(self, priority: int, paused: bool) -> None:
        """Record a PAUSE/RESUME received from the peer for ``priority``."""
        bit = 1 << priority
        if paused:
            if not self.paused_mask & bit:
                self._paused_since[priority] = self.engine.now
            self.paused_mask |= bit
        else:
            was_paused = self.paused_mask & bit
            self.paused_mask &= ~bit
            if was_paused:
                started = self._paused_since.pop(priority, self.engine.now)
                self._paused_ns[priority] = (
                    self._paused_ns.get(priority, 0) + self.engine.now - started
                )
                self.notify()

    def total_paused_ns(self, priority: int = 0) -> int:
        """Cumulative time ``priority`` has been PAUSEd on this port.

        The PFC-cascade damage metric: a victim flow's throughput loss
        is roughly its bottleneck port's paused fraction.
        """
        total = self._paused_ns.get(priority, 0)
        started = self._paused_since.get(priority)
        if started is not None:
            total += self.engine.now - started
        return total

    # --- fault hooks --------------------------------------------------------

    def set_link_up(self, up: bool) -> None:
        """Take this port down / bring it back up (LinkFlap injector).

        While down, no new transmission starts and a frame whose
        serialization completes is lost in flight (the cable is dark).
        Frames already past serialization — i.e. propagating — still
        deliver.  Bringing the port up re-kicks the transmit path.
        """
        if up == self.link_up:
            return
        self.link_up = up
        if up:
            self.notify()

    def set_rate(self, rate_bps: float) -> None:
        """Change the serialization rate mid-run (SlowReceiver injector).

        Applies from the next transmission; an in-flight frame finishes
        on the schedule its start-of-serialization rate granted.
        """
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self.rate_bps = rate_bps
        self._ns_per_byte = 8 * 1_000_000_000 / rate_bps

    # --- transmit path --------------------------------------------------------

    def send_control(self, pkt: Packet) -> None:
        """Queue a link-local control frame (PFC); bypasses data and pause."""
        if pkt.pause:
            self.tx_pause_frames += 1
        self._control_queue.append(pkt)
        self.notify()

    def notify(self) -> None:
        """Poke the port: if idle, try to start the next transmission."""
        if self.busy or not self.link_up:
            return
        pkt = self._dequeue()
        if pkt is None:
            return
        self._start_transmission(pkt)

    def _dequeue(self) -> Optional[Packet]:
        if self._control_queue:
            return self._control_queue.popleft()
        return self.owner.next_packet(self)

    def _start_transmission(self, pkt: Packet) -> None:
        self.busy = True
        self.busy_since = self.engine.now
        exact = pkt.size * self._ns_per_byte
        ser = int(exact)
        if exact > ser:
            ser += 1
        self.engine.schedule(ser, self._tx_done, pkt)

    def set_error_rate(self, rate: float, seed: Optional[int] = None) -> None:
        """Drop each transmitted frame with probability ``rate``.

        Models CRC-failing frames on a marginal link (paper §7's
        non-congestion losses).  Lost frames are silently discarded in
        flight — the receiver sees a sequence gap and go-back-N takes
        over.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"error rate must be in [0, 1), got {rate}")
        self.error_rate = rate
        self._error_rng = random.Random(seed) if rate > 0.0 else None

    def _tx_done(self, pkt: Packet) -> None:
        self.busy = False
        now = self.engine.now
        self.busy_ns += now - self.busy_since
        self.tx_bytes += pkt.size
        self.tx_packets += 1
        peer = self.peer
        if peer is None:
            raise RuntimeError(f"port on {self.owner.name} is not connected")
        if not self.link_up:
            # the cable went dark mid-serialization: the frame is lost
            self.link_down_drops += 1
            self.lost_bytes += pkt.size
            tracer = self.owner.tracer
            if tracer is not None:
                tracer.emit(
                    now,
                    "pkt.drop",
                    self.owner.name,
                    flow=pkt.flow_id,
                    reason="link_down",
                    bytes=pkt.size,
                )
        elif self._error_rng is not None and self._error_rng.random() < self.error_rate:
            self.corrupted_frames += 1
            self.lost_bytes += pkt.size
            tracer = self.owner.tracer
            if tracer is not None:
                tracer.emit(
                    now,
                    "pkt.drop",
                    self.owner.name,
                    flow=pkt.flow_id,
                    reason="corrupt",
                    bytes=pkt.size,
                )
        elif self.remote_sink is None:
            # tb orders simultaneous arrivals from different senders by
            # the sending port, not by this engine's sequence counter —
            # the one tie-break a sharded run can reproduce exactly
            # (see repro.shard.boundary._inject)
            self.engine.schedule(
                self.prop_delay_ns,
                peer.owner.receive,
                pkt,
                peer,
                tb=(self.owner.name, self.index),
            )
        else:
            self.remote_sink(pkt)
        self.owner.tx_complete(self, pkt)
        self.notify()

    def utilization(self, window_ns: int) -> float:
        """Fraction of ``window_ns`` this port spent serializing frames."""
        if window_ns <= 0:
            return 0.0
        busy = self.busy_ns
        if self.busy:
            busy += self.engine.now - self.busy_since
        return busy / window_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.peer.owner.name if self.peer is not None else "?"
        return f"Port({self.owner.name}[{self.index}] -> {peer}, {self.rate_bps / 1e9:g}Gbps)"


def connect(
    engine: EventScheduler,
    a: Device,
    b: Device,
    rate_bps: float,
    prop_delay_ns: int,
) -> Tuple[Port, Port]:
    """Wire a full-duplex cable between ``a`` and ``b``.

    Returns ``(port_on_a, port_on_b)``.
    """
    port_a = Port(engine, a, rate_bps, prop_delay_ns)
    port_b = Port(engine, b, rate_bps, prop_delay_ns)
    port_a.peer = port_b
    port_b.peer = port_a
    return port_a, port_b
