"""Topology builders for the paper's experiments.

* :func:`single_switch` — N hosts on one switch (fluid-model
  validation, incast microbenchmarks, the Figure 19 latency test).
* :func:`dumbbell` — two switches, hosts on either side.
* :func:`parking_lot` — the Figure 20 multi-bottleneck scenario.
* :func:`three_tier_clos` — the testbed of Figure 2: four ToRs, four
  leaves, two spines, all 40 Gbps, ECMP everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import units
from repro.core.params import DCQCNParams
from repro.sim.host import Host
from repro.sim.network import (
    DEFAULT_LINK_RATE_BPS,
    DEFAULT_PROP_DELAY_NS,
    Network,
)
from repro.sim.nic import NicConfig
from repro.sim.switch import Switch, SwitchConfig


def _fresh_config(switch_config: Optional[SwitchConfig]) -> Optional[SwitchConfig]:
    return switch_config


def single_switch(
    n_hosts: int,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    switch_config: Optional[SwitchConfig] = None,
    seed: int = 0,
    dcqcn_params: Optional[DCQCNParams] = None,
    nic_config: Optional[NicConfig] = None,
) -> Tuple[Network, Switch, List[Host]]:
    """``n_hosts`` hosts hanging off one switch."""
    if n_hosts < 2:
        raise ValueError("need at least two hosts")
    net = Network(seed=seed, dcqcn_params=dcqcn_params, nic_config=nic_config)
    switch = net.new_switch("S1", config=_fresh_config(switch_config))
    hosts = []
    for i in range(n_hosts):
        host = net.new_host(f"H{i + 1}")
        net.connect(host, switch, rate_bps, prop_delay_ns)
        hosts.append(host)
    net.build_routes()
    return net, switch, hosts


def dumbbell(
    n_left: int,
    n_right: int,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    trunk_rate_bps: Optional[float] = None,
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    switch_config: Optional[SwitchConfig] = None,
    seed: int = 0,
    dcqcn_params: Optional[DCQCNParams] = None,
) -> Tuple[Network, List[Host], List[Host]]:
    """Classic dumbbell: left hosts -- SL == SR -- right hosts."""
    net = Network(seed=seed, dcqcn_params=dcqcn_params)
    left_switch = net.new_switch("SL", config=_fresh_config(switch_config))
    right_switch = net.new_switch("SR", config=_fresh_config(switch_config))
    net.connect(left_switch, right_switch, trunk_rate_bps or rate_bps, prop_delay_ns)
    lefts, rights = [], []
    for i in range(n_left):
        host = net.new_host(f"L{i + 1}")
        net.connect(host, left_switch, rate_bps, prop_delay_ns)
        lefts.append(host)
    for i in range(n_right):
        host = net.new_host(f"R{i + 1}")
        net.connect(host, right_switch, rate_bps, prop_delay_ns)
        rights.append(host)
    net.build_routes()
    return net, lefts, rights


def parking_lot(
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    switch_config: Optional[SwitchConfig] = None,
    seed: int = 0,
    dcqcn_params: Optional[DCQCNParams] = None,
) -> Tuple[Network, dict]:
    """Figure 20(a): three flows, two bottlenecks.

    ``H1, H2`` sit behind switch ``A``; ``H3, R1, R2`` behind ``B``.
    With flows f1: H1->R1, f2: H2->R2, f3: H3->R2, flow f2 crosses both
    the A->B trunk (shared with f1) and the B->R2 edge (shared with
    f3).  Max-min fairness gives every flow half the link rate; a
    protocol biased against multi-bottleneck flows starves f2.
    """
    net = Network(seed=seed, dcqcn_params=dcqcn_params)
    switch_a = net.new_switch("A", config=_fresh_config(switch_config))
    switch_b = net.new_switch("B", config=_fresh_config(switch_config))
    net.connect(switch_a, switch_b, rate_bps, prop_delay_ns)
    hosts = {}
    for name, switch in (
        ("H1", switch_a),
        ("H2", switch_a),
        ("H3", switch_b),
        ("R1", switch_b),
        ("R2", switch_b),
    ):
        host = net.new_host(name)
        net.connect(host, switch, rate_bps, prop_delay_ns)
        hosts[name] = host
    net.build_routes()
    return net, hosts


@dataclass
class ClosSpec:
    """Handles into a built 3-tier Clos network (Figure 2)."""

    net: Network
    tors: List[Switch] = field(default_factory=list)
    leaves: List[Switch] = field(default_factory=list)
    spines: List[Switch] = field(default_factory=list)
    #: hosts[t][i] is the i-th host under ToR t (T1..T4 in paper terms)
    hosts: List[List[Host]] = field(default_factory=list)

    def host(self, tor_index: int, host_index: int) -> Host:
        return self.hosts[tor_index][host_index]

    def all_hosts(self) -> List[Host]:
        return [host for rack in self.hosts for host in rack]

    def spine_pause_frames(self) -> int:
        """PAUSE frames *received* by the spines (the Figure 15 metric)."""
        return sum(
            port.rx_pause_frames for spine in self.spines for port in spine.ports
        )


def three_tier_clos(
    hosts_per_tor: int = 5,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    prop_delay_ns: int = DEFAULT_PROP_DELAY_NS,
    switch_config: Optional[SwitchConfig] = None,
    seed: int = 0,
    dcqcn_params: Optional[DCQCNParams] = None,
    nic_config: Optional[NicConfig] = None,
) -> ClosSpec:
    """The paper's testbed: 4 ToRs, 4 leaves, 2 spines (Figure 2).

    ToRs T1, T2 full-mesh to leaves L1, L2 (pod 1); T3, T4 to L3, L4
    (pod 2); every leaf connects to both spines.  Each ToR is its own
    IP subnet; routing is shortest-path with ECMP, as with BGP on the
    testbed.

    Since the :mod:`repro.fabric` subsystem landed this is a thin
    wrapper over :func:`repro.fabric.build_fabric` with the Figure 2
    shape and naming — same device ids, names, ECMP salts and
    effective routes as the original hand-built version (pinned by
    ``tests/test_fabric.py``).
    """
    if hosts_per_tor < 1:
        raise ValueError("need at least one host per ToR")
    from repro.fabric import FabricSpec, build_fabric

    fabric = build_fabric(
        FabricSpec(
            kind="clos",
            pods=2,
            tors_per_pod=2,
            leaves_per_pod=2,
            spines=2,
            hosts_per_tor=hosts_per_tor,
            host_rate_bps=rate_bps,
            agg_rate_bps=rate_bps,
            core_rate_bps=rate_bps,
            prop_delay_ns=prop_delay_ns,
            naming="fig2",
        ),
        seed=seed,
        switch_config=_fresh_config(switch_config),
        dcqcn_params=dcqcn_params,
        nic_config=nic_config,
    )
    return ClosSpec(
        net=fabric.net,
        tors=fabric.edges,
        leaves=fabric.aggs,
        spines=fabric.cores,
        hosts=fabric.hosts,
    )
