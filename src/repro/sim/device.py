"""Base class for network devices (switches and host NICs)."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventScheduler
    from repro.sim.link import Port
    from repro.sim.packet import Packet


class Device:
    """A node that owns ports and reacts to frames.

    Concrete devices implement the pull-model contract used by
    :class:`repro.sim.link.Port`:

    * :meth:`receive` — a frame arrived on one of our ports.
    * :meth:`next_packet` — the port is idle; hand it the next frame to
      serialize (respecting PFC pause state via ``port.can_send``), or
      ``None`` to go idle.
    * :meth:`tx_complete` — a frame we handed out finished serializing
      (switches free shared-buffer space here).

    Slotted (as are the concrete devices) so thousand-NIC fabrics do
    not pay a ``__dict__`` per device; subclasses defined outside
    :mod:`repro.sim` may omit ``__slots__`` and get one back.
    """

    __slots__ = ("engine", "device_id", "name", "ports", "tracer")

    def __init__(self, engine: "EventScheduler", device_id: int, name: str):
        self.engine = engine
        self.device_id = device_id
        self.name = name
        self.ports: List["Port"] = []
        #: :class:`repro.telemetry.trace.Tracer` when tracing is on,
        #: ``None`` otherwise — emit sites guard on ``is not None`` so
        #: the disabled path costs one identity test.
        self.tracer = None

    def attach_port(self, port: "Port") -> int:
        """Register a port; returns its index on this device."""
        index = len(self.ports)
        self.ports.append(port)
        return index

    def port_to(self, other: "Device") -> "Port":
        """The (first) local port whose cable reaches ``other``."""
        for port in self.ports:
            if port.peer is not None and port.peer.owner is other:
                return port
        raise LookupError(f"{self.name} has no port to {other.name}")

    # --- contract used by Port --------------------------------------------

    def receive(self, pkt: "Packet", in_port: "Port") -> None:
        raise NotImplementedError

    def next_packet(self, port: "Port") -> Optional["Packet"]:
        raise NotImplementedError

    def tx_complete(self, port: "Port", pkt: "Packet") -> None:
        """Hook called when ``pkt`` has fully left ``port``.  Optional."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, id={self.device_id})"
