"""Compatibility shim: the event engine lives at :mod:`repro.engine`.

It sits outside the ``repro.sim`` package because the DCQCN core
(:mod:`repro.core.rp`) also schedules events, and the core must not
depend on the simulator package.
"""

from repro.engine import Event, EventScheduler, PeriodicTimer

__all__ = ["Event", "EventScheduler", "PeriodicTimer"]
