"""RoCEv2 host NIC.

The NIC is where RoCEv2 and DCQCN live: the protocol is "implemented
entirely on the NICs, bypassing the host networking stack".  This model
covers the pieces the paper's behaviour depends on:

* **Per-flow hardware rate limiters** — the NIC pulls the packet of
  the flow with the earliest pacing deadline; pacing gaps come from the
  flow's DCQCN current rate.  Packets are serialized at line rate, so
  an unconstrained flow saturates the port ("hyper-fast start").
* **PFC reaction** — a PAUSE from the ToR stalls the port for the
  paused priority; flows back up inside the NIC exactly like the
  head-of-line blocking the paper describes.
* **NP algorithm** — per-flow CNP generation for ECN-marked arrivals
  (:class:`repro.core.np.NotificationPoint`), with CNPs transmitted in
  the high-priority control class.
* **CC dispatch** — received congestion signals (CNPs, per-ACK ECN
  echoes, QCN feedback frames, measured RTT samples) are dispatched
  uniformly to the flow's :class:`repro.cc.CongestionControl`; for
  DCQCN that controller wraps :class:`repro.core.rp.ReactionPoint`.
* **Go-back-N reliability** — out-of-order arrivals are dropped and
  NACKed; senders rewind on NACK or on a retransmission timeout.  On a
  correctly configured lossless fabric this machinery stays cold; with
  PFC disabled (Figure 18) it produces exactly the poor loss recovery
  the paper reports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro import units
from repro.core.np import NotificationPoint
from repro.core.params import DCQCNParams
from repro.telemetry import events as trace_events
from repro.sim.device import Device
from repro.sim.engine import EventScheduler
from repro.sim.host import CONTROL_PRIORITY, Flow, NEVER
from repro.sim.link import Port
from repro.sim.packet import (
    CONTROL_FRAME_BYTES,
    ECN_CE,
    KIND_ACK,
    KIND_CNP,
    KIND_DATA,
    KIND_NACK,
    KIND_PAUSE,
    KIND_QCN_FB,
    KIND_RESUME,
    Packet,
    cnp_packet,
)


@dataclass
class NicConfig:
    """Transport-level knobs of the NIC."""

    #: cumulative ACK cadence (packets) — keeps go-back-N state fresh
    #: without per-packet ACK overhead (RDMA is not ACK-clocked).
    ack_interval_packets: int = 64
    #: minimum spacing of duplicate NACKs for the same expected seq.
    nack_min_interval_ns: int = units.us(100)
    #: retransmission timeout for tail losses; generous because PFC
    #: pauses must not masquerade as losses.
    rto_ns: int = units.ms(4)
    enable_rto: bool = True
    #: consecutive RTO expirations before the QP gives up (RoCE NICs
    #: move the QP to an error state after ``retry_cnt`` attempts —
    #: the paper's "some flows are simply unable to recover").
    #: ``None`` retries forever.
    max_rto_retries: Optional[int] = None


class _RxState:
    """Receiver-side per-flow state (expected seq, NP, ack pacing)."""

    __slots__ = (
        "flow",
        "np",
        "expected_seq",
        "unacked_packets",
        "last_nacked_seq",
        "last_nack_ns",
        "echo_ecn",
    )

    def __init__(self, flow: Flow, np: Optional[NotificationPoint], echo_ecn: bool):
        self.flow = flow
        self.np = np
        self.expected_seq = 0
        self.unacked_packets = 0
        self.last_nacked_seq = -1
        self.last_nack_ns = -(1 << 62)
        self.echo_ecn = echo_ecn


class HostNic(Device):
    """A host's RDMA NIC: one port, many flows."""

    __slots__ = (
        "config",
        "host",
        "_tx_flows",
        "_rx_states",
        "_control",
        "_kick_at",
        "cnps_sent",
        "cnps_received",
        "acks_sent",
        "nacks_sent",
        "data_received",
        "out_of_order_drops",
        "rto_fires",
        "failed_flows",
        "cnp_impairment",
        "cnps_dropped",
        "cnps_delayed",
    )

    def __init__(
        self,
        engine: EventScheduler,
        device_id: int,
        name: str,
        config: Optional[NicConfig] = None,
    ):
        super().__init__(engine, device_id, name)
        self.config = config or NicConfig()
        self.host = None  # set by Host.__init__
        self._tx_flows: Dict[int, Flow] = {}
        self._rx_states: Dict[int, _RxState] = {}
        self._control: Deque[Packet] = deque()
        self._kick_at = NEVER
        # counters
        self.cnps_sent = 0
        self.cnps_received = 0
        self.acks_sent = 0
        self.nacks_sent = 0
        self.data_received = 0
        self.out_of_order_drops = 0
        self.rto_fires = 0
        self.failed_flows = 0
        # reverse-path fault hook (repro.faults CnpImpairment): when
        # set, every arriving CNP is offered to the impairment first;
        # it may drop it, delay it (re-delivering via _deliver_cnp), or
        # let it through.  None (the default) costs one attribute test.
        self.cnp_impairment = None
        self.cnps_dropped = 0
        self.cnps_delayed = 0

    # --- wiring -----------------------------------------------------------------

    @property
    def port(self) -> Port:
        if not self.ports:
            raise RuntimeError(f"{self.name}: NIC has no port attached yet")
        return self.ports[0]

    @property
    def line_rate_bps(self) -> float:
        return self.port.rate_bps

    def register_tx_flow(self, flow: Flow) -> None:
        """Make this NIC the sender of ``flow``."""
        self._tx_flows[flow.flow_id] = flow

    def register_rx_flow(
        self,
        flow: Flow,
        dcqcn_params: Optional[DCQCNParams] = None,
        echo_ecn: bool = False,
    ) -> None:
        """Make this NIC the receiver of ``flow``.

        ``dcqcn_params`` enables the NP algorithm (CNP generation);
        ``echo_ecn`` enables per-packet ACKs carrying the CE bit, used
        by the window-based DCTCP baseline.
        """
        np = None
        if dcqcn_params is not None:
            sender_id = flow.src.nic.device_id
            flow_id = flow.flow_id

            def send_cnp() -> None:
                self.cnps_sent += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        self.engine.now,
                        trace_events.NP_CNP_TX,
                        self.name,
                        flow=flow_id,
                    )
                self._send_control(
                    cnp_packet(flow_id, self.device_id, sender_id, CONTROL_PRIORITY)
                )

            np = NotificationPoint(dcqcn_params.cnp_interval_ns, send_cnp)
        self._rx_states[flow.flow_id] = _RxState(flow, np, echo_ecn)

    def rx_state(self, flow_id: int) -> _RxState:
        """Receiver state for one flow (tests and monitors)."""
        return self._rx_states[flow_id]

    # --- transmit path -------------------------------------------------------------

    def flow_state_changed(self, flow: Flow) -> None:
        """A flow gained data / changed rate: re-evaluate the port."""
        self.port.notify()
        self._maybe_schedule_kick()

    def next_packet(self, port: Port) -> Optional[Packet]:
        control = self._control
        if control and port.can_send(control[0].priority):
            return control.popleft()
        now = self.engine.now
        best: Optional[Flow] = None
        best_ready = NEVER
        for flow in self._tx_flows.values():
            if not port.can_send(flow.priority):
                continue
            ready = flow.ready_time()
            if ready < best_ready or (
                ready == best_ready
                and best is not None
                and flow._last_pull_ns < best._last_pull_ns
            ):
                best = flow
                best_ready = ready
        if best is None or best_ready > now:
            self._schedule_kick(best_ready)
            return None
        pkt = best.take_packet(now)
        self._arm_rto(best)
        return pkt

    def tx_complete(self, port: Port, pkt: Packet) -> None:
        if pkt.kind == KIND_DATA:
            flow = self._tx_flows.get(pkt.flow_id)
            if flow is not None and flow.cc is not None:
                flow.cc.on_bytes_sent(pkt.size)

    def _send_control(self, pkt: Packet) -> None:
        self._control.append(pkt)
        self.port.notify()

    def _schedule_kick(self, at_ns: int) -> None:
        if at_ns >= NEVER:
            return
        if self._kick_at <= at_ns and self._kick_at > self.engine.now:
            return  # an earlier (or equal) kick is already pending
        self._kick_at = at_ns
        self.engine.schedule_at(at_ns, self._kick)

    def _maybe_schedule_kick(self) -> None:
        ready = min(
            (f.ready_time() for f in self._tx_flows.values()), default=NEVER
        )
        if ready > self.engine.now:
            self._schedule_kick(ready)

    def _kick(self) -> None:
        self._kick_at = NEVER
        self.port.notify()

    # --- receive path -------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: Port) -> None:
        in_port.rx_bytes += pkt.size
        kind = pkt.kind
        if kind == KIND_DATA:
            self._receive_data(pkt)
        elif kind == KIND_ACK:
            flow = self._tx_flows[pkt.flow_id]
            flow.on_ack(pkt.seq, pkt.msg_id)
            flow.on_transport_feedback(ece=bool(pkt.qcn_fb), acked_seq=pkt.seq)
            if flow._sample_rtt:
                rtt = flow.take_rtt_sample(pkt.seq, self.engine.now)
                if rtt is not None:
                    flow.cc.on_rtt_sample(rtt)
        elif kind == KIND_NACK:
            flow = self._tx_flows[pkt.flow_id]
            flow.rewind_to(pkt.seq)
        elif kind == KIND_CNP:
            if self.cnp_impairment is not None:
                if self.cnp_impairment.intercept(self, pkt):
                    return
            self._deliver_cnp(pkt)
        elif kind == KIND_PAUSE or kind == KIND_RESUME:
            if pkt.pause:
                in_port.rx_pause_frames += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.engine.now,
                    trace_events.PFC_PAUSE_RX
                    if pkt.pause
                    else trace_events.PFC_RESUME_RX,
                    self.name,
                    prio=pkt.pause_priority,
                )
            in_port.set_paused(pkt.pause_priority, pkt.pause)
        elif kind == KIND_QCN_FB:
            flow = self._tx_flows[pkt.flow_id]
            flow.on_qcn_feedback(pkt.qcn_fb)
        else:  # pragma: no cover - defensive
            raise ValueError(f"{self.name}: unexpected packet {pkt!r}")

    def _deliver_cnp(self, pkt: Packet) -> None:
        """Hand a CNP to the flow's controller (also the delayed-delivery path)."""
        self.cnps_received += 1
        flow = self._tx_flows[pkt.flow_id]
        if flow.cc is not None:
            flow.cc.on_cnp()

    def _receive_data(self, pkt: Packet) -> None:
        self.data_received += 1
        rxs = self._rx_states[pkt.flow_id]
        if rxs.np is not None:
            marked = pkt.ecn == ECN_CE
            fired = rxs.np.on_data_packet(self.engine.now, marked)
            if marked and not fired and self.tracer is not None:
                # CNP coalescing: a marked arrival inside the N window
                self.tracer.emit(
                    self.engine.now,
                    trace_events.NP_CNP_COALESCED,
                    self.name,
                    flow=pkt.flow_id,
                )
        flow = rxs.flow
        seq = pkt.seq
        if seq == rxs.expected_seq:
            rxs.expected_seq = seq + 1
            flow.bytes_delivered += pkt.size
            rxs.unacked_packets += 1
            if rxs.echo_ecn:
                self._send_ack(rxs, pkt.msg_id, ece=pkt.ecn == ECN_CE)
            elif (
                pkt.msg_id >= 0
                or rxs.unacked_packets >= self.config.ack_interval_packets
            ):
                self._send_ack(rxs, pkt.msg_id)
        elif seq > rxs.expected_seq:
            # Gap: go-back-N receivers drop out-of-order arrivals.
            self.out_of_order_drops += 1
            now = self.engine.now
            if (
                rxs.last_nacked_seq != rxs.expected_seq
                or now - rxs.last_nack_ns >= self.config.nack_min_interval_ns
            ):
                rxs.last_nacked_seq = rxs.expected_seq
                rxs.last_nack_ns = now
                self.nacks_sent += 1
                self._send_control(
                    Packet(
                        KIND_NACK,
                        flow_id=flow.flow_id,
                        src=self.device_id,
                        dst=flow.src.nic.device_id,
                        size=CONTROL_FRAME_BYTES,
                        seq=rxs.expected_seq,
                        priority=CONTROL_PRIORITY,
                    )
                )
        else:
            # Duplicate after a rewind: re-ACK so the sender's state
            # (and any message-boundary bookkeeping) heals.
            if pkt.msg_id >= 0:
                self._send_ack(rxs, pkt.msg_id)

    def _send_ack(self, rxs: _RxState, msg_id: int, ece: bool = False) -> None:
        flow = rxs.flow
        rxs.unacked_packets = 0
        self.acks_sent += 1
        self._send_control(
            Packet(
                KIND_ACK,
                flow_id=flow.flow_id,
                src=self.device_id,
                dst=flow.src.nic.device_id,
                size=CONTROL_FRAME_BYTES,
                seq=rxs.expected_seq,
                priority=CONTROL_PRIORITY,
                msg_id=msg_id,
                qcn_fb=1 if ece else 0,
            )
        )

    # --- retransmission timeout ------------------------------------------------------

    def _arm_rto(self, flow: Flow) -> None:
        if not self.config.enable_rto:
            return
        if getattr(flow, "_rto_armed", False):
            return
        flow._rto_armed = True
        flow._last_progress_seq = flow.acked_seq
        self.engine.schedule(self.config.rto_ns, self._rto_check, flow)

    def _rto_check(self, flow: Flow) -> None:
        flow._rto_armed = False
        if flow.outstanding_packets() <= 0:
            flow._consecutive_rtos = 0
            return  # all data acked; re-armed on next transmission
        if flow.acked_seq == flow._last_progress_seq:
            # No progress for a full RTO: tail loss — rewind.
            self.rto_fires += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.engine.now,
                    trace_events.NIC_RTO,
                    self.name,
                    flow=flow.flow_id,
                )
            flow._consecutive_rtos += 1
            limit = self.config.max_rto_retries
            if limit is not None and flow._consecutive_rtos > limit:
                # QP error state: the NIC stops retrying (RoCE
                # retry_cnt exhausted); the flow is dead.
                flow.failed = True
                self.failed_flows += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        self.engine.now,
                        trace_events.NIC_FLOW_FAILED,
                        self.name,
                        flow=flow.flow_id,
                    )
                return
            flow.rewind_to(flow.acked_seq)
        else:
            flow._consecutive_rtos = 0
        self._arm_rto(flow)
