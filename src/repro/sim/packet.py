"""Packet and frame representations.

One :class:`Packet` class covers every frame the simulator moves:
RoCEv2 data segments, ACK/NACK transport responses, DCQCN Congestion
Notification Packets (CNPs), QCN feedback frames, and link-local PFC
PAUSE/RESUME frames.  A single slotted class keeps the hot allocation
path cheap and avoids isinstance dispatch in switches.

ECN is modelled with the three IP codepoints that matter here:
``ECN_NOT_ECT`` (feedback frames), ``ECN_ECT`` (ECN-capable data) and
``ECN_CE`` (congestion experienced, set by the switch CP algorithm).
"""

from __future__ import annotations

from typing import Optional

# --- frame kinds ----------------------------------------------------------

KIND_DATA = 0    # RoCEv2 data segment
KIND_ACK = 1     # transport-level acknowledgement (message completion)
KIND_NACK = 2    # go-back-N negative ack (out-of-sequence arrival)
KIND_CNP = 3     # DCQCN congestion notification packet (NP -> RP)
KIND_PAUSE = 4   # PFC PAUSE, link-local, per priority
KIND_RESUME = 5  # PFC RESUME (PAUSE with zero quanta), link-local
KIND_QCN_FB = 6  # QCN congestion feedback frame (baseline)

KIND_NAMES = {
    KIND_DATA: "DATA",
    KIND_ACK: "ACK",
    KIND_NACK: "NACK",
    KIND_CNP: "CNP",
    KIND_PAUSE: "PAUSE",
    KIND_RESUME: "RESUME",
    KIND_QCN_FB: "QCN_FB",
}

# --- ECN codepoints -------------------------------------------------------

ECN_NOT_ECT = 0
ECN_ECT = 1
ECN_CE = 3

# --- wire constants -------------------------------------------------------

# RoCEv2 per-packet overhead: Ethernet(14+4) + IP(20) + UDP(8) + IB BTH(12)
# + ICRC(4) + preamble/IPG(20).  We fold headers into the packet size the
# caller supplies (payload sizes in experiments are MTU-sized already), but
# expose the constant for workload code that wants goodput conversions.
ROCE_HEADER_BYTES = 82

# Minimum Ethernet frame: control frames (PFC, CNP, ACK) are modelled at
# this size.
CONTROL_FRAME_BYTES = 64


class Packet:
    """A frame in flight.

    Attributes
    ----------
    kind:
        One of the ``KIND_*`` constants.
    flow_id:
        Identifier of the flow (RDMA queue pair) the frame belongs to;
        ``-1`` for link-local PFC frames.
    src, dst:
        End-host ids for routable frames (used for forwarding and ECMP
        hashing).  PFC frames are consumed at the next hop and carry
        the sender's device id in ``src``.
    size:
        Frame size in bytes, including headers.
    seq:
        Data sequence number (packet index within the flow); for NACKs
        the sequence the receiver expects next; unused otherwise.
    priority:
        PFC priority class (0..7).  CNPs and transport responses travel
        in a dedicated high priority class per the paper.
    ecn:
        ECN codepoint (``ECN_ECT`` on data, possibly ``ECN_CE`` after
        marking).
    msg_id:
        Application message index (for flow-completion bookkeeping);
        ``-1`` when not the last packet of a message.
    pause_priority / pause:
        PFC fields: affected priority class and True for PAUSE / False
        for RESUME.
    qcn_fb:
        Quantized feedback value for QCN frames.
    """

    __slots__ = (
        "kind",
        "flow_id",
        "src",
        "dst",
        "size",
        "seq",
        "priority",
        "ecn",
        "msg_id",
        "pause_priority",
        "pause",
        "qcn_fb",
        "ingress_index",
    )

    def __init__(
        self,
        kind: int,
        flow_id: int = -1,
        src: int = -1,
        dst: int = -1,
        size: int = CONTROL_FRAME_BYTES,
        seq: int = 0,
        priority: int = 0,
        ecn: int = ECN_NOT_ECT,
        msg_id: int = -1,
        pause_priority: int = 0,
        pause: bool = False,
        qcn_fb: int = 0,
    ):
        self.kind = kind
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.seq = seq
        self.priority = priority
        self.ecn = ecn
        self.msg_id = msg_id
        self.pause_priority = pause_priority
        self.pause = pause
        self.qcn_fb = qcn_fb
        # Per-hop scratch: index of the ingress port at the switch
        # currently buffering the packet (for PFC ingress accounting).
        # Overwritten at every hop; -1 while at an end host.
        self.ingress_index = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({KIND_NAMES.get(self.kind, self.kind)}, flow={self.flow_id}, "
            f"{self.src}->{self.dst}, {self.size}B, seq={self.seq}, "
            f"prio={self.priority}, ecn={self.ecn})"
        )


def data_packet(
    flow_id: int,
    src: int,
    dst: int,
    size: int,
    seq: int,
    priority: int,
    msg_id: int = -1,
) -> Packet:
    """Build an ECN-capable RoCEv2 data segment."""
    return Packet(
        KIND_DATA,
        flow_id=flow_id,
        src=src,
        dst=dst,
        size=size,
        seq=seq,
        priority=priority,
        ecn=ECN_ECT,
        msg_id=msg_id,
    )


def cnp_packet(flow_id: int, src: int, dst: int, priority: int) -> Packet:
    """Build a Congestion Notification Packet (NP -> RP, high priority)."""
    return Packet(
        KIND_CNP,
        flow_id=flow_id,
        src=src,
        dst=dst,
        size=CONTROL_FRAME_BYTES,
        priority=priority,
    )


def pause_frame(src_device: int, priority: int, pause: bool) -> Packet:
    """Build a link-local PFC PAUSE (``pause=True``) or RESUME frame."""
    return Packet(
        KIND_PAUSE if pause else KIND_RESUME,
        src=src_device,
        size=CONTROL_FRAME_BYTES,
        pause_priority=priority,
        pause=pause,
    )
