"""Shared-buffer switch with PFC, RED/ECN marking and ECMP forwarding.

The model follows the paper's description of the Arista 7050QX32
(Broadcom Trident II) switches:

* one shared packet buffer; a packet occupies it from arrival until its
  egress serialization *completes* (store-and-forward, no preemption);
* PFC accounting is per (ingress port, priority): when the bytes a
  given ingress has in the buffer exceed ``t_PFC`` a PAUSE goes to that
  upstream device, and a RESUME follows once the count falls two MTUs
  below the (current) threshold;
* ``t_PFC`` is either static or the Trident II dynamic threshold
  ``beta * (free shared pool) / num_priorities``;
* ECN marking (the DCQCN CP algorithm) happens at *egress* enqueue
  using the instantaneous per-(port, priority) egress queue length and
  the RED profile of Figure 5;
* forwarding uses a per-destination list of equal-cost egress ports,
  picked by a deterministic per-flow hash (ECMP);
* egress scheduling is strict priority, so CNPs travelling in the high
  priority class overtake data.

Approximation noted for reviewers: the PAUSE trigger is evaluated when
a packet *arrives* on the (port, priority) in question, and RESUME
conditions for all paused pairs are re-evaluated at every departure.
A crossing caused purely by other ports shrinking the dynamic
threshold is therefore detected at the next arrival, at most one
packet-time late; the reserved headroom already covers far more than
that.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro import units
from repro.buffers.thresholds import SwitchProfile, dynamic_pfc_threshold
from repro.core.cp import RedEcnMarker
from repro.core.params import DCQCNParams
from repro.telemetry import events as trace_events
from repro.sim.device import Device
from repro.sim.engine import EventScheduler
from repro.sim.link import Port
from repro.sim.packet import (
    ECN_CE,
    ECN_ECT,
    KIND_DATA,
    KIND_PAUSE,
    KIND_RESUME,
    Packet,
    pause_frame,
)


def ecmp_hash(flow_id: int, src: int, dst: int, salt: int) -> int:
    """Deterministic integer mix for ECMP next-hop selection.

    Mimics a five-tuple hash: the same flow always takes the same path
    through a given switch, the reverse direction hashes independently,
    and different ``salt`` values (per switch / per run) re-roll the
    placement the way re-randomized UDP source ports would.
    """
    x = (flow_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x ^= (src * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= (dst * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= salt & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return (x ^ (x >> 31)) & 0xFFFFFFFFFFFFFFFF


@dataclass
class SwitchConfig:
    """Behavioural knobs of one switch.

    ``pfc_mode`` selects how the PAUSE threshold is computed:
    ``"dynamic"`` (Trident II beta formula, the correct configuration),
    ``"static"`` (a fixed ``t_pfc_static_bytes`` — used to reproduce
    the paper's deliberate misconfiguration in Figure 18), or
    ``"off"`` (no PFC at all; the fabric becomes lossy).
    """

    profile: SwitchProfile = field(default_factory=SwitchProfile)
    pfc_mode: str = "dynamic"
    beta: float = 8.0
    t_pfc_static_bytes: float = units.kb(24.47)
    ecn_enabled: bool = True
    marking: DCQCNParams = field(default_factory=DCQCNParams.deployed)
    ecn_seed: Optional[int] = None
    #: lossy-mode (pfc_mode == "off") dynamic egress-queue cap: a queue
    #: may hold at most ``alpha * free shared buffer`` bytes, the
    #: standard Broadcom shared-buffer admission rule.  Lossless
    #: priorities are exempt on real switches (ingress PFC accounting
    #: protects them), so the cap only applies with PFC disabled.
    egress_dynamic_alpha: float = 0.125

    def __post_init__(self) -> None:
        if self.pfc_mode not in ("dynamic", "static", "off"):
            raise ValueError(f"unknown pfc_mode {self.pfc_mode!r}")
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.egress_dynamic_alpha <= 0:
            raise ValueError("egress_dynamic_alpha must be positive")


class Switch(Device):
    """A shared-buffer, PFC-capable, ECN-marking switch."""

    __slots__ = (
        "config",
        "ecmp_salt",
        "num_priorities",
        "buffer_bytes",
        "_shared_pool_bytes",
        "_dyn_factor",
        "routing_table",
        "default_route",
        "occupied_bytes",
        "_ingress_bytes",
        "_egress_bytes",
        "_egress_queues",
        "_nonempty_mask",
        "_paused_upstream",
        "_marker",
        "guard",
        "cc_feedback",
        "cnps_sent",
        "dropped_packets",
        "dropped_bytes",
        "marked_packets",
        "pause_frames_sent",
        "resume_frames_sent",
        "pause_frames_received",
        "forwarded_packets",
        "peak_occupancy_bytes",
    )

    def __init__(
        self,
        engine: EventScheduler,
        device_id: int,
        name: str,
        config: Optional[SwitchConfig] = None,
        ecmp_salt: int = 0,
    ):
        super().__init__(engine, device_id, name)
        self.config = config or SwitchConfig()
        self.ecmp_salt = ecmp_salt
        profile = self.config.profile
        self.num_priorities = profile.num_priorities
        self.buffer_bytes = profile.buffer_bytes
        # hot-path constants for the dynamic PFC threshold
        self._shared_pool_bytes = profile.shared_pool_bytes
        self._dyn_factor = self.config.beta / profile.num_priorities
        # dst host id -> tuple of egress port indices (equal cost)
        self.routing_table: Dict[int, Tuple[int, ...]] = {}
        # fallback ECMP group for destinations with no table entry —
        # the "default up" route of structured fabric routing (empty
        # tuple: no fallback, unknown destinations are an error)
        self.default_route: Tuple[int, ...] = ()
        # accounting
        self.occupied_bytes = 0
        self._ingress_bytes: List[List[int]] = []
        self._egress_bytes: List[List[int]] = []
        self._egress_queues: List[List[Deque[Packet]]] = []
        self._nonempty_mask: List[int] = []
        self._paused_upstream: Dict[Tuple[int, int], bool] = {}
        seed = self.config.ecn_seed
        if seed is None:
            seed = (device_id * 7919 + 13) & 0x7FFFFFFF
        self._marker = RedEcnMarker(self.config.marking, seed=seed)
        #: invariant guard (repro.invariants), attached by the Network;
        #: None keeps the dequeue hot path to a single attribute test
        self.guard = None
        #: switch-side congestion-feedback generators (repro.cc): a
        #: tuple of objects with ``on_enqueue(switch, pkt, egress,
        #: marked)``, called for every enqueued data packet.  None (the
        #: common case) keeps the hot path to a single attribute test.
        self.cc_feedback = None
        #: CNPs originated by this switch (FNCC-style fast notification)
        self.cnps_sent = 0
        # counters
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.marked_packets = 0
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0
        self.pause_frames_received = 0
        self.forwarded_packets = 0
        self.peak_occupancy_bytes = 0

    # --- wiring ---------------------------------------------------------------

    def attach_port(self, port: Port) -> int:
        index = super().attach_port(port)
        k = self.num_priorities
        self._ingress_bytes.append([0] * k)
        self._egress_bytes.append([0] * k)
        self._egress_queues.append([deque() for _ in range(k)])
        self._nonempty_mask.append(0)
        return index

    def set_route(self, dst: int, port_indices: Tuple[int, ...]) -> None:
        """Install the equal-cost egress port set for destination ``dst``."""
        if not port_indices:
            raise ValueError(f"{self.name}: empty ECMP set for dst {dst}")
        for index in port_indices:
            if index < 0 or index >= len(self.ports):
                raise ValueError(f"{self.name}: bad port index {index}")
        self.routing_table[dst] = tuple(port_indices)

    def set_default_route(self, port_indices: Tuple[int, ...]) -> None:
        """Install the fallback ECMP group (structured routing's "up").

        Any destination without a :meth:`set_route` entry hashes over
        these ports; on a fat-tree/Clos that is every host that is not
        below this switch, which keeps table size O(local hosts)
        instead of O(all hosts) on the edge and aggregation tiers.
        """
        if not port_indices:
            raise ValueError(f"{self.name}: empty default ECMP set")
        for index in port_indices:
            if index < 0 or index >= len(self.ports):
                raise ValueError(f"{self.name}: bad port index {index}")
        self.default_route = tuple(port_indices)

    def route_to(self, dst: int) -> Tuple[int, ...]:
        """The effective ECMP port set for destination ``dst``.

        The per-destination entry when one exists, else the default
        route; empty means the destination is unreachable from here.
        """
        return self.routing_table.get(dst, self.default_route)

    # --- helpers ----------------------------------------------------------------

    def egress_queue_bytes(self, port_index: int, priority: Optional[int] = None) -> int:
        """Egress queue depth, one priority or the whole port."""
        if priority is None:
            return sum(self._egress_bytes[port_index])
        return self._egress_bytes[port_index][priority]

    def ingress_queue_bytes(self, port_index: int, priority: int) -> int:
        """Bytes buffered that arrived via (port, priority) — PFC counter."""
        return self._ingress_bytes[port_index][priority]

    def current_pfc_threshold(self) -> float:
        """The PAUSE threshold in force right now.

        The dynamic branch is an inlined
        :func:`repro.buffers.thresholds.dynamic_pfc_threshold` —
        equality with the reference formula is covered by tests.
        """
        config = self.config
        if config.pfc_mode == "static":
            return config.t_pfc_static_bytes
        free = self._shared_pool_bytes - self.occupied_bytes
        return free * self._dyn_factor if free > 0 else 0.0

    def _pick_egress(self, pkt: Packet) -> int:
        try:
            choices = self.routing_table[pkt.dst]
        except KeyError:
            choices = self.default_route
            if not choices:
                raise LookupError(
                    f"{self.name}: no route to host {pkt.dst} (packet {pkt!r})"
                ) from None
        if len(choices) == 1:
            return choices[0]
        h = ecmp_hash(pkt.flow_id, pkt.src, pkt.dst, self.ecmp_salt)
        return choices[h % len(choices)]

    # --- datapath ---------------------------------------------------------------

    def receive(self, pkt: Packet, in_port: Port) -> None:
        in_port.rx_bytes += pkt.size
        kind = pkt.kind
        if kind == KIND_PAUSE or kind == KIND_RESUME:
            if pkt.pause:
                self.pause_frames_received += 1
                in_port.rx_pause_frames += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.engine.now,
                    trace_events.PFC_PAUSE_RX
                    if pkt.pause
                    else trace_events.PFC_RESUME_RX,
                    self.name,
                    port=in_port.index,
                    prio=pkt.pause_priority,
                )
            in_port.set_paused(pkt.pause_priority, pkt.pause)
            return
        self._enqueue(pkt, in_port.index)

    def _enqueue(self, pkt: Packet, ingress_index: int) -> None:
        size = pkt.size
        if self.occupied_bytes + size > self.buffer_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += size
            if self.tracer is not None:
                self._trace_drop(pkt, "buffer_full")
            return
        egress_index = self._pick_egress(pkt)
        if self.config.pfc_mode == "off":
            # lossy-mode admission: dynamic per-queue cap (alpha * free)
            free = self._shared_pool_bytes - self.occupied_bytes
            limit = self.config.egress_dynamic_alpha * free
            if self._egress_bytes[egress_index][pkt.priority] + size > limit:
                self.dropped_packets += 1
                self.dropped_bytes += size
                if self.tracer is not None:
                    self._trace_drop(pkt, "egress_cap")
                return
        prio = pkt.priority
        # CP algorithm: RED/ECN on the instantaneous egress queue depth.
        marked = False
        if (
            self.config.ecn_enabled
            and pkt.ecn == ECN_ECT
            and self._marker.should_mark(self._egress_bytes[egress_index][prio])
        ):
            marked = True
            pkt.ecn = ECN_CE
            self.marked_packets += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.engine.now,
                    trace_events.CP_ECN_MARK,
                    self.name,
                    flow=pkt.flow_id,
                    port=egress_index,
                    prio=prio,
                    queue_bytes=self._egress_bytes[egress_index][prio],
                )
        pkt.ingress_index = ingress_index
        self.occupied_bytes += size
        if self.occupied_bytes > self.peak_occupancy_bytes:
            self.peak_occupancy_bytes = self.occupied_bytes
        self._ingress_bytes[ingress_index][prio] += size
        self._egress_bytes[egress_index][prio] += size
        self._egress_queues[egress_index][prio].append(pkt)
        self._nonempty_mask[egress_index] |= 1 << prio
        self.forwarded_packets += 1
        self._maybe_pause(ingress_index, prio)
        self.ports[egress_index].notify()
        if self.cc_feedback is not None and pkt.kind == KIND_DATA:
            for generator in self.cc_feedback:
                generator.on_enqueue(self, pkt, egress_index, marked)

    def add_cc_feedback(self, generator) -> None:
        """Install a switch-side congestion-feedback generator."""
        self.cc_feedback = (*(self.cc_feedback or ()), generator)

    def next_packet(self, port: Port) -> Optional[Packet]:
        index = port.index
        allowed = self._nonempty_mask[index] & ~port.paused_mask
        if not allowed:
            return None
        prio = allowed.bit_length() - 1  # strict priority, highest first
        queue = self._egress_queues[index][prio]
        pkt = queue.popleft()
        if not queue:
            self._nonempty_mask[index] &= ~(1 << prio)
        return pkt

    def tx_complete(self, port: Port, pkt: Packet) -> None:
        """Free buffer space once the packet has fully left the switch."""
        if pkt.kind == KIND_PAUSE or pkt.kind == KIND_RESUME:
            return  # our own control frames are not buffered
        size = pkt.size
        prio = pkt.priority
        self.occupied_bytes -= size
        self._egress_bytes[port.index][prio] -= size
        self._ingress_bytes[pkt.ingress_index][prio] -= size
        if self.guard is not None:
            self.guard.on_switch_dequeue(self, port.index, pkt)
        self._maybe_resume()

    # --- PFC ------------------------------------------------------------------

    def _maybe_pause(self, ingress_index: int, prio: int) -> None:
        if self.config.pfc_mode == "off":
            return
        key = (ingress_index, prio)
        if self._paused_upstream.get(key):
            return
        if self._ingress_bytes[ingress_index][prio] > self.current_pfc_threshold():
            self._paused_upstream[key] = True
            self.pause_frames_sent += 1
            if self.tracer is not None:
                self.tracer.emit(
                    self.engine.now,
                    trace_events.PFC_PAUSE_TX,
                    self.name,
                    port=ingress_index,
                    prio=prio,
                )
            self.ports[ingress_index].send_control(
                pause_frame(self.device_id, prio, pause=True)
            )

    def _maybe_resume(self) -> None:
        if not self._paused_upstream:
            return
        threshold = self.current_pfc_threshold()
        hysteresis = 2 * self.config.profile.mtu_bytes
        resume_below = threshold - hysteresis
        for key, paused in list(self._paused_upstream.items()):
            if not paused:
                continue
            ingress_index, prio = key
            if self._ingress_bytes[ingress_index][prio] <= resume_below:
                self._paused_upstream[key] = False
                self.resume_frames_sent += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        self.engine.now,
                        trace_events.PFC_RESUME_TX,
                        self.name,
                        port=ingress_index,
                        prio=prio,
                    )
                self.ports[ingress_index].send_control(
                    pause_frame(self.device_id, prio, pause=False)
                )

    # --- telemetry -------------------------------------------------------------

    def _trace_drop(self, pkt: Packet, reason: str) -> None:
        self.tracer.emit(
            self.engine.now,
            trace_events.PKT_DROP,
            self.name,
            flow=pkt.flow_id,
            reason=reason,
            bytes=pkt.size,
        )
