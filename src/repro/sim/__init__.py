"""Packet-level discrete-event network simulator.

This package is the substrate the DCQCN reproduction runs on: an
integer-nanosecond event engine (:mod:`repro.sim.engine`), links and
serializing ports (:mod:`repro.sim.link`), shared-buffer switches with
PFC and RED/ECN (:mod:`repro.sim.switch`), RoCEv2 host NICs with
hardware-style per-flow rate limiters (:mod:`repro.sim.nic`), topology
builders (:mod:`repro.sim.topology`) and measurement probes
(:mod:`repro.sim.monitor`).
"""

from repro.sim.engine import EventScheduler, PeriodicTimer
from repro.sim.packet import (
    Packet,
    ECN_NOT_ECT,
    ECN_ECT,
    ECN_CE,
    KIND_DATA,
    KIND_ACK,
    KIND_NACK,
    KIND_CNP,
    KIND_PAUSE,
    KIND_RESUME,
    KIND_QCN_FB,
)
from repro.sim.link import Port, connect
from repro.sim.switch import Switch, SwitchConfig
from repro.sim.nic import HostNic
from repro.sim.host import Host, Flow, Message
from repro.sim.network import Network
from repro.sim.topology import (
    single_switch,
    dumbbell,
    parking_lot,
    three_tier_clos,
    ClosSpec,
)
from repro.sim.monitor import (
    QueueSampler,
    RateSampler,
    CounterSet,
)

__all__ = [
    "EventScheduler",
    "PeriodicTimer",
    "Packet",
    "ECN_NOT_ECT",
    "ECN_ECT",
    "ECN_CE",
    "KIND_DATA",
    "KIND_ACK",
    "KIND_NACK",
    "KIND_CNP",
    "KIND_PAUSE",
    "KIND_RESUME",
    "KIND_QCN_FB",
    "Port",
    "connect",
    "Switch",
    "SwitchConfig",
    "HostNic",
    "Host",
    "Flow",
    "Message",
    "Network",
    "single_switch",
    "dumbbell",
    "parking_lot",
    "three_tier_clos",
    "ClosSpec",
    "QueueSampler",
    "RateSampler",
    "CounterSet",
]
