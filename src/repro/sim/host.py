"""End hosts, flows and messages.

A :class:`Flow` models one RDMA queue pair carrying WRITE traffic from
a source host to a destination host.  Flows are either *greedy*
(infinite backlog — the paper's microbenchmarks) or carry a stream of
:class:`Message` transfers (the benchmark-traffic experiments, where
user pairs issue transfers back to back).

Transmission is paced by the NIC's per-flow hardware rate limiter: the
flow exposes :meth:`Flow.ready_time`, the earliest instant its next
packet may leave, and the NIC port pulls packets from the flow with the
smallest ready time.  Congestion control attaches to a flow as a
:class:`repro.cc.CongestionControl` whose rate output drives the
pacing gap and whose window output (if any) gates eligibility; DCQCN
is the controller wrapping a :class:`repro.core.rp.ReactionPoint`.

Sequencing is go-back-N, matching RoCEv2 NICs: packets carry a
sequence number, the receiver only accepts in-order arrivals, NACKs
name the expected sequence, and the sender rewinds on NACK (or on a
retransmission timeout, for tail losses).  On a correctly configured
lossless fabric none of this machinery fires.
"""

from __future__ import annotations

import os
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.sim.packet import Packet, data_packet
from repro.telemetry import events as trace_events

if TYPE_CHECKING:  # pragma: no cover
    from repro.cc.base import CongestionControl
    from repro.core.rp import ReactionPoint
    from repro.sim.nic import HostNic

#: cap on in-flight RTT probes per flow (bounds memory; cumulative ACKs
#: drain several probes at once so the cap is rarely binding)
_MAX_RTT_PROBES = 64

#: Sentinel "never" timestamp for flows with nothing to send.
NEVER = 1 << 62

#: Priority class used for data in all experiments (one lossless class).
DATA_PRIORITY = 0

#: Priority class for CNPs / ACKs / NACKs — "we send CNPs with high
#: priority, to avoid missing the CNP deadline" (paper §3.3).
CONTROL_PRIORITY = 6

#: kill switch for per-transfer FCT bookkeeping (``flow.*`` lifecycle
#: events and first-byte tracking).  On by default; the CI overhead
#: gate (benchmarks/check_flowstats_overhead.py) compares runs with it
#: off vs on to pin the hot-path cost below its budget.
FLOWSTATS_ENV = "REPRO_FLOWSTATS"

_FLOWSTATS_ENABLED = os.environ.get(FLOWSTATS_ENV, "on").lower() not in (
    "off",
    "0",
    "no",
)


def flowstats_enabled() -> bool:
    """Whether per-transfer FCT bookkeeping is active in this process."""
    return _FLOWSTATS_ENABLED


class Message:
    """One application-level transfer riding a flow."""

    __slots__ = (
        "msg_id",
        "size_bytes",
        "packet_count",
        "first_seq",
        "last_seq",
        "start_ns",
        "complete_ns",
        "first_byte_ns",
        "retransmits",
        "pauses_rx",
        "_retx_at_start",
        "_pause_rx_at_start",
    )

    def __init__(
        self,
        msg_id: int,
        size_bytes: int,
        packet_count: int,
        first_seq: int,
        start_ns: int,
    ):
        self.msg_id = msg_id
        self.size_bytes = size_bytes
        self.packet_count = packet_count
        self.first_seq = first_seq
        self.last_seq = first_seq + packet_count - 1
        self.start_ns = start_ns
        self.complete_ns: Optional[int] = None
        #: first wire departure of the transfer's first packet (None
        #: until it leaves; retransmissions do not move it)
        self.first_byte_ns: Optional[int] = None
        #: go-back-N retransmissions charged to the transfer's lifetime
        self.retransmits = 0
        #: PAUSE frames the sender's port received during the transfer
        self.pauses_rx = 0
        self._retx_at_start = 0
        self._pause_rx_at_start = 0

    @property
    def completed(self) -> bool:
        return self.complete_ns is not None

    def fct_ns(self) -> int:
        """Flow (message) completion time; raises if not yet complete."""
        if self.complete_ns is None:
            raise ValueError(f"message {self.msg_id} not complete")
        return self.complete_ns - self.start_ns

    def throughput_bps(self) -> float:
        """Average goodput over the message's lifetime."""
        duration = self.fct_ns()
        if duration <= 0:
            return 0.0
        return self.size_bytes * 8e9 / duration


class Flow:
    """One sender-to-receiver RDMA stream (queue pair).

    Slotted: fabric-scale scenarios open thousands of flows and the
    per-flow state below is the hottest per-packet working set.  Every
    attribute is assigned in ``__init__``; baseline subclasses without
    ``__slots__`` (DCTCP, QCN) still get a ``__dict__`` of their own.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "priority",
        "mtu_bytes",
        "start_ns",
        "cc",
        "_cwnd_source",
        "_sample_rtt",
        "_rtt_probes",
        "_static_rate_bps",
        "greedy",
        "next_seq",
        "end_seq",
        "acked_seq",
        "next_send_ns",
        "_last_pull_ns",
        "_last_pull_bytes",
        "_messages",
        "_boundaries",
        "_boundary_by_seq",
        "_first_by_seq",
        "_flowstats",
        "on_message_complete",
        "_rto_armed",
        "_last_progress_seq",
        "_consecutive_rtos",
        "failed",
        "packets_sent",
        "bytes_sent",
        "retransmitted_packets",
        "bytes_delivered",
        "messages_completed",
    )

    def __init__(
        self,
        flow_id: int,
        src: "Host",
        dst: "Host",
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
        rp: Optional["ReactionPoint"] = None,
        static_rate_bps: Optional[float] = None,
        cc: Optional["CongestionControl"] = None,
    ):
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.priority = priority
        self.mtu_bytes = mtu_bytes
        self.start_ns = start_ns
        if rp is not None:
            # legacy construction path: a bare ReactionPoint adapts to
            # the cc interface (repro.cc is the canonical way in)
            if cc is not None:
                raise ValueError("pass either cc or rp, not both")
            from repro.cc.dcqcn import DcqcnControl

            cc = DcqcnControl(rp)
        self.cc = cc
        #: controller with an active congestion window (hot-path cache)
        self._cwnd_source: Optional["CongestionControl"] = (
            cc if cc is not None and cc.windowed else None
        )
        #: departure timestamps for the NIC's RTT sampler (wants_rtt)
        self._sample_rtt = cc is not None and cc.wants_rtt
        self._rtt_probes: Deque[Tuple[int, int]] = deque()
        if cc is not None:
            cc.bind(self)
        self._static_rate_bps = static_rate_bps
        # tx state
        self.greedy = False
        self.next_seq = 0
        self.end_seq = 0  # exclusive upper bound of enqueued data
        self.acked_seq = 0  # cumulative go-back-N ack point
        self.next_send_ns = start_ns
        self._last_pull_ns = start_ns
        self._last_pull_bytes = mtu_bytes
        # message bookkeeping (sender side)
        self._messages: List[Message] = []
        self._boundaries: Deque[Tuple[int, Message]] = deque()
        self._boundary_by_seq: dict = {}
        #: first_seq -> Message, for first-byte timestamps (popped on
        #: first departure; empty for greedy flows and when FlowStats
        #: recording is disabled via REPRO_FLOWSTATS=off)
        self._first_by_seq: dict = {}
        self._flowstats = _FLOWSTATS_ENABLED
        self.on_message_complete: Optional[Callable[["Flow", Message], None]] = None
        # retransmission-timeout bookkeeping (managed by the NIC)
        self._rto_armed = False
        self._last_progress_seq = 0
        self._consecutive_rtos = 0
        #: set by the NIC when the QP exhausts its retry budget
        self.failed = False
        # statistics
        self.packets_sent = 0
        self.bytes_sent = 0
        self.retransmitted_packets = 0
        self.bytes_delivered = 0  # updated by the receiving NIC
        self.messages_completed = 0

    # --- rate ------------------------------------------------------------------

    @property
    def rp(self) -> Optional["ReactionPoint"]:
        """The controller's ReactionPoint, if it has one (introspection)."""
        return self.cc.rp if self.cc is not None else None

    @property
    def rate_bps(self) -> float:
        """Current pacing rate of the hardware rate limiter."""
        if self.cc is not None:
            rate = self.cc.rate_bps()
            if rate is not None:
                return rate
        if self._static_rate_bps is not None:
            return self._static_rate_bps
        return self.src.nic.line_rate_bps

    def _on_rate_change(self, new_rate_bps: float) -> None:
        # Hardware recomputes the inter-packet gap from the new rate
        # immediately; never push the next transmission later than the
        # schedule the old rate had already granted.
        gap = int(self._last_pull_bytes * 8e9 / new_rate_bps) + 1
        self.next_send_ns = min(self.next_send_ns, self._last_pull_ns + gap)
        self.src.nic.flow_state_changed(self)

    # --- application input -----------------------------------------------------

    def set_greedy(self) -> None:
        """Give the flow infinite backlog (microbenchmark mode)."""
        self.greedy = True
        self.src.nic.flow_state_changed(self)

    def send_message(self, size_bytes: int, now_ns: Optional[int] = None) -> Message:
        """Queue one transfer; packets follow any already-queued data.

        Message sizes are rounded up to whole MTU-sized packets (the
        wire carries MTU frames regardless; accounting follows suit).
        """
        if self.greedy:
            raise ValueError("greedy flows do not carry discrete messages")
        if size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {size_bytes}")
        if now_ns is None:
            now_ns = self.src.nic.engine.now
        packet_count = -(-size_bytes // self.mtu_bytes)  # ceil
        message = Message(
            msg_id=len(self._messages),
            size_bytes=size_bytes,
            packet_count=packet_count,
            first_seq=self.end_seq,
            start_ns=max(now_ns, self.start_ns),
        )
        self._messages.append(message)
        self._boundaries.append((message.last_seq, message))
        self._boundary_by_seq[message.last_seq] = message
        self.end_seq += packet_count
        if self._flowstats:
            self._first_by_seq[message.first_seq] = message
            message._retx_at_start = self.retransmitted_packets
            message._pause_rx_at_start = self.src.nic.port.rx_pause_frames
            tracer = self.src.nic.tracer
            if tracer is not None:
                tracer.emit(
                    message.start_ns,
                    trace_events.FLOW_START,
                    self.src.nic.name,
                    flow=self.flow_id,
                    msg=message.msg_id,
                    bytes=size_bytes,
                )
        self.src.nic.flow_state_changed(self)
        return message

    @property
    def messages(self) -> List[Message]:
        """All messages ever queued on this flow, in order."""
        return self._messages

    # --- NIC pull interface -----------------------------------------------------

    def has_backlog(self) -> bool:
        if self.failed:
            return False  # QP in error state: nothing more is sent
        return self.greedy or self.next_seq < self.end_seq

    def ready_time(self) -> int:
        """Earliest ns timestamp the next packet may be pulled, or NEVER.

        Window-based controllers close the flow (NEVER) once a full
        cwnd is outstanding; an ACK reopens it.  In-window packets stay
        line-rate paced — no super-line bursts.
        """
        if not self.has_backlog():
            return NEVER
        cwnd_source = self._cwnd_source
        if cwnd_source is not None:
            cwnd = cwnd_source.cwnd_pkts()
            if cwnd is not None and self.next_seq - self.acked_seq >= int(cwnd):
                return NEVER
        return self.next_send_ns if self.next_send_ns > self.start_ns else self.start_ns

    def take_packet(self, now_ns: int) -> Packet:
        """Pull the next packet; advances sequencing and pacing state."""
        seq = self.next_seq
        boundary = self._boundary_by_seq.get(seq)
        msg_id = boundary.msg_id if boundary is not None else -1
        pkt = data_packet(
            flow_id=self.flow_id,
            src=self.src.nic.device_id,
            dst=self.dst.nic.device_id,
            size=self.mtu_bytes,
            seq=seq,
            priority=self.priority,
            msg_id=msg_id,
        )
        self.next_seq = seq + 1
        self.packets_sent += 1
        self.bytes_sent += self.mtu_bytes
        if self._first_by_seq:
            message = self._first_by_seq.pop(seq, None)
            if message is not None:
                message.first_byte_ns = now_ns
                tracer = self.src.nic.tracer
                if tracer is not None:
                    tracer.emit(
                        now_ns,
                        trace_events.FLOW_FIRST_BYTE,
                        self.src.nic.name,
                        flow=self.flow_id,
                        msg=message.msg_id,
                    )
        if self._sample_rtt and len(self._rtt_probes) < _MAX_RTT_PROBES:
            self._rtt_probes.append((seq, now_ns))
        gap = int(self.mtu_bytes * 8e9 / self.rate_bps) + 1
        self._last_pull_ns = now_ns
        self._last_pull_bytes = self.mtu_bytes
        self.next_send_ns = now_ns + gap
        return pkt

    # --- reliability (go-back-N sender half) -------------------------------------

    def on_ack(self, cum_seq: int, msg_id: int) -> None:
        """Cumulative ACK: advance the ack point, complete covered messages.

        ``msg_id`` is informational (the boundary that triggered the
        ACK); completion is driven purely by the cumulative sequence so
        a lost boundary ACK is repaired by any later one.
        """
        if cum_seq > self.acked_seq:
            self.acked_seq = cum_seq
        now = self.src.nic.engine.now
        while self._boundaries and self._boundaries[0][0] < cum_seq:
            _, message = self._boundaries.popleft()
            message.complete_ns = now
            self.messages_completed += 1
            if self._flowstats:
                message.retransmits = (
                    self.retransmitted_packets - message._retx_at_start
                )
                message.pauses_rx = (
                    self.src.nic.port.rx_pause_frames
                    - message._pause_rx_at_start
                )
                tracer = self.src.nic.tracer
                if tracer is not None:
                    tracer.emit(
                        now,
                        trace_events.FLOW_FCT,
                        self.src.nic.name,
                        flow=self.flow_id,
                        msg=message.msg_id,
                        fct_ns=now - message.start_ns,
                        bytes=message.size_bytes,
                    )
            if self.on_message_complete is not None:
                self.on_message_complete(self, message)

    def rewind_to(self, seq: int) -> None:
        """Go-back-N: resume transmission from ``seq`` (NACK or timeout)."""
        if seq >= self.next_seq or seq < self.acked_seq:
            return  # stale feedback
        self.retransmitted_packets += self.next_seq - seq
        self.next_seq = seq
        # retransmissions would yield bogus (inflated) RTT measurements
        self._rtt_probes.clear()
        self.src.nic.flow_state_changed(self)

    def take_rtt_sample(self, cum_seq: int, now_ns: int) -> Optional[int]:
        """RTT of the newest departure a cumulative ACK covers, if any."""
        probes = self._rtt_probes
        sent_ns = None
        while probes and probes[0][0] < cum_seq:
            sent_ns = probes.popleft()[1]
        if sent_ns is None:
            return None
        return now_ns - sent_ns

    def outstanding_packets(self) -> int:
        return self.next_seq - self.acked_seq

    # --- congestion-control signal forwarding -------------------------------------

    def on_transport_feedback(self, ece: bool, acked_seq: int) -> None:
        """Per-ACK hook: forwards the echoed CE bit to the controller."""
        if self.cc is not None:
            self.cc.on_ecn_echo(ece, acked_seq)

    def on_qcn_feedback(self, quantized_fb: int) -> None:
        """QCN congestion-feedback hook: forwards to the controller."""
        if self.cc is not None:
            self.cc.on_qcn_feedback(quantized_fb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow({self.flow_id}, {self.src.name}->{self.dst.name}, "
            f"rate={self.rate_bps / 1e9:.3f}Gbps, seq={self.next_seq})"
        )


class Host:
    """An end host: a name plus its RDMA NIC.

    Application-level behaviour (greedy senders, message streams,
    closed-loop workloads) is expressed through the flows opened
    between hosts via :meth:`repro.sim.network.Network.add_flow`.
    """

    __slots__ = ("name", "nic", "flows")

    def __init__(self, name: str, nic: "HostNic"):
        self.name = name
        self.nic = nic
        nic.host = self
        self.flows: List[Flow] = []

    @property
    def host_id(self) -> int:
        """Network-wide address of this host (its NIC's device id)."""
        return self.nic.device_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name})"
