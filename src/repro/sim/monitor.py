"""Measurement probes: throughput samplers, queue samplers, counters.

These mirror what the paper measures on the testbed: per-flow
throughput over time (Figures 3, 8, 10, 13), switch egress queue
length distributions (Figures 12, 19) and PFC PAUSE counts
(Figure 15).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import EventScheduler
from repro.sim.host import Flow
from repro.sim.switch import Switch


class RateSampler:
    """Periodically samples delivered bytes and reports rates.

    ``rates_bps[flow][k]`` is the goodput of ``flow`` over the k-th
    sampling interval, measured at the *receiver* (delivered, in-order
    bytes — what the paper's throughput plots show).
    """

    def __init__(
        self,
        engine: EventScheduler,
        flows: Sequence[Flow],
        interval_ns: int,
        start_ns: int = 0,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.flows = list(flows)
        self.interval_ns = interval_ns
        self.times_ns: List[int] = []
        self.rates_bps: Dict[Flow, List[float]] = {flow: [] for flow in self.flows}
        self._last_bytes = {flow: flow.bytes_delivered for flow in self.flows}
        engine.schedule_at(max(start_ns, engine.now) + interval_ns, self._sample)

    def _sample(self) -> None:
        now = self.engine.now
        self.times_ns.append(now)
        for flow in self.flows:
            delivered = flow.bytes_delivered
            delta = delivered - self._last_bytes[flow]
            self._last_bytes[flow] = delivered
            self.rates_bps[flow].append(delta * 8e9 / self.interval_ns)
        self.engine.schedule(self.interval_ns, self._sample)

    def series(self, flow: Flow) -> List[float]:
        return self.rates_bps[flow]

    def mean_rate_bps(self, flow: Flow, skip: int = 0) -> float:
        """Average sampled rate, optionally skipping warm-up samples."""
        samples = self.rates_bps[flow][skip:]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)


class QueueSampler:
    """Periodically samples one egress queue of a switch (bytes)."""

    def __init__(
        self,
        engine: EventScheduler,
        switch: Switch,
        port_index: int,
        priority: Optional[int] = None,
        interval_ns: int = 10_000,
        start_ns: int = 0,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.engine = engine
        self.switch = switch
        self.port_index = port_index
        self.priority = priority
        self.interval_ns = interval_ns
        self.times_ns: List[int] = []
        self.samples_bytes: List[int] = []
        engine.schedule_at(max(start_ns, engine.now) + interval_ns, self._sample)

    def _sample(self) -> None:
        self.times_ns.append(self.engine.now)
        self.samples_bytes.append(
            self.switch.egress_queue_bytes(self.port_index, self.priority)
        )
        self.engine.schedule(self.interval_ns, self._sample)

    def max_bytes(self) -> int:
        return max(self.samples_bytes, default=0)


class CounterSet:
    """Named integer counters with snapshot/delta support."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSet({self._counts})"
