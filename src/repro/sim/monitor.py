"""Measurement probes: throughput samplers, queue samplers, counters.

These mirror what the paper measures on the testbed: per-flow
throughput over time (Figures 3, 8, 10, 13), switch egress queue
length distributions (Figures 12, 19) and PFC PAUSE counts
(Figure 15).

Both samplers are *bounded*: they stop rescheduling themselves once
``stop_ns`` passes (or :meth:`detach` is called), so a sampler set up
for a measurement window does not keep generating events for the rest
of a long run.  When a tracer is attached they also publish each
sample onto the telemetry bus (``sample.rate`` / ``sample.queue``
events), and :class:`QueueSampler` can feed a registry histogram —
that pairing is how the queue-length CDFs of Figures 12/19 are
reconstructed from a trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.engine import EventScheduler
from repro.sim.host import Flow
from repro.sim.switch import Switch
from repro.telemetry.events import SAMPLE_QUEUE, SAMPLE_RATE, SAMPLE_TIER_QUEUE


class _PeriodicProbe:
    """Shared rescheduling logic: bounded, detachable, self-arming."""

    def __init__(
        self,
        engine: EventScheduler,
        interval_ns: int,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
    ):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        if stop_ns is not None and stop_ns < start_ns:
            raise ValueError(f"stop_ns {stop_ns} before start_ns {start_ns}")
        self.engine = engine
        self.interval_ns = interval_ns
        self.stop_ns = stop_ns
        self._detached = False
        engine.schedule_at(max(start_ns, engine.now) + interval_ns, self._tick)

    def detach(self) -> None:
        """Stop sampling: the pending event becomes a no-op."""
        self._detached = True

    @property
    def detached(self) -> bool:
        return self._detached

    def _tick(self) -> None:
        if self._detached:
            return
        now = self.engine.now
        if self.stop_ns is not None and now > self.stop_ns:
            self._detached = True
            return
        self._sample(now)
        self._detached = (
            self.stop_ns is not None and now + self.interval_ns > self.stop_ns
        )
        if not self._detached:
            self.engine.schedule(self.interval_ns, self._tick)

    def _sample(self, now: int) -> None:  # pragma: no cover - subclass hook
        raise NotImplementedError


class RateSampler(_PeriodicProbe):
    """Periodically samples delivered bytes and reports rates.

    ``rates_bps[flow][k]`` is the goodput of ``flow`` over the k-th
    sampling interval, measured at the *receiver* (delivered, in-order
    bytes — what the paper's throughput plots show).  With ``tracer``
    set, each sample is also published as a ``sample.rate`` event.
    """

    def __init__(
        self,
        engine: EventScheduler,
        flows: Sequence[Flow],
        interval_ns: int,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        tracer=None,
    ):
        self.flows = list(flows)
        self.tracer = tracer
        self.times_ns: List[int] = []
        self.rates_bps: Dict[Flow, List[float]] = {flow: [] for flow in self.flows}
        self._last_bytes = {flow: flow.bytes_delivered for flow in self.flows}
        super().__init__(engine, interval_ns, start_ns=start_ns, stop_ns=stop_ns)

    def _sample(self, now: int) -> None:
        self.times_ns.append(now)
        for flow in self.flows:
            delivered = flow.bytes_delivered
            delta = delivered - self._last_bytes[flow]
            self._last_bytes[flow] = delivered
            rate = delta * 8e9 / self.interval_ns
            self.rates_bps[flow].append(rate)
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    SAMPLE_RATE,
                    "sampler.rate",
                    flow=flow.flow_id,
                    rate_bps=rate,
                )

    def series(self, flow: Flow) -> List[float]:
        return self.rates_bps[flow]

    def mean_rate_bps(self, flow: Flow, skip: int = 0) -> float:
        """Average sampled rate, optionally skipping warm-up samples."""
        samples = self.rates_bps[flow][skip:]
        if not samples:
            return 0.0
        return sum(samples) / len(samples)


class QueueSampler(_PeriodicProbe):
    """Periodically samples one egress queue of a switch (bytes).

    With ``tracer`` set, each sample is published as a ``sample.queue``
    event; with ``histogram`` set (a registry
    :class:`~repro.telemetry.metrics.Histogram`), each sample is also
    observed into it — the ``switch.queue_bytes`` distribution behind
    the Figure 12/19 CDFs.
    """

    def __init__(
        self,
        engine: EventScheduler,
        switch: Switch,
        port_index: int,
        priority: Optional[int] = None,
        interval_ns: int = 10_000,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        tracer=None,
        histogram=None,
    ):
        self.switch = switch
        self.port_index = port_index
        self.priority = priority
        self.tracer = tracer
        self.histogram = histogram
        self.times_ns: List[int] = []
        self.samples_bytes: List[int] = []
        super().__init__(engine, interval_ns, start_ns=start_ns, stop_ns=stop_ns)

    def _sample(self, now: int) -> None:
        depth = self.switch.egress_queue_bytes(self.port_index, self.priority)
        self.times_ns.append(now)
        self.samples_bytes.append(depth)
        if self.histogram is not None:
            self.histogram.observe(depth)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                SAMPLE_QUEUE,
                self.switch.name,
                port=self.port_index,
                queue_bytes=depth,
            )

    def max_bytes(self) -> int:
        return max(self.samples_bytes, default=0)


class TierQueueSampler(_PeriodicProbe):
    """Periodically samples aggregate buffer occupancy of one fabric tier.

    Per-port :class:`QueueSampler` instances are the right tool on the
    paper's 10-switch testbed, but on a thousand-host fabric they mean
    tens of thousands of probes per sample tick.  This sampler instead
    reads :attr:`Switch.occupied_bytes` (shared-buffer occupancy, O(1)
    per switch) across all switches of one tier — O(switches), not
    O(ports) — and records the tier total plus the hottest single
    switch.  With ``tracer`` set each sample is published as a
    ``sample.tier_queue`` event; with ``histogram`` set, the per-switch
    occupancies feed the shared distribution.
    """

    def __init__(
        self,
        engine: EventScheduler,
        tier: str,
        switches: Sequence[Switch],
        interval_ns: int = 10_000,
        start_ns: int = 0,
        stop_ns: Optional[int] = None,
        tracer=None,
        histogram=None,
    ):
        if not switches:
            raise ValueError(f"tier {tier!r} has no switches to sample")
        self.tier = tier
        self.switches = list(switches)
        self.tracer = tracer
        self.histogram = histogram
        self.times_ns: List[int] = []
        self.totals_bytes: List[int] = []
        self.max_bytes_series: List[int] = []
        super().__init__(engine, interval_ns, start_ns=start_ns, stop_ns=stop_ns)

    def _sample(self, now: int) -> None:
        total = 0
        worst = 0
        for switch in self.switches:
            occupied = switch.occupied_bytes
            total += occupied
            if occupied > worst:
                worst = occupied
            if self.histogram is not None:
                self.histogram.observe(occupied)
        self.times_ns.append(now)
        self.totals_bytes.append(total)
        self.max_bytes_series.append(worst)
        if self.tracer is not None:
            self.tracer.emit(
                now,
                SAMPLE_TIER_QUEUE,
                f"tier.{self.tier}",
                tier=self.tier,
                queue_bytes=total,
                max_queue_bytes=worst,
            )

    def peak_total_bytes(self) -> int:
        return max(self.totals_bytes, default=0)


class CounterSet:
    """Named integer counters with snapshot/delta support.

    .. deprecated::
        Run-level statistics now live in the
        :class:`~repro.telemetry.metrics.MetricsRegistry` (stable
        names, JSON snapshots inside every ``RunResult``); this class
        remains only for ad-hoc notebook bookkeeping.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSet({self._counts})"
