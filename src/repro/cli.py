"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig03                # Figure 3 (PFC unfairness)
    python -m repro fig16 --scale full   # longer runs, more repetitions
    python -m repro sec4                 # §4 buffer-threshold table

Each command prints the same rows the corresponding benchmark emits.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import common
from repro.experiments.common import format_table


def _fig01() -> str:
    from repro.hoststack.model import RdmaStackModel, TcpStackModel, compare_stacks

    rows = [
        [
            str(size),
            f"{row.tcp_throughput_gbps:.1f}",
            f"{row.tcp_cpu_pct:.0f}",
            f"{row.rdma_throughput_gbps:.1f}",
            f"{row.rdma_client_cpu_pct:.2f}",
        ]
        for size, row in compare_stacks().items()
    ]
    table = format_table(
        ["bytes", "TCP Gbps", "TCP CPU%", "RDMA Gbps", "RDMA cli CPU%"], rows
    )
    tcp, rdma = TcpStackModel(), RdmaStackModel()
    return (
        table
        + f"\nlatency (2KB): TCP {tcp.latency_us():.1f} us, RDMA write "
        f"{rdma.latency_us():.2f} us, RDMA send "
        f"{rdma.latency_us(operation='send'):.2f} us"
    )


def _fig03() -> str:
    from repro.experiments.pfc_pathologies import run_unfairness

    return run_unfairness("none").table()


def _fig04() -> str:
    from repro.experiments.pfc_pathologies import run_victim_flow

    return run_victim_flow("none").table()


def _fig08() -> str:
    from repro.experiments.pfc_pathologies import run_unfairness

    return run_unfairness("dcqcn").table()


def _fig09() -> str:
    from repro.experiments.pfc_pathologies import run_victim_flow

    return run_victim_flow("dcqcn").table()


def _fig10() -> str:
    from repro.experiments.fluid_validation import run_fluid_vs_sim

    result = run_fluid_vs_sim()
    return (
        result.table()
        + f"\ncorrelation {result.correlation():.3f}, "
        f"normalized RMSE {result.normalized_rmse():.3f}"
    )


def _fig11() -> str:
    from repro.experiments.sweeps import FIG11_PANELS, fig11_table, run_fig11_panel

    parts = []
    for panel in sorted(FIG11_PANELS):
        parts.append(f"-- {panel} --\n" + fig11_table(panel, run_fig11_panel(panel)))
    return "\n\n".join(parts)


def _fig12() -> str:
    from repro.experiments.sweeps import run_fig12

    return run_fig12().table()


def _fig13() -> str:
    from repro.experiments.fluid_validation import run_all_validations

    rows = [
        [
            name,
            f"{res.mean_rate_gbps[0]:.1f}",
            f"{res.mean_rate_gbps[1]:.1f}",
            f"{res.rate_gap_gbps:.2f}",
        ]
        for name, res in run_all_validations().items()
    ]
    return format_table(["config", "flow1 Gbps", "flow2 Gbps", "gap"], rows)


def _tab14() -> str:
    from repro.core.params import DCQCNParams

    params = DCQCNParams.deployed()
    rows = [
        ["timer", f"{params.rate_increase_timer_ns / 1e3:.0f} us"],
        ["byte counter", f"{params.byte_counter_bytes / 1e6:.0f} MB"],
        ["Kmax", f"{params.kmax_bytes / 1e3:.0f} KB"],
        ["Kmin", f"{params.kmin_bytes / 1e3:.0f} KB"],
        ["Pmax", f"{params.pmax:.0%}"],
        ["g", f"1/{round(1 / params.g)}"],
    ]
    return format_table(["parameter", "value"], rows)


def _fig15() -> str:
    from repro.experiments.benchmark_traffic import run_benchmark_traffic

    rows = []
    for variant in ("none", "dcqcn"):
        result = run_benchmark_traffic(variant, incast_degree=10)
        rows.append([variant, result.total_spine_pauses()])
    return format_table(["variant", "spine PAUSE frames"], rows)


def _fig16() -> str:
    from repro.experiments.benchmark_traffic import fig16_table, run_fig16

    return fig16_table(run_fig16(degrees=common.pick((2, 6, 10), (2, 4, 6, 8, 10))))


def _fig17() -> str:
    from repro.experiments.benchmark_traffic import RESULT_HEADERS, run_fig17

    results = run_fig17()
    return format_table(RESULT_HEADERS, [r.row() for r in results.values()])


def _fig18() -> str:
    from repro.experiments.benchmark_traffic import RESULT_HEADERS, run_fig18

    return format_table(
        RESULT_HEADERS, [r.row() for r in run_fig18().values()]
    )


def _fig19() -> str:
    from repro.experiments.latency import QUEUE_HEADERS, run_fig19

    return format_table(QUEUE_HEADERS, [r.row() for r in run_fig19()])


def _fig20() -> str:
    from repro.experiments.multibottleneck import PARKING_HEADERS, run_fig20

    return format_table(PARKING_HEADERS, [r.row() for r in run_fig20()])


def _sec4() -> str:
    from repro.experiments.buffer_settings import section4_table

    return section4_table()


def _sec61() -> str:
    from repro.experiments.microbench import INCAST_HEADERS, run_incast_sweep

    return format_table(INCAST_HEADERS, [r.row() for r in run_incast_sweep()])


def _sec7() -> str:
    from repro.experiments.link_errors import LOSS_HEADERS, run_loss_sweep

    return format_table(LOSS_HEADERS, [r.row() for r in run_loss_sweep()])


COMMANDS: Dict[str, tuple] = {
    "fig01": (_fig01, "TCP vs RDMA throughput / CPU / latency"),
    "fig03": (_fig03, "PFC parking-lot unfairness"),
    "fig04": (_fig04, "PFC victim flow"),
    "fig08": (_fig08, "DCQCN fixes the unfairness"),
    "fig09": (_fig09, "DCQCN rescues the victim"),
    "fig10": (_fig10, "fluid model vs packet simulator"),
    "fig11": (_fig11, "parameter sweeps for convergence"),
    "fig12": (_fig12, "g sweep: queue length and stability"),
    "fig13": (_fig13, "parameter validation on the simulator"),
    "tab14": (_tab14, "deployed parameter values"),
    "fig15": (_fig15, "PAUSE frames at the spines"),
    "fig16": (_fig16, "benchmark traffic vs incast degree"),
    "fig17": (_fig17, "16x user load comparison"),
    "fig18": (_fig18, "need for PFC and correct thresholds"),
    "fig19": (_fig19, "queue length: DCQCN vs DCTCP"),
    "fig20": (_fig20, "multi-bottleneck marking comparison"),
    "sec4": (_sec4, "buffer threshold calculations"),
    "sec61": (_sec61, "K:1 incast utilization sweep"),
    "sec7": (_sec7, "non-congestion loss sensitivity"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the DCQCN paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig16, sec4) or 'list'",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "full"),
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    return parser


def list_experiments() -> str:
    rows = [[name, blurb] for name, (_, blurb) in sorted(COMMANDS.items())]
    return format_table(["experiment", "regenerates"], rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scale is not None:
        os.environ[common.SCALE_ENV] = args.scale
    if args.experiment == "list":
        print(list_experiments())
        return 0
    try:
        runner, blurb = COMMANDS[args.experiment]
    except KeyError:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    print(f"=== {args.experiment}: {blurb} ===")
    print(runner())
    return 0
