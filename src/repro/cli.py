"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig03                # Figure 3 (PFC unfairness)
    python -m repro run fig03            # same, explicit form
    python -m repro fig16 --scale full   # longer runs, more repetitions
    python -m repro fig16 --jobs 4       # fan repetitions across 4 cores
    python -m repro sec4                 # §4 buffer-threshold table

Telemetry commands (see DESIGN.md §8)::

    python -m repro scenarios                      # named scenarios
    python -m repro trace smoke                    # JSONL trace on stdout
    python -m repro trace smoke --out t.jsonl      # ... or to a file
    python -m repro trace victim --level cc        # control-plane only
    python -m repro profile unfairness             # hotspot table

Fault injection (see DESIGN.md §9)::

    python -m repro faults list                    # injector vocabulary
    python -m repro faults example                 # starter plan JSON
    python -m repro run storm --faults plan.json   # scenario under faults
    python -m repro trace storm --faults plan.json # ... with tracing on

Hardened execution (see DESIGN.md §10)::

    python -m repro run chaos --invariants strict  # abort on 1st violation
    python -m repro fig16 --timeout 300            # per-cell budget (s)
    python -m repro fig16 --resume                 # finish interrupted sweep

CC arena and perf baselines (see DESIGN.md §11)::

    python -m repro run arena                      # controller league table
    python -m repro run arena --invariants strict  # ... guarded
    python -m repro bench                          # events/sec baselines
    python -m repro bench smoke --dry-run          # measure, don't record

Figure rendering (see DESIGN.md §12)::

    python -m repro plot                           # every figure family
    python -m repro plot fct                       # slowdown CDFs
    python -m repro plot grid --metric eleph_p99   # grid heatmap
    python -m repro plot queues --out-dir /tmp/f   # Fig 19 queue CDFs

Each command prints the same rows the corresponding benchmark emits.
The dispatch table is :data:`repro.runner.REGISTRY`, populated by
:mod:`repro.experiments.catalog`; ``--jobs`` / ``--no-cache`` set the
``REPRO_JOBS`` / ``REPRO_CACHE`` knobs for the invocation.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Dict, Optional, Sequence

import repro.experiments.catalog  # noqa: F401  (populates REGISTRY)
from repro.invariants import INVARIANTS_ENV, MODES
from repro.runner import JOBS_ENV, REGISTRY, SCALE_ENV, SCENARIOS, format_table
from repro.runner.cache import CACHE_ENV
from repro.runner.resilience import RESUME_ENV, TIMEOUT_ENV
from repro.runner.scale import SCALES

#: compat view of the registry: id -> (runner, description)
COMMANDS: Dict[str, tuple] = {
    exp.id: (exp.runner, exp.description) for exp in REGISTRY
}


def _jobs_arg(value: str) -> str:
    """Reject bad ``--jobs`` values at parse time, not mid-experiment."""
    try:
        if value != "auto" and int(value) < 1:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    return value


def _shards_arg(value: str) -> int:
    """Reject bad ``--shards`` values at parse time."""
    try:
        shards = int(value)
        if shards < 1:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer shard count, got {value!r}"
        ) from None
    return shards


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the DCQCN paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig16, sec4), 'run <id>', or 'list'",
    )
    parser.add_argument(
        "extra",
        nargs="?",
        default=None,
        help="experiment id when the first argument is 'run'",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        help="worker processes for cell fan-out ('auto' or an integer; "
        "sets REPRO_JOBS)",
    )
    parser.add_argument(
        "--shards",
        default=None,
        type=_shards_arg,
        help="worker processes for one sharded fabric run (sets "
        "REPRO_SHARDS; non-fabric scenarios stay serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything, ignoring results/.cache/",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="simulation seed (named scenarios only)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="overlay a fault plan when running a named scenario",
    )
    parser.add_argument(
        "--invariants",
        choices=MODES,
        default=None,
        help="run under the invariant guard (named scenarios; 'strict' "
        "aborts on the first violation, 'report' collects them)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep — or an interrupted sharded "
        "run, mid-simulation — from its checkpoint (sets REPRO_RESUME)",
    )
    parser.add_argument(
        "--timeout",
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget, or 'off' (sets REPRO_RUN_TIMEOUT; "
        "default scales with REPRO_SCALE)",
    )
    return parser


def list_experiments() -> str:
    rows = [[exp.id, exp.description] for exp in REGISTRY]
    return format_table(["experiment", "regenerates"], rows)


def list_scenarios() -> str:
    rows = [[sc.id, sc.description] for sc in SCENARIOS]
    return format_table(["scenario", "description"], rows)


def _telemetry_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument(
        "scenario", help="named scenario (see 'python -m repro scenarios')"
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help="overlay a fault plan (see 'python -m repro faults example')",
    )
    parser.add_argument(
        "--invariants",
        choices=MODES,
        default=None,
        help="run under the invariant guard ('strict' aborts on the "
        "first violation, 'report' collects them)",
    )
    return parser


def _load_fault_plan(path: str):
    """Parse a plan file; prints the error and returns None on failure."""
    import json

    from repro.faults import FaultPlan

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        return FaultPlan.from_json(data)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"bad fault plan {path!r}: {exc}", file=sys.stderr)
        return None


def _apply_fault_plan(scenario, path: Optional[str]):
    """Overlay ``--faults`` onto a scenario; None if the plan is bad."""
    if path is None:
        return scenario
    plan = _load_fault_plan(path)
    if plan is None:
        return None
    return dataclasses.replace(scenario, faults=plan)


def _apply_invariants(scenario, mode: Optional[str]):
    """Overlay ``--invariants <mode>`` onto a scenario."""
    if mode is None:
        return scenario
    from repro.invariants import InvariantConfig

    return dataclasses.replace(scenario, invariants=InvariantConfig(mode=mode))


def _build_named_scenario(scenario_id: str):
    """Resolve a scenario id; prints the error and returns None if unknown."""
    if scenario_id not in SCENARIOS:
        print(
            f"unknown scenario {scenario_id!r}; try 'scenarios'",
            file=sys.stderr,
        )
        return None
    return SCENARIOS.build(scenario_id)


def trace_main(argv: Sequence[str]) -> int:
    """``python -m repro trace <scenario>`` — run once, emit the trace.

    Without ``--out`` the JSONL stream goes to stdout (pipe it to
    ``jq``/``repro.analysis.trace``); a per-type summary goes to
    stderr.  With ``--out`` the stream goes to the file and the summary
    to stdout.
    """
    parser = _telemetry_parser(
        "repro trace", "Run one scenario repetition with tracing on."
    )
    parser.add_argument(
        "--level",
        choices=("cc", "full"),
        default="full",
        help="trace verbosity (cc: control-plane decisions only)",
    )
    parser.add_argument(
        "--out", default=None, help="write JSONL here instead of stdout"
    )
    parser.add_argument(
        "--stride",
        type=int,
        default=1,
        help="keep 1-in-N of the high-frequency event types",
    )
    parser.add_argument(
        "--queue-sample-ns",
        type=int,
        default=None,
        help="sample every switch egress queue at this period",
    )
    parser.add_argument(
        "--rate-sample-ns",
        type=int,
        default=None,
        help="sample per-flow goodput at this period",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale
    scenario = _build_named_scenario(args.scenario)
    if scenario is not None:
        scenario = _apply_fault_plan(scenario, args.faults)
    if scenario is None:
        return 2
    scenario = _apply_invariants(scenario, args.invariants)

    import json

    from repro.invariants import InvariantViolation
    from repro.runner import run_scenario_inline
    from repro.telemetry import Telemetry, TelemetrySpec

    spec = TelemetrySpec(
        trace=args.level,
        sink="jsonl" if args.out else "ring",
        path=args.out,
        sample_stride=args.stride,
        queue_sample_ns=args.queue_sample_ns,
        rate_sample_ns=args.rate_sample_ns,
    )
    scenario = dataclasses.replace(scenario, telemetry=spec)
    telemetry = Telemetry.from_spec(spec, seed=args.seed)
    try:
        result, _ = run_scenario_inline(scenario, args.seed, telemetry=telemetry)
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    finally:
        telemetry.close()

    counts = sorted(telemetry.trace_counts().items())
    summary_rows = [[etype, count] for etype, count in counts]
    summary = format_table(["event type", "count"], summary_rows)
    total = sum(count for _, count in counts)
    if args.out:
        print(f"wrote {total} events to {args.out}")
        print(summary)
        print(result.table())
    else:
        for event in telemetry.tracer.sink.events:
            print(json.dumps(event, sort_keys=True))
        print(summary, file=sys.stderr)
    return 0


def profile_main(argv: Sequence[str]) -> int:
    """``python -m repro profile <scenario>`` — per-site hotspot table."""
    parser = _telemetry_parser(
        "repro profile",
        "Run one scenario repetition under the scheduler profiler.",
    )
    parser.add_argument(
        "--limit", type=int, default=15, help="rows in the hotspot table"
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale
    scenario = _build_named_scenario(args.scenario)
    if scenario is not None:
        scenario = _apply_fault_plan(scenario, args.faults)
    if scenario is None:
        return 2
    scenario = _apply_invariants(scenario, args.invariants)

    from repro.invariants import InvariantViolation
    from repro.runner import run_scenario_inline
    from repro.telemetry import SchedulerProfiler

    profiler = SchedulerProfiler()
    try:
        result, _ = run_scenario_inline(scenario, args.seed, profiler=profiler)
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    print(f"=== profile: {scenario.label or args.scenario} ===")
    print(profiler.table(limit=args.limit))
    print()
    print(result.table())
    return 0


#: scenarios ``repro bench`` times when none are named: one of each
#: canonical shape (single switch, parking lot, Clos, fat-tree fabric)
BENCH_SCENARIOS = ("smoke", "unfairness-dcqcn", "victim", "fabric-smoke")


def _peak_rss_kb() -> int:
    """Peak RSS of this process in KB (Linux ``ru_maxrss`` unit)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def bench_main(argv: Sequence[str]) -> int:
    """``python -m repro bench`` — simulator throughput baselines.

    Runs each named scenario once inline and reports scheduler events
    per wall-clock second, plus the topology-layer costs the fabric
    subsystem is accountable for: network build and route-install
    wall-clock, and the process peak RSS after each run.  The numbers
    are appended as a new baseline to ``BENCH_sim.json`` (next to
    ``results/``) so performance work has a recorded trajectory.
    ``--dry-run`` measures without recording.
    """
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Measure simulator events/sec on canonical scenarios.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="named scenarios to time (default: "
        + ", ".join(BENCH_SCENARIOS)
        + ")",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--shards",
        default=None,
        type=_shards_arg,
        help="also time each fabric scenario sharded across this many "
        "workers and record the speedup over the serial run",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="record into this file instead of BENCH_sim.json",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the table but do not record a baseline",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale

    import json
    import time
    from pathlib import Path

    from repro.runner import run_scenario_inline
    from repro.runner.cache import results_dir
    from repro.runner.scale import scale as active_scale
    from repro.runner.scenario import build_scenario_network

    ids = args.scenarios or list(BENCH_SCENARIOS)
    rows = []
    record: Dict[str, dict] = {}
    for scenario_id in ids:
        scenario = _build_named_scenario(scenario_id)
        if scenario is None:
            return 2
        # time the topology layer alone first: construction plus route
        # install, the costs that grow with fabric size
        start = time.perf_counter()
        built_net, _, _ = build_scenario_network(scenario, args.seed)
        build_s = time.perf_counter() - start
        route_install_s = built_net.route_install_s
        del built_net
        start = time.perf_counter()
        _, net = run_scenario_inline(scenario, args.seed)
        wall_s = time.perf_counter() - start
        events = net.engine.events_processed
        eps = events / wall_s if wall_s > 0 else 0.0
        record[scenario_id] = {
            "events": events,
            "wall_s": round(wall_s, 4),
            "events_per_sec": round(eps),
            "sim_ns": scenario.warmup_ns + scenario.duration_ns,
            "build_s": round(build_s, 4),
            "route_install_s": round(route_install_s, 4),
            "peak_rss_kb": _peak_rss_kb(),
        }
        rows.append(
            [
                scenario_id,
                str(events),
                f"{wall_s:.2f}",
                f"{eps:,.0f}",
                f"{build_s:.3f}",
                f"{route_install_s:.3f}",
                str(record[scenario_id]["peak_rss_kb"]),
            ]
        )
        if args.shards and args.shards > 1:
            # time the same cell again, sharded (checkpoint journaling
            # included, so its overhead is visible in the numbers);
            # LAST_STATS stays None when the scenario cannot shard
            # (non-fabric topology)
            from repro.shard import SHARDS_ENV
            from repro.shard import runner as shard_runner

            shard_runner.LAST_STATS = None
            os.environ[SHARDS_ENV] = str(args.shards)
            try:
                start = time.perf_counter()
                run_scenario_inline(scenario, args.seed)
                shard_wall_s = time.perf_counter() - start
            finally:
                os.environ.pop(SHARDS_ENV, None)
            stats = shard_runner.LAST_STATS
            if stats is None:
                rows[-1].extend(["-", "-", "-", "-", "-", "-"])
            else:
                speedup = wall_s / shard_wall_s if shard_wall_s > 0 else 0.0
                # the compute-bound speedup: serial wall over the
                # busiest shard's sync-free compute time.  On a host
                # with >= shards cores the measured speedup approaches
                # this bound; on fewer cores (CI containers) the wall
                # speedup is meaningless and this is the number that
                # tracks the partition quality
                busy = [
                    w - s
                    for w, s in zip(stats["wall_s"], stats["stall_s"])
                ]
                bound = wall_s / max(busy) if max(busy) > 0 else 0.0
                checkpoint_s = stats.get("checkpoint_s", 0.0)
                record[scenario_id].update(
                    {
                        "shards": stats["shards"],
                        "shard_wall_s": round(shard_wall_s, 4),
                        "shard_events_per_sec": [
                            round(v) for v in stats["events_per_sec"]
                        ],
                        "sync_stall_fraction": round(
                            stats["stall_fraction"], 4
                        ),
                        "speedup": round(speedup, 2),
                        "speedup_compute_bound": round(bound, 2),
                        "shard_checkpoint_s": round(checkpoint_s, 4),
                    }
                )
                rows[-1].extend(
                    [
                        str(stats["shards"]),
                        f"{shard_wall_s:.2f}",
                        f"{stats['stall_fraction']:.0%}",
                        f"{speedup:.2f}x",
                        f"{bound:.2f}x",
                        f"{checkpoint_s:.3f}",
                    ]
                )
    headers = [
        "scenario",
        "events",
        "wall s",
        "events/s",
        "build s",
        "routes s",
        "peak RSS KB",
    ]
    if args.shards and args.shards > 1:
        headers += [
            "shards",
            "shard wall s",
            "sync stall",
            "speedup",
            "bound",
            "ckpt s",
        ]
    print(format_table(headers, rows))
    if args.dry_run:
        return 0
    path = (
        Path(args.out) if args.out else results_dir().parent / "BENCH_sim.json"
    )
    data = {"baselines": []}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            print(f"refusing to overwrite malformed {path}", file=sys.stderr)
            return 2
    data.setdefault("baselines", []).append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scale": active_scale(),
            "seed": args.seed,
            "scenarios": record,
        }
    )
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"recorded baseline #{len(data['baselines'])} to {path}")
    return 0


def fabric_main(argv: Sequence[str]) -> int:
    """``python -m repro fabric check`` — build and validate a fabric.

    Builds the requested topology, runs the structural validator
    (tier/host counts, port counts, link symmetry, routing
    completeness) and prints a one-line summary plus the build and
    route-install timings.  Exit status 1 when validation fails — the
    CI fabric-smoke job gates on this.
    """
    parser = argparse.ArgumentParser(
        prog="repro fabric",
        description="Inspect and validate repro.fabric topologies.",
    )
    parser.add_argument("action", choices=("check",), help="what to do")
    parser.add_argument(
        "--kind",
        choices=("fat_tree", "clos"),
        default="fat_tree",
        help="fabric family (default: fat_tree)",
    )
    parser.add_argument(
        "--k", type=int, default=4, help="fat-tree arity (default: 4)"
    )
    parser.add_argument(
        "--pods", type=int, default=2, help="clos: number of pods"
    )
    parser.add_argument(
        "--tors-per-pod", type=int, default=2, help="clos: ToRs per pod"
    )
    parser.add_argument(
        "--leaves-per-pod", type=int, default=2, help="clos: leaves per pod"
    )
    parser.add_argument(
        "--spines", type=int, default=2, help="clos: spine count"
    )
    parser.add_argument(
        "--hosts-per-tor", type=int, default=2, help="clos: hosts per ToR"
    )
    parser.add_argument("--seed", type=int, default=0, help="build seed")
    parser.add_argument(
        "--expect-hosts",
        type=int,
        default=None,
        help="fail unless the fabric has exactly this many hosts",
    )
    args = parser.parse_args(argv)

    import time

    from repro.fabric import FabricSpec, build_fabric

    try:
        if args.kind == "fat_tree":
            spec = FabricSpec(kind="fat_tree", k=args.k)
        else:
            spec = FabricSpec(
                kind="clos",
                pods=args.pods,
                tors_per_pod=args.tors_per_pod,
                leaves_per_pod=args.leaves_per_pod,
                spines=args.spines,
                hosts_per_tor=args.hosts_per_tor,
            )
    except ValueError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    start = time.perf_counter()
    fabric = build_fabric(spec, seed=args.seed)
    build_s = time.perf_counter() - start
    problems = fabric.validate()
    hosts = len(fabric.all_hosts())
    if args.expect_hosts is not None and hosts != args.expect_hosts:
        problems.append(
            f"expected {args.expect_hosts} hosts, built {hosts}"
        )
    tiers = {tier: len(sw) for tier, sw in fabric.tiers().items()}
    print(
        f"{args.kind} fabric: {hosts} hosts, "
        + ", ".join(f"{n} {tier}" for tier, n in tiers.items())
        + f"; built in {build_s:.3f}s "
        f"(routes {fabric.net.route_install_s:.3f}s)"
    )
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print("validation: ok")
    return 0


#: ``repro plot`` targets; ``all`` renders every one of them
PLOT_KINDS = ("fct", "queues", "grid")

#: grid heatmap metrics: bucket x percentile of slowdown
GRID_METRICS = ("mice_p50", "mice_p99", "eleph_p50", "eleph_p99")


def plot_main(argv: Sequence[str]) -> int:
    """``python -m repro plot [fct|queues|grid|all]`` — render figures.

    Artifacts land under ``results/figures/`` as SVG (always, pure
    stdlib) and PNG (when matplotlib happens to be installed).  Every
    underlying experiment runs through the cached executor, so
    re-plotting a sweep that already ran renders from cache without
    recomputing a single cell.
    """
    parser = argparse.ArgumentParser(
        prog="repro plot",
        description="Render slowdown CDFs, queue CDFs and grid heatmaps.",
    )
    parser.add_argument(
        "kind",
        nargs="?",
        default="all",
        choices=PLOT_KINDS + ("all",),
        help="which figure family to render (default: all)",
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        metavar="DIR",
        help="figure directory (default: results/figures)",
    )
    parser.add_argument(
        "--metric",
        choices=GRID_METRICS,
        default="mice_p99",
        help="grid heatmap cell value (default: mice_p99)",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        help="worker processes for cell fan-out (sets REPRO_JOBS)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything, ignoring results/.cache/",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale
    if args.jobs is not None:
        os.environ[JOBS_ENV] = str(args.jobs)
    if args.no_cache:
        os.environ[CACHE_ENV] = "off"

    from pathlib import Path

    from repro.analysis import fct
    from repro.analysis.figures import write_heatmap, write_line_chart
    from repro.runner.cache import results_dir

    out_dir = Path(args.out_dir) if args.out_dir else results_dir() / "figures"
    kinds = PLOT_KINDS if args.kind == "all" else (args.kind,)
    written = []

    if "fct" in kinds:
        from repro.experiments.fct_grid import BENCHMARK_HOPS, run_benchmark_fct

        runs, summaries = run_benchmark_fct()
        records = fct.records_from_runs(runs)
        rtt = fct.base_rtt_ns(hops=BENCHMARK_HOPS)
        cdfs = fct.slowdown_cdf(records, rtt)
        if not cdfs:
            print("no completed transfers to plot", file=sys.stderr)
            return 3
        written += write_line_chart(
            out_dir / "fct_slowdown_cdf",
            cdfs,
            title="Benchmark traffic: FCT slowdown CDF",
            xlabel="slowdown (FCT / ideal FCT)",
            ylabel="fraction of transfers",
        )
        print(fct.fct_table(summaries))

    if "queues" in kinds:
        from repro.analysis.stats import cdf_points
        from repro.experiments.latency import run_fig19

        series = {
            result.protocol: [
                (bytes_ / 1e3, frac)
                for bytes_, frac in cdf_points(result.samples_bytes)
            ]
            for result in run_fig19()
        }
        written += write_line_chart(
            out_dir / "queue_cdf",
            series,
            title="Egress queue CDF: DCQCN vs DCTCP (Fig 19)",
            xlabel="queue length (KB)",
            ylabel="fraction of samples",
        )

    if "grid" in kinds:
        from repro.experiments.fct_grid import (
            grid_table,
            point_summaries,
            run_fct_grid,
        )

        sweep = run_fct_grid()
        summaries = point_summaries(sweep)
        bucket = "mice" if args.metric.startswith("mice") else "elephants"
        quantile = "p50" if args.metric.endswith("p50") else "p99"
        profiles = sorted({tuple(p.value)[:3] for p in sweep.points})
        degrees = sorted({tuple(p.value)[3] for p in sweep.points})
        grid = [
            [
                (
                    getattr(summary[bucket], quantile)
                    if (summary := summaries.get((*profile, degree)))
                    and bucket in summary
                    else None
                )
                for degree in degrees
            ]
            for profile in profiles
        ]
        written += write_heatmap(
            out_dir / f"fct_grid_{args.metric}",
            [str(d) for d in degrees],
            [f"K{k}/{m} P{p:g}" for k, m, p in profiles],
            grid,
            title=f"slowdown {args.metric} over (Kmin, Kmax, Pmax) x incast",
            xlabel="incast degree",
            ylabel="marking profile (Kmin KB / Kmax KB, Pmax)",
        )
        print(grid_table(sweep))

    for path in written:
        print(f"wrote {path}")
    return 0


def faults_main(argv: Sequence[str]) -> int:
    """``python -m repro faults list|example`` — the injector vocabulary."""
    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Inspect the fault-injection vocabulary (DESIGN.md §9).",
    )
    parser.add_argument(
        "action",
        choices=("list", "example"),
        help="'list' the injector kinds; print an 'example' plan JSON",
    )
    args = parser.parse_args(argv)

    import json

    from repro import units
    from repro.faults import (
        FaultPlan,
        INJECTOR_KINDS,
        LinkFlap,
        PauseStorm,
        WatchdogConfig,
    )

    if args.action == "list":
        rows = [
            [kind, (cls.__doc__ or "").strip().splitlines()[0]]
            for kind, cls in sorted(INJECTOR_KINDS.items())
        ]
        print(format_table(["kind", "injects"], rows))
        return 0
    # an example plan sized for the 'storm' scenario's dumbbell: a PAUSE
    # storm on the stormed receiver plus one trunk flap later in the run
    plan = FaultPlan(
        injectors=(
            PauseStorm(
                host="R1", start_ns=units.us(500), duration_ns=units.us(500)
            ),
            LinkFlap(
                a="SL", b="SR", start_ns=units.us(1500), down_ns=units.us(100)
            ),
        ),
        watchdog=WatchdogConfig(),
    )
    print(json.dumps(plan.to_json(), indent=2, sort_keys=True))
    return 0


def run_scenario_main(scenario_id: str, args) -> int:
    """``python -m repro run <scenario>`` — one inline scenario repetition.

    Named scenarios (``python -m repro scenarios``) run through the same
    path the telemetry commands use, so ``--faults`` overlays a plan and
    the result table includes the fault/watchdog counters.
    """
    scenario = _build_named_scenario(scenario_id)
    if scenario is not None:
        scenario = _apply_fault_plan(scenario, getattr(args, "faults", None))
    if scenario is None:
        return 2
    scenario = _apply_invariants(scenario, getattr(args, "invariants", None))

    from repro.invariants import InvariantViolation
    from repro.runner import run_scenario_inline
    from repro.shard import runner as shard_runner

    seed = getattr(args, "seed", 0) or 0
    shard_runner.LAST_STATS = None
    try:
        result, _ = run_scenario_inline(scenario, seed)
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 3
    print(f"=== scenario {scenario_id}: {scenario.label or scenario_id} ===")
    print(result.table())
    stats = shard_runner.LAST_STATS
    if stats is not None:
        print(
            f"sharded: {stats['shards']} workers, "
            f"window {stats['window_ns']}ns, "
            f"{stats['barriers']} barriers, "
            f"{stats['messages']} boundary messages, "
            f"sync stall {stats['stall_fraction']:.0%}"
        )
        restarts = stats.get("restarts", 0)
        resumed = stats.get("resumed_barriers", 0)
        degraded = stats.get("degraded", False)
        if restarts or resumed or degraded:
            # the survived-fault summary; CI greps for this line
            print(
                f"resilience: {restarts} worker restarts, "
                f"{resumed} barriers resumed from checkpoint, "
                f"degraded={'yes' if degraded else 'no'}"
            )
    elif getattr(args, "shards", None) and args.shards > 1:
        print(
            f"sharding skipped ({scenario.topology!r} topology runs serial)"
        )
    if result.flow_stats:
        completed = [r for r in result.flow_stats_records() if r.completed]
        print(
            f"flow_stats: {len(result.flow_stats)} rows, "
            f"{len(completed)} completed transfers"
        )
    report = result.invariant_report
    if report:
        print(
            f"invariants[{report.get('mode', '-')}]: "
            f"{report.get('checks', 0)} checks, "
            f"{report.get('violation_count', 0)} violations"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # telemetry commands take their own options, so they dispatch before
    # the experiment parser (whose grammar is a bare positional id)
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "scenarios":
        print(list_scenarios())
        return 0
    if argv and argv[0] == "faults":
        return faults_main(argv[1:])
    if argv and argv[0] == "bench":
        return bench_main(argv[1:])
    # only dispatch "fabric" when an action follows: a bare
    # ``repro fabric`` is the experiment of the same name
    if argv and argv[0] == "fabric" and len(argv) > 1 and argv[1] == "check":
        return fabric_main(argv[1:])
    if argv and argv[0] == "plot":
        return plot_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale
    if args.jobs is not None:
        os.environ[JOBS_ENV] = str(args.jobs)
    if args.shards is not None:
        from repro.shard import SHARDS_ENV

        os.environ[SHARDS_ENV] = str(args.shards)
    if args.no_cache:
        os.environ[CACHE_ENV] = "off"
    if args.resume:
        os.environ[RESUME_ENV] = "on"
    if args.timeout is not None:
        os.environ[TIMEOUT_ENV] = args.timeout
    if args.invariants is not None:
        # experiments that arm the guard themselves (the CC arena) read
        # the mode from the environment; named scenarios also get it
        # overlaid onto their spec below
        os.environ[INVARIANTS_ENV] = args.invariants
    experiment_id = args.experiment
    if experiment_id == "run":
        if args.extra is None:
            print("usage: repro run <experiment id>", file=sys.stderr)
            return 2
        experiment_id = args.extra
    if experiment_id == "list":
        print(list_experiments())
        return 0
    if experiment_id not in REGISTRY:
        # named scenarios run too ('repro run storm --faults plan.json')
        if experiment_id in SCENARIOS:
            return run_scenario_main(experiment_id, args)
        print(
            f"unknown experiment {experiment_id!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    experiment = REGISTRY.get(experiment_id)
    print(f"=== {experiment.id}: {experiment.description} ===")
    print(experiment.run())
    return 0
