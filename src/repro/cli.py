"""Command-line interface: regenerate any paper figure from the shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig03                # Figure 3 (PFC unfairness)
    python -m repro run fig03            # same, explicit form
    python -m repro fig16 --scale full   # longer runs, more repetitions
    python -m repro fig16 --jobs 4       # fan repetitions across 4 cores
    python -m repro sec4                 # §4 buffer-threshold table

Each command prints the same rows the corresponding benchmark emits.
The dispatch table is :data:`repro.runner.REGISTRY`, populated by
:mod:`repro.experiments.catalog`; ``--jobs`` / ``--no-cache`` set the
``REPRO_JOBS`` / ``REPRO_CACHE`` knobs for the invocation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, Optional, Sequence

import repro.experiments.catalog  # noqa: F401  (populates REGISTRY)
from repro.runner import JOBS_ENV, REGISTRY, SCALE_ENV, format_table
from repro.runner.cache import CACHE_ENV
from repro.runner.scale import SCALES

#: compat view of the registry: id -> (runner, description)
COMMANDS: Dict[str, tuple] = {
    exp.id: (exp.runner, exp.description) for exp in REGISTRY
}


def _jobs_arg(value: str) -> str:
    """Reject bad ``--jobs`` values at parse time, not mid-experiment."""
    try:
        if value != "auto" and int(value) < 1:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the DCQCN paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig16, sec4), 'run <id>', or 'list'",
    )
    parser.add_argument(
        "extra",
        nargs="?",
        default=None,
        help="experiment id when the first argument is 'run'",
    )
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="override REPRO_SCALE for this invocation",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        help="worker processes for cell fan-out ('auto' or an integer; "
        "sets REPRO_JOBS)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute everything, ignoring results/.cache/",
    )
    return parser


def list_experiments() -> str:
    rows = [[exp.id, exp.description] for exp in REGISTRY]
    return format_table(["experiment", "regenerates"], rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scale is not None:
        os.environ[SCALE_ENV] = args.scale
    if args.jobs is not None:
        os.environ[JOBS_ENV] = str(args.jobs)
    if args.no_cache:
        os.environ[CACHE_ENV] = "off"
    experiment_id = args.experiment
    if experiment_id == "run":
        if args.extra is None:
            print("usage: repro run <experiment id>", file=sys.stderr)
            return 2
        experiment_id = args.extra
    if experiment_id == "list":
        print(list_experiments())
        return 0
    if experiment_id not in REGISTRY:
        print(
            f"unknown experiment {experiment_id!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    experiment = REGISTRY.get(experiment_id)
    print(f"=== {experiment.id}: {experiment.description} ===")
    print(experiment.run())
    return 0
