"""repro — a reproduction of *Congestion Control for Large-Scale RDMA
Deployments* (DCQCN), SIGCOMM 2015.

The package provides:

* :mod:`repro.core` — the DCQCN algorithm (CP / NP / RP state machines
  and the deployed parameter set).
* :mod:`repro.sim` — a packet-level discrete-event simulator of
  lossless RoCEv2 fabrics: shared-buffer switches with PFC and
  RED/ECN, host NICs with hardware-style rate limiters, ECMP Clos
  topologies.
* :mod:`repro.fluid` — the paper's delay-differential fluid model,
  used for parameter tuning.
* :mod:`repro.buffers` — the §4 buffer-threshold analysis (headroom,
  t_PFC, t_ECN).
* :mod:`repro.baselines` — DCTCP, QCN and PFC-only comparison points.
* :mod:`repro.traffic` — synthetic datacenter workloads (user traffic
  + incast disk-rebuild events).
* :mod:`repro.hoststack` — the TCP vs RDMA host-overhead model behind
  the paper's motivation figure.
* :mod:`repro.experiments` — one entry point per paper table/figure.
* :mod:`repro.telemetry` — structured event tracing, the metrics
  registry, and the scheduler profiler (DESIGN.md §8).
"""

from repro import units
from repro.core.params import DCQCNParams
from repro.sim.network import Network
from repro.telemetry import Telemetry, TelemetrySpec

__version__ = "1.0.0"

__all__ = [
    "DCQCNParams",
    "Network",
    "Telemetry",
    "TelemetrySpec",
    "units",
    "__version__",
]
