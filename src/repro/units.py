"""Unit helpers shared across the library.

The simulator keeps time as an integer number of nanoseconds and data
rates as floating-point bits per second.  These helpers keep the
conversions explicit and readable: ``us(50)`` is clearly fifty
microseconds, ``gbps(40)`` clearly forty gigabits per second.

All byte-quantity helpers use *decimal* multiples (1 KB = 1000 bytes),
matching the convention the paper uses for switch buffers (a "12MB"
Trident II buffer is 12e6 bytes; that is the only interpretation that
reproduces the paper's 24.47 KB PFC threshold).
"""

from __future__ import annotations

# --- time -> nanoseconds -------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds (identity, rounded to an integer tick)."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds expressed in integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds expressed in integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Seconds expressed in integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def to_seconds(time_ns: int) -> float:
    """Convert an integer-nanosecond timestamp back to float seconds."""
    return time_ns / NS_PER_SEC


def to_us(time_ns: int) -> float:
    """Convert an integer-nanosecond timestamp back to float microseconds."""
    return time_ns / NS_PER_US


def to_ms(time_ns: int) -> float:
    """Convert an integer-nanosecond timestamp back to float milliseconds."""
    return time_ns / NS_PER_MS


# --- data sizes -> bytes (decimal) ---------------------------------------


def kb(value: float) -> int:
    """Kilobytes (decimal, 1 KB = 1000 B) expressed in bytes."""
    return int(round(value * 1_000))


def mb(value: float) -> int:
    """Megabytes (decimal, 1 MB = 1e6 B) expressed in bytes."""
    return int(round(value * 1_000_000))


def gb(value: float) -> int:
    """Gigabytes (decimal, 1 GB = 1e9 B) expressed in bytes."""
    return int(round(value * 1_000_000_000))


def to_kb(size_bytes: float) -> float:
    """Bytes expressed in decimal kilobytes."""
    return size_bytes / 1_000


# --- data rates -> bits per second ---------------------------------------


def bps(value: float) -> float:
    """Bits per second (identity)."""
    return float(value)


def mbps(value: float) -> float:
    """Megabits per second expressed in bits per second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Gigabits per second expressed in bits per second."""
    return value * 1e9


def to_gbps(rate_bps: float) -> float:
    """Bits per second expressed in gigabits per second."""
    return rate_bps / 1e9


def serialization_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Time to clock ``size_bytes`` onto a link running at ``rate_bps``.

    Rounds up to a whole nanosecond so that back-to-back transmissions
    can never overlap.
    """
    if rate_bps <= 0:
        raise ValueError("rate_bps must be positive, got %r" % rate_bps)
    bits = size_bytes * 8
    exact = bits * NS_PER_SEC / rate_bps
    whole = int(exact)
    if exact > whole:
        whole += 1
    return whole


def bytes_per_ns(rate_bps: float) -> float:
    """Bytes transferred per nanosecond at ``rate_bps``."""
    return rate_bps / (8 * NS_PER_SEC)
