"""DCTCP: window-based ECN congestion control (Alizadeh et al. 2010).

The paper compares DCQCN's queue occupancy against DCTCP's
(Figure 19): both react to ECN, but DCTCP is ACK-clocked and
software-driven, so it needs a marking threshold large enough to
absorb OS/NIC bursts (the guideline is K ~ C x RTT scale; the paper
configures 160 KB at 40 Gbps), whereas DCQCN's hardware rate limiters
admit Kmin = 5 KB.  The result is an order-of-magnitude shorter queue
for DCQCN.

This module implements DCTCP as a :class:`repro.sim.host.Flow`
subclass:

* the receiver ACKs every packet, echoing the CE bit
  (``echo_ecn=True`` registration — a faithful stand-in for DCTCP's
  delayed-ACK ECE state machine at our packet granularity);
* the sender keeps ``cwnd`` (packets) and the EWMA fraction ``alpha``
  of marked packets per window (g = 1/16);
* slow start until the first mark, then additive increase of one
  packet per window and multiplicative decrease ``cwnd *= 1 - alpha/2``
  at most once per window.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.host import DATA_PRIORITY, Flow, Host, NEVER
from repro.sim.network import Network


class DctcpFlow(Flow):
    """A DCTCP sender; eligibility is window-gated, not rate-paced."""

    def __init__(
        self,
        flow_id: int,
        src: Host,
        dst: Host,
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
        initial_cwnd_pkts: float = 10.0,
        g: float = 1.0 / 16.0,
        min_cwnd_pkts: float = 1.0,
    ):
        super().__init__(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
        )
        if initial_cwnd_pkts < 1:
            raise ValueError("initial cwnd must be at least one packet")
        if not 0.0 < g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {g}")
        self.cwnd_pkts = float(initial_cwnd_pkts)
        self.g = g
        self.min_cwnd_pkts = min_cwnd_pkts
        self.dctcp_alpha = 0.0
        self.in_slow_start = True
        # per-window mark accounting
        self._window_end_seq = 0
        self._window_acked = 0
        self._window_marked = 0
        self.windows_completed = 0

    # --- NIC pull interface ------------------------------------------------------

    def ready_time(self) -> int:
        """Ready while data remains and the congestion window is open."""
        base = super().ready_time()
        if base >= NEVER:
            return NEVER
        if self.next_seq - self.acked_seq < int(self.cwnd_pkts):
            return base  # still line-rate paced: no super-line bursts
        return NEVER  # window closed; an ACK reopens it

    # --- feedback ------------------------------------------------------------------

    def on_transport_feedback(self, ece: bool, acked_seq: int) -> None:
        """Per-packet ACK with echoed CE: DCTCP's control loop."""
        self._window_acked += 1
        if ece:
            self._window_marked += 1
            self.in_slow_start = False
        if self.in_slow_start:
            self.cwnd_pkts += 1.0
        if acked_seq >= self._window_end_seq:
            self._end_window(acked_seq)
        # window may have opened
        self.src.nic.flow_state_changed(self)

    def _end_window(self, acked_seq: int) -> None:
        """One RTT's worth of ACKs arrived: update alpha and cwnd."""
        if self._window_acked > 0:
            fraction = self._window_marked / self._window_acked
            self.dctcp_alpha = (
                (1.0 - self.g) * self.dctcp_alpha + self.g * fraction
            )
            if self._window_marked > 0:
                self.cwnd_pkts = max(
                    self.min_cwnd_pkts,
                    self.cwnd_pkts * (1.0 - self.dctcp_alpha / 2.0),
                )
            elif not self.in_slow_start:
                self.cwnd_pkts += 1.0  # additive increase, per window
        self.windows_completed += 1
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_seq = self.next_seq


def add_dctcp_flow(
    net: Network,
    src: Host,
    dst: Host,
    priority: int = DATA_PRIORITY,
    mtu_bytes: int = 1000,
    start_ns: int = 0,
    initial_cwnd_pkts: float = 10.0,
    g: float = 1.0 / 16.0,
) -> DctcpFlow:
    """Open a DCTCP flow on ``net`` (receiver echoes CE per packet).

    The switches should be configured with DCTCP-style cut-off marking
    (``DCQCNParams.deployed().with_cutoff_marking(threshold)``) for a
    faithful comparison.
    """
    flow = DctcpFlow(
        net.next_flow_id(),
        src,
        dst,
        priority=priority,
        mtu_bytes=mtu_bytes,
        start_ns=start_ns,
        initial_cwnd_pkts=initial_cwnd_pkts,
        g=g,
    )
    net.register_flow(flow, echo_ecn=True)
    return flow
