"""DCTCP baseline — thin adapter over :mod:`repro.cc.dctcp`.

The algorithm lives in :class:`repro.cc.dctcp.DctcpControl` as a
registered controller: the canonical way to run DCTCP is now
``net.add_flow(src, dst, cc="dctcp")``.  This module keeps the
pre-refactor construction surface (:class:`DctcpFlow` with its
introspection attributes, :func:`add_dctcp_flow`) for the figure
experiments and their tests.  See :mod:`repro.cc.dctcp` for the
protocol description and the marking-threshold discussion.
"""

from __future__ import annotations

from repro.cc.dctcp import DctcpControl
from repro.cc.params import DctcpParams
from repro.sim.host import DATA_PRIORITY, Flow, Host
from repro.sim.network import Network

__all__ = ["DctcpFlow", "add_dctcp_flow"]


class DctcpFlow(Flow):
    """A DCTCP sender; eligibility is window-gated, not rate-paced."""

    def __init__(
        self,
        flow_id: int,
        src: Host,
        dst: Host,
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
        initial_cwnd_pkts: float = 10.0,
        g: float = 1.0 / 16.0,
        min_cwnd_pkts: float = 1.0,
    ):
        super().__init__(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
            cc=DctcpControl(
                DctcpParams(
                    initial_cwnd_pkts=initial_cwnd_pkts,
                    g=g,
                    min_cwnd_pkts=min_cwnd_pkts,
                )
            ),
        )

    # pre-refactor introspection surface (tests, monitors)

    @property
    def cwnd_pkts(self) -> float:
        return self.cc.cwnd

    @property
    def dctcp_alpha(self) -> float:
        return self.cc.dctcp_alpha

    @property
    def in_slow_start(self) -> bool:
        return self.cc.in_slow_start

    @property
    def windows_completed(self) -> int:
        return self.cc.windows_completed


def add_dctcp_flow(
    net: Network,
    src: Host,
    dst: Host,
    priority: int = DATA_PRIORITY,
    mtu_bytes: int = 1000,
    start_ns: int = 0,
    initial_cwnd_pkts: float = 10.0,
    g: float = 1.0 / 16.0,
) -> DctcpFlow:
    """Open a DCTCP flow on ``net`` (receiver echoes CE per packet).

    The switches should be configured with DCTCP-style cut-off marking
    (``DCQCNParams.deployed().with_cutoff_marking(threshold)``) for a
    faithful comparison.
    """
    flow = DctcpFlow(
        net.next_flow_id(),
        src,
        dst,
        priority=priority,
        mtu_bytes=mtu_bytes,
        start_ns=start_ns,
        initial_cwnd_pkts=initial_cwnd_pkts,
        g=g,
    )
    net.register_flow(flow, echo_ecn=True)
    return flow
