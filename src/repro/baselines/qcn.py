"""QCN baseline — thin adapters over :mod:`repro.cc.qcn`.

The algorithm (sender RP and switch congestion point) lives in
:mod:`repro.cc.qcn` as a registered controller: the canonical way to
run QCN is now ``net.add_flow(src, dst, cc="qcn")``, which installs
the congestion point on every switch automatically.

This module keeps the pre-refactor construction surface for the
single-L2-domain ablations and their tests: a :class:`QcnSwitch`
(congestion point pre-installed at build time) plus
:func:`add_qcn_flow` (a :class:`QcnFlow` registered without touching
the switches).  See :mod:`repro.cc.qcn` for the protocol description.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.params import QcnCpParams
from repro.cc.qcn import QCN_FB_LEVELS, QcnControl, QcnFeedback, QcnReactionPoint
from repro.core.params import DCQCNParams
from repro.engine import EventScheduler
from repro.sim.host import DATA_PRIORITY, Flow, Host
from repro.sim.network import Network
from repro.sim.switch import Switch, SwitchConfig

__all__ = [
    "QCN_FB_LEVELS",
    "QcnFlow",
    "QcnReactionPoint",
    "QcnSwitch",
    "QcnSwitchMixin",
    "add_qcn_flow",
]


class QcnFlow(Flow):
    """A rate-based flow driven by QCN feedback frames."""

    def __init__(
        self,
        flow_id: int,
        src: Host,
        dst: Host,
        engine: EventScheduler,
        params: Optional[DCQCNParams] = None,
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
    ):
        params = params or DCQCNParams.strawman()
        rp = QcnReactionPoint(engine, params, src.nic.line_rate_bps)
        super().__init__(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
            cc=QcnControl(rp),
        )


class QcnSwitchMixin:
    """Congestion-point installation, mixed into :class:`Switch`.

    Pre-refactor compatibility shell: ``_init_qcn()`` installs a
    :class:`repro.cc.qcn.QcnFeedback` generator on the switch's
    enqueue hook.  The class attributes keep the old tuning surface
    (subclasses overrode them).
    """

    qcn_q_eq_bytes: float = QcnCpParams.q_eq_bytes
    qcn_w: float = QcnCpParams.w
    qcn_sample_interval_bytes: int = QcnCpParams.sample_interval_bytes

    def _init_qcn(self) -> None:
        self._qcn_feedback = QcnFeedback(
            self,
            QcnCpParams(
                q_eq_bytes=self.qcn_q_eq_bytes,
                w=self.qcn_w,
                sample_interval_bytes=self.qcn_sample_interval_bytes,
            ),
        )
        self.add_cc_feedback(self._qcn_feedback)

    @property
    def qcn_feedback_sent(self) -> int:
        return self._qcn_feedback.feedback_sent


class QcnSwitch(QcnSwitchMixin, Switch):
    """A switch with the QCN congestion-point algorithm enabled."""

    def __init__(
        self,
        engine: EventScheduler,
        device_id: int,
        name: str,
        config: Optional[SwitchConfig] = None,
        ecmp_salt: int = 0,
    ):
        super().__init__(engine, device_id, name, config=config, ecmp_salt=ecmp_salt)
        self._init_qcn()


def add_qcn_flow(
    net: Network,
    src: Host,
    dst: Host,
    params: Optional[DCQCNParams] = None,
    priority: int = DATA_PRIORITY,
    mtu_bytes: int = 1000,
    start_ns: int = 0,
) -> QcnFlow:
    """Open a QCN-controlled flow on ``net`` (switches must sample)."""
    flow = QcnFlow(
        net.next_flow_id(),
        src,
        dst,
        net.engine,
        params=params,
        priority=priority,
        mtu_bytes=mtu_bytes,
        start_ns=start_ns,
    )
    net.register_flow(flow)
    return flow
