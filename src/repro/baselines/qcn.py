"""QCN (IEEE 802.1Qau) — the L2 quantized-feedback baseline.

DCQCN's rate-increase machinery is taken from QCN, but the decrease
side differs fundamentally (paper §2.3, §3.3): QCN's congestion point
*samples* arriving packets (roughly one sample per 150 KB) and, when
congested, sends a feedback frame carrying a quantized congestion
measure straight back to the packet's *source MAC*:

    Fb = -(q_off + w * q_delta),   q_off = q - q_eq,  q_delta = q - q_old

The source cuts ``R_C *= 1 - Gd * |Fb|`` where ``Gd |Fb_max| = 1/2``.

Because the feedback frame is addressed by L2 identity, QCN cannot
cross an IP-routed boundary — the reason the paper had to design
DCQCN.  This implementation is used for single-L2-domain ablations
(DCQCN vs QCN on one switch); the simulator itself would happily route
the feedback anywhere, so the L2 restriction is a *policy* here, not a
mechanism.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import units
from repro.core.params import DCQCNParams
from repro.core.rp import ReactionPoint
from repro.engine import EventScheduler
from repro.sim.host import CONTROL_PRIORITY, DATA_PRIORITY, Flow, Host
from repro.sim.link import Port
from repro.sim.network import Network
from repro.sim.packet import (
    CONTROL_FRAME_BYTES,
    KIND_DATA,
    KIND_QCN_FB,
    Packet,
)
from repro.sim.switch import Switch, SwitchConfig

#: QCN quantizes |Fb| to 6 bits.
QCN_FB_LEVELS = 64


class QcnReactionPoint(ReactionPoint):
    """QCN's RP: quantized multiplicative decrease, QCN rate increase.

    The increase side (byte counter / timer / fast recovery / additive
    increase) is inherited unchanged from the DCQCN RP — which is
    faithful, since DCQCN took it from QCN.
    """

    def on_feedback(self, fb_quantized: int) -> None:
        """Apply one quantized feedback frame (1..63)."""
        if fb_quantized <= 0:
            return
        cut = min(0.5, (fb_quantized / QCN_FB_LEVELS) * 0.5)
        self.rt_bps = self.rc_bps
        self.rc_bps = max(self.rc_bps * (1.0 - cut), self.params.min_rate_bps)
        self.byte_counter_count = 0
        self.timer_count = 0
        self._bytes_toward_event = 0
        self._increase_timer.reset()
        self._notify_rate()

    def on_cnp(self) -> None:  # pragma: no cover - guard
        raise TypeError("QCN reaction points consume QCN feedback, not CNPs")


class QcnFlow(Flow):
    """A rate-based flow driven by QCN feedback frames."""

    def __init__(
        self,
        flow_id: int,
        src: Host,
        dst: Host,
        engine: EventScheduler,
        params: Optional[DCQCNParams] = None,
        priority: int = DATA_PRIORITY,
        mtu_bytes: int = 1000,
        start_ns: int = 0,
    ):
        params = params or DCQCNParams.strawman()
        rp = QcnReactionPoint(engine, params, src.nic.line_rate_bps)
        super().__init__(
            flow_id,
            src,
            dst,
            priority=priority,
            mtu_bytes=mtu_bytes,
            start_ns=start_ns,
            rp=rp,
        )

    def on_qcn_feedback(self, quantized_fb: int) -> None:
        self.rp.on_feedback(quantized_fb)


class QcnSwitchMixin:
    """Congestion-point sampling, mixed into :class:`Switch`.

    Keeps a per-(egress port, priority) byte countdown; each time
    ``sample_interval_bytes`` of data passes, computes Fb against the
    equilibrium queue length and, if negative, addresses a feedback
    frame to the sampled packet's source.
    """

    qcn_q_eq_bytes: float = units.kb(33)
    qcn_w: float = 2.0
    qcn_sample_interval_bytes: int = units.kb(150)

    def _init_qcn(self) -> None:
        self._qcn_countdown: Dict[Tuple[int, int], int] = {}
        self._qcn_q_old: Dict[Tuple[int, int], float] = {}
        self.qcn_feedback_sent = 0
        # |Fb| spans q_eq * (1 + 2w); used for quantization
        self._qcn_fb_max = self.qcn_q_eq_bytes * (1.0 + 2.0 * self.qcn_w)

    def _qcn_sample(self, pkt: Packet, egress_index: int) -> None:
        if pkt.kind != KIND_DATA:
            return
        key = (egress_index, pkt.priority)
        remaining = self._qcn_countdown.get(key, 0) - pkt.size
        if remaining > 0:
            self._qcn_countdown[key] = remaining
            return
        self._qcn_countdown[key] = self.qcn_sample_interval_bytes
        q = self.egress_queue_bytes(egress_index, pkt.priority)
        q_old = self._qcn_q_old.get(key, 0.0)
        self._qcn_q_old[key] = q
        fb = -((q - self.qcn_q_eq_bytes) + self.qcn_w * (q - q_old))
        if fb >= 0:
            return  # not congested; QCN sends no positive feedback
        quantized = min(
            QCN_FB_LEVELS - 1,
            max(1, int(-fb / self._qcn_fb_max * QCN_FB_LEVELS)),
        )
        self.qcn_feedback_sent += 1
        feedback = Packet(
            KIND_QCN_FB,
            flow_id=pkt.flow_id,
            src=self.device_id,
            dst=pkt.src,
            size=CONTROL_FRAME_BYTES,
            priority=CONTROL_PRIORITY,
            qcn_fb=quantized,
        )
        # switch-originated frame: attribute its buffer usage to the
        # ingress the sampled packet used (it heads back that way)
        self._enqueue(feedback, pkt.ingress_index)


class QcnSwitch(QcnSwitchMixin, Switch):
    """A switch with the QCN congestion-point algorithm enabled."""

    def __init__(
        self,
        engine: EventScheduler,
        device_id: int,
        name: str,
        config: Optional[SwitchConfig] = None,
        ecmp_salt: int = 0,
    ):
        super().__init__(engine, device_id, name, config=config, ecmp_salt=ecmp_salt)
        self._init_qcn()

    def _enqueue(self, pkt: Packet, ingress_index: int) -> None:
        before = self.forwarded_packets
        Switch._enqueue(self, pkt, ingress_index)
        if self.forwarded_packets > before and pkt.kind == KIND_DATA:
            # _pick_egress is a pure hash: re-deriving it names the
            # queue the packet just joined
            self._qcn_sample(pkt, self._pick_egress(pkt))


def add_qcn_flow(
    net: Network,
    src: Host,
    dst: Host,
    params: Optional[DCQCNParams] = None,
    priority: int = DATA_PRIORITY,
    mtu_bytes: int = 1000,
    start_ns: int = 0,
) -> QcnFlow:
    """Open a QCN-controlled flow on ``net``."""
    flow = QcnFlow(
        net.next_flow_id(),
        src,
        dst,
        net.engine,
        params=params,
        priority=priority,
        mtu_bytes=mtu_bytes,
        start_ns=start_ns,
    )
    net.register_flow(flow)
    return flow
