"""Comparison transports.

* :mod:`repro.baselines.dctcp` — window-based DCTCP (used for the
  Figure 19 queue-length comparison; DCTCP needs a deep marking
  threshold to absorb bursts, DCQCN does not).
* :mod:`repro.baselines.qcn` — 802.1Qau QCN quantized-feedback rate
  control (the L2-only predecessor DCQCN builds on, §2.3).
* PFC-only (no end-to-end control) is expressed as ``cc="none"`` on
  :meth:`repro.sim.network.Network.add_flow`.
"""

from repro.baselines.dctcp import DctcpFlow, add_dctcp_flow
from repro.baselines.qcn import QcnFlow, QcnSwitchMixin, QcnSwitch, add_qcn_flow

__all__ = [
    "DctcpFlow",
    "add_dctcp_flow",
    "QcnFlow",
    "QcnSwitchMixin",
    "QcnSwitch",
    "add_qcn_flow",
]
