"""Parent-side orchestration of one sharded run.

:func:`maybe_run_sharded` is the single dispatch point, called by
:func:`repro.runner.scenario.run_scenario_inline` (and the cell entry
point) before any serial work starts.  It answers ``None`` whenever
the run should stay serial — non-fabric topology, shard count 1, a
daemonic process that cannot spawn children, or a fabric whose
boundary links give no positive lookahead — so callers need no
topology knowledge of their own.

The sync topology is a star: every worker exchanges messages only
with this parent over its own pipe.  Workers all derive the identical
barrier schedule from (window, warmup, horizon), so each routing round
is lockstep: receive one ``("sync", barrier, outbox)`` from every
worker, check the barriers agree, route each boundary message to its
destination shard's inbox, journal the round, and answer every worker
with ``("sync", barrier, inbox)``.  An empty inbox is still sent — it
is the null message that grants the receiving shard permission to
advance another window.  After the final barrier each worker sends
``("done", result_json, extras)`` and the parent merges the parts
(:mod:`repro.shard.merge`).

The parent is also the **supervisor** (DESIGN.md §15).  Waits on the
pipes are bounded polls, never blocking ``recv``s, so a worker that
dies (``EOFError`` / ``BrokenPipeError`` / silent exit) or stalls past
the heartbeat deadline becomes a structured
:class:`~repro.shard.supervise.ShardFailure` instead of a hang.  The
routed rounds are journalled — in memory always, and through
:class:`~repro.shard.checkpoint.ShardCheckpoint` to disk when
checkpointing is on — *before* the acks go out, so at any instant the
journal covers everything any worker might have consumed.  That makes
recovery pure replay: a respawned worker (or a ``--resume`` of the
whole run) rebuilds the network from the spec and re-executes the
journalled rounds without touching the pipe, landing bit-exactly where
the lost incarnation stood.  When the restart budget is exhausted the
run degrades to one serial re-execution (bit-identical by the PR 9
determinism guarantee) or, with degradation disabled, raises
:class:`~repro.shard.supervise.ShardRunError`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional

from repro.shard.boundary import BoundaryMessage, barrier_schedule
from repro.shard.checkpoint import (
    ShardCheckpoint,
    replay_slice,
    shard_checkpoint_enabled,
)
from repro.shard.partition import partition_fabric
from repro.shard.spec import SHARDS_ENV, ShardingSpec
from repro.shard.supervise import (
    ShardFailure,
    ShardRunError,
    SupervisionPolicy,
)
from repro.shard.worker import shard_worker_main

#: statistics of the most recent sharded run in this process, for
#: ``repro bench`` (None until a sharded run completes)
LAST_STATS: Optional[Dict[str, Any]] = None

#: test hook: after this many live routing rounds the parent raises
#: ``KeyboardInterrupt`` (right after the round is journalled and
#: acked) — the resume tests' stand-in for an operator's ctrl-C
_TEST_ABORT_AFTER_ROUNDS: Optional[int] = None


def effective_shards(scenario) -> int:
    """The shard count this scenario should run with (1 = serial)."""
    if scenario.sharding is not None:
        return scenario.sharding.shards
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"{SHARDS_ENV} must be an integer shard count, got {raw!r}"
        ) from None


def can_shard(scenario) -> bool:
    """Whether sharded execution is even an option for this scenario.

    Only ``fabric`` topologies have the pod structure the partitioner
    needs, and a daemonic process (a process-pool worker) may not
    spawn children — those runs silently stay serial.
    """
    if scenario.topology != "fabric":
        return False
    return not multiprocessing.current_process().daemon


def maybe_run_sharded(scenario, seed: int):
    """Run sharded if requested and possible; ``None`` means run serial."""
    if not can_shard(scenario):
        return None
    shards = effective_shards(scenario)
    if shards <= 1:
        return None
    return run_scenario_sharded(scenario, seed, shards)


def _plan_for(scenario, seed: int, shards: int):
    """Build the fabric once, parent-side, to compute the shard plan."""
    from repro.fabric import build_fabric

    kwargs = dict(scenario.topology_kwargs)
    fabric = build_fabric(spec=kwargs.pop("spec", None), seed=seed, **kwargs)
    return partition_fabric(fabric, shards)


class _DegradeToSerial(Exception):
    """Internal: the fleet is unsalvageable, fall back to serial."""

    def __init__(self, failure: ShardFailure):
        super().__init__(failure.describe())
        self.failure = failure


class ShardSupervisor:
    """One sharded run: spawn, route, journal, supervise, merge."""

    def __init__(self, scenario, seed: int, shards: int, plan, window_ns: int):
        self.scenario = scenario
        self.seed = seed
        self.shards = shards
        self.plan = plan
        self.window_ns = window_ns
        self.spec = scenario.spec()
        # env-var sharded runs carry no embedded spec; a default one
        # supplies the supervision/checkpoint knobs
        spec_obj = scenario.sharding or ShardingSpec(shards=shards)
        self.policy = SupervisionPolicy.from_spec(spec_obj)
        enabled = (
            spec_obj.checkpoint
            if spec_obj.checkpoint is not None
            else shard_checkpoint_enabled()
        )
        self.checkpoint: Optional[ShardCheckpoint] = None
        if enabled:
            self.checkpoint = ShardCheckpoint(
                self.spec,
                seed,
                shards,
                window_ns,
                every=spec_obj.checkpoint_every,
            )
        #: every fully routed round, in barrier order — the replay
        #: source for worker restarts (kept in memory even with disk
        #: checkpointing off, so restarts never depend on I/O)
        self.log: List[Any] = []
        self.resumed_rounds = 0
        self.restarts = 0
        self.failures: List[ShardFailure] = []
        self.routed = 0
        self.live_rounds = 0
        self.procs: Dict[int, multiprocessing.Process] = {}
        self.conns: Dict[int, Any] = {}
        self.incarnations: Dict[int, int] = {s: 0 for s in range(shards)}
        self.results: List[Optional[Dict[str, Any]]] = [None] * shards
        self.extras: List[Optional[Dict[str, Any]]] = [None] * shards

    # --- lifecycle --------------------------------------------------------

    def run(self):
        from repro.runner.resilience import resume_enabled
        from repro.shard.merge import merge_shard_results

        schedule = barrier_schedule(
            self.window_ns,
            self.scenario.warmup_ns,
            self.scenario.warmup_ns + self.scenario.duration_ns,
        )
        if self.checkpoint is not None and resume_enabled():
            self.log = self.checkpoint.load(schedule)
            self.resumed_rounds = len(self.log)
        try:
            for shard_id in range(self.shards):
                self._spawn(shard_id)
            for barrier in schedule[len(self.log) :]:
                inboxes = self._collect_sync(barrier)
                # journal BEFORE the acks: once a worker consumes the
                # round, any replay of that worker must include it
                self.log.append((barrier, inboxes))
                if self.checkpoint is not None:
                    self.checkpoint.record_round(barrier, inboxes)
                self._send_acks(barrier, inboxes)
                self.live_rounds += 1
                if (
                    _TEST_ABORT_AFTER_ROUNDS is not None
                    and self.live_rounds >= _TEST_ABORT_AFTER_ROUNDS
                ):
                    raise KeyboardInterrupt(
                        f"test abort after {self.live_rounds} rounds"
                    )
            self._collect_done()
            merged = merge_shard_results(
                self.scenario, self.seed, self.results, self.extras, self.plan
            )
            merged.shard_report = self._report("sharded")
            self._publish_stats()
            if self.checkpoint is not None:
                self.checkpoint.discard()
            return merged
        finally:
            if self.checkpoint is not None:
                self.checkpoint.flush()
            self._teardown()

    def _spawn(self, shard_id: int) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        incarnation = self.incarnations[shard_id]
        name = f"repro-shard-{shard_id}"
        if incarnation:
            name += f"-r{incarnation}"
        proc = multiprocessing.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                self.spec,
                self.seed,
                self.plan,
                shard_id,
                self.window_ns,
                replay_slice(self.log, shard_id),
                incarnation,
            ),
            name=name,
        )
        proc.start()
        child_conn.close()
        self.procs[shard_id] = proc
        self.conns[shard_id] = parent_conn

    def _teardown(self) -> None:
        for proc in self.procs.values():
            if proc.is_alive():
                proc.terminate()
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
        for proc in self.procs.values():
            proc.join(timeout=10)
            if proc.is_alive():
                proc.kill()
                proc.join()

    # --- supervision ------------------------------------------------------

    def _deadline(self) -> Optional[float]:
        if self.policy.stall_timeout_s is None:
            return None
        return time.monotonic() + self.policy.stall_timeout_s

    def _lose_worker(self, shard_id: int, kind: str, detail: str) -> None:
        """Handle one lost worker: restart, degrade or abort.

        Raises (:class:`_DegradeToSerial` / :class:`ShardRunError`)
        when the ladder runs past restarting; otherwise the shard is
        respawned with the journal as its replay prefix and the caller
        simply keeps waiting for it.
        """
        proc = self.procs[shard_id]
        exitcode = proc.exitcode
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():
                proc.kill()
                proc.join()
        try:
            self.conns[shard_id].close()
        except OSError:
            pass
        barrier_ns = self.log[-1][0] if self.log else None
        if self.restarts < self.policy.max_restarts:
            failure = ShardFailure(
                shard_id, kind, "restart", barrier_ns, exitcode, detail
            )
            self.failures.append(failure)
            self.restarts += 1
            self.incarnations[shard_id] += 1
            self._spawn(shard_id)
            return
        action = "degrade" if self.policy.degrade else "abort"
        failure = ShardFailure(
            shard_id, kind, action, barrier_ns, exitcode, detail
        )
        self.failures.append(failure)
        if action == "degrade":
            raise _DegradeToSerial(failure)
        raise ShardRunError(failure)

    def _check_liveness(
        self, missing: List[int], deadline: Optional[float]
    ) -> Optional[float]:
        """No pipe traffic this poll: sweep for corpses and stalls."""
        lost = False
        for shard_id in list(missing):
            proc = self.procs[shard_id]
            if not proc.is_alive():
                self._lose_worker(
                    shard_id,
                    "death",
                    f"worker exited silently (exit code {proc.exitcode})",
                )
                lost = True
        if lost:
            return self._deadline()
        if deadline is not None and time.monotonic() > deadline:
            for shard_id in list(missing):
                self._lose_worker(
                    shard_id,
                    "stall",
                    f"no barrier message for {self.policy.stall_timeout_s}s",
                )
            return self._deadline()
        return deadline

    def _raise_worker_error(self, shard_id: int, message) -> None:
        """An application error inside a worker is not a supervision
        fault: the build is deterministic, so a restart would only
        reproduce it.  Re-raise with the worker's traceback."""
        from repro.invariants import InvariantViolation

        _, exc, detail = message
        if isinstance(exc, InvariantViolation):
            raise exc
        raise RuntimeError(
            f"shard {shard_id} worker failed:\n{detail}"
        ) from exc

    # --- the routing rounds -----------------------------------------------

    def _collect_sync(self, barrier: int) -> List[List[BoundaryMessage]]:
        """One routing round: an outbox from every shard, supervised."""
        got: Dict[int, List[BoundaryMessage]] = {}
        deadline = self._deadline()
        while len(got) < self.shards:
            missing = [s for s in range(self.shards) if s not in got]
            conn_map = {self.conns[s]: s for s in missing}
            ready = multiprocessing.connection.wait(
                list(conn_map), timeout=self.policy.poll_s
            )
            if not ready:
                deadline = self._check_liveness(missing, deadline)
                continue
            for conn in ready:
                shard_id = conn_map[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as exc:
                    self._lose_worker(
                        shard_id,
                        "death",
                        f"pipe closed mid-round "
                        f"(exit code {self.procs[shard_id].exitcode}, "
                        f"{exc!r})",
                    )
                    deadline = self._deadline()
                    continue
                kind = message[0]
                if kind == "error":
                    self._raise_worker_error(shard_id, message)
                if kind != "sync" or message[1] != barrier:
                    got_at = message[1] if len(message) > 1 else "?"
                    self._lose_worker(
                        shard_id,
                        "protocol",
                        f"expected sync @ {barrier}, "
                        f"got {kind!r} @ {got_at}",
                    )
                    deadline = self._deadline()
                    continue
                got[shard_id] = message[2]
                deadline = self._deadline()
        inboxes: List[List[BoundaryMessage]] = [
            [] for _ in range(self.shards)
        ]
        # arrival order across shards is irrelevant: every worker sorts
        # its inbox by (arrival, channel, seq) before injecting
        for shard_id in range(self.shards):
            for boundary_message in got[shard_id]:
                inboxes[boundary_message[0]].append(boundary_message)
                self.routed += 1
        return inboxes

    def _send_acks(
        self, barrier: int, inboxes: List[List[BoundaryMessage]]
    ) -> None:
        for shard_id in range(self.shards):
            try:
                self.conns[shard_id].send(
                    ("sync", barrier, inboxes[shard_id])
                )
            except (BrokenPipeError, OSError) as exc:
                # the round is already journalled, so the respawn
                # replays through it and needs no ack
                self._lose_worker(
                    shard_id, "death", f"pipe broke at ack: {exc!r}"
                )

    def _collect_done(self) -> None:
        deadline = self._deadline()
        while any(result is None for result in self.results):
            missing = [
                s for s in range(self.shards) if self.results[s] is None
            ]
            conn_map = {self.conns[s]: s for s in missing}
            ready = multiprocessing.connection.wait(
                list(conn_map), timeout=self.policy.poll_s
            )
            if not ready:
                deadline = self._check_liveness(missing, deadline)
                continue
            for conn in ready:
                shard_id = conn_map[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as exc:
                    self._lose_worker(
                        shard_id,
                        "death",
                        f"pipe closed awaiting result "
                        f"(exit code {self.procs[shard_id].exitcode}, "
                        f"{exc!r})",
                    )
                    deadline = self._deadline()
                    continue
                kind = message[0]
                if kind == "error":
                    self._raise_worker_error(shard_id, message)
                if kind != "done":
                    got_at = message[1] if len(message) > 1 else "?"
                    self._lose_worker(
                        shard_id,
                        "protocol",
                        f"expected done, got {kind!r} @ {got_at}",
                    )
                    deadline = self._deadline()
                    continue
                self.results[shard_id] = message[1]
                self.extras[shard_id] = message[2]
                deadline = self._deadline()

    # --- reporting --------------------------------------------------------

    def _report(self, mode: str) -> Dict[str, Any]:
        """The run's resilience record; empty when nothing happened, so
        an undisturbed sharded result stays bit-identical to serial."""
        if not (self.failures or self.restarts or self.resumed_rounds):
            return {}
        return {
            "mode": mode,
            "shards": self.shards,
            "restarts": self.restarts,
            "resumed_barriers": self.resumed_rounds,
            "failures": [failure.to_json() for failure in self.failures],
        }

    def _publish_stats(self, degraded: bool = False) -> None:
        global LAST_STATS
        if degraded:
            wall: List[float] = []
            stall: List[float] = []
            events: List[int] = []
        else:
            wall = [extra["wall_s"] for extra in self.extras]
            stall = [extra["sync"]["stall_s"] for extra in self.extras]
            events = [extra["events"] for extra in self.extras]
        LAST_STATS = {
            "shards": self.shards,
            "window_ns": self.window_ns,
            "lookahead_ns": self.plan.lookahead_ns,
            "channels": len(self.plan.channels),
            "barriers": self.live_rounds,
            "messages": self.routed,
            "wall_s": wall,
            "stall_s": stall,
            "events": events,
            "events_per_sec": [
                (n / w) if w > 0 else 0.0 for n, w in zip(events, wall)
            ],
            "stall_fraction": (
                sum(stall) / sum(wall) if sum(wall) > 0 else 0.0
            ),
            "checkpoint_s": (
                self.checkpoint.checkpoint_s
                if self.checkpoint is not None
                else 0.0
            ),
            "restarts": self.restarts,
            "resumed_barriers": self.resumed_rounds,
            "degraded": degraded,
        }


def run_scenario_sharded(scenario, seed: int, shards: int):
    """Run one (scenario, seed) across ``shards`` worker processes.

    Returns the merged :class:`~repro.runner.results.RunResult`, or
    ``None`` when the partition offers no positive lookahead (the
    caller falls back to serial execution).  A fleet the supervision
    policy cannot save degrades to one serial re-execution — same
    answer, only slower — unless the policy forbids it, in which case
    a :class:`~repro.shard.supervise.ShardRunError` is raised.
    """
    plan = _plan_for(scenario, seed, shards)
    if plan.lookahead_ns <= 0 or not plan.channels:
        return None
    window = plan.lookahead_ns
    if scenario.sharding is not None and scenario.sharding.window_ns is not None:
        # the override may only shrink the window: anything larger
        # than the lookahead would let a frame arrive in the past
        window = min(scenario.sharding.window_ns, plan.lookahead_ns)

    supervisor = ShardSupervisor(scenario, seed, shards, plan, window)
    try:
        return supervisor.run()
    except _DegradeToSerial:
        return _run_serial_degraded(scenario, seed, supervisor)


def _run_serial_degraded(scenario, seed: int, supervisor: ShardSupervisor):
    """Bottom rung of the ladder: serial re-execution of the scenario.

    Sharded == serial bit-for-bit (DESIGN.md §14), so the answer is the
    one the fleet would have produced — the only traces of the ordeal
    are the ``shard_report`` and the ``degraded`` flag in the bench
    stats.
    """
    from repro.runner.scenario import run_scenario_inline
    from repro.telemetry import Telemetry

    telemetry = Telemetry.from_spec(scenario.telemetry, seed=seed)
    try:
        # an explicit telemetry pins run_scenario_inline to its serial
        # path (no sharded re-dispatch, which would just fail again)
        result, _net = run_scenario_inline(scenario, seed, telemetry=telemetry)
    finally:
        telemetry.close()
    result.shard_report = supervisor._report("serial-degraded")
    supervisor._publish_stats(degraded=True)
    return result
