"""Parent-side orchestration of one sharded run.

:func:`maybe_run_sharded` is the single dispatch point, called by
:func:`repro.runner.scenario.run_scenario_inline` (and the cell entry
point) before any serial work starts.  It answers ``None`` whenever
the run should stay serial — non-fabric topology, shard count 1, a
daemonic process that cannot spawn children, or a fabric whose
boundary links give no positive lookahead — so callers need no
topology knowledge of their own.

The sync topology is a star: every worker exchanges messages only
with this parent over its own pipe.  Workers all derive the identical
barrier schedule from (window, warmup, horizon), so each routing round
is lockstep: receive one ``("sync", barrier, outbox)`` from every
still-running worker, check the barriers agree, route each boundary
message to its destination shard's inbox, and answer every worker
with ``("sync", barrier, inbox)``.  An empty inbox is still sent — it
is the null message that grants the receiving shard permission to
advance another window.  After the final barrier each worker sends
``("done", result_json, extras)`` and the parent merges the parts
(:mod:`repro.shard.merge`).
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Dict, List, Optional

from repro.shard.partition import partition_fabric
from repro.shard.spec import SHARDS_ENV
from repro.shard.worker import shard_worker_main

#: statistics of the most recent sharded run in this process, for
#: ``repro bench`` (None until a sharded run completes)
LAST_STATS: Optional[Dict[str, Any]] = None


def effective_shards(scenario) -> int:
    """The shard count this scenario should run with (1 = serial)."""
    if scenario.sharding is not None:
        return scenario.sharding.shards
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"{SHARDS_ENV} must be an integer shard count, got {raw!r}"
        ) from None


def can_shard(scenario) -> bool:
    """Whether sharded execution is even an option for this scenario.

    Only ``fabric`` topologies have the pod structure the partitioner
    needs, and a daemonic process (a process-pool worker) may not
    spawn children — those runs silently stay serial.
    """
    if scenario.topology != "fabric":
        return False
    return not multiprocessing.current_process().daemon


def maybe_run_sharded(scenario, seed: int):
    """Run sharded if requested and possible; ``None`` means run serial."""
    if not can_shard(scenario):
        return None
    shards = effective_shards(scenario)
    if shards <= 1:
        return None
    return run_scenario_sharded(scenario, seed, shards)


def _plan_for(scenario, seed: int, shards: int):
    """Build the fabric once, parent-side, to compute the shard plan."""
    from repro.fabric import build_fabric

    kwargs = dict(scenario.topology_kwargs)
    fabric = build_fabric(spec=kwargs.pop("spec", None), seed=seed, **kwargs)
    return partition_fabric(fabric, shards)


def run_scenario_sharded(scenario, seed: int, shards: int):
    """Run one (scenario, seed) across ``shards`` worker processes.

    Returns the merged :class:`~repro.runner.results.RunResult`, or
    ``None`` when the partition offers no positive lookahead (the
    caller falls back to serial execution).
    """
    from repro.invariants import InvariantViolation
    from repro.shard.merge import merge_shard_results

    plan = _plan_for(scenario, seed, shards)
    if plan.lookahead_ns <= 0 or not plan.channels:
        return None
    window = plan.lookahead_ns
    if scenario.sharding is not None and scenario.sharding.window_ns is not None:
        # the override may only shrink the window: anything larger
        # than the lookahead would let a frame arrive in the past
        window = min(scenario.sharding.window_ns, plan.lookahead_ns)

    spec = scenario.spec()
    procs: List[multiprocessing.Process] = []
    conns = []
    try:
        for shard_id in range(shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            proc = multiprocessing.Process(
                target=shard_worker_main,
                args=(child_conn, spec, seed, plan, shard_id, window),
                name=f"repro-shard-{shard_id}",
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)

        results: List[Optional[Dict[str, Any]]] = [None] * shards
        extras: List[Optional[Dict[str, Any]]] = [None] * shards
        pending = set(range(shards))
        sync_rounds = 0
        routed = 0
        while pending:
            inboxes: List[list] = [[] for _ in range(shards)]
            syncing = []
            # drain workers as they arrive (connection.wait), not in
            # shard order — a blocking recv on shard 0 while shard 3 is
            # already waiting would add its latency to every round
            waiting = {conns[shard_id]: shard_id for shard_id in pending}
            while waiting:
                for conn in multiprocessing.connection.wait(list(waiting)):
                    shard_id = waiting.pop(conn)
                    try:
                        message = conn.recv()
                    except EOFError:
                        raise RuntimeError(
                            f"shard {shard_id} worker died without reporting "
                            f"(exit code {procs[shard_id].exitcode})"
                        ) from None
                    kind = message[0]
                    if kind == "done":
                        results[shard_id] = message[1]
                        extras[shard_id] = message[2]
                        pending.discard(shard_id)
                    elif kind == "error":
                        _, exc, detail = message
                        if isinstance(exc, InvariantViolation):
                            raise exc
                        raise RuntimeError(
                            f"shard {shard_id} worker failed:\n{detail}"
                        ) from exc
                    elif kind == "sync":
                        syncing.append((shard_id, message[1]))
                        for boundary_message in message[2]:
                            inboxes[boundary_message[0]].append(
                                boundary_message
                            )
                            routed += 1
                    else:
                        raise RuntimeError(
                            f"shard {shard_id}: unknown message kind {kind!r}"
                        )
            if syncing:
                barriers = {barrier for _, barrier in syncing}
                if len(barriers) != 1 or len(syncing) != len(pending):
                    raise RuntimeError(
                        f"shard barrier desync: {sorted(syncing)} "
                        f"with {sorted(pending)} pending"
                    )
                barrier = barriers.pop()
                sync_rounds += 1
                for shard_id, _ in syncing:
                    conns[shard_id].send(("sync", barrier, inboxes[shard_id]))

        merged = merge_shard_results(scenario, seed, results, extras, plan)
        wall = [extra["wall_s"] for extra in extras]
        stall = [extra["sync"]["stall_s"] for extra in extras]
        events = [extra["events"] for extra in extras]
        global LAST_STATS
        LAST_STATS = {
            "shards": shards,
            "window_ns": window,
            "lookahead_ns": plan.lookahead_ns,
            "channels": len(plan.channels),
            "barriers": sync_rounds,
            "messages": routed,
            "wall_s": wall,
            "stall_s": stall,
            "events": events,
            "events_per_sec": [
                (n / w) if w > 0 else 0.0 for n, w in zip(events, wall)
            ],
            "stall_fraction": (
                sum(stall) / sum(wall) if sum(wall) > 0 else 0.0
            ),
        }
        return merged
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join()
