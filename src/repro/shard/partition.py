"""Pod-aware partitioning of a built fabric into shards.

The partition is a pure function of ``(FabricSpec, shards)``:

* pod *p* (its edge and aggregation switches, plus every host and NIC
  under them) goes to shard ``p % shards``;
* core switch *c* goes to shard ``c % shards``.

Because a fabric's only inter-pod cables run agg↔core, every
cross-shard link is a pod↔core link, and its propagation delay is a
*guaranteed* lower bound on how long a message takes to cross the
boundary — the conservative lookahead the sync protocol in
:mod:`repro.shard.runner` is built on.

Every worker builds the *full* network (construction is deterministic,
so device ids, ECMP salts and cc timer seeds match the serial build
bit-for-bit) and the plan only decides which devices each shard
*drives*; remote devices stay quiescent replicas that exist so local
routing tables, port indices and flow ids line up with serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.fabric.build import Fabric


@dataclass(frozen=True)
class BoundaryChannel:
    """One direction of one cross-shard cable.

    ``channel_id`` is the position in the deterministic enumeration
    order (switches in creation order, then NICs in host creation
    order; ports by index) — identical in every worker, so a packet
    tagged with ``(channel_id, seq)`` is globally ordered without any
    coordination.
    """

    channel_id: int
    tx_shard: int
    rx_shard: int
    tx_dev: str
    tx_port: int
    rx_dev: str
    rx_port: int
    prop_delay_ns: int


@dataclass(frozen=True)
class ShardPlan:
    """The partition: device ownership plus the boundary cut."""

    shards: int
    #: device name -> owning shard; covers switches, hosts and NICs
    owner: Dict[str, int] = field(default_factory=dict)
    channels: Tuple[BoundaryChannel, ...] = ()
    #: min propagation delay over all boundary channels — the
    #: conservative sync window; 0 when there is no boundary
    lookahead_ns: int = 0

    def local_names(self, shard: int) -> Set[str]:
        return {name for name, s in self.owner.items() if s == shard}

    def channels_from(self, shard: int) -> List[BoundaryChannel]:
        return [c for c in self.channels if c.tx_shard == shard]

    def channels_to(self, shard: int) -> List[BoundaryChannel]:
        return [c for c in self.channels if c.rx_shard == shard]


def partition_fabric(fabric: Fabric, shards: int) -> ShardPlan:
    """Partition ``fabric`` into ``shards`` pod-aligned shards.

    More shards than pods is allowed (the surplus shards own only
    their round-robin share of core switches, or nothing at all);
    ``shards=1`` degenerates to everything-local with no channels.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    spec = fabric.spec
    owner: Dict[str, int] = {}
    for e, edge in enumerate(fabric.edges):
        owner[edge.name] = (e // spec.edges_per_pod) % shards
    for a, agg in enumerate(fabric.aggs):
        owner[agg.name] = (a // spec.aggs_per_pod) % shards
    for c, core in enumerate(fabric.cores):
        owner[core.name] = c % shards
    for t, rack in enumerate(fabric.hosts):
        shard = owner[fabric.edges[t].name]
        for host in rack:
            owner[host.name] = shard
            owner[host.nic.name] = shard

    net = fabric.net
    channels: List[BoundaryChannel] = []
    channel_id = 0
    devices = [*net.switches, *(host.nic for host in net.hosts)]
    for dev in devices:
        for port in dev.ports:
            peer = port.peer
            if peer is None:
                continue
            tx_shard = owner[dev.name]
            rx_shard = owner[peer.owner.name]
            if tx_shard == rx_shard:
                continue
            channels.append(
                BoundaryChannel(
                    channel_id=channel_id,
                    tx_shard=tx_shard,
                    rx_shard=rx_shard,
                    tx_dev=dev.name,
                    tx_port=port.index,
                    rx_dev=peer.owner.name,
                    rx_port=peer.index,
                    prop_delay_ns=port.prop_delay_ns,
                )
            )
            channel_id += 1
    lookahead = min((c.prop_delay_ns for c in channels), default=0)
    return ShardPlan(
        shards=shards,
        owner=owner,
        channels=tuple(channels),
        lookahead_ns=lookahead,
    )
