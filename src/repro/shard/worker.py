"""The shard worker process: build everything, drive one shard.

:func:`shard_worker_main` is the target of every worker
``multiprocessing.Process``.  It rebuilds the scenario from its JSON
spec (the same transport the process-pool executor uses), runs it
through :func:`repro.runner.scenario.run_scenario_inline` with a
:class:`~repro.shard.boundary.ShardContext`, and ships the partial
:class:`~repro.runner.results.RunResult` back over the sync pipe —
plus the *extras* the merge step needs but no RunResult carries:

* ``boundary`` — per-channel tx/lost/rx byte counters, for the
  cross-shard half of the link byte-conservation invariant;
* ``cnp`` — this shard's partial CNP counters, for the fleet-wide
  conservation check that no single shard can evaluate;
* ``recovery`` — raw :class:`~repro.faults.recovery.RecoveryTracker`
  state (the gauges are folded exactly once, at merge);
* ``bytes_delivered`` — per-flow delivered bytes, to patch the
  receiver-side ``size_bytes`` of greedy ``flow_stats`` rows;
* ``sync`` / ``events`` / ``wall_s`` — sync-stall and throughput
  statistics for ``repro bench``.

Errors (including strict-mode :class:`InvariantViolation`) are pickled
back as ``("error", exc, traceback_text)`` so the parent can re-raise
with full context instead of diagnosing a dead pipe.
"""

from __future__ import annotations

import dataclasses
import time
import traceback


def shard_worker_main(
    conn, spec, seed, plan, shard_id, window_ns, replay=(), incarnation=0
) -> None:
    """Run one shard to completion and report over ``conn``.

    ``replay`` is the journalled (barrier, inbox) prefix a respawned or
    resumed incarnation fast-forwards through before its first live
    exchange; ``incarnation`` counts respawns (the chaos hook only
    fires on incarnation 0, so an injected fault is not re-injected
    into its own recovery).
    """
    try:
        from repro.runner.scenario import Scenario, run_scenario_inline
        from repro.shard.boundary import ShardContext
        from repro.telemetry import Telemetry

        scenario = Scenario.from_spec(spec)
        tspec = scenario.telemetry
        if tspec is not None and tspec.sink == "jsonl" and tspec.path:
            # every worker streams to its own file; a shared path would
            # interleave half-written JSON lines
            tspec = dataclasses.replace(
                tspec, path=f"{tspec.path}.shard{shard_id}"
            )
        telemetry = Telemetry.from_spec(tspec, seed=seed)
        ctx = ShardContext(
            plan,
            shard_id,
            window_ns,
            conn,
            replay=replay,
            incarnation=incarnation,
        )
        started = time.perf_counter()
        result, net = run_scenario_inline(
            scenario, seed, telemetry=telemetry, _shard=ctx
        )
        wall_s = time.perf_counter() - started
        telemetry.close()
        nics = [host.nic for host in net.hosts]
        extras = {
            "boundary": ctx.boundary_accounting(),
            "sync": ctx.sync_stats(),
            "wall_s": wall_s,
            "events": net.engine.events_processed,
            "bytes_delivered": {
                flow.flow_id: flow.bytes_delivered for flow in net.flows
            },
            "cnp": {
                "sent": sum(nic.cnps_sent for nic in nics)
                + sum(sw.cnps_sent for sw in net.switches),
                "received": sum(nic.cnps_received for nic in nics),
                "dropped": sum(nic.cnps_dropped for nic in nics),
            },
            "recovery": None,
        }
        runtime = ctx.fault_runtime
        if runtime is not None and runtime.recovery is not None:
            extras["recovery"] = runtime.recovery.export_state()
        conn.send(("done", result.to_json(), extras))
    except BaseException as exc:
        detail = traceback.format_exc()
        try:
            conn.send(("error", exc, detail))
        except Exception:
            # the exception itself would not pickle; ship its text
            conn.send(("error", RuntimeError(repr(exc)), detail))
    finally:
        conn.close()
