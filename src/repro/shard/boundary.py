"""The shard boundary: packet codec, port cut and the sync loop.

A shard worker builds the full network, then :meth:`ShardContext.bind`
cuts the cross-shard cables: every *local* transmit port of a boundary
channel gets a ``remote_sink`` (see :meth:`repro.sim.link.Port._tx_done`)
that diverts the frame — after its normal serialization and byte
accounting — into this shard's outbox instead of scheduling delivery
on the local engine.  Every *local* receive port is registered so
frames arriving from other shards can be injected as ordinary
``device.receive`` events at their true arrival time.

Time sync is conservative and barrier-synchronous.  All boundary
channels guarantee a propagation delay of at least the plan's
lookahead ``L``, so a frame serialized at time ``s`` cannot arrive
before ``s + L``.  Workers therefore run in lockstep windows of length
``window ≤ L``: run the local event loop to barrier ``B``, ship every
frame generated in ``(B - window, B]`` (each tagged with its absolute
arrival time), receive the frames other shards generated, inject them
— all arrivals are strictly after ``B``, so no shard ever needs to
roll back.  The exchange itself doubles as the null-message time
grant: an empty message list still tells every neighbor this shard has
reached ``B``.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.shard.partition import ShardPlan
from repro.sim.packet import Packet

#: wire form of one boundary frame: the Packet scalar fields, in
#: constructor order (``ingress_index`` is per-hop scratch, reset on
#: decode)
PacketTuple = Tuple[int, int, int, int, int, int, int, int, int, int, bool, int]

#: one routed boundary message:
#: ``(rx_shard, channel_id, seq, arrival_ns, packet)``
BoundaryMessage = Tuple[int, int, int, int, PacketTuple]


def encode_packet(pkt: Packet) -> PacketTuple:
    """Flatten a packet to a picklable tuple of scalars."""
    return (
        pkt.kind,
        pkt.flow_id,
        pkt.src,
        pkt.dst,
        pkt.size,
        pkt.seq,
        pkt.priority,
        pkt.ecn,
        pkt.msg_id,
        pkt.pause_priority,
        pkt.pause,
        pkt.qcn_fb,
    )


def decode_packet(fields: PacketTuple) -> Packet:
    """Rebuild a packet on the receiving shard."""
    return Packet(*fields)


#: fault-injection hook for the supervision tests:
#: ``"<kill|stall>:<shard_id>:<live-ordinal>[:<seconds>]"`` makes that
#: shard's *first incarnation* kill itself (SIGKILL, no cleanup) or
#: sleep ``seconds`` right before its Nth live barrier exchange.
#: Respawned incarnations ignore it, so a supervised run converges.
SHARD_CHAOS_ENV = "REPRO_SHARD_CHAOS"


def _parse_chaos(raw: str) -> Optional[Tuple[str, int, int, float]]:
    raw = raw.strip()
    if not raw:
        return None
    parts = raw.split(":")
    if len(parts) not in (3, 4) or parts[0] not in ("kill", "stall"):
        raise ValueError(
            f"{SHARD_CHAOS_ENV} must be 'kill|stall:shard:ordinal[:seconds]',"
            f" got {raw!r}"
        )
    kind, shard_id, ordinal = parts[0], int(parts[1]), int(parts[2])
    seconds = float(parts[3]) if len(parts) == 4 else 60.0
    return (kind, shard_id, ordinal, seconds)


def barrier_schedule(window_ns: int, warmup_ns: int, horizon_ns: int) -> List[int]:
    """Ascending barrier times: every window multiple below the horizon,
    the warmup boundary (where the pre/post counter snapshot is taken),
    and the horizon itself.  Consecutive gaps never exceed ``window_ns``,
    which is what makes every cross-shard arrival land strictly after
    the barrier it is exchanged at."""
    if window_ns <= 0:
        raise ValueError(f"window_ns must be positive, got {window_ns}")
    barriers = set(range(window_ns, horizon_ns, window_ns))
    if 0 < warmup_ns < horizon_ns:
        barriers.add(warmup_ns)
    barriers.add(horizon_ns)
    return sorted(barriers)


class ShardContext:
    """Per-worker runtime state: the cut ports, outbox and sync loop."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        window_ns: int,
        conn,
        replay: Sequence[Tuple[int, List[BoundaryMessage]]] = (),
        incarnation: int = 0,
    ):
        if not 0 <= shard_id < plan.shards:
            raise ValueError(f"shard_id {shard_id} outside [0, {plan.shards})")
        if window_ns > plan.lookahead_ns:
            raise ValueError(
                f"window {window_ns}ns exceeds the guaranteed lookahead "
                f"{plan.lookahead_ns}ns; causality would break"
            )
        self.plan = plan
        self.shard_id = shard_id
        self.window_ns = window_ns
        self.conn = conn
        #: journalled (barrier, inbox) rounds to re-execute without the
        #: pipe — how a respawned or resumed worker fast-forwards to
        #: where the original incarnation stood (DESIGN.md §15)
        self.replay = list(replay)
        self.incarnation = incarnation
        self.local_names = plan.local_names(shard_id)
        self.net = None
        #: set by run_scenario_inline so the worker can export raw
        #: recovery-tracker state after the run
        self.fault_runtime = None
        #: messages generated since the last barrier
        self._outbox: List[BoundaryMessage] = []
        #: per-channel send sequence (deterministic per-channel order)
        self._seq: Dict[int, int] = {}
        #: channel_id -> local receive Port
        self._rx_ports: Dict[int, object] = {}
        #: channel_id -> propagation delay, to backdate injected events
        self._rx_props: Dict[int, int] = {}
        #: channel_id -> (tx device name, tx port index): the sender's
        #: structural tie-break, replicated on injection
        self._rx_tbs: Dict[int, Tuple[str, int]] = {}
        #: channel_id -> local transmit Port (boundary accounting)
        self._tx_ports: Dict[int, object] = {}
        # sync statistics
        self.barriers = 0
        self.replayed_barriers = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.stall_s = 0.0

    # --- wiring -----------------------------------------------------------

    def bind(self, net) -> None:
        """Cut the boundary ports of the fully built ``net``."""
        self.net = net
        devices = {d.name: d for d in net.switches}
        devices.update((h.nic.name, h.nic) for h in net.hosts)
        for channel in self.plan.channels:
            if channel.tx_shard == self.shard_id:
                port = devices[channel.tx_dev].ports[channel.tx_port]
                port.remote_sink = self._make_sink(channel)
                self._tx_ports[channel.channel_id] = port
            if channel.rx_shard == self.shard_id:
                self._rx_ports[channel.channel_id] = (
                    devices[channel.rx_dev].ports[channel.rx_port]
                )
                self._rx_props[channel.channel_id] = channel.prop_delay_ns
                self._rx_tbs[channel.channel_id] = (
                    channel.tx_dev, channel.tx_port,
                )

    def _make_sink(self, channel) -> Callable[[Packet], None]:
        engine = self.net.engine
        rx_shard = channel.rx_shard
        channel_id = channel.channel_id
        prop = channel.prop_delay_ns
        outbox = self._outbox
        seqs = self._seq

        def sink(pkt: Packet) -> None:
            seq = seqs.get(channel_id, 0)
            seqs[channel_id] = seq + 1
            outbox.append(
                (rx_shard, channel_id, seq, engine.now + prop, encode_packet(pkt))
            )

        return sink

    # --- message exchange -------------------------------------------------

    def _inject(self, incoming: List[BoundaryMessage]) -> None:
        """Schedule received frames at their true arrival times.

        Sorted by ``(arrival, channel, seq)`` so insertion order — and
        therefore same-timestamp tie-breaking in the event heap — is a
        pure function of the message set, not of pipe delivery order.

        Each injection reproduces the full serial heap key of the
        arrival, so same-nanosecond collisions at the receiving device
        order exactly as the serial run orders them:

        * ``sched_time`` is backdated to the instant the remote engine
          scheduled the event (arrival − propagation, the end of
          serialization on the far side) — otherwise a local event
          scheduled after the remote send but before the barrier would
          jump ahead of the arrival;
        * ``tb`` is the sending ``(device, port)``, the same structural
          tie-break the serial ``Port._tx_done`` attaches — two frames
          serialized at the same instant in *different* shards order by
          it, since neither worker can see the other's sequence counter.
        """
        engine = self.net.engine
        for _, channel_id, _, arrival_ns, fields in sorted(
            incoming, key=lambda m: (m[3], m[1], m[2])
        ):
            rx_port = self._rx_ports[channel_id]
            engine.schedule_at(
                arrival_ns,
                rx_port.owner.receive,
                decode_packet(fields),
                rx_port,
                sched_time=arrival_ns - self._rx_props[channel_id],
                tb=self._rx_tbs[channel_id],
            )

    def _exchange(self, barrier_ns: int) -> None:
        # drain in place: the port sinks hold a reference to this exact
        # list, so rebinding (rather than clearing) would orphan it
        outbox = list(self._outbox)
        self._outbox.clear()
        started = time.perf_counter()
        self.conn.send(("sync", barrier_ns, outbox))
        kind, ack_barrier, incoming = self.conn.recv()
        self.stall_s += time.perf_counter() - started
        if kind != "sync" or ack_barrier != barrier_ns:
            raise RuntimeError(
                f"shard {self.shard_id}: sync protocol desync at barrier "
                f"{barrier_ns} (got {kind!r} @ {ack_barrier})"
            )
        self._inject(incoming)
        self._account_round(barrier_ns, len(outbox), len(incoming))

    def _replay_round(self, barrier_ns: int, incoming: List[BoundaryMessage]) -> None:
        """Re-execute one journalled barrier round without the pipe.

        The local event loop already ran to the barrier, so the outbox
        holds exactly the frames the original incarnation shipped — the
        parent routed (and journalled) them long ago, so they are
        dropped, not re-sent.  Injecting the journalled inbox then puts
        the heap in the same state the live exchange produced, and the
        per-channel send sequence counters advanced as a side effect of
        regenerating the outbox, so the first live round continues the
        numbering seamlessly.
        """
        outbox = list(self._outbox)
        self._outbox.clear()
        self._inject(incoming)
        self.replayed_barriers += 1
        self._account_round(barrier_ns, len(outbox), len(incoming))

    def _account_round(self, barrier_ns: int, sent: int, recv: int) -> None:
        self.barriers += 1
        self.messages_sent += sent
        self.messages_received += recv
        tracer = self.net.tracer
        if tracer is not None:
            tracer.emit(
                barrier_ns,
                "shard.sync",
                f"shard{self.shard_id}",
                barrier=barrier_ns,
                sent=sent,
                recv=recv,
            )

    # --- fault injection (supervision tests only) -------------------------

    def _maybe_chaos(self, live_ordinal: int) -> None:
        chaos = _parse_chaos(os.environ.get(SHARD_CHAOS_ENV, ""))
        if chaos is None or self.incarnation != 0:
            return
        kind, shard_id, ordinal, seconds = chaos
        if shard_id != self.shard_id or ordinal != live_ordinal:
            return
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(seconds)

    # --- the run loop -----------------------------------------------------

    def run(
        self,
        warmup_ns: int,
        horizon_ns: int,
        on_warmup: Optional[Callable[[], None]] = None,
    ) -> None:
        """Drive the local event loop to the horizon in sync windows.

        Replaces the serial ``run_for(warmup); run_for(duration)``:
        identical local event order, plus a barrier exchange every
        window.  The first ``len(self.replay)`` barriers are journal
        replays (no pipe traffic); the rest are live exchanges.
        ``on_warmup`` fires once the loop reaches the warmup boundary
        (the serial pre/post snapshot point).
        """
        net = self.net
        live_ordinal = 0
        schedule = barrier_schedule(self.window_ns, warmup_ns, horizon_ns)
        for index, barrier in enumerate(schedule):
            net.run_until(barrier)
            if index < len(self.replay):
                logged_barrier, inbox = self.replay[index]
                if logged_barrier != barrier:
                    raise RuntimeError(
                        f"shard {self.shard_id}: replay log diverges from "
                        f"the barrier schedule at index {index} "
                        f"({logged_barrier} != {barrier})"
                    )
                self._replay_round(barrier, inbox)
            else:
                self._maybe_chaos(live_ordinal)
                self._exchange(barrier)
                live_ordinal += 1
            if barrier == warmup_ns and on_warmup is not None:
                on_warmup()

    # --- reporting --------------------------------------------------------

    def boundary_accounting(self) -> Dict[str, Dict[int, int]]:
        """This shard's half of the cross-boundary conservation check."""
        return {
            "tx_bytes": {
                cid: port.tx_bytes for cid, port in self._tx_ports.items()
            },
            "lost_bytes": {
                cid: port.lost_bytes for cid, port in self._tx_ports.items()
            },
            "rx_bytes": {
                cid: port.rx_bytes for cid, port in self._rx_ports.items()
            },
        }

    def sync_stats(self) -> Dict[str, float]:
        return {
            "barriers": self.barriers,
            "replayed_barriers": self.replayed_barriers,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "stall_s": self.stall_s,
        }
