"""Supervision vocabulary for sharded runs: failures, policy, errors.

The parent barrier loop (:mod:`repro.shard.runner`) watches its
workers instead of trusting them: a worker that dies mid-barrier
(``EOFError`` / ``BrokenPipeError`` / a silent nonzero exit) or stalls
past the heartbeat deadline becomes a structured :class:`ShardFailure`
rather than a hang or a bare ``RuntimeError``.  What happens next is
the **degradation ladder** decided by :class:`SupervisionPolicy`:

1. *restart* — respawn the shard and fast-forward it to the last
   completed barrier by replaying the parent's boundary-message log
   (:mod:`repro.shard.checkpoint`), while the surviving workers wait
   at the barrier;
2. *degrade* — once the restart budget is exhausted, tear the fleet
   down and re-execute the whole scenario serially (sharded == serial
   bit-for-bit, so the answer is unchanged — only slower);
3. *abort* — with degradation disabled, raise :class:`ShardRunError`
   carrying the failure record.

Every failure, whatever rung it landed on, is reported in the merged
result's ``shard_report`` so a survived fault is visible, not silent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: the failure taxonomy of the shard supervisor
FAILURE_KINDS = ("death", "stall", "protocol")

#: what the supervisor did about a failure
ACTIONS = ("restart", "degrade", "abort")


@dataclass(frozen=True)
class ShardFailure:
    """One supervised fault in a sharded run.

    ``barrier_ns`` is the last barrier the fleet had fully completed
    when the fault was handled — the point the shard was restarted
    from (``None`` when the fleet had not reached its first barrier).
    """

    shard_id: int
    kind: str  # one of FAILURE_KINDS
    action: str  # one of ACTIONS
    barrier_ns: Optional[int] = None
    exitcode: Optional[int] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"action must be one of {ACTIONS}, got {self.action!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        where = (
            "before the first barrier"
            if self.barrier_ns is None
            else f"after barrier {self.barrier_ns}ns"
        )
        return (
            f"shard {self.shard_id} {self.kind} {where}"
            f" (exit {self.exitcode}): {self.detail} -> {self.action}"
        )


class ShardRunError(RuntimeError):
    """A sharded run failed in a way the policy does not absorb.

    Raised *instead of hanging* whenever a worker dies, stalls or
    breaks protocol and neither a restart nor serial degradation is
    available.  ``failure`` carries the structured record.
    """

    def __init__(self, failure: ShardFailure):
        super().__init__(failure.describe())
        self.failure = failure


@dataclass(frozen=True)
class SupervisionPolicy:
    """How much failure one sharded run is allowed to absorb.

    ``max_restarts`` is the *fleet-wide* restart budget: every worker
    respawn — death or stall — consumes one.  ``degrade`` selects the
    bottom rung of the ladder (serial re-execution) once the budget is
    gone; with it off the run raises :class:`ShardRunError` instead.
    ``stall_timeout_s`` bounds how long the parent waits for a barrier
    message before declaring the silent workers stalled (``None``
    disables stall detection; death detection is always on).
    ``poll_s`` is the heartbeat granularity of the barrier wait loop.
    """

    max_restarts: int = 1
    degrade: bool = True
    stall_timeout_s: Optional[float] = None
    poll_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.stall_timeout_s is not None and self.stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive or None")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")

    @classmethod
    def from_spec(cls, spec) -> "SupervisionPolicy":
        """Policy for one run: the spec's knobs over the env defaults.

        A spec that leaves ``stall_timeout_s`` unset inherits the
        per-cell wall-clock budget (``REPRO_RUN_TIMEOUT`` /
        ``REPRO_SCALE``): a barrier round that outlives a whole cell's
        budget is certainly stuck.
        """
        stall = spec.stall_timeout_s
        if stall is None:
            from repro.runner.resilience import default_timeout_s

            stall = default_timeout_s()
        return cls(
            max_restarts=spec.max_restarts,
            degrade=spec.degrade,
            stall_timeout_s=stall,
        )
