"""Merging per-shard partial results into one serial-identical RunResult.

Every merge rule below is chosen so that — for any scenario whose
telemetry is metrics-only — the merged result is *bit-identical* to
the serial run of the same (scenario, seed):

* **counters sum.**  Each device is driven by exactly one shard and
  its replicas elsewhere stay quiescent (zero), so per-shard totals
  are a partition of the serial totals.  Integer partial sums are
  exact; float keys only ever combine one real value with literal
  zeros (``x + 0.0 == x``).
* **single-provider keys copy.**  ``fct_ns.<name>`` counters are
  recorded only by the shard driving the probe's source flow, so the
  merge takes the one value as-is — preserving the ``-1.0``
  "did not finish" sentinel a sum would corrupt.
* **replicated keys max.**  ``invariant.sweeps`` and ``fault.windows``
  are computed identically in every shard (engine-time driven / from
  the full plan); summing would multiply them by the shard count.
* **gauges max.**  Every gauge here is a peak over devices
  (``switch.peak_occupancy_bytes``); the max of per-shard maxes is the
  fleet max.
* **histograms add bin-wise.**  Only samplers feed histograms, and
  sharded sampler aggregates are per-shard — a documented divergence
  from the serial global aggregate (DESIGN.md §14); bin-wise addition
  is still the right total-preserving combination.
* **recovery gauges fold once.**  Workers export raw
  :class:`~repro.faults.recovery.RecoveryTracker` state; the merge
  sums the per-flow dicts (each flow accrues in exactly one shard, the
  rest contribute literal zeros) and calls
  :func:`~repro.faults.recovery.fold_recovery_gauges` exactly once —
  landing on the same floats as the serial fold.
* **flow_stats concat + sort + patch.**  Rows are emitted by the
  source-driving shard only; sorting by ``(flow_id, msg)`` reproduces
  the serial emission order, and a greedy row's receiver-side
  ``size_bytes`` is patched from the merged per-flow delivered bytes.

The merge also completes the two invariant checks no single shard can
evaluate: per-channel boundary byte conservation (from the workers'
tx/lost/rx counters) and fleet-wide CNP conservation (from summed
partial CNP counters).  In strict mode a failure raises
:class:`~repro.invariants.InvariantViolation`, exactly as the in-run
guard would.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.runner.results import RunResult
from repro.shard.partition import ShardPlan

#: metric counters computed identically in every shard (merge = max,
#: not sum): periodic sweep counts are engine-time driven, and the
#: fault-window count is derived from the full plan everywhere
_REPLICATED_COUNTERS = frozenset({"invariant.sweeps", "fault.windows"})

#: RunResult.counters prefixes recorded by exactly one shard
_SINGLE_PROVIDER_PREFIX = "fct_ns."


def _merge_counters(parts: List[Dict[str, float]], replicated=frozenset()):
    """Key-union sum, with single-provider and replicated exceptions."""
    merged: Dict[str, float] = {}
    for part in parts:
        for key, value in part.items():
            if key.startswith(_SINGLE_PROVIDER_PREFIX):
                merged[key] = value
            elif key in replicated:
                merged[key] = max(merged.get(key, value), value)
            elif key in merged:
                merged[key] += value
            else:
                merged[key] = value
    return merged


def _merge_histograms(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Any] = {}
    for part in parts:
        for name, data in part.items():
            base = merged.get(name)
            if base is None:
                merged[name] = {
                    "buckets": list(data["buckets"]),
                    "counts": list(data["counts"]),
                    "count": data["count"],
                    "total": data["total"],
                    "min": data["min"],
                    "max": data["max"],
                }
                continue
            if base["buckets"] != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: shard bucket layouts diverge"
                )
            base["counts"] = [
                a + b for a, b in zip(base["counts"], data["counts"])
            ]
            base["count"] += data["count"]
            base["total"] += data["total"]
            edges = [v for v in (base["min"], data["min"]) if v is not None]
            base["min"] = min(edges) if edges else None
            edges = [v for v in (base["max"], data["max"]) if v is not None]
            base["max"] = max(edges) if edges else None
    return merged


def _merge_metrics(
    snapshots: List[Dict[str, Any]],
    recovery_parts: List[Optional[Dict[str, Any]]],
    stall_fraction: float,
    shards: int,
) -> Dict[str, Any]:
    from repro.telemetry.metrics import MetricsRegistry

    merged = {
        "counters": _merge_counters(
            [snap.get("counters", {}) for snap in snapshots],
            replicated=_REPLICATED_COUNTERS,
        ),
        "gauges": {},
        "histograms": _merge_histograms(
            [snap.get("histograms", {}) for snap in snapshots]
        ),
    }
    for snap in snapshots:
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][name] = max(merged["gauges"].get(name, value), value)

    registry = MetricsRegistry.from_snapshot(merged)
    live_recovery = [part for part in recovery_parts if part]
    if live_recovery:
        from repro.faults.recovery import fold_recovery_gauges

        times: List[int] = []
        window: Dict[int, float] = {}
        expected: Dict[int, float] = {}
        for part in live_recovery:
            times.extend(part["recovery_times"])
            for fid, value in part["flow_window"].items():
                window[fid] = window.get(fid, 0.0) + value
            for fid, value in part["flow_expected"].items():
                expected[fid] = expected.get(fid, 0.0) + value
        fold_recovery_gauges(registry, times, window, expected)
    registry.gauge("shard.count").set(float(shards))
    registry.gauge("shard.stall_fraction").set(stall_fraction)
    return registry.snapshot()


def _merge_invariant_report(
    scenario,
    reports: List[Dict[str, Any]],
    extras: List[Dict[str, Any]],
    plan: ShardPlan,
) -> Dict[str, Any]:
    live = [report for report in reports if report]
    if not live and scenario.invariants is None:
        return {}
    merged: Dict[str, Any] = {
        "mode": live[0]["mode"] if live else scenario.invariants.mode,
        "checks": sum(report.get("checks", 0) for report in live),
        "sweeps": max((report.get("sweeps", 0) for report in live), default=0),
        "violation_count": sum(
            report.get("violation_count", 0) for report in live
        ),
        "violations": sorted(
            (v for report in live for v in report.get("violations", [])),
            key=lambda v: (v["t_ns"], v["name"], v["component"], v["detail"]),
        ),
    }

    def fail(name: str, component: str, detail: str) -> None:
        if merged["mode"] == "strict":
            from repro.invariants import InvariantViolation

            raise InvariantViolation(name, component, 0, detail)
        merged["violation_count"] += 1
        merged["violations"].append(
            {"name": name, "component": component, "t_ns": 0, "detail": detail}
        )

    # the boundary half of link byte conservation: the tx and rx byte
    # counters of a cut cable live in different shards, so the in-run
    # guard skipped the comparison (keeping the check count) and it
    # completes here
    for channel in plan.channels:
        tx_half = extras[channel.tx_shard]["boundary"]
        rx_half = extras[channel.rx_shard]["boundary"]
        tx = tx_half["tx_bytes"].get(channel.channel_id, 0)
        lost = tx_half["lost_bytes"].get(channel.channel_id, 0)
        rx = rx_half["rx_bytes"].get(channel.channel_id, 0)
        in_flight = tx - lost - rx
        if in_flight < 0:
            fail(
                "link.byte_conservation",
                f"{channel.tx_dev}[{channel.tx_port}]",
                f"delivered+lost exceeds transmitted by {-in_flight}B "
                f"across the shard boundary (tx={tx} rx={rx} lost={lost})",
            )

    # fleet-wide CNP conservation over summed partial counters (the
    # fleet shard kept the serial check count without comparing)
    sent = sum(extra["cnp"]["sent"] for extra in extras)
    received = sum(extra["cnp"]["received"] for extra in extras)
    dropped = sum(extra["cnp"]["dropped"] for extra in extras)
    if received + dropped > sent:
        fail(
            "nic.cnp_conservation",
            "fleet",
            f"cnps received({received}) + dropped({dropped}) > sent({sent})",
        )
    return merged


def merge_shard_results(
    scenario,
    seed: int,
    results: List[Dict[str, Any]],
    extras: List[Dict[str, Any]],
    plan: ShardPlan,
) -> RunResult:
    """Combine per-shard partial results into the serial-equal whole."""
    if len(results) != plan.shards or len(extras) != plan.shards:
        raise ValueError(
            f"expected {plan.shards} shard results, "
            f"got {len(results)}/{len(extras)}"
        )

    flows_bps: Dict[str, float] = {}
    for part in results:
        for name, bps in part.get("flows_bps", {}).items():
            flows_bps[name] = flows_bps.get(name, 0.0) + bps

    delivered: Dict[int, int] = {}
    for extra in extras:
        for fid, value in extra.get("bytes_delivered", {}).items():
            delivered[fid] = delivered.get(fid, 0) + value

    flow_stats = sorted(
        (row for part in results for row in part.get("flow_stats", [])),
        key=lambda row: (row["flow_id"], row["msg"]),
    )
    for row in flow_stats:
        if row["msg"] == -1:
            # greedy rows carry the receiver-side delivered-byte total,
            # which the source-driving shard that emitted the row
            # cannot see
            row["size_bytes"] = delivered.get(row["flow_id"], 0)

    wall_s = sum(extra.get("wall_s", 0.0) for extra in extras)
    stall_s = sum(extra.get("sync", {}).get("stall_s", 0.0) for extra in extras)
    invariant_report = _merge_invariant_report(
        scenario, [part.get("invariant_report", {}) for part in results],
        extras, plan,
    )
    if invariant_report:
        # mirror the serial guard: merge-time violations land in the
        # invariant.violations counter too
        base_count = sum(
            part.get("invariant_report", {}).get("violation_count", 0)
            for part in results
        )
        merge_violations = invariant_report["violation_count"] - base_count
    else:
        merge_violations = 0
    metrics = _merge_metrics(
        [part.get("metrics", {}) for part in results],
        [extra.get("recovery") for extra in extras],
        stall_fraction=(stall_s / wall_s) if wall_s > 0 else 0.0,
        shards=plan.shards,
    )
    if merge_violations:
        counters = metrics["counters"]
        counters["invariant.violations"] = (
            counters.get("invariant.violations", 0) + merge_violations
        )

    return RunResult(
        label=scenario.label,
        seed=seed,
        warmup_ns=scenario.warmup_ns,
        duration_ns=scenario.duration_ns,
        flows_bps=flows_bps,
        counters=_merge_counters(
            [part.get("counters", {}) for part in results]
        ),
        metrics=metrics,
        invariant_report=invariant_report,
        flow_stats=flow_stats,
    )
