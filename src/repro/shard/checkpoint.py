"""Durable shard checkpoints: the boundary-message journal.

A sharded run's full dynamic state is enormous (event heaps holding
bound methods and closures, open telemetry sinks, RNG streams) and
could never round-trip a process boundary bit-exactly.  But it does
not need to: a shard's evolution is a *pure function* of the
deterministic replicated build (spec, seed — see DESIGN.md §14) and
of the boundary messages injected at each barrier.  So the checkpoint
is **logical state**: the parent journals, per completed barrier
round, the routed per-shard inboxes.  Restoring a shard — after a
worker death mid-run, or when resuming an interrupted run — means
rebuilding the network from the spec and *replaying* the logged
inboxes barrier by barrier (:meth:`repro.shard.boundary.ShardContext`
in replay mode: inject, never sync), which lands the shard on exactly
the event sequence the original incarnation executed.  Bit-identical
results follow from the same determinism argument sharding itself
rests on, with no pickled heap to trust.

Layout, under ``results/.checkpoints/shard/<token>/``:

* ``meta.json`` — the identity of the run (label, seed, shards,
  window) for human inspection; the directory name is the real key;
* ``rounds.jsonl`` — one line per completed barrier round:
  ``{"barrier": B, "inboxes": [[msg, ...] per shard]}``, append-only,
  flushed every ``every`` rounds (and always on interrupt).

The token hashes (scenario spec, seed, shards, window), so a resumed
run always finds its own journal and a different run never does.
Like the executor's sweep checkpoints the token deliberately excludes
the code fingerprint: ``--resume`` is an explicit "same code, keep
going" request.  A journal whose barrier sequence does not match the
schedule derived from the spec is truncated at the first mismatch —
a torn tail line (the interrupt) is skipped, never fatal.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.shard.boundary import BoundaryMessage

#: one journalled barrier round: (barrier_ns, per-shard inbox lists)
Round = Tuple[int, List[List[BoundaryMessage]]]

#: shard checkpointing on/off ("on"/"off"; empty inherits the
#: executor's REPRO_CHECKPOINT policy, default on)
SHARD_CHECKPOINT_ENV = "REPRO_SHARD_CHECKPOINT"


def shard_checkpoint_enabled() -> bool:
    """Whether sharded runs journal barrier rounds by default."""
    raw = os.environ.get(SHARD_CHECKPOINT_ENV, "").strip().lower()
    if raw in ("on", "off"):
        return raw == "on"
    if raw:
        raise ValueError(
            f"{SHARD_CHECKPOINT_ENV} must be 'on' or 'off', got {raw!r}"
        )
    from repro.runner.resilience import checkpoint_enabled

    return checkpoint_enabled()


def run_token(spec: Dict[str, Any], seed: int, shards: int, window_ns: int) -> str:
    """Checkpoint identity of one sharded run (no code fingerprint)."""
    payload = json.dumps(
        {"spec": spec, "seed": seed, "shards": shards, "window_ns": window_ns},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def shard_checkpoints_dir() -> Path:
    """Directory holding per-run shard journals."""
    from repro.runner.resilience import checkpoints_dir

    path = checkpoints_dir() / "shard"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _decode_message(raw) -> BoundaryMessage:
    """JSON list -> the exact tuple shape the sync protocol ships."""
    rx_shard, channel_id, seq, arrival_ns, fields = raw
    return (rx_shard, channel_id, seq, arrival_ns, tuple(fields))


class ShardCheckpoint:
    """The append-only barrier-round journal of one sharded run.

    ``every`` is the durability cadence in barrier rounds: buffered
    lines are written (and flushed to the OS) once the buffer holds
    that many rounds.  A parent interrupted by an exception flushes
    its buffer on the way out (:mod:`repro.shard.runner` wraps the
    loop); only a hard parent kill can lose the last ``< every``
    rounds.  ``checkpoint_s`` accumulates the wall-clock spent
    serializing and writing — the number ``repro bench --shards``
    reports as checkpoint overhead.
    """

    def __init__(
        self,
        spec: Dict[str, Any],
        seed: int,
        shards: int,
        window_ns: int,
        every: int = 1,
        root: Optional[Path] = None,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.shards = shards
        self.every = every
        self.token = run_token(spec, seed, shards, window_ns)
        self.dir = (root or shard_checkpoints_dir()) / self.token
        self.path = self.dir / "rounds.jsonl"
        self._meta = {
            "version": 1,
            "label": spec.get("label", ""),
            "seed": seed,
            "shards": shards,
            "window_ns": window_ns,
        }
        self._buffer: List[str] = []
        self.checkpoint_s = 0.0
        self.recorded = 0

    # --- writing ----------------------------------------------------------

    def _ensure_dir(self) -> None:
        if not self.dir.exists():
            self.dir.mkdir(parents=True, exist_ok=True)
            (self.dir / "meta.json").write_text(
                json.dumps(self._meta, indent=2, sort_keys=True) + "\n"
            )

    def record_round(self, barrier_ns: int, inboxes: List[List[BoundaryMessage]]) -> None:
        """Journal one completed barrier round (buffered)."""
        started = time.perf_counter()
        self._buffer.append(
            json.dumps({"barrier": barrier_ns, "inboxes": inboxes})
        )
        self.recorded += 1
        if len(self._buffer) >= self.every:
            self._write_buffer()
        self.checkpoint_s += time.perf_counter() - started

    def _write_buffer(self) -> None:
        if not self._buffer:
            return
        self._ensure_dir()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
            handle.flush()
        self._buffer.clear()

    def flush(self) -> None:
        """Persist everything buffered (called on interrupt/teardown)."""
        started = time.perf_counter()
        self._write_buffer()
        self.checkpoint_s += time.perf_counter() - started

    def discard(self) -> None:
        """Delete the journal directory (the run completed fully)."""
        self._buffer.clear()
        shutil.rmtree(self.dir, ignore_errors=True)

    # --- reading ----------------------------------------------------------

    def load(self, schedule: List[int]) -> List[Round]:
        """Journalled rounds matching the expected barrier ``schedule``.

        Tolerant by construction: unreadable lines (the torn write of
        the interrupt) stop the scan, and a barrier that diverges from
        the schedule prefix truncates there — a stale or corrupt
        journal resumes less instead of poisoning the run.
        """
        rounds: List[Round] = []
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return rounds
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
                barrier = entry["barrier"]
                inboxes = [
                    [_decode_message(m) for m in inbox]
                    for inbox in entry["inboxes"]
                ]
            except (ValueError, KeyError, TypeError, IndexError):
                break  # torn tail: everything before it is intact
            index = len(rounds)
            if (
                index >= len(schedule)
                or barrier != schedule[index]
                or len(inboxes) != self.shards
            ):
                break  # journal does not belong to this schedule prefix
            rounds.append((barrier, inboxes))
        return rounds


def replay_slice(log: List[Round], shard_id: int) -> List[Tuple[int, List[BoundaryMessage]]]:
    """One shard's view of the log: (barrier, its own inbox) pairs."""
    return [(barrier, inboxes[shard_id]) for barrier, inboxes in log]
