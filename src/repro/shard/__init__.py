"""repro.shard — sharded parallel simulation with conservative sync.

One fabric :class:`~repro.runner.scenario.Scenario` is partitioned
into pod-aligned shards (:mod:`repro.shard.partition`), each driven by
its own worker process (:mod:`repro.shard.worker`) in lockstep
windows bounded by the pod↔core propagation delay — the conservative
lookahead that makes rollback unnecessary (:mod:`repro.shard.boundary`).
The parent routes boundary messages and null-message time grants
(:mod:`repro.shard.runner`) and merges the partial results into one
RunResult that is identical to the serial run for metrics-only
telemetry (:mod:`repro.shard.merge`).  See DESIGN.md §14.

The parent is also a supervisor (DESIGN.md §15): routed barrier rounds
are journalled (:mod:`repro.shard.checkpoint`) so dead or stalled
workers restart by deterministic replay, an interrupted run resumes
with ``--resume``, and an unsalvageable fleet degrades to serial
re-execution — all bit-identical to the undisturbed run
(:mod:`repro.shard.supervise`).
"""

from repro.shard.boundary import (
    SHARD_CHAOS_ENV,
    ShardContext,
    barrier_schedule,
)
from repro.shard.checkpoint import (
    SHARD_CHECKPOINT_ENV,
    ShardCheckpoint,
    replay_slice,
    shard_checkpoint_enabled,
    shard_checkpoints_dir,
)
from repro.shard.merge import merge_shard_results
from repro.shard.partition import BoundaryChannel, ShardPlan, partition_fabric
from repro.shard.runner import (
    ShardSupervisor,
    can_shard,
    effective_shards,
    maybe_run_sharded,
    run_scenario_sharded,
)
from repro.shard.spec import SHARDS_ENV, ShardingSpec
from repro.shard.supervise import (
    ShardFailure,
    ShardRunError,
    SupervisionPolicy,
)

__all__ = [
    "SHARDS_ENV",
    "SHARD_CHAOS_ENV",
    "SHARD_CHECKPOINT_ENV",
    "BoundaryChannel",
    "ShardCheckpoint",
    "ShardContext",
    "ShardFailure",
    "ShardPlan",
    "ShardRunError",
    "ShardSupervisor",
    "ShardingSpec",
    "SupervisionPolicy",
    "barrier_schedule",
    "can_shard",
    "effective_shards",
    "maybe_run_sharded",
    "merge_shard_results",
    "partition_fabric",
    "replay_slice",
    "run_scenario_sharded",
    "shard_checkpoint_enabled",
    "shard_checkpoints_dir",
]
