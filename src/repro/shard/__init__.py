"""repro.shard — sharded parallel simulation with conservative sync.

One fabric :class:`~repro.runner.scenario.Scenario` is partitioned
into pod-aligned shards (:mod:`repro.shard.partition`), each driven by
its own worker process (:mod:`repro.shard.worker`) in lockstep
windows bounded by the pod↔core propagation delay — the conservative
lookahead that makes rollback unnecessary (:mod:`repro.shard.boundary`).
The parent routes boundary messages and null-message time grants
(:mod:`repro.shard.runner`) and merges the partial results into one
RunResult that is identical to the serial run for metrics-only
telemetry (:mod:`repro.shard.merge`).  See DESIGN.md §14.
"""

from repro.shard.boundary import ShardContext, barrier_schedule
from repro.shard.merge import merge_shard_results
from repro.shard.partition import BoundaryChannel, ShardPlan, partition_fabric
from repro.shard.runner import (
    can_shard,
    effective_shards,
    maybe_run_sharded,
    run_scenario_sharded,
)
from repro.shard.spec import SHARDS_ENV, ShardingSpec

__all__ = [
    "SHARDS_ENV",
    "BoundaryChannel",
    "ShardContext",
    "ShardPlan",
    "ShardingSpec",
    "barrier_schedule",
    "can_shard",
    "effective_shards",
    "maybe_run_sharded",
    "merge_shard_results",
    "partition_fabric",
    "run_scenario_sharded",
]
