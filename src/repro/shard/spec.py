"""Declarative sharding request (:class:`ShardingSpec`).

A :class:`~repro.runner.scenario.Scenario` carries one in its
``sharding`` field; like ``faults`` and ``invariants`` it is frozen and
JSON-serializable, so a sharded scenario participates in the result
cache and ships to worker processes unchanged.  ``shards=1`` (the
default) means serial execution — the spec is inert.

Beyond the shard count the spec carries the run's *robustness* knobs
(DESIGN.md §15): checkpoint journaling and its durability cadence,
the worker-restart budget, stall detection and whether an
unsalvageable fleet degrades to serial re-execution.  All of them are
spec fields — not ambient environment — precisely so they enter the
cell's cache identity: a checkpointed, supervised run is a different
cell than an unsupervised one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: environment variable selecting a shard count for fabric scenarios
#: that do not embed a :class:`ShardingSpec` (``repro run --shards N``
#: sets it for the invocation); ``1`` / unset = serial
SHARDS_ENV = "REPRO_SHARDS"


@dataclass(frozen=True)
class ShardingSpec:
    """How to split one fabric scenario across worker processes.

    ``shards`` — number of shard worker processes.  Pods are assigned
    round-robin (pod *p* to shard ``p % shards``), core switches
    likewise (core *c* to shard ``c % shards``); asking for more shards
    than the fabric has pods leaves the surplus workers idle but is not
    an error.

    ``window_ns`` — optional override of the conservative sync window.
    The partitioner guarantees a lookahead equal to the smallest
    propagation delay over all pod↔core boundary links; a window larger
    than that lookahead would violate causality, so the override may
    only *shrink* the window (useful to stress the sync protocol in
    tests).  ``None`` uses the full lookahead.

    ``checkpoint`` — journal completed barrier rounds to
    ``results/.checkpoints/shard/`` so the run can be resumed
    (``--resume``) and dead workers restarted in place.  ``None``
    inherits the ``REPRO_SHARD_CHECKPOINT`` / ``REPRO_CHECKPOINT``
    policy (default on).

    ``checkpoint_every`` — durability cadence: buffered journal lines
    are written out every this many barrier rounds.  An interrupt
    flushes everything buffered; only a hard parent kill can lose the
    last ``< checkpoint_every`` rounds.

    ``max_restarts`` — fleet-wide budget of worker restarts (death or
    stall).  ``0`` disables restarts: the first loss moves straight to
    the next rung of the degradation ladder.

    ``degrade`` — when the restart budget is exhausted, fall back to
    one serial re-execution of the scenario (bit-identical by
    construction) instead of failing the run.  With ``degrade=False``
    the run raises a structured
    :class:`~repro.shard.supervise.ShardRunError` instead.

    ``stall_timeout_s`` — how long the parent waits at a barrier with
    no message before declaring the silent workers stalled and
    recycling them.  ``None`` inherits the per-cell wall-clock budget
    (``REPRO_RUN_TIMEOUT`` / ``REPRO_SCALE`` policy).
    """

    shards: int = 1
    window_ns: Optional[int] = None
    checkpoint: Optional[bool] = None
    checkpoint_every: int = 8
    max_restarts: int = 1
    degrade: bool = True
    stall_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.window_ns is not None and self.window_ns <= 0:
            raise ValueError(
                f"window_ns must be positive, got {self.window_ns}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.stall_timeout_s is not None and self.stall_timeout_s <= 0:
            raise ValueError(
                f"stall_timeout_s must be positive or None, "
                f"got {self.stall_timeout_s}"
            )
