"""Declarative sharding request (:class:`ShardingSpec`).

A :class:`~repro.runner.scenario.Scenario` carries one in its
``sharding`` field; like ``faults`` and ``invariants`` it is frozen and
JSON-serializable, so a sharded scenario participates in the result
cache and ships to worker processes unchanged.  ``shards=1`` (the
default) means serial execution — the spec is inert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: environment variable selecting a shard count for fabric scenarios
#: that do not embed a :class:`ShardingSpec` (``repro run --shards N``
#: sets it for the invocation); ``1`` / unset = serial
SHARDS_ENV = "REPRO_SHARDS"


@dataclass(frozen=True)
class ShardingSpec:
    """How to split one fabric scenario across worker processes.

    ``shards`` — number of shard worker processes.  Pods are assigned
    round-robin (pod *p* to shard ``p % shards``), core switches
    likewise (core *c* to shard ``c % shards``); asking for more shards
    than the fabric has pods leaves the surplus workers idle but is not
    an error.

    ``window_ns`` — optional override of the conservative sync window.
    The partitioner guarantees a lookahead equal to the smallest
    propagation delay over all pod↔core boundary links; a window larger
    than that lookahead would violate causality, so the override may
    only *shrink* the window (useful to stress the sync protocol in
    tests).  ``None`` uses the full lookahead.
    """

    shards: int = 1
    window_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.window_ns is not None and self.window_ns <= 0:
            raise ValueError(
                f"window_ns must be positive, got {self.window_ns}"
            )
