"""FCT slowdown analytics: the metric the paper is actually about.

The paper's production claims are phrased in flow completion time and
its tail under incast, and the follow-up literature (FNCC, the
switch-assistance study) evaluates on *slowdown* — FCT divided by the
ideal FCT the transfer would see alone on an idle fabric at line rate
— as CDFs bucketed by flow size.  This module computes exactly that
over the :class:`~repro.telemetry.flowstats.FlowStats` tables that
every :class:`~repro.runner.results.RunResult` now carries.

Slowdown is scale-free (1.0 is perfect, 10 means the fabric made the
flow ten times slower than physics requires), which is what makes
mice and elephants comparable on one axis: a 20 KB RPC queued behind
an incast and a 10 MB bulk transfer squeezed by PFC both show up as
tail slowdown, even though their absolute FCTs differ by three orders
of magnitude.

The ideal-FCT model matches the simulator's timing: serialization of
every packet at line rate, plus one *base RTT* of fixed overhead —
store-and-forward latency per switch hop, propagation both ways, and
the returning ACK.  :func:`base_rtt_ns` derives it from first
principles so tests can assert recorded FCTs against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import cdf_points, percentile
from repro.telemetry.flowstats import FlowStats

#: flows at or below this size are "mice" (latency-sensitive RPCs);
#: larger ones are "elephants" (bandwidth-hungry bulk transfers).  The
#: 100 KB line is the convention of the FCT literature the ISSUE cites.
MICE_THRESHOLD_BYTES = 100_000

#: bucket names in presentation order
BUCKETS = ("all", "mice", "elephants")

#: the tail percentiles every summary reports
TAIL_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


def serialization_ns(size_bytes: int, rate_bps: float) -> float:
    """Wire time of ``size_bytes`` at ``rate_bps``, in nanoseconds."""
    return size_bytes * 8e9 / rate_bps


def base_rtt_ns(
    hops: int = 1,
    prop_delay_ns: int = 500,
    mtu_bytes: int = 1000,
    line_rate_bps: float = 40e9,
    control_bytes: int = 64,
) -> float:
    """Fixed per-transfer overhead on an idle path through ``hops`` switches.

    The simulator is store-and-forward: each switch on the data path
    re-serializes the last packet (one MTU) before the final byte can
    arrive, and the cumulative ACK crosses the same switches as a
    control frame.  With ``hops`` switches there are ``hops + 1``
    links, each adding propagation in both directions:

    ``hops·S + 2·(hops+1)·D + (hops+1)·s_c``

    where ``S`` is MTU serialization, ``D`` per-link propagation and
    ``s_c`` control-frame serialization (the ACK's own wire time at the
    receiver NIC plus each switch egress).
    """
    links = hops + 1
    return (
        hops * serialization_ns(mtu_bytes, line_rate_bps)
        + 2 * links * prop_delay_ns
        + links * serialization_ns(control_bytes, line_rate_bps)
    )


def ideal_fct_ns(
    size_bytes: int,
    line_rate_bps: float,
    rtt_ns: float,
    mtu_bytes: int = 1000,
) -> float:
    """FCT of ``size_bytes`` alone on an idle path: wire time + base RTT.

    The transfer ships ``ceil(size / mtu)`` MTU-sized packets (the
    simulator pads the tail packet, as RoCE NICs pace in MTU units), so
    the serialization term counts whole packets.
    """
    packets = -(-size_bytes // mtu_bytes)
    return serialization_ns(packets * mtu_bytes, line_rate_bps) + rtt_ns


def bucket_of(size_bytes: int) -> str:
    """``"mice"`` or ``"elephants"`` for one transfer size."""
    return "mice" if size_bytes <= MICE_THRESHOLD_BYTES else "elephants"


def completed_transfers(records: Iterable[FlowStats]) -> List[FlowStats]:
    """Message transfers that finished inside the horizon.

    Greedy-flow aggregate rows (``msg == -1``) never complete and are
    excluded by construction.
    """
    return [r for r in records if r.fct_ns is not None]


def slowdown(record: FlowStats, rtt_ns: float) -> float:
    """Slowdown of one completed transfer (>= 1.0 up to model error)."""
    if record.fct_ns is None:
        raise ValueError(
            f"transfer {record.flow}/{record.msg} did not complete"
        )
    ideal = ideal_fct_ns(
        record.size_bytes, record.line_rate_bps, rtt_ns, record.mtu_bytes
    )
    return record.fct_ns / ideal


def slowdowns(
    records: Iterable[FlowStats],
    rtt_ns: float,
    bucket: Optional[str] = None,
) -> List[float]:
    """Slowdowns of all completed transfers, optionally one bucket."""
    rows = completed_transfers(records)
    if bucket is not None and bucket != "all":
        if bucket not in BUCKETS:
            raise ValueError(f"unknown bucket {bucket!r}; choose from {BUCKETS}")
        rows = [r for r in rows if bucket_of(r.size_bytes) == bucket]
    return [slowdown(r, rtt_ns) for r in rows]


@dataclass(frozen=True)
class SlowdownSummary:
    """Tail percentiles of one bucket's slowdown distribution."""

    bucket: str
    count: int
    p50: float
    p95: float
    p99: float
    p999: float
    mean: float

    def row(self) -> List[str]:
        return [
            self.bucket,
            str(self.count),
            f"{self.p50:.2f}",
            f"{self.p95:.2f}",
            f"{self.p99:.2f}",
            f"{self.p999:.2f}",
            f"{self.mean:.2f}",
        ]


def summarize_slowdowns(
    records: Iterable[FlowStats], rtt_ns: float
) -> Dict[str, SlowdownSummary]:
    """Per-bucket tail summary; buckets with no transfers are omitted."""
    rows = completed_transfers(records)
    out: Dict[str, SlowdownSummary] = {}
    for bucket in BUCKETS:
        values = slowdowns(rows, rtt_ns, bucket)
        if not values:
            continue
        p50, p95, p99, p999 = (percentile(values, q) for q in TAIL_PERCENTILES)
        out[bucket] = SlowdownSummary(
            bucket=bucket,
            count=len(values),
            p50=p50,
            p95=p95,
            p99=p99,
            p999=p999,
            mean=sum(values) / len(values),
        )
    return out


def slowdown_cdf(
    records: Iterable[FlowStats], rtt_ns: float
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-bucket slowdown CDFs as (slowdown, fraction) point lists."""
    rows = completed_transfers(records)
    return {
        bucket: cdf_points(values)
        for bucket in BUCKETS
        if (values := slowdowns(rows, rtt_ns, bucket))
    }


def fct_table(summaries: Dict[str, SlowdownSummary]) -> str:
    """Monospace table of per-bucket slowdown percentiles."""
    from repro.runner.results import format_table

    headers = ["bucket", "n", "p50", "p95", "p99", "p999", "mean"]
    rows = [summaries[b].row() for b in BUCKETS if b in summaries]
    return format_table(headers, rows)


def records_from_runs(runs: Sequence) -> List[FlowStats]:
    """Flatten the FlowStats tables of many ``RunResult`` objects."""
    records: List[FlowStats] = []
    for run in runs:
        records.extend(run.flow_stats_records())
    return records
