"""Small, dependency-light statistics used across the experiments.

The paper reports medians, 10th percentiles ("the tail end"), CDFs and
fairness; these helpers centralize those computations so every
benchmark reports them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") method but works on plain
    sequences without an import in hot experiment loops.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(data) - 1)
    frac = rank - low
    if data[low] == data[high]:
        # skip interpolation: avoids float wiggle on equal neighbours
        return float(data[low])
    return data[low] * (1.0 - frac) + data[high] * frac


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, fraction <= value) pairs."""
    data = sorted(values)
    n = len(data)
    if n == 0:
        return []
    return [(value, (index + 1) / n) for index, value in enumerate(data)]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 means perfectly equal shares.

    ``(sum x)^2 / (n * sum x^2)``; an all-zero allocation counts as
    perfectly fair (everyone got the same nothing).
    """
    data = list(values)
    if not data:
        raise ValueError("fairness of empty sequence")
    total = sum(data)
    squares = sum(x * x for x in data)
    if squares == 0.0:
        return 1.0
    return total * total / (len(data) * squares)


@dataclass(frozen=True)
class Summary:
    """min / p10 / median / mean / p90 / max of a sample."""

    count: int
    minimum: float
    p10: float
    median: float
    mean: float
    p90: float
    maximum: float

    def row(self) -> str:
        return (
            f"n={self.count} min={self.minimum:.3g} p10={self.p10:.3g} "
            f"med={self.median:.3g} mean={self.mean:.3g} "
            f"p90={self.p90:.3g} max={self.maximum:.3g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics the paper's figures report."""
    data = list(values)
    if not data:
        raise ValueError("summary of empty sequence")
    return Summary(
        count=len(data),
        minimum=min(data),
        p10=percentile(data, 10),
        median=percentile(data, 50),
        mean=sum(data) / len(data),
        p90=percentile(data, 90),
        maximum=max(data),
    )
