"""Trace readers: reconstruct paper figures from a JSONL trace.

These helpers turn a trace stream (a file written by the ``jsonl``
sink, or the in-memory events of a ring sink) back into the
measurements the paper plots:

* :func:`queue_cdf` — egress-queue length CDF from ``sample.queue``
  events (Figures 12 and 19);
* :func:`pause_counts` — PFC PAUSE frames per switch from
  ``pfc.pause_tx`` events (Figure 15);
* :func:`rate_timeline` — per-flow goodput over time from
  ``sample.rate`` events (the throughput timelines behind Figures 3,
  8, 10 and 13);
* :func:`rate_cut_timeline` — the RP's rate trajectory from ``rp.cut``
  / ``rp.increase`` events (every point is a Figure 7 transition).

Every function accepts either a path to a JSONL file or an iterable of
already-decoded event dicts, so they work identically on a trace file
and on ``tracer.sink.events`` inside a test.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Tuple, Union

from repro.telemetry import events as ev

#: a trace source: JSONL path or decoded event dicts
TraceSource = Union[str, Iterable[Mapping[str, Any]]]


def read_events(source: TraceSource) -> Iterator[Dict[str, Any]]:
    """Iterate decoded events from a JSONL path or an event iterable."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield json.loads(line)
    else:
        for event in source:
            yield dict(event)


def _select(source: TraceSource, etype: str) -> Iterator[Dict[str, Any]]:
    for event in read_events(source):
        if event["ev"] == etype:
            yield event


def queue_cdf(source: TraceSource) -> List[Tuple[float, float]]:
    """Queue-length CDF (bytes, fraction) from ``sample.queue`` events.

    The Figure 12/19 reconstruction: run a scenario with
    ``queue_sample_ns`` set, then plot these points.  Requires a
    ``full``-level trace (samples are high-frequency events).
    """
    from repro.analysis.stats import cdf_points

    return cdf_points(
        [event["queue_bytes"] for event in _select(source, ev.SAMPLE_QUEUE)]
    )


def pause_counts(source: TraceSource) -> Dict[str, int]:
    """PAUSE frames sent per component from ``pfc.pause_tx`` events.

    The Figure 15 reconstruction: filter the keys to the spine
    switches and sum.  Works at the ``cc`` trace level.
    """
    counts: Dict[str, int] = {}
    for event in _select(source, ev.PFC_PAUSE_TX):
        comp = event["comp"]
        counts[comp] = counts.get(comp, 0) + 1
    return counts


def rate_timeline(
    source: TraceSource,
) -> Dict[int, List[Tuple[int, float]]]:
    """Per-flow ``(t_ns, rate_bps)`` series from ``sample.rate`` events."""
    series: Dict[int, List[Tuple[int, float]]] = {}
    for event in _select(source, ev.SAMPLE_RATE):
        series.setdefault(event["flow"], []).append(
            (event["t"], event["rate_bps"])
        )
    return series


def rate_cut_timeline(
    source: TraceSource,
) -> Dict[int, List[Tuple[int, str, float]]]:
    """Per-flow RP transitions: ``(t_ns, kind, rc_bps)`` tuples.

    ``kind`` is ``"cut"`` for Equation-1 rate cuts or the Figure 7
    phase name (``"fast_recovery"``, ``"additive_increase"``,
    ``"hyper_increase"``) for increase steps.
    """
    series: Dict[int, List[Tuple[int, str, float]]] = {}
    for event in read_events(source):
        if event["ev"] == ev.RP_CUT:
            kind = "cut"
        elif event["ev"] == ev.RP_INCREASE:
            kind = event["phase"]
        else:
            continue
        series.setdefault(event["flow"], []).append(
            (event["t"], kind, event["rc_bps"])
        )
    return series


def event_counts(source: TraceSource) -> Dict[str, int]:
    """Events per type — quick orientation on an unfamiliar trace."""
    counts: Dict[str, int] = {}
    for event in read_events(source):
        counts[event["ev"]] = counts.get(event["ev"], 0) + 1
    return counts
