"""Figure rendering: SVG with no dependencies, PNG when matplotlib exists.

``repro plot`` turns analysis outputs (slowdown CDFs, queue CDFs, grid
heatmaps) into artifacts under ``results/figures/``.  The container
this repo targets has no plotting stack, so the primary renderer emits
SVG by hand — axes, nice ticks, polylines, legends, color ramps are a
few hundred lines of string assembly and produce byte-deterministic
output (good for artifact diffing in CI).  When matplotlib *is*
importable, every chart is additionally rendered as PNG through it;
its absence is never an error.

Two chart shapes cover every figure the ISSUE asks for:

* :func:`write_line_chart` — families of (x, y) series; used for
  slowdown CDFs (mice vs elephants) and queue-occupancy CDFs
  (Figs 12/19).
* :func:`write_heatmap` — a labelled matrix with a color ramp; used
  for the (Kmin, Kmax, Pmax) x incast-degree grid.
"""

from __future__ import annotations

import math
from importlib.util import find_spec
from pathlib import Path
from typing import List, Mapping, Optional, Sequence, Tuple

#: matplotlib's default category colors, hard-coded so the SVG and PNG
#: renderings of one chart agree
PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b")

#: viridis-like color-ramp anchors for heatmaps, (fraction, (r, g, b))
_RAMP = (
    (0.0, (68, 1, 84)),
    (0.25, (59, 82, 139)),
    (0.5, (33, 145, 140)),
    (0.75, (94, 201, 98)),
    (1.0, (253, 231, 37)),
)

Series = Mapping[str, Sequence[Tuple[float, float]]]


def matplotlib_available() -> bool:
    """True when matplotlib can be imported (it is never required)."""
    return find_spec("matplotlib") is not None


def nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (the 1-2-5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 5.0, 10.0):
        step = factor * magnitude
        if raw_step <= step:
            break
    # span whole steps covering [lo, hi]: the chart uses the outer
    # ticks as the axis bounds, so no data point may fall outside them
    first = math.floor(lo / step) * step
    last = math.ceil(hi / step) * step
    count = int(round((last - first) / step))
    return [round(first + i * step, 10) for i in range(count + 1)]


def _fmt(value: float) -> str:
    """Compact tick label: no trailing zeros, SI-free."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:g}"


def ramp_color(fraction: float) -> str:
    """Hex color at ``fraction`` in [0, 1] of the heatmap ramp."""
    fraction = min(1.0, max(0.0, fraction))
    for (f_lo, c_lo), (f_hi, c_hi) in zip(_RAMP, _RAMP[1:]):
        if fraction <= f_hi:
            span = f_hi - f_lo
            t = 0.0 if span == 0 else (fraction - f_lo) / span
            rgb = [round(a + t * (b - a)) for a, b in zip(c_lo, c_hi)]
            return "#{:02x}{:02x}{:02x}".format(*rgb)
    return "#{:02x}{:02x}{:02x}".format(*_RAMP[-1][1])


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


class _Svg:
    """Minimal SVG assembly: elements accumulate, then join."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self.parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            'font-family="Helvetica, Arial, sans-serif">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def line(self, x1, y1, x2, y2, stroke="#444", width=1.0):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"/>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]], stroke: str):
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            'stroke-width="1.8"/>'
        )

    def rect(self, x, y, w, h, fill, stroke="none"):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def text(self, x, y, content, size=11, anchor="middle", fill="#222", rotate=None):
        transform = (
            f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        )
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}"{transform}>'
            f"{_esc(str(content))}</text>"
        )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"]) + "\n"


def svg_line_chart(
    series: Series,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: int = 640,
    height: int = 440,
) -> str:
    """Families of (x, y) series as one SVG chart with axes + legend."""
    left, right, top, bottom = 62, 20, 34, 52
    plot_w = width - left - right
    plot_h = height - top - bottom
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("nothing to plot: every series is empty")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_ticks = nice_ticks(min(xs), max(xs))
    y_ticks = nice_ticks(min(ys), max(ys))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    y_lo, y_hi = y_ticks[0], y_ticks[-1]

    def sx(x: float) -> float:
        return left + (x - x_lo) / (x_hi - x_lo or 1.0) * plot_w

    def sy(y: float) -> float:
        return top + plot_h - (y - y_lo) / (y_hi - y_lo or 1.0) * plot_h

    svg = _Svg(width, height)
    for tick in x_ticks:
        svg.line(sx(tick), top, sx(tick), top + plot_h, stroke="#e5e5e5")
        svg.text(sx(tick), top + plot_h + 16, _fmt(tick), size=10)
    for tick in y_ticks:
        svg.line(left, sy(tick), left + plot_w, sy(tick), stroke="#e5e5e5")
        svg.text(left - 6, sy(tick) + 3.5, _fmt(tick), size=10, anchor="end")
    svg.line(left, top, left, top + plot_h)
    svg.line(left, top + plot_h, left + plot_w, top + plot_h)
    for index, (label, pts) in enumerate(series.items()):
        if not pts:
            continue
        color = PALETTE[index % len(PALETTE)]
        svg.polyline([(sx(x), sy(y)) for x, y in sorted(pts)], color)
        legend_y = top + 8 + 16 * index
        svg.line(left + plot_w - 118, legend_y, left + plot_w - 98, legend_y, stroke=color, width=2)
        svg.text(left + plot_w - 92, legend_y + 4, label, size=11, anchor="start")
    if title:
        svg.text(width / 2, 20, title, size=14)
    if xlabel:
        svg.text(left + plot_w / 2, height - 14, xlabel, size=12)
    if ylabel:
        svg.text(16, top + plot_h / 2, ylabel, size=12, rotate=-90)
    return svg.render()


def svg_heatmap(
    col_labels: Sequence[str],
    row_labels: Sequence[str],
    grid: Sequence[Sequence[Optional[float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    cell_w: int = 64,
    cell_h: int = 26,
) -> str:
    """A labelled matrix with the value printed in each colored cell.

    ``grid[r][c]`` is the value of ``row_labels[r]`` x
    ``col_labels[c]``; ``None`` renders as an empty gray cell.
    """
    if len(grid) != len(row_labels):
        raise ValueError("grid/row_labels size mismatch")
    left, top = 150, 56
    width = left + cell_w * len(col_labels) + 90
    height = top + cell_h * len(row_labels) + 60
    values = [v for row in grid for v in row if v is not None]
    lo = min(values) if values else 0.0
    hi = max(values) if values else 1.0
    span = hi - lo or 1.0
    svg = _Svg(width, height)
    for r, (label, row) in enumerate(zip(row_labels, grid)):
        if len(row) != len(col_labels):
            raise ValueError("grid/col_labels size mismatch")
        y = top + r * cell_h
        svg.text(left - 6, y + cell_h / 2 + 4, label, size=10, anchor="end")
        for c, value in enumerate(row):
            x = left + c * cell_w
            if value is None:
                svg.rect(x, y, cell_w, cell_h, "#f0f0f0", stroke="#fff")
                continue
            fraction = (value - lo) / span
            svg.rect(x, y, cell_w, cell_h, ramp_color(fraction), stroke="#fff")
            svg.text(
                x + cell_w / 2,
                y + cell_h / 2 + 4,
                f"{value:.2f}",
                size=10,
                fill="#fff" if fraction < 0.6 else "#222",
            )
    for c, label in enumerate(col_labels):
        svg.text(left + c * cell_w + cell_w / 2, top - 8, label, size=10)
    # color-scale legend on the right edge
    bar_x = left + cell_w * len(col_labels) + 22
    bar_h = cell_h * len(row_labels)
    steps = 24
    for i in range(steps):
        fraction = 1.0 - i / (steps - 1)
        svg.rect(
            bar_x,
            top + i * bar_h / steps,
            14,
            bar_h / steps + 0.5,
            ramp_color(fraction),
        )
    svg.text(bar_x + 18, top + 8, f"{hi:.2f}", size=10, anchor="start")
    svg.text(bar_x + 18, top + bar_h, f"{lo:.2f}", size=10, anchor="start")
    if title:
        svg.text(width / 2, 22, title, size=14)
    if xlabel:
        svg.text(left + cell_w * len(col_labels) / 2, height - 12, xlabel, size=12)
    if ylabel:
        svg.text(16, top + bar_h / 2, ylabel, size=12, rotate=-90)
    return svg.render()


def _write(path: Path, content: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content, encoding="utf-8")
    return path


def write_line_chart(
    path_base: Path,
    series: Series,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> List[Path]:
    """Render a line chart to ``<path_base>.svg`` (and ``.png`` when
    matplotlib is present); returns the written paths."""
    written = [
        _write(
            path_base.with_suffix(".svg"),
            svg_line_chart(series, title=title, xlabel=xlabel, ylabel=ylabel),
        )
    ]
    if matplotlib_available():
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        fig, ax = plt.subplots(figsize=(6.4, 4.4))
        for index, (label, pts) in enumerate(series.items()):
            if not pts:
                continue
            pts = sorted(pts)
            ax.plot(
                [x for x, _ in pts],
                [y for _, y in pts],
                label=label,
                color=PALETTE[index % len(PALETTE)],
            )
        ax.set_title(title)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        ax.legend()
        fig.tight_layout()
        png = path_base.with_suffix(".png")
        fig.savefig(png)
        plt.close(fig)
        written.append(png)
    return written


def write_heatmap(
    path_base: Path,
    col_labels: Sequence[str],
    row_labels: Sequence[str],
    grid: Sequence[Sequence[Optional[float]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> List[Path]:
    """Render a heatmap to ``<path_base>.svg`` (and ``.png`` when
    matplotlib is present); returns the written paths."""
    written = [
        _write(
            path_base.with_suffix(".svg"),
            svg_heatmap(
                col_labels,
                row_labels,
                grid,
                title=title,
                xlabel=xlabel,
                ylabel=ylabel,
            ),
        )
    ]
    if matplotlib_available():
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        data = [
            [float("nan") if v is None else v for v in row] for row in grid
        ]
        fig, ax = plt.subplots(
            figsize=(1.2 + 0.7 * len(col_labels), 1.2 + 0.3 * len(row_labels))
        )
        image = ax.imshow(data, aspect="auto", cmap="viridis")
        ax.set_xticks(range(len(col_labels)), labels=col_labels)
        ax.set_yticks(range(len(row_labels)), labels=row_labels)
        ax.set_title(title)
        ax.set_xlabel(xlabel)
        ax.set_ylabel(ylabel)
        fig.colorbar(image, ax=ax)
        fig.tight_layout()
        png = path_base.with_suffix(".png")
        fig.savefig(png)
        plt.close(fig)
        written.append(png)
    return written
