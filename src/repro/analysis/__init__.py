"""Statistics and trace-analysis helpers used by experiments and benchmarks."""

from repro.analysis.stats import (
    percentile,
    cdf_points,
    jain_fairness,
    summarize,
    Summary,
)
from repro.analysis.trace import (
    event_counts,
    pause_counts,
    queue_cdf,
    rate_cut_timeline,
    rate_timeline,
    read_events,
)

__all__ = [
    "percentile",
    "cdf_points",
    "jain_fairness",
    "summarize",
    "Summary",
    "event_counts",
    "pause_counts",
    "queue_cdf",
    "rate_cut_timeline",
    "rate_timeline",
    "read_events",
]
