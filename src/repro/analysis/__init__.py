"""Statistics and trace-analysis helpers used by experiments and benchmarks."""

from repro.analysis.fct import (
    MICE_THRESHOLD_BYTES,
    SlowdownSummary,
    base_rtt_ns,
    bucket_of,
    fct_table,
    ideal_fct_ns,
    records_from_runs,
    slowdown,
    slowdown_cdf,
    slowdowns,
    summarize_slowdowns,
)
from repro.analysis.stats import (
    percentile,
    cdf_points,
    jain_fairness,
    summarize,
    Summary,
)
from repro.analysis.trace import (
    event_counts,
    pause_counts,
    queue_cdf,
    rate_cut_timeline,
    rate_timeline,
    read_events,
)

__all__ = [
    "MICE_THRESHOLD_BYTES",
    "SlowdownSummary",
    "base_rtt_ns",
    "bucket_of",
    "fct_table",
    "ideal_fct_ns",
    "records_from_runs",
    "slowdown",
    "slowdown_cdf",
    "slowdowns",
    "summarize_slowdowns",
    "percentile",
    "cdf_points",
    "jain_fairness",
    "summarize",
    "Summary",
    "event_counts",
    "pause_counts",
    "queue_cdf",
    "rate_cut_timeline",
    "rate_timeline",
    "read_events",
]
