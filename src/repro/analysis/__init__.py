"""Statistics helpers used by experiments and benchmarks."""

from repro.analysis.stats import (
    percentile,
    cdf_points,
    jain_fairness,
    summarize,
    Summary,
)

__all__ = ["percentile", "cdf_points", "jain_fairness", "summarize", "Summary"]
