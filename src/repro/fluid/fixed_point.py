"""The fluid model's unique fixed point (Equation 10).

Setting the left-hand sides of Equations (6)-(9) to zero gives
``R_C = C/N`` (Equation 10: every flow at its fair share) and three
equations in the remaining unknowns ``R_T``, ``alpha`` and ``p``:

* from d(alpha)/dt = 0:  ``alpha* = 1 - (1-p)^(tau' R_C)``
* from dR_C/dt = 0::

      R_T - R_C = R_C alpha (1-(1-p)^(tau R_C)) / (tau (bc + ti))

  where ``bc``/``ti`` are the byte-counter/timer event frequencies at
  marking probability ``p``.
* substituting both into dR_T/dt = 0 leaves one scalar equation in
  ``p``, solved here with bisection (``scipy.optimize.brentq``).  The
  solution is unique (the residual is monotone in ``p``); the paper
  verifies p stays below 1% for reasonable settings.

From ``p`` the equilibrium queue follows by inverting the RED profile:
``q* = Kmin + p (Kmax - Kmin) / Pmax``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from repro.fluid.model import FluidParams


@dataclass(frozen=True)
class FixedPoint:
    """Equilibrium of the N-flow fluid model."""

    p: float
    rc_bps: float
    rt_bps: float
    alpha: float
    queue_bytes: float


def _event_rates(p: float, rc_pkts: float, bc_pkts: float, timer_s: float):
    """Byte-counter and timer increase-event frequencies at prob p.

    Exponents are capped: a denominator of exp(700+) means the event
    frequency is indistinguishable from zero (marking so heavy that a
    full byte-counter period without a mark never happens).
    """
    ln1m = math.log1p(-p)

    def rate(exponent: float) -> float:
        if exponent > 700.0:
            return 0.0
        return rc_pkts * p / math.expm1(exponent)

    bc = rate(-bc_pkts * ln1m)
    ti = rate(-timer_s * rc_pkts * ln1m)
    return bc, ti


def _rt_residual(p: float, params: FluidParams, rc_pkts: float) -> float:
    """dR_T/dt at the candidate fixed point; root in p is the answer."""
    pkt_bits = params.packet_bytes * 8
    tau = float(params.tau_s)
    tau_prime = float(params.tau_prime_s)
    timer = float(params.timer_s)
    bc_pkts = float(params.byte_counter_bytes) / params.packet_bytes
    rai = float(params.rai_bps) / pkt_bits
    f_steps = params.fast_recovery_steps

    ln1m = math.log1p(-p)
    alpha = -math.expm1(tau_prime * rc_pkts * ln1m)  # 1-(1-p)^(tau' rc)
    p_cnp = -math.expm1(tau * rc_pkts * ln1m)
    cut_rate = p_cnp / tau
    bc, ti = _event_rates(p, rc_pkts, bc_pkts, timer)
    if bc + ti <= 0.0:
        # marking so heavy that no increase event ever completes: the
        # decrease side wins outright
        return -1e30
    # R_T - R_C from dR_C/dt = 0
    rt_minus_rc = rc_pkts * alpha * cut_rate / (bc + ti)
    gate_b = math.exp(f_steps * bc_pkts * ln1m)
    gate_t = math.exp(f_steps * timer * rc_pkts * ln1m)
    return -rt_minus_rc * cut_rate + rai * (gate_b * bc + gate_t * ti)


def solve_fixed_point(params: FluidParams) -> FixedPoint:
    """Solve Equation (10)'s companion system for (p, R_T, alpha, q).

    Raises ``ValueError`` if no equilibrium exists in (0, 1) — e.g. a
    capacity so small that even the minimum rate overloads the link.
    """
    pkt_bits = params.packet_bytes * 8
    capacity_pps = float(params.capacity_bps) / pkt_bits
    rc_pkts = capacity_pps / params.num_flows

    lo, hi = 1e-9, 1.0 - 1e-9
    f_lo = _rt_residual(lo, params, rc_pkts)
    f_hi = _rt_residual(hi, params, rc_pkts)
    if f_lo <= 0:
        raise ValueError(
            "no equilibrium: rate increase pressure is non-positive even "
            "with (almost) no marking"
        )
    if f_hi >= 0:
        raise ValueError(
            "no equilibrium: rate increase still dominates at p ~ 1"
        )
    p_star = brentq(_rt_residual, lo, hi, args=(params, rc_pkts), xtol=1e-15)

    ln1m = math.log1p(-p_star)
    tau = float(params.tau_s)
    alpha = -math.expm1(float(params.tau_prime_s) * rc_pkts * ln1m)
    p_cnp = -math.expm1(tau * rc_pkts * ln1m)
    cut_rate = p_cnp / tau
    bc, ti = _event_rates(
        p_star,
        rc_pkts,
        float(params.byte_counter_bytes) / params.packet_bytes,
        float(params.timer_s),
    )
    rt_pkts = rc_pkts + rc_pkts * alpha * cut_rate / (bc + ti)

    kmin = float(params.kmin_bytes)
    kmax = float(params.kmax_bytes)
    pmax = float(params.pmax)
    if kmax > kmin and p_star < pmax:
        queue = kmin + p_star * (kmax - kmin) / pmax
    else:
        # cut-off marking (or saturated RED segment): queue pins at the
        # marking threshold
        queue = kmax
    return FixedPoint(
        p=p_star,
        rc_bps=rc_pkts * pkt_bits,
        rt_bps=rt_pkts * pkt_bits,
        alpha=alpha,
        queue_bytes=queue,
    )
