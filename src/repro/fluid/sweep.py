"""Parameter sweeps over the fluid model (paper §5.2, Figures 11-12).

Each sweep integrates the two-flow convergence scenario (one flow
starting at 40 Gbps, the other at 5 Gbps) for a grid of values of one
parameter — the whole grid in a single vectorized pass — and reports
the paper's convergence metric: the rate difference between the two
flows over time (Figure 11's z-axis).

:func:`sweep_g_queue` reproduces Figure 12: the bottleneck queue
trajectory for N:1 incast at different values of ``g``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import units
from repro.fluid.model import FluidParams, FluidTrace, simulate


@dataclass
class SweepResult:
    """Outcome of a one-parameter sweep.

    ``rate_diff_gbps[k, i]`` is |R_C1 - R_C2| in Gbps at sample time
    ``times_s[k]`` for parameter value ``values[i]`` — the surface the
    paper plots in Figure 11.
    """

    parameter: str
    values: np.ndarray
    times_s: np.ndarray
    rate_diff_gbps: np.ndarray
    trace: FluidTrace

    def final_diff_gbps(self, tail_fraction: float = 0.5) -> np.ndarray:
        """Mean |rate gap| over the trailing ``tail_fraction`` of time."""
        start = int(len(self.times_s) * (1.0 - tail_fraction))
        return self.rate_diff_gbps[start:].mean(axis=0)

    def best_value(self) -> float:
        """Parameter value with the smallest trailing rate gap."""
        return float(self.values[np.argmin(self.final_diff_gbps())])


def convergence_metric(trace: FluidTrace) -> np.ndarray:
    """|R_C1 - R_C2| in Gbps, shape (samples, batch)."""
    return np.abs(trace.rc_bps[:, :, 0] - trace.rc_bps[:, :, 1]) / 1e9


def _run_sweep(
    parameter: str,
    values: Sequence[float],
    base: FluidParams,
    duration_s: float,
    dt_s: float,
) -> SweepResult:
    values_arr = np.asarray(list(values), dtype=float)
    params = base.with_overrides(**{parameter: values_arr, "num_flows": 2})
    rc0 = np.broadcast_to(
        np.array([units.gbps(40), units.gbps(5)]), (len(values_arr), 2)
    )
    trace = simulate(params, duration_s=duration_s, dt_s=dt_s, rc0_bps=rc0)
    return SweepResult(
        parameter=parameter,
        values=values_arr,
        times_s=trace.times_s,
        rate_diff_gbps=convergence_metric(trace),
        trace=trace,
    )


def sweep_byte_counter(
    values_bytes: Sequence[float] = (
        units.kb(150),
        units.kb(500),
        units.mb(1),
        units.mb(3),
        units.mb(10),
    ),
    base: FluidParams = None,
    duration_s: float = 0.2,
    dt_s: float = 2e-6,
) -> SweepResult:
    """Figure 11(a): byte counter sweep from the QCN strawman (150 KB).

    Uses the strawman timer (1.5 ms) so the byte counter dominates;
    slowing the byte counter restores convergence at the cost of speed.
    """
    if base is None:
        base = FluidParams(
            kmin_bytes=units.kb(40),
            kmax_bytes=units.kb(40),
            pmax=1.0,
            g=1.0 / 16.0,
            timer_s=1.5e-3,
        )
    return _run_sweep("byte_counter_bytes", values_bytes, base, duration_s, dt_s)


def sweep_timer(
    values_s: Sequence[float] = (1.5e-3, 1e-3, 500e-6, 150e-6, 55e-6),
    base: FluidParams = None,
    duration_s: float = 0.2,
    dt_s: float = 2e-6,
) -> SweepResult:
    """Figure 11(b): rate-increase timer sweep with a 10 MB byte counter.

    Speeding up the timer (but never below the 50 µs CNP interval)
    makes the timer dominate rate increase and convergence fast.
    """
    if base is None:
        base = FluidParams(
            kmin_bytes=units.kb(40),
            kmax_bytes=units.kb(40),
            pmax=1.0,
            g=1.0 / 16.0,
            byte_counter_bytes=units.mb(10),
        )
    return _run_sweep("timer_s", values_s, base, duration_s, dt_s)


def sweep_kmax(
    values_bytes: Sequence[float] = (
        units.kb(40),
        units.kb(80),
        units.kb(120),
        units.kb(160),
        units.kb(200),
    ),
    base: FluidParams = None,
    duration_s: float = 0.2,
    dt_s: float = 2e-6,
) -> SweepResult:
    """Figure 11(c): widen the RED segment (Kmax) from the strawman.

    RED-like probabilistic marking lets the faster flow attract more
    CNPs, restoring convergence without touching the timers.
    """
    if base is None:
        base = FluidParams(
            kmin_bytes=units.kb(5),
            pmax=0.01,
            g=1.0 / 16.0,
            timer_s=1.5e-3,
            byte_counter_bytes=units.kb(150),
        )
    return _run_sweep("kmax_bytes", values_bytes, base, duration_s, dt_s)


def sweep_pmax(
    values: Sequence[float] = (1.0, 0.5, 0.1, 0.05, 0.01),
    base: FluidParams = None,
    duration_s: float = 0.2,
    dt_s: float = 2e-6,
) -> SweepResult:
    """Figure 11(d): Pmax sweep at Kmax = 200 KB; small Pmax converges."""
    if base is None:
        base = FluidParams(
            kmin_bytes=units.kb(5),
            kmax_bytes=units.kb(200),
            g=1.0 / 16.0,
            timer_s=1.5e-3,
            byte_counter_bytes=units.kb(150),
        )
    return _run_sweep("pmax", values, base, duration_s, dt_s)


@dataclass
class GQueueResult:
    """Figure 12: queue trajectories per (g, incast degree)."""

    g_values: np.ndarray
    incast_degree: int
    times_s: np.ndarray
    queue_kb: np.ndarray  # (samples, len(g_values))

    def steady_queue_kb(self, tail_fraction: float = 0.5) -> np.ndarray:
        start = int(len(self.times_s) * (1.0 - tail_fraction))
        return self.queue_kb[start:].mean(axis=0)

    def queue_stddev_kb(self, tail_fraction: float = 0.5) -> np.ndarray:
        start = int(len(self.times_s) * (1.0 - tail_fraction))
        return self.queue_kb[start:].std(axis=0)


def sweep_g_queue(
    g_values: Sequence[float] = (1.0 / 16.0, 1.0 / 256.0),
    incast_degree: int = 16,
    base: FluidParams = None,
    duration_s: float = 0.1,
    dt_s: float = 1e-6,
) -> GQueueResult:
    """Figure 12: bottleneck queue for N:1 incast at different g.

    Smaller g yields a lower, steadier queue (at slightly slower
    convergence) — the basis for the deployed g = 1/256.
    """
    if base is None:
        base = FluidParams()
    params = base.with_overrides(
        g=np.asarray(list(g_values), dtype=float), num_flows=incast_degree
    )
    trace = simulate(params, duration_s=duration_s, dt_s=dt_s)
    return GQueueResult(
        g_values=np.asarray(list(g_values), dtype=float),
        incast_degree=incast_degree,
        times_s=trace.times_s,
        queue_kb=trace.queue_bytes / 1e3,
    )
