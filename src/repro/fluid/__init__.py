"""Fluid model of DCQCN (paper §5).

Implements the delay-differential equations (5)-(9) that model N
DCQCN flows sharing one bottleneck, the per-flow extension used for
convergence studies (Equation 11), the unique fixed point of
Equation (10), and the parameter sweeps of §5.2.
"""

from repro.fluid.model import (
    FluidParams,
    FluidTrace,
    simulate,
    simulate_two_flow_convergence,
)
from repro.fluid.fixed_point import FixedPoint, solve_fixed_point
from repro.fluid.sweep import (
    SweepResult,
    convergence_metric,
    sweep_byte_counter,
    sweep_timer,
    sweep_kmax,
    sweep_pmax,
    sweep_g_queue,
)
from repro.fluid.dctcp import DctcpFluidParams, simulate_dctcp

__all__ = [
    "FluidParams",
    "FluidTrace",
    "simulate",
    "simulate_two_flow_convergence",
    "FixedPoint",
    "solve_fixed_point",
    "SweepResult",
    "convergence_metric",
    "sweep_byte_counter",
    "sweep_timer",
    "sweep_kmax",
    "sweep_pmax",
    "sweep_g_queue",
    "DctcpFluidParams",
    "simulate_dctcp",
]
