"""DCTCP fluid model (Alizadeh et al., SIGCOMM 2010).

Used as the analytic counterpart of the Figure 19 comparison: DCTCP
needs a marking threshold K sized to absorb its sawtooth
(K ~ C x RTT / 7 per the DCTCP guidelines), so its queue rides at K
with an O(sqrt(W)) amplitude, whereas DCQCN's hardware pacing admits a
5 KB Kmin and a far shorter queue.

The model (window-based, N identical flows, cut-off marking at K):

    dW/dt     = 1/RTT - W alpha / (2 RTT) * p(t - RTT)
    dalpha/dt = g/RTT * (p(t - RTT) - alpha)
    dq/dt     = N W / RTT - C
    RTT(t)    = RTT_base + q(t)/C
    p(q)      = 1 if q > K else 0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units


@dataclass
class DctcpFluidParams:
    """DCTCP fluid model parameters."""

    capacity_bps: float = units.gbps(40)
    packet_bytes: int = 1000
    num_flows: int = 20
    marking_threshold_bytes: int = units.kb(160)
    g: float = 1.0 / 16.0
    rtt_base_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0 or self.num_flows < 1:
            raise ValueError("capacity and flow count must be positive")
        if self.marking_threshold_bytes < 0:
            raise ValueError("marking threshold cannot be negative")


@dataclass
class DctcpTrace:
    times_s: np.ndarray
    window_pkts: np.ndarray
    alpha: np.ndarray
    queue_bytes: np.ndarray

    def steady_queue_bytes(self, tail_fraction: float = 0.5) -> np.ndarray:
        """Queue samples from the trailing part of the run."""
        start = int(len(self.times_s) * (1.0 - tail_fraction))
        return self.queue_bytes[start:]


def simulate_dctcp(
    params: DctcpFluidParams,
    duration_s: float = 0.1,
    dt_s: float = 1e-6,
    record_every: int = 10,
) -> DctcpTrace:
    """Integrate the DCTCP fluid model (fixed-step Euler with delay)."""
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    pkt_bits = params.packet_bytes * 8
    capacity_pps = params.capacity_bps / pkt_bits
    k_pkts = params.marking_threshold_bytes / params.packet_bytes
    n = params.num_flows

    # start near fair share with an empty queue
    w = max(1.0, capacity_pps * params.rtt_base_s / n)
    alpha = 0.0
    q = 0.0

    steps = int(round(duration_s / dt_s))
    delay_steps = max(1, int(round(params.rtt_base_s / dt_s)))
    hist_p = np.zeros(delay_steps + 1)

    samples = steps // record_every + 1
    times = np.empty(samples)
    trace_w = np.empty(samples)
    trace_alpha = np.empty(samples)
    trace_q = np.empty(samples)
    sample = 0

    for step in range(steps + 1):
        if step % record_every == 0 and sample < samples:
            times[sample] = step * dt_s
            trace_w[sample] = w
            trace_alpha[sample] = alpha
            trace_q[sample] = q * params.packet_bytes
            sample += 1
        if step == steps:
            break

        p_now = 1.0 if q > k_pkts else 0.0
        hist_p[step % (delay_steps + 1)] = p_now
        pd = hist_p[(step - delay_steps) % (delay_steps + 1)] if step >= delay_steps else 0.0

        rtt = params.rtt_base_s + q / capacity_pps
        dw = 1.0 / rtt - w * alpha / (2.0 * rtt) * pd
        dalpha = params.g / rtt * (pd - alpha)
        dq = n * w / rtt - capacity_pps

        w = max(1.0, w + dt_s * dw)
        alpha = min(1.0, max(0.0, alpha + dt_s * dalpha))
        q = max(0.0, q + dt_s * dq)

    return DctcpTrace(
        times_s=times[:sample],
        window_pkts=trace_w[:sample],
        alpha=trace_alpha[:sample],
        queue_bytes=trace_q[:sample],
    )
