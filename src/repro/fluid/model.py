"""The DCQCN fluid model — Equations (5)-(9) of the paper.

State per flow: current rate ``R_C``, target rate ``R_T`` and the
congestion estimate ``alpha``; shared state: the bottleneck queue
``q``.  All feedback terms are evaluated at ``t - tau`` (the control
loop delay: RTT plus the NP's CNP generation interval; the paper uses
50 µs, the worst case).

The equations, in the notation of Tables 1-2 (rates in packets/sec,
queue in packets, ``B`` in packets):

* marking (Eq 5)::

      p(q) = 0                          q <= Kmin
             (q-Kmin)/(Kmax-Kmin)*Pmax  Kmin < q <= Kmax
             1                          q > Kmax

* queue (Eq 6 / 11):   dq/dt = sum_i R_C^i - C

* alpha (Eq 7):        dalpha/dt = g/tau' * [(1-(1-p)^(tau' R_C)) - alpha]

* target rate (Eq 8)::

      dR_T/dt = -(R_T-R_C)/tau * (1-(1-p)^(tau R_C))
                + R_AI (1-p)^(F B)       * R_C p / ((1-p)^(-B) - 1)
                + R_AI (1-p)^(F T R_C)   * R_C p / ((1-p)^(-T R_C) - 1)

* current rate (Eq 9)::

      dR_C/dt = -(R_C alpha)/(2 tau) * (1-(1-p)^(tau R_C))
                + (R_T-R_C)/2 * R_C p / ((1-p)^(-B) - 1)
                + (R_T-R_C)/2 * R_C p / ((1-p)^(-T R_C) - 1)

The last two terms of each rate equation are the byte-counter and
timer rate-increase event frequencies; as ``p -> 0`` they tend to
``R_C/B`` and ``1/T``.  The ``(1-p)^(F B)`` factors gate additive
increase behind F mark-free fast-recovery iterations.  Like the paper,
the hyper-increase phase is not modelled.

Everything is vectorized with numpy over an arbitrary *batch*
dimension, so a parameter sweep integrates all its configurations in
one pass (each batch element may have different Kmax, g, timer, ...).
Integration is fixed-step Euler with a ring-buffer history for the
delayed terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

import numpy as np

from repro import units
from repro.core.params import DCQCNParams

ArrayLike = Union[float, Sequence[float], np.ndarray]

#: below this marking probability the closed forms switch to their
#: p -> 0 limits to avoid 0/0.
_P_TINY = 1e-12


@dataclass
class FluidParams:
    """Parameters of the fluid model (Table 2), in wire units.

    Scalars or per-batch arrays; everything is broadcast against the
    batch dimension.  ``from_dcqcn`` converts a protocol-level
    :class:`repro.core.params.DCQCNParams` into fluid parameters.
    """

    capacity_bps: ArrayLike = units.gbps(40)
    packet_bytes: int = 1000
    num_flows: int = 2
    kmin_bytes: ArrayLike = units.kb(5)
    kmax_bytes: ArrayLike = units.kb(200)
    pmax: ArrayLike = 0.01
    g: ArrayLike = 1.0 / 256.0
    #: control loop delay tau (also the CNP interval) — 50 µs.
    tau_s: ArrayLike = 50e-6
    #: alpha update interval tau' — 55 µs.
    tau_prime_s: ArrayLike = 55e-6
    #: rate-increase timer T.
    timer_s: ArrayLike = 55e-6
    #: byte counter B, bytes.
    byte_counter_bytes: ArrayLike = units.mb(10)
    rai_bps: ArrayLike = units.mbps(40)
    fast_recovery_steps: int = 5
    min_rate_bps: float = units.mbps(1)

    @classmethod
    def from_dcqcn(
        cls,
        params: DCQCNParams,
        capacity_bps: float = units.gbps(40),
        num_flows: int = 2,
        packet_bytes: int = 1000,
        feedback_delay_s: Optional[float] = None,
    ) -> "FluidParams":
        """Derive fluid parameters from protocol parameters."""
        return cls(
            capacity_bps=capacity_bps,
            packet_bytes=packet_bytes,
            num_flows=num_flows,
            kmin_bytes=params.kmin_bytes,
            kmax_bytes=params.kmax_bytes,
            pmax=params.pmax,
            g=params.g,
            tau_s=(
                feedback_delay_s
                if feedback_delay_s is not None
                else params.cnp_interval_ns / units.NS_PER_SEC
            ),
            tau_prime_s=params.alpha_timer_ns / units.NS_PER_SEC,
            timer_s=params.rate_increase_timer_ns / units.NS_PER_SEC,
            byte_counter_bytes=params.byte_counter_bytes,
            rai_bps=params.rai_bps,
            fast_recovery_steps=params.fast_recovery_threshold,
            min_rate_bps=params.min_rate_bps,
        )

    def with_overrides(self, **kwargs) -> "FluidParams":
        return replace(self, **kwargs)


@dataclass
class FluidTrace:
    """Recorded trajectory of one integration.

    ``rc_bps`` has shape ``(samples, batch, num_flows)``; ``queue_bytes``
    and the other shared series have shape ``(samples, batch)``.  For a
    scalar (non-batched) run the batch axis has length 1.
    """

    times_s: np.ndarray
    rc_bps: np.ndarray
    rt_bps: np.ndarray
    alpha: np.ndarray
    queue_bytes: np.ndarray

    def flow_rate_gbps(self, flow: int, batch: int = 0) -> np.ndarray:
        return self.rc_bps[:, batch, flow] / 1e9

    def queue_kb(self, batch: int = 0) -> np.ndarray:
        return self.queue_bytes[:, batch] / 1e3

    def final_rates_bps(self) -> np.ndarray:
        """Last recorded R_C per (batch, flow)."""
        return self.rc_bps[-1]


def _marking_probability(
    q_pkts: np.ndarray,
    kmin_pkts: np.ndarray,
    kmax_pkts: np.ndarray,
    pmax: np.ndarray,
) -> np.ndarray:
    """Equation (5), vectorized; cut-off behaviour when kmin == kmax."""
    span = np.where(kmax_pkts > kmin_pkts, kmax_pkts - kmin_pkts, 1.0)
    linear = (q_pkts - kmin_pkts) / span * pmax
    p = np.where(q_pkts <= kmin_pkts, 0.0, np.where(q_pkts > kmax_pkts, 1.0, linear))
    return np.clip(p, 0.0, 1.0)


def simulate(
    params: FluidParams,
    duration_s: float,
    dt_s: float = 2e-6,
    rc0_bps: Optional[ArrayLike] = None,
    start_times_s: Optional[ArrayLike] = None,
    q0_bytes: ArrayLike = 0.0,
    record_every: int = 25,
) -> FluidTrace:
    """Integrate the fluid model.

    Parameters
    ----------
    params:
        Fluid parameters; any field may be a length-``batch`` array.
    duration_s, dt_s:
        Total simulated time and Euler step.
    rc0_bps:
        Initial current rates, shape ``(batch, num_flows)`` (or
        broadcastable).  Defaults to line rate for every flow (DCQCN
        flows start at line rate).
    start_times_s:
        Optional per-flow start times (shape broadcastable to
        ``(batch, num_flows)``); a flow contributes nothing and stays
        frozen until its start time, then begins at its ``rc0``.
    record_every:
        Sample the trajectory every this many steps.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    n = params.num_flows
    pkt_bits = params.packet_bytes * 8

    def as_batch(value) -> np.ndarray:
        return np.atleast_1d(np.asarray(value, dtype=float))

    capacity = as_batch(params.capacity_bps) / pkt_bits  # packets/sec
    kmin = as_batch(params.kmin_bytes) / params.packet_bytes
    kmax = as_batch(params.kmax_bytes) / params.packet_bytes
    pmax = as_batch(params.pmax)
    g = as_batch(params.g)
    tau = as_batch(params.tau_s)
    tau_prime = as_batch(params.tau_prime_s)
    timer = as_batch(params.timer_s)
    bc_pkts = as_batch(params.byte_counter_bytes) / params.packet_bytes
    rai = as_batch(params.rai_bps) / pkt_bits
    f_steps = params.fast_recovery_steps

    batch = max(
        arr.shape[0]
        for arr in (capacity, kmin, kmax, pmax, g, tau, tau_prime, timer, bc_pkts, rai)
    )

    def widen(arr: np.ndarray) -> np.ndarray:
        return np.broadcast_to(arr, (batch,)).astype(float).copy()

    capacity, kmin, kmax, pmax, g = map(widen, (capacity, kmin, kmax, pmax, g))
    tau, tau_prime, timer, bc_pkts, rai = map(
        widen, (tau, tau_prime, timer, bc_pkts, rai)
    )

    line_rate = capacity[:, None].repeat(n, axis=1)  # flows cap at C
    min_rate = params.min_rate_bps / pkt_bits

    if rc0_bps is None:
        rc = line_rate.copy()
    else:
        rc = np.broadcast_to(
            np.asarray(rc0_bps, dtype=float) / pkt_bits, (batch, n)
        ).copy()
    rt = rc.copy()
    alpha = np.ones((batch, n))
    q = np.broadcast_to(
        np.asarray(q0_bytes, dtype=float) / params.packet_bytes, (batch,)
    ).copy()

    if start_times_s is None:
        started_at = np.zeros((batch, n))
    else:
        started_at = np.broadcast_to(
            np.asarray(start_times_s, dtype=float), (batch, n)
        ).copy()

    steps = int(round(duration_s / dt_s))
    # delayed-argument ring buffers (max delay governs length)
    delay_steps = np.maximum(1, np.round(tau / dt_s).astype(int))
    max_delay = int(delay_steps.max())
    hist_p = np.zeros((max_delay + 1, batch))
    hist_rc = np.zeros((max_delay + 1, batch, n))
    batch_index = np.arange(batch)

    sample_count = steps // record_every + 1
    times = np.empty(sample_count)
    trace_rc = np.empty((sample_count, batch, n))
    trace_rt = np.empty((sample_count, batch, n))
    trace_alpha = np.empty((sample_count, batch, n))
    trace_q = np.empty((sample_count, batch))
    sample = 0

    tau_col = tau[:, None]
    tau_prime_col = tau_prime[:, None]
    timer_col = timer[:, None]
    bc_col = bc_pkts[:, None]
    rai_col = rai[:, None]
    g_col = g[:, None]

    # invariant per-step factors, hoisted out of the loop
    inv_bc_col = 1.0 / bc_col
    inv_timer_col = 1.0 / timer_col
    exponent_cap = 700.0  # beyond this exp() overflows; the rate is ~0
    all_started = bool(np.all(started_at <= 0.0))
    active = np.ones((batch, n))

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for step in range(steps + 1):
            t = step * dt_s
            if not all_started:
                active = (t >= started_at).astype(float)

            if step % record_every == 0 and sample < sample_count:
                times[sample] = t
                trace_rc[sample] = rc * active
                trace_rt[sample] = rt * active
                trace_alpha[sample] = alpha
                trace_q[sample] = q * params.packet_bytes
                sample += 1
            if step == steps:
                break

            p_now = _marking_probability(q, kmin, kmax, pmax)
            slot = step % (max_delay + 1)
            hist_p[slot] = p_now
            hist_rc[slot] = rc * active

            delayed_slot = (step - delay_steps) % (max_delay + 1)
            if step >= max_delay:
                pd = hist_p[delayed_slot, batch_index]
                rcd = hist_rc[delayed_slot, batch_index]
            else:
                usable = (step - delay_steps) >= 0
                pd = np.where(usable, hist_p[delayed_slot, batch_index], 0.0)
                rcd = np.where(
                    usable[:, None], hist_rc[delayed_slot, batch_index], 0.0
                )

            pd_col = pd[:, None]
            # ln(1-p); p is capped just below 1 to keep logs finite
            ln1m = np.log1p(-np.minimum(pd_col, 1.0 - 1e-12))
            marked = pd_col > _P_TINY

            p_cnp_tau = -np.expm1(tau_col * rcd * ln1m)  # 1-(1-p)^(tau rcd)
            cut_rate = p_cnp_tau / tau_col
            p_cnp_tau_prime = -np.expm1(tau_prime_col * rcd * ln1m)

            exp_b = np.minimum(-bc_col * ln1m, exponent_cap)
            exp_t = np.minimum(-timer_col * rcd * ln1m, exponent_cap)
            denom_b = np.expm1(exp_b)  # (1-p)^(-B) - 1
            denom_t = np.expm1(exp_t)
            rcd_pd = rcd * pd_col
            bc_rate = np.where(marked, rcd_pd / np.where(denom_b > 0, denom_b, 1.0), rcd * inv_bc_col)
            ti_rate = np.where(
                marked & (denom_t > 0),
                rcd_pd / np.where(denom_t > 0, denom_t, 1.0),
                inv_timer_col,
            )
            gate_b = np.exp(f_steps * bc_col * ln1m)  # (1-p)^(F B)
            gate_t = np.exp(f_steps * timer_col * rcd * ln1m)

            dalpha = g_col / tau_prime_col * (p_cnp_tau_prime - alpha)
            rt_minus_rc = rt - rc
            drt = -rt_minus_rc * cut_rate + rai_col * (gate_b * bc_rate + gate_t * ti_rate)
            drc = (
                -(rc * alpha * 0.5) * cut_rate
                + rt_minus_rc * 0.5 * (bc_rate + ti_rate)
            )
            dq = (rc * active).sum(axis=1) - capacity

            alpha = np.clip(alpha + dt_s * dalpha * active, 0.0, 1.0)
            rt = np.clip(rt + dt_s * drt * active, min_rate, line_rate)
            rc = np.clip(rc + dt_s * drc * active, min_rate, line_rate)
            q = np.maximum(q + dt_s * dq, 0.0)

    pkt_to_bps = pkt_bits
    return FluidTrace(
        times_s=times[:sample],
        rc_bps=trace_rc[:sample] * pkt_to_bps,
        rt_bps=trace_rt[:sample] * pkt_to_bps,
        alpha=trace_alpha[:sample],
        queue_bytes=trace_q[:sample],
    )


def simulate_two_flow_convergence(
    params: FluidParams,
    duration_s: float = 0.2,
    dt_s: float = 2e-6,
    fast_rate_bps: float = units.gbps(40),
    slow_rate_bps: float = units.gbps(5),
    record_every: int = 25,
) -> FluidTrace:
    """§5.2's convergence scenario: one flow at 40 Gbps, one at 5 Gbps.

    Both flows are active from t=0; the question the sweeps answer is
    whether (and how fast) the rate gap closes.
    """
    two_flow = params.with_overrides(num_flows=2)
    rc0 = np.array([fast_rate_bps, slow_rate_bps])
    return simulate(
        two_flow,
        duration_s=duration_s,
        dt_s=dt_s,
        rc0_bps=rc0,
        record_every=record_every,
    )
