"""Analytic host-stack cost model (paper §2.1, Figure 1).

The paper motivates RDMA by measuring a software TCP stack against
RoCEv2 on two Xeon E5-2660 boxes (16 cores at 2.2 GHz, 40 Gbps NICs,
Windows Server 2012R2): TCP burns >20% of all cores to hold 40 Gbps
and cannot saturate the link at small message sizes, while RDMA
saturates it from a single thread with ~0 server CPU and ~3% client
CPU, at a fraction of the latency.

We cannot rerun that testbed, so this module reproduces the *shape*
with a transparent cycle-accounting model (the substitution is logged
in DESIGN.md):

* a software stack pays per-byte cycles (copies, checksums), per-MTU
  cycles (interrupt/segment handling, amortized by LSO/RSS) and
  per-message cycles (syscalls, locking, scheduling);
* achievable throughput is the smaller of the line rate and what the
  CPU budget sustains; CPU utilization is the cycle cost of the
  achieved rate over the machine's total cycles;
* an RDMA NIC pays a small per-message doorbell/completion cost on the
  client and nothing on the (single-sided WRITE/READ) server, with the
  NIC itself the only message-rate limit;
* latency decomposes into stack traversal, PCIe/DMA, wire and switch
  components; the software stack pays the traversal twice (send and
  receive side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro import units


@dataclass(frozen=True)
class HostSpec:
    """The testbed machines (Intel Xeon E5-2660, 40 Gbps NICs)."""

    cores: int = 16
    clock_hz: float = 2.2e9
    line_rate_bps: float = units.gbps(40)
    mtu_bytes: int = 1500

    @property
    def total_cycles_per_sec(self) -> float:
        return self.cores * self.clock_hz


@dataclass(frozen=True)
class TcpStackModel:
    """Software TCP with LSO/RSS/zero-copy enabled (the paper's best case).

    Default constants are calibrated so that the model reproduces the
    paper's headline numbers: >20% total CPU at 40 Gbps with 4 MB
    messages, CPU-bound (link unsaturated) below ~16 KB messages, and
    25.4 µs user-to-user latency for a 2 KB transfer.
    """

    spec: HostSpec = HostSpec()
    #: copies / checksum touching every byte (zero-copy leaves ~1)
    cycles_per_byte: float = 1.0
    #: per-MTU segment work surviving LSO batching
    cycles_per_packet: float = 800.0
    #: syscalls, socket locking, scheduling per application message
    cycles_per_message: float = 60_000.0
    #: one-way stack traversal latency (µs) per side
    stack_traversal_us: float = 11.3
    wire_and_switch_us: float = 2.4

    def cycles_per_message_of(self, message_bytes: int) -> float:
        """Total CPU cycles to move one message through the stack."""
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        packets = -(-message_bytes // self.spec.mtu_bytes)
        return (
            self.cycles_per_message
            + packets * self.cycles_per_packet
            + message_bytes * self.cycles_per_byte
        )

    def throughput_bps(self, message_bytes: int) -> float:
        """Achievable goodput: min(line rate, CPU-sustainable rate)."""
        per_msg = self.cycles_per_message_of(message_bytes)
        cpu_msgs_per_sec = self.spec.total_cycles_per_sec / per_msg
        cpu_bps = cpu_msgs_per_sec * message_bytes * 8
        return min(self.spec.line_rate_bps, cpu_bps)

    def cpu_utilization(self, message_bytes: int) -> float:
        """Fraction of all cores consumed at the achieved throughput."""
        achieved = self.throughput_bps(message_bytes)
        msgs_per_sec = achieved / (message_bytes * 8)
        cycles = msgs_per_sec * self.cycles_per_message_of(message_bytes)
        return min(1.0, cycles / self.spec.total_cycles_per_sec)

    def latency_us(self, message_bytes: int = 2048) -> float:
        """User-to-user latency of a small transfer (warm connection)."""
        serialization = message_bytes * 8 / self.spec.line_rate_bps * 1e6
        return 2 * self.stack_traversal_us + self.wire_and_switch_us + serialization


@dataclass(frozen=True)
class RdmaStackModel:
    """RoCEv2 single-sided operations: the NIC does the protocol."""

    spec: HostSpec = HostSpec()
    #: client cycles to post a WQE and reap the completion
    client_cycles_per_message: float = 800.0
    #: single-sided READ/WRITE never interrupt the server CPU
    server_cycles_per_message: float = 0.0
    #: NIC message-rate ceiling (ConnectX-3 class hardware)
    nic_messages_per_sec: float = 5e6
    #: NIC + PCIe processing per side (µs)
    nic_traversal_us: float = 0.45
    wire_and_switch_us: float = 0.4
    #: two-sided SEND adds a receive-side completion + WQE management
    send_extra_us: float = 1.1

    def throughput_bps(self, message_bytes: int) -> float:
        """A single QP saturates the link unless messages are tiny."""
        if message_bytes <= 0:
            raise ValueError("message size must be positive")
        nic_bps = self.nic_messages_per_sec * message_bytes * 8
        return min(self.spec.line_rate_bps, nic_bps)

    def client_cpu_utilization(self, message_bytes: int) -> float:
        achieved = self.throughput_bps(message_bytes)
        msgs = achieved / (message_bytes * 8)
        cycles = msgs * self.client_cycles_per_message
        return min(1.0, cycles / self.spec.total_cycles_per_sec)

    def server_cpu_utilization(self, message_bytes: int) -> float:
        achieved = self.throughput_bps(message_bytes)
        msgs = achieved / (message_bytes * 8)
        cycles = msgs * self.server_cycles_per_message
        return min(1.0, cycles / self.spec.total_cycles_per_sec)

    def latency_us(self, message_bytes: int = 2048, operation: str = "write") -> float:
        """User-to-user latency: 'read'/'write' (single-sided) or 'send'."""
        if operation not in ("read", "write", "send"):
            raise ValueError(f"unknown RDMA operation {operation!r}")
        serialization = message_bytes * 8 / self.spec.line_rate_bps * 1e6
        base = 2 * self.nic_traversal_us + self.wire_and_switch_us + serialization
        if operation == "send":
            base += self.send_extra_us
        return base


@dataclass(frozen=True)
class StackComparison:
    """One Figure 1 row: both stacks at one message size."""

    message_bytes: int
    tcp_throughput_gbps: float
    tcp_cpu_pct: float
    rdma_throughput_gbps: float
    rdma_client_cpu_pct: float
    rdma_server_cpu_pct: float


def compare_stacks(
    message_sizes: Sequence[int] = (
        units.kb(4),
        units.kb(16),
        units.kb(64),
        units.kb(256),
        units.mb(1),
        units.mb(4),
    ),
    tcp: TcpStackModel = TcpStackModel(),
    rdma: RdmaStackModel = RdmaStackModel(),
) -> Dict[int, StackComparison]:
    """Figure 1(a)/(b): throughput and CPU across message sizes."""
    rows = {}
    for size in message_sizes:
        rows[size] = StackComparison(
            message_bytes=size,
            tcp_throughput_gbps=tcp.throughput_bps(size) / 1e9,
            tcp_cpu_pct=tcp.cpu_utilization(size) * 100,
            rdma_throughput_gbps=rdma.throughput_bps(size) / 1e9,
            rdma_client_cpu_pct=rdma.client_cpu_utilization(size) * 100,
            rdma_server_cpu_pct=rdma.server_cpu_utilization(size) * 100,
        )
    return rows
