"""Host stack cost models (TCP vs RDMA) behind the paper's Figure 1."""

from repro.hoststack.model import (
    HostSpec,
    TcpStackModel,
    RdmaStackModel,
    StackComparison,
    compare_stacks,
)

__all__ = [
    "HostSpec",
    "TcpStackModel",
    "RdmaStackModel",
    "StackComparison",
    "compare_stacks",
]
