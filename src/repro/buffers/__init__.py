"""Buffer-threshold analysis from paper §4.

Computes PFC headroom, PFC trigger thresholds (static and dynamic) and
the ECN marking threshold bound that together guarantee ECN fires
before PFC on a shared-buffer switch.
"""

from repro.buffers.thresholds import (
    SwitchProfile,
    headroom_bytes,
    static_pfc_threshold_bound,
    dynamic_pfc_threshold,
    ecn_threshold_bound_static,
    ecn_threshold_bound_dynamic,
    ThresholdPlan,
    plan_thresholds,
)

__all__ = [
    "SwitchProfile",
    "headroom_bytes",
    "static_pfc_threshold_bound",
    "dynamic_pfc_threshold",
    "ecn_threshold_bound_static",
    "ecn_threshold_bound_dynamic",
    "ThresholdPlan",
    "plan_thresholds",
]
