"""Switch buffer threshold calculations (paper §4).

Correct DCQCN operation needs two properties from the switch:

1. PFC must not fire *before* ECN has had a chance to signal the
   senders (otherwise DCQCN never engages and PFC's congestion
   spreading returns), and
2. PFC must fire *before* the buffer overflows (RoCEv2 assumes a
   lossless fabric).

The paper derives three thresholds for a shared-buffer switch like the
Arista 7050QX32 (Broadcom Trident II: ``B = 12 MB`` shared buffer,
``n = 32`` full-duplex 40 Gbps ports, 8 PFC priorities):

* ``t_flight`` — headroom reserved per (port, priority) to absorb the
  frames that arrive between sending PAUSE and the upstream actually
  stopping (22.4 KB for 40 GbE with 1000-byte MTU, per the 802.1Qbb
  worst-case guidelines).
* ``t_PFC`` — ingress-queue size at which PAUSE is sent.  The static
  upper bound is ``(B - 8 n t_flight) / (8 n)`` = 24.47 KB.  Trident II
  also supports a *dynamic* threshold
  ``t_PFC = beta (B - 8 n t_flight - s) / 8`` where ``s`` is the
  currently occupied shared buffer.
* ``t_ECN`` — egress-queue depth at which ECN marking starts
  (``Kmin``).  The worst case is all egress traffic funneling from one
  ingress, giving ``t_PFC > n * t_ECN``.  With the static bound that
  yields an infeasible 0.76 KB (< 1 MTU); with the dynamic threshold,
  ``t_ECN < beta (B - 8 n t_flight) / (8 n (beta + 1))`` = 21.75 KB at
  ``beta = 8``, which comfortably admits the deployed Kmin of 5 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units

#: Per-port per-priority worst-case headroom for 40GbE, 1000-byte MTU,
#: following the 802.1Qbb accounting the paper cites [8]: packets in
#: flight on the wire when PAUSE is emitted, the frame the upstream has
#: already committed to transmitting, the PAUSE frame's own
#: serialization, and upstream response latency.
DEFAULT_HEADROOM_BYTES = units.kb(22.4)


@dataclass(frozen=True)
class SwitchProfile:
    """Physical parameters of a shared-buffer switch."""

    buffer_bytes: int = units.mb(12)
    num_ports: int = 32
    num_priorities: int = 8
    headroom_bytes: int = DEFAULT_HEADROOM_BYTES
    mtu_bytes: int = 1000

    def __post_init__(self) -> None:
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")
        if self.num_ports <= 0 or self.num_priorities <= 0:
            raise ValueError("port/priority counts must be positive")
        if self.headroom_bytes < 0:
            raise ValueError("headroom cannot be negative")
        if self.total_headroom_bytes >= self.buffer_bytes:
            raise ValueError(
                "headroom reservation exceeds the buffer: "
                f"{self.total_headroom_bytes} >= {self.buffer_bytes}"
            )

    @property
    def total_headroom_bytes(self) -> int:
        """Headroom reserved across all (port, priority) pairs."""
        return self.num_priorities * self.num_ports * self.headroom_bytes

    @property
    def shared_pool_bytes(self) -> int:
        """Buffer remaining for shared use after headroom reservation."""
        return self.buffer_bytes - self.total_headroom_bytes


def headroom_bytes(
    link_rate_bps: float,
    cable_delay_ns: int,
    mtu_bytes: int,
    pause_response_ns: int = 0,
) -> int:
    """First-principles headroom (t_flight) for one (port, priority).

    Worst case absorbed while a PAUSE takes effect:

    * the frame this switch had already begun transmitting cannot be
      abandoned — up to one MTU of delay before the PAUSE even starts
      onto the wire, during which data keeps arriving;
    * the PAUSE frame's own serialization (64 B);
    * twice the cable propagation delay (PAUSE travels up, in-flight
      bits keep arriving down);
    * the frame the upstream had already committed to when the PAUSE
      arrived (one MTU), plus its response latency.

    With 40 GbE, a ~100 m cable and 1000 B MTU this lands near the
    paper's 22.4 KB.
    """
    if link_rate_bps <= 0:
        raise ValueError("link_rate_bps must be positive")
    byte_time_ns = 8 * units.NS_PER_SEC / link_rate_bps
    delay_ns = (
        units.serialization_time_ns(mtu_bytes, link_rate_bps)  # frame in progress
        + units.serialization_time_ns(64, link_rate_bps)  # PAUSE itself
        + 2 * cable_delay_ns
        + pause_response_ns
    )
    arriving = delay_ns / byte_time_ns
    return int(arriving) + 2 * mtu_bytes  # + committed frame + quantization


def static_pfc_threshold_bound(profile: SwitchProfile) -> float:
    """Upper bound on a fixed t_PFC: ``(B - 8 n t_flight) / (8 n)``.

    Guarantees that even with every (port, priority) queue at
    threshold the buffer (minus headroom) cannot overflow.
    """
    n = profile.num_ports
    k = profile.num_priorities
    return profile.shared_pool_bytes / (k * n)


def dynamic_pfc_threshold(
    profile: SwitchProfile, occupied_bytes: float, beta: float
) -> float:
    """Trident II dynamic threshold: ``beta (B - 8 n t_flight - s) / 8``.

    ``occupied_bytes`` is ``s``, the shared buffer currently in use.
    A larger ``beta`` triggers PFC later (more room for ECN); the
    threshold shrinks as the buffer fills, preserving losslessness.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    free = profile.shared_pool_bytes - occupied_bytes
    return max(0.0, beta * free / profile.num_priorities)


def ecn_threshold_bound_static(profile: SwitchProfile) -> float:
    """t_ECN bound under a static t_PFC: ``t_PFC / n``.

    For the paper's switch this is 0.76 KB — below one MTU, hence
    infeasible, which is why the dynamic threshold matters.
    """
    return static_pfc_threshold_bound(profile) / profile.num_ports


def ecn_threshold_bound_dynamic(profile: SwitchProfile, beta: float) -> float:
    """t_ECN bound under the dynamic threshold (paper §4):

    ``t_ECN < beta (B - 8 n t_flight) / (8 n (beta + 1))``.

    Derivation: just before ECN triggers anywhere, every egress queue
    is below t_ECN, so ``s <= n * t_ECN``; requiring
    ``t_PFC(s) > n * t_ECN`` at that point gives the bound.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    n = profile.num_ports
    k = profile.num_priorities
    return beta * profile.shared_pool_bytes / (k * n * (beta + 1))


@dataclass(frozen=True)
class ThresholdPlan:
    """A complete, checked threshold configuration for one switch."""

    profile: SwitchProfile
    beta: float
    headroom_bytes: int
    static_pfc_bound_bytes: float
    ecn_bound_static_bytes: float
    ecn_bound_dynamic_bytes: float
    kmin_bytes: int

    @property
    def ecn_before_pfc(self) -> bool:
        """True when the chosen Kmin respects the dynamic bound."""
        return self.kmin_bytes < self.ecn_bound_dynamic_bytes

    @property
    def kmin_feasible(self) -> bool:
        """A marking threshold below one MTU cannot be configured."""
        return self.kmin_bytes >= self.profile.mtu_bytes


def plan_thresholds(
    profile: SwitchProfile = SwitchProfile(),
    beta: float = 8.0,
    kmin_bytes: int = units.kb(5),
) -> ThresholdPlan:
    """Compute every §4 quantity for a switch profile.

    With the defaults this reproduces the paper's numbers:
    t_PFC <= 24.47 KB, static t_ECN bound 0.76 KB (infeasible),
    dynamic t_ECN bound 21.75 KB at beta = 8.
    """
    return ThresholdPlan(
        profile=profile,
        beta=beta,
        headroom_bytes=profile.headroom_bytes,
        static_pfc_bound_bytes=static_pfc_threshold_bound(profile),
        ecn_bound_static_bytes=ecn_threshold_bound_static(profile),
        ecn_bound_dynamic_bytes=ecn_threshold_bound_dynamic(profile, beta),
        kmin_bytes=kmin_bytes,
    )
