"""Content-hash result caching for simulation cells.

A cell is a pure function of its keyword arguments plus the code that
implements it, so its result can be cached under

    sha256(fn path + canonical-JSON kwargs + source fingerprint)

in ``results/.cache/<key>.json``.  The fingerprint covers every
``*.py`` file in the ``repro`` package: any code change invalidates
the whole cache, which keeps cached tables byte-identical to freshly
computed ones without tracking fine-grained dependencies.

``REPRO_CACHE=off`` disables the cache; ``REPRO_RESULTS_DIR`` moves it
(together with the benchmark tables it sits beside).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Any, Mapping, Optional

#: environment variable toggling the result cache ("on"/"off")
CACHE_ENV = "REPRO_CACHE"

#: environment variable relocating results (and the cache under them)
RESULTS_ENV = "REPRO_RESULTS_DIR"

#: sentinel distinguishing "no cached value" from a cached ``None``
MISS = object()

_fingerprint: Optional[str] = None


def results_dir() -> Path:
    """Directory where benchmarks drop their regenerated tables."""
    root = Path(os.environ.get(RESULTS_ENV, "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def cache_dir() -> Path:
    """Directory holding cached cell results."""
    path = results_dir() / ".cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def enabled() -> bool:
    """Whether caching is active (``REPRO_CACHE`` defaults to on)."""
    value = os.environ.get(CACHE_ENV, "on").lower()
    if value not in ("on", "off"):
        raise ValueError(f"{CACHE_ENV} must be 'on' or 'off', got {value!r}")
    return value == "on"


def code_fingerprint() -> str:
    """Hash of every ``repro/*.py`` source file, computed once per process."""
    global _fingerprint
    if _fingerprint is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _fingerprint = digest.hexdigest()
    return _fingerprint


def cell_key(fn: str, kwargs: Mapping[str, Any]) -> str:
    """Cache key for one cell: fn path + kwargs + code fingerprint."""
    payload = json.dumps(
        {"fn": fn, "kwargs": kwargs, "code": code_fingerprint()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def load(fn: str, kwargs: Mapping[str, Any]) -> Any:
    """The cached result for a cell, or :data:`MISS`."""
    path = cache_dir() / f"{cell_key(fn, kwargs)}.json"
    if not path.exists():
        return MISS
    try:
        return json.loads(path.read_text())["result"]
    except (json.JSONDecodeError, KeyError):
        warnings.warn(f"discarding corrupt cache entry {path.name}", stacklevel=2)
        return MISS  # corrupt or half-written entry: recompute
    except OSError:
        return MISS  # vanished or unreadable: recompute


def store(fn: str, kwargs: Mapping[str, Any], result: Any) -> Optional[Path]:
    """Persist one cell's result atomically; returns the path written.

    The cache is an optimization, never a correctness dependency: a
    result that cannot be serialized or written is computed-but-not
    -cached — one warning, ``None`` returned, and the run goes on.
    """
    path = cache_dir() / f"{cell_key(fn, kwargs)}.json"
    try:
        payload = json.dumps({"fn": fn, "kwargs": kwargs, "result": result})
    except (TypeError, ValueError) as exc:
        warnings.warn(f"cache store skipped for {fn}: {exc}", stacklevel=2)
        return None
    tmp = None
    try:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
        tmp = None
    except OSError as exc:
        warnings.warn(f"cache store failed for {fn}: {exc}", stacklevel=2)
        return None
    finally:
        if tmp is not None and os.path.exists(tmp):
            os.unlink(tmp)
    return path
