"""Unified scenario/runner layer for the experiment suite.

The pieces (see DESIGN.md §4):

* :mod:`repro.runner.scale` — run-scale policy (``REPRO_SCALE``:
  smoke / quick / full) and the deterministic seed schedule.
* :mod:`repro.runner.executor` — :class:`Cell` fan-out across worker
  processes (``REPRO_JOBS``), input-order results, serial fallback.
* :mod:`repro.runner.cache` — content-hash result caching under
  ``results/.cache/`` (``REPRO_CACHE``).
* :mod:`repro.runner.scenario` — declarative :class:`Scenario` /
  :class:`FlowSpec` specs and the generic scenario cell.
* :mod:`repro.runner.results` — JSON-serializable :class:`RunResult`
  / :class:`SweepResult` schema and table rendering.
* :mod:`repro.runner.registry` — the :data:`REGISTRY` of experiments
  behind ``python -m repro``.

Serial (``jobs=1``) and parallel (``jobs=N``) execution are
bit-identical: cells are pure functions of (spec, seed), results are
JSON-normalized either way, and ordering follows the input list, not
completion order.
"""

from repro.runner.cache import results_dir
from repro.runner.executor import (
    Cell,
    ExecutionStats,
    JOBS_ENV,
    default_jobs,
    execute,
)
from repro.runner.registry import (
    REGISTRY,
    SCENARIOS,
    Experiment,
    ExperimentRegistry,
    NamedScenario,
    ScenarioRegistry,
    experiment,
)
from repro.runner.results import RunResult, SweepPoint, SweepResult, format_table
from repro.runner.scale import SCALE_ENV, derive_seed, pick, seeds_for
from repro.runner.scenario import (
    FlowSpec,
    Scenario,
    run_scenario,
    run_scenario_cell,
    run_scenario_inline,
    run_sweep,
    scenario_cells,
)

__all__ = [
    "Cell",
    "ExecutionStats",
    "Experiment",
    "ExperimentRegistry",
    "FlowSpec",
    "JOBS_ENV",
    "NamedScenario",
    "REGISTRY",
    "RunResult",
    "SCALE_ENV",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "SweepPoint",
    "SweepResult",
    "default_jobs",
    "derive_seed",
    "execute",
    "experiment",
    "format_table",
    "pick",
    "results_dir",
    "run_scenario",
    "run_scenario_cell",
    "run_scenario_inline",
    "run_sweep",
    "scenario_cells",
    "seeds_for",
]
