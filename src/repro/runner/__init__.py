"""Unified scenario/runner layer for the experiment suite.

The pieces (see DESIGN.md §4):

* :mod:`repro.runner.scale` — run-scale policy (``REPRO_SCALE``:
  smoke / quick / full) and the deterministic seed schedule.
* :mod:`repro.runner.executor` — :class:`Cell` fan-out across worker
  processes (``REPRO_JOBS``), input-order results, serial fallback.
* :mod:`repro.runner.cache` — content-hash result caching under
  ``results/.cache/`` (``REPRO_CACHE``).
* :mod:`repro.runner.resilience` — execution hardening policy: run
  timeouts (``REPRO_RUN_TIMEOUT``), bounded retry (``REPRO_RETRIES``)
  and sweep checkpoint/resume (``REPRO_CHECKPOINT`` /
  ``REPRO_RESUME``) under ``results/.checkpoints/``.
* :mod:`repro.runner.scenario` — declarative :class:`Scenario` /
  :class:`FlowSpec` specs and the generic scenario cell.
* :mod:`repro.runner.results` — JSON-serializable :class:`RunResult`
  / :class:`SweepResult` schema and table rendering.
* :mod:`repro.runner.registry` — the :data:`REGISTRY` of experiments
  behind ``python -m repro``.

Serial (``jobs=1``) and parallel (``jobs=N``) execution are
bit-identical: cells are pure functions of (spec, seed), results are
JSON-normalized either way, and ordering follows the input list, not
completion order.
"""

from repro.runner.cache import results_dir
from repro.runner.executor import (
    Cell,
    ExecutionStats,
    JOBS_ENV,
    default_jobs,
    execute,
)
from repro.runner.registry import (
    REGISTRY,
    SCENARIOS,
    Experiment,
    ExperimentRegistry,
    NamedScenario,
    ScenarioRegistry,
    experiment,
)
from repro.runner.resilience import (
    CHECKPOINT_ENV,
    RESUME_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    RetryPolicy,
    SweepCheckpoint,
    checkpoints_dir,
    default_timeout_s,
)
from repro.runner.results import (
    RunFailure,
    RunResult,
    SweepPoint,
    SweepResult,
    format_table,
)
from repro.runner.scale import SCALE_ENV, derive_seed, pick, seeds_for
from repro.runner.scenario import (
    FlowSpec,
    Scenario,
    run_scenario,
    run_scenario_cell,
    run_scenario_inline,
    run_sweep,
    scenario_cells,
)

__all__ = [
    "CHECKPOINT_ENV",
    "Cell",
    "ExecutionStats",
    "Experiment",
    "ExperimentRegistry",
    "FlowSpec",
    "JOBS_ENV",
    "NamedScenario",
    "REGISTRY",
    "RESUME_ENV",
    "RETRIES_ENV",
    "RetryPolicy",
    "RunFailure",
    "RunResult",
    "SCALE_ENV",
    "SCENARIOS",
    "Scenario",
    "ScenarioRegistry",
    "SweepCheckpoint",
    "SweepPoint",
    "SweepResult",
    "TIMEOUT_ENV",
    "checkpoints_dir",
    "default_jobs",
    "default_timeout_s",
    "derive_seed",
    "execute",
    "experiment",
    "format_table",
    "pick",
    "results_dir",
    "run_scenario",
    "run_scenario_cell",
    "run_scenario_inline",
    "run_sweep",
    "scenario_cells",
    "seeds_for",
]
