"""Declarative experiment scenarios.

A :class:`Scenario` is a pure description of one simulation: which
topology to build (by registered name), which greedy/paced flows to
open between which hosts, and how long to warm up and measure.  It
serializes to a JSON spec, which makes a (scenario, seed) pair a
:class:`~repro.runner.executor.Cell` — cacheable by content hash and
shippable to worker processes.

Host locators
-------------
``FlowSpec.src``/``dst`` are strings resolved against the built
topology:

* ``"<tor>:<index>"`` — host ``index`` under ToR ``tor`` on the
  three-tier Clos (e.g. ``"3:1"`` is the second host under T4); on a
  ``fabric`` topology the same form addresses host ``index`` under
  global edge switch ``tor``;
* ``"<pod>:<edge>:<index>"`` — pod-relative addressing on a
  ``fabric`` topology;
* a bare integer — position in the host list of ``single_switch``
  or in ``Fabric.all_hosts()`` (negative indices allowed, e.g.
  ``"-1"`` is the last host);
* otherwise — the host's name (``"H1"``, ``"R2"``, ...), which works
  on every topology.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro import units
from repro.runner.executor import Cell, execute
from repro.runner.results import RunFailure, RunResult, SweepPoint, SweepResult
from repro.sim import host as sim_host
from repro.telemetry import Telemetry, TelemetrySpec
from repro.telemetry.flowstats import collect_flow_stats

#: config dataclasses that may appear in ``topology_kwargs``
_KIND_KEY = "__kind__"


def _config_types() -> Dict[str, type]:
    from repro.buffers.thresholds import SwitchProfile
    from repro.core.params import DCQCNParams
    from repro.faults.plan import (
        CnpImpairment,
        ErrorBurst,
        FaultPlan,
        LinkFlap,
        PauseStorm,
        SlowReceiver,
        WatchdogConfig,
    )
    from repro.fabric import FabricSpec
    from repro.invariants import InvariantConfig
    from repro.shard.spec import ShardingSpec
    from repro.sim.nic import NicConfig
    from repro.sim.switch import SwitchConfig

    return {
        cls.__name__: cls
        for cls in (
            DCQCNParams,
            SwitchProfile,
            SwitchConfig,
            NicConfig,
            TelemetrySpec,
            FabricSpec,
            FaultPlan,
            LinkFlap,
            ErrorBurst,
            PauseStorm,
            CnpImpairment,
            SlowReceiver,
            WatchdogConfig,
            InvariantConfig,
            ShardingSpec,
        )
    }


def encode_value(value: Any) -> Any:
    """Recursively convert config objects / containers to JSON values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if type(value).__name__ not in _config_types():
            raise TypeError(
                f"cannot serialize {type(value).__name__} into a scenario spec"
            )
        encoded = {_KIND_KEY: type(value).__name__}
        for fld in dataclasses.fields(value):
            encoded[fld.name] = encode_value(getattr(value, fld.name))
        return encoded
    if isinstance(value, Mapping):
        return {str(k): encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__} into a scenario spec")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, Mapping):
        if _KIND_KEY in value:
            cls = _config_types()[value[_KIND_KEY]]
            kwargs = {
                k: decode_value(v) for k, v in value.items() if k != _KIND_KEY
            }
            return cls(**kwargs)
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


@dataclass(frozen=True)
class FlowSpec:
    """One flow of a scenario (see module docstring for locators).

    ``cc_params`` carries scalar per-controller overrides, forwarded
    verbatim to :meth:`~repro.sim.network.Network.add_flow` (each
    controller validates its own keys).  A non-greedy flow may instead
    be a *message probe*: ``message_bytes`` queues one message of that
    size at ``message_start_ns``, and the run records its completion
    time as the counter ``fct_ns.<name>`` (−1 if it did not finish
    inside the horizon).  ``message_count`` turns the probe into a
    closed-loop stream: each completion immediately queues the next
    transfer, back to back, the paper's Fig 16 benchmark-traffic shape;
    every transfer lands as its own row in ``RunResult.flow_stats``.
    """

    name: str
    src: str
    dst: str
    cc: str = "none"
    mtu_bytes: int = 1000
    start_ns: int = 0
    initial_rate_bps: Optional[float] = None
    greedy: bool = True
    cc_params: Optional[Dict[str, Any]] = None
    message_bytes: Optional[int] = None
    message_start_ns: int = 0
    message_count: int = 1

    def __post_init__(self) -> None:
        if self.cc_params is not None:
            for key, value in self.cc_params.items():
                if not isinstance(key, str):
                    raise TypeError(f"cc_params keys must be strings, got {key!r}")
                if not isinstance(value, (bool, int, float, str)):
                    raise TypeError(
                        f"cc_params[{key!r}] must be a scalar, "
                        f"got {type(value).__name__}"
                    )
        if self.message_bytes is not None:
            if self.message_bytes <= 0:
                raise ValueError("message_bytes must be positive")
            if self.greedy:
                raise ValueError(
                    "a message probe cannot also be greedy; "
                    "set greedy=False"
                )
        if self.message_start_ns < 0:
            raise ValueError("message_start_ns must be >= 0")
        if self.message_count < 1:
            raise ValueError("message_count must be >= 1")
        if self.message_count > 1 and self.message_bytes is None:
            raise ValueError("message_count needs message_bytes")


#: topology name -> builder; extended via :func:`register_topology`
TOPOLOGIES = (
    "three_tier_clos",
    "single_switch",
    "parking_lot",
    "dumbbell",
    "fabric",
)


@dataclass(frozen=True)
class Scenario:
    """A declarative experiment: topology + flows + timing."""

    topology: str
    flows: Tuple[FlowSpec, ...]
    warmup_ns: int = 0
    duration_ns: int = units.ms(10)
    topology_kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    #: optional telemetry request (trace level, sink, samplers); None
    #: means metrics-only — tracing off, no run-time samplers
    telemetry: Optional[TelemetrySpec] = None
    #: optional fault plan (:mod:`repro.faults`); installed after the
    #: network is built, so the plan is part of the cell spec — and
    #: therefore of the result-cache content hash
    faults: Optional[Any] = None
    #: optional invariant-guard request (an
    #: :class:`~repro.invariants.InvariantConfig`); part of the cell
    #: spec for the same cache-correctness reason as ``faults`` — a
    #: strict-mode run and an unguarded run are different cells
    invariants: Optional[Any] = None
    #: optional sharded-execution request (a
    #: :class:`~repro.shard.ShardingSpec`); only meaningful on
    #: ``fabric`` topologies — elsewhere the scenario runs serial.
    #: Sharded and serial results are identical by construction, but
    #: the spec still rides in the cell hash (an explicitly sharded
    #: scenario is a different cell)
    sharding: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if not self.flows:
            raise ValueError("a scenario needs at least one flow")
        names = [flow.name for flow in self.flows]
        if len(set(names)) != len(names):
            raise ValueError(f"flow names must be unique, got {names}")
        if self.warmup_ns < 0 or self.duration_ns <= 0:
            raise ValueError("need warmup_ns >= 0 and duration_ns > 0")
        if self.faults is not None:
            from repro.faults.plan import FaultPlan

            if not isinstance(self.faults, FaultPlan):
                raise TypeError(
                    f"faults must be a FaultPlan, got {type(self.faults).__name__}"
                )
        if self.invariants is not None:
            from repro.invariants import InvariantConfig

            if not isinstance(self.invariants, InvariantConfig):
                raise TypeError(
                    "invariants must be an InvariantConfig, "
                    f"got {type(self.invariants).__name__}"
                )
        if self.sharding is not None:
            from repro.shard.spec import ShardingSpec

            if not isinstance(self.sharding, ShardingSpec):
                raise TypeError(
                    "sharding must be a ShardingSpec, "
                    f"got {type(self.sharding).__name__}"
                )

    def spec(self) -> Dict[str, Any]:
        """The JSON-serializable form (cache key + worker transport)."""
        data = {
            "topology": self.topology,
            "label": self.label,
            "warmup_ns": self.warmup_ns,
            "duration_ns": self.duration_ns,
            "topology_kwargs": encode_value(dict(self.topology_kwargs)),
            "flows": [dataclasses.asdict(flow) for flow in self.flows],
            "telemetry": encode_value(self.telemetry),
            "faults": encode_value(self.faults),
            "invariants": encode_value(self.invariants),
        }
        # emitted only when set, so the content hashes — and therefore
        # the cached results — of every pre-existing scenario stand
        if self.sharding is not None:
            data["sharding"] = encode_value(self.sharding)
        return data

    @classmethod
    def from_spec(cls, data: Mapping[str, Any]) -> "Scenario":
        return cls(
            topology=data["topology"],
            label=data.get("label", ""),
            warmup_ns=data["warmup_ns"],
            duration_ns=data["duration_ns"],
            topology_kwargs=decode_value(data.get("topology_kwargs", {})),
            flows=tuple(FlowSpec(**flow) for flow in data["flows"]),
            telemetry=decode_value(data.get("telemetry")),
            faults=decode_value(data.get("faults")),
            invariants=decode_value(data.get("invariants")),
            sharding=decode_value(data.get("sharding")),
        )


def _host_by_name(net, name: str):
    for host in net.hosts:
        if host.name == name:
            return host
    raise KeyError(f"no host named {name!r} in this topology")


def build_scenario_network(scenario: Scenario, seed: int):
    """Build the topology; returns ``(net, resolve, probes)``.

    ``resolve`` maps a locator string to a Host; ``probes`` maps extra
    counter names to zero-argument callables sampled at end of run.
    """
    from repro.sim import topology as topo

    kwargs = dict(scenario.topology_kwargs)
    if scenario.topology == "three_tier_clos":
        spec = topo.three_tier_clos(seed=seed, **kwargs)

        def resolve(locator: str):
            if ":" in locator:
                tor, index = locator.split(":")
                return spec.host(int(tor), int(index))
            return _host_by_name(spec.net, locator)

        return spec.net, resolve, {"spine_rx_pause": spec.spine_pause_frames}

    if scenario.topology == "single_switch":
        net, _, hosts = topo.single_switch(seed=seed, **kwargs)

        def resolve(locator: str):
            try:
                return hosts[int(locator)]
            except ValueError:
                return _host_by_name(net, locator)

        return net, resolve, {}

    if scenario.topology == "parking_lot":
        net, hosts = topo.parking_lot(seed=seed, **kwargs)
        return net, lambda locator: hosts[locator], {}

    if scenario.topology == "dumbbell":
        net, _, _ = topo.dumbbell(seed=seed, **kwargs)
        return net, lambda locator: _host_by_name(net, locator), {}

    if scenario.topology == "fabric":
        from repro.fabric import build_fabric

        fabric = build_fabric(
            spec=kwargs.pop("spec", None), seed=seed, **kwargs
        )
        flat_hosts = fabric.all_hosts()

        def resolve(locator: str):
            parts = locator.split(":")
            if len(parts) == 3:
                return fabric.host_in_pod(
                    int(parts[0]), int(parts[1]), int(parts[2])
                )
            if len(parts) == 2:
                return fabric.host(int(parts[0]), int(parts[1]))
            try:
                return flat_hosts[int(locator)]
            except ValueError:
                return _host_by_name(fabric.net, locator)

        return fabric.net, resolve, fabric.pause_probes()

    raise ValueError(f"unknown topology {scenario.topology!r}")


def _install_samplers(
    net, scenario: Scenario, telemetry: Telemetry, local_names=None
) -> None:
    """Install the samplers a :class:`TelemetrySpec` asks for.

    Queue samplers watch every egress port of every switch and feed the
    shared ``switch.queue_bytes`` histogram; the rate sampler watches
    every flow.  All stop at the scenario horizon (``warmup +
    duration``) — they must not keep the event loop alive forever.

    ``local_names`` (repro.shard) restricts sampling to one shard's
    devices and to flows delivering there; merged sample histograms are
    per-shard aggregates, not the serial global aggregate (see
    DESIGN.md §14 for this documented divergence).
    """
    spec = scenario.telemetry
    if spec is None:
        return
    from repro.sim.monitor import QueueSampler, RateSampler, TierQueueSampler

    def local(name: str) -> bool:
        return local_names is None or name in local_names

    stop_ns = scenario.warmup_ns + scenario.duration_ns
    if spec.queue_sample_ns is not None:
        # Only "fabric" scenarios switch to tier aggregation: the Fig 2
        # clos is also fabric-built, but its figures depend on the
        # per-port sample stream staying exactly as before.
        if scenario.topology == "fabric" and net.fabric is not None:
            # fabric-scale: one O(switches) aggregate probe per tier
            # instead of tens of thousands of per-port probes
            for tier, switches in net.fabric.tiers().items():
                switches = [sw for sw in switches if local(sw.name)]
                if not switches:
                    continue
                TierQueueSampler(
                    net.engine,
                    tier,
                    switches,
                    interval_ns=spec.queue_sample_ns,
                    stop_ns=stop_ns,
                    tracer=telemetry.tracer,
                    histogram=telemetry.metrics.histogram(
                        f"switch.occupied_bytes.{tier}"
                    ),
                )
        else:
            histogram = telemetry.metrics.histogram("switch.queue_bytes")
            for switch in net.switches:
                if not local(switch.name):
                    continue
                for port in switch.ports:
                    QueueSampler(
                        net.engine,
                        switch,
                        port.index,
                        interval_ns=spec.queue_sample_ns,
                        stop_ns=stop_ns,
                        tracer=telemetry.tracer,
                        histogram=histogram,
                    )
    if spec.rate_sample_ns is not None:
        # goodput accrues at the destination NIC, so a flow is sampled
        # in its destination's shard
        flows = [f for f in net.flows if local(f.dst.name)]
        if flows:
            RateSampler(
                net.engine,
                flows,
                interval_ns=spec.rate_sample_ns,
                stop_ns=stop_ns,
                tracer=telemetry.tracer,
            )


def run_scenario_inline(
    scenario: Scenario,
    seed: int,
    telemetry: Optional[Telemetry] = None,
    profiler=None,
    _shard=None,
):
    """Run one repetition in this process; returns ``(RunResult, Network)``.

    The in-process twin of :func:`run_scenario_cell` for callers that
    need the live :class:`~repro.sim.network.Network` (and its
    telemetry) after the run — the CLI ``trace`` / ``profile`` commands
    and tests.  ``telemetry`` overrides the context built from
    ``scenario.telemetry``; the caller owns closing its sink.
    ``profiler`` (a :class:`~repro.telemetry.SchedulerProfiler`) is
    installed on the engine before the run starts.

    Sharded execution: when the scenario (or ``REPRO_SHARDS``) asks for
    shards and the topology supports it, the run is delegated to
    :mod:`repro.shard` and the returned network is ``None`` (the
    devices lived in worker processes).  ``_shard`` is the internal
    worker-side handle (a :class:`repro.shard.boundary.ShardContext`):
    with it set, this function builds the full network but drives only
    the shard's own devices, syncing at conservative-lookahead barriers.
    """
    if telemetry is None and profiler is None and _shard is None:
        from repro.shard.runner import maybe_run_sharded

        sharded = maybe_run_sharded(scenario, seed)
        if sharded is not None:
            return sharded, None
    if telemetry is None:
        telemetry = Telemetry.from_spec(scenario.telemetry, seed=seed)
    net, resolve, probes = build_scenario_network(scenario, seed)
    net.attach_telemetry(telemetry)

    def drives(host) -> bool:
        """Is this host simulated by this process (always, when serial)?"""
        return _shard is None or host.name in _shard.local_names

    guard = None
    if scenario.invariants is not None:
        from repro.invariants import InvariantGuard

        # Before flows are added: add_flow propagates the guard to each
        # RP, and install() rejects mis-tuned buffer configs up front.
        guard = InvariantGuard(scenario.invariants, telemetry=telemetry)
        if _shard is not None:
            guard.restrict(_shard.local_names, fleet=_shard.shard_id == 0)
        guard.install(net, horizon_ns=scenario.warmup_ns + scenario.duration_ns)
    if profiler is not None:
        profiler.install(net.engine)
    flows = []
    probes_by_flow = []
    for flow_spec in scenario.flows:
        kwargs: Dict[str, Any] = {
            "cc": flow_spec.cc,
            "mtu_bytes": flow_spec.mtu_bytes,
            "start_ns": flow_spec.start_ns,
        }
        if flow_spec.initial_rate_bps is not None:
            kwargs["initial_rate_bps"] = flow_spec.initial_rate_bps
        if flow_spec.cc_params:
            kwargs["cc_params"] = flow_spec.cc_params
        src = resolve(flow_spec.src)
        # every shard *builds* every flow (device ids, flow ids and rng
        # draws must match the serial build), but only the shard owning
        # the source host *drives* it — an undriven flow schedules no
        # events and its replicated controller stays quiescent
        flow = net.add_flow(src, resolve(flow_spec.dst), **kwargs)
        if not drives(src):
            flows.append((flow_spec.name, flow))
            continue
        if flow_spec.greedy:
            flow.set_greedy()
        elif flow_spec.message_bytes is not None:
            net.engine.schedule_at(
                flow_spec.message_start_ns,
                flow.send_message,
                flow_spec.message_bytes,
            )
            if flow_spec.message_count > 1:
                # closed loop: queue the next transfer the instant one
                # completes, until the count is exhausted
                def _next_message(
                    done_flow,
                    _message,
                    size=flow_spec.message_bytes,
                    budget=flow_spec.message_count,
                ):
                    if done_flow.messages_completed < budget:
                        done_flow.send_message(size)

                flow.on_message_complete = _next_message
            probes_by_flow.append((flow_spec.name, flow))
        flows.append((flow_spec.name, flow))
    _install_samplers(
        net,
        scenario,
        telemetry,
        local_names=None if _shard is None else _shard.local_names,
    )
    fault_runtime = None
    if scenario.faults is not None:
        from repro.faults import install_plan

        fault_runtime = install_plan(
            net,
            scenario.faults,
            resolve,
            seed=seed,
            horizon_ns=scenario.warmup_ns + scenario.duration_ns,
            telemetry=telemetry,
            local_names=None if _shard is None else _shard.local_names,
        )

    if _shard is None:
        net.run_for(scenario.warmup_ns)
        before = {name: flow.bytes_delivered for name, flow in flows}
        net.run_for(scenario.duration_ns)
    else:
        _shard.bind(net)
        _shard.fault_runtime = fault_runtime
        before = {}

        def _snapshot_before() -> None:
            before.update((name, flow.bytes_delivered) for name, flow in flows)

        if scenario.warmup_ns == 0:
            _snapshot_before()
        _shard.run(
            scenario.warmup_ns,
            scenario.warmup_ns + scenario.duration_ns,
            on_warmup=_snapshot_before,
        )
    if fault_runtime is not None and _shard is None:
        # sharded workers export raw recovery state instead; the merge
        # step folds the union exactly once (see repro.shard.merge)
        fault_runtime.finalize()
    invariant_report: Dict[str, Any] = {}
    if guard is not None:
        guard.finalize()
        invariant_report = guard.report()
    if fault_runtime is not None and fault_runtime.watchdog is not None:
        invariant_report["watchdog"] = fault_runtime.watchdog.findings()

    flows_bps = {
        name: (flow.bytes_delivered - before[name]) * 8e9 / scenario.duration_ns
        for name, flow in flows
    }
    counters: Dict[str, float] = {
        "pause_frames": net.total_pause_frames_sent(),
        "drops": net.total_drops(),
    }
    for name, probe in probes.items():
        counters[name] = probe()
    for name, flow in probes_by_flow:
        fct = -1.0
        for message in flow.messages:
            if message.completed:
                fct = float(message.fct_ns())
                break
        counters[f"fct_ns.{name}"] = fct
    flow_stats: List[Dict[str, Any]] = []
    if sim_host.flowstats_enabled():
        rows = collect_flow_stats(net, {flow.flow_id: name for name, flow in flows})
        if _shard is not None:
            # rows are sender-side bookkeeping, so only the shard that
            # drives the source emits them; the one receiver-side field
            # (a greedy row's size_bytes = bytes delivered at the
            # destination) is patched in by the merge step
            driven = {f.flow_id for f in net.flows if drives(f.src)}
            rows = [row for row in rows if row.flow_id in driven]
        flow_stats = [row.to_json() for row in rows]
    result = RunResult(
        label=scenario.label,
        seed=seed,
        warmup_ns=scenario.warmup_ns,
        duration_ns=scenario.duration_ns,
        flows_bps=flows_bps,
        counters=counters,
        metrics=net.metrics_snapshot(),
        invariant_report=invariant_report,
        flow_stats=flow_stats,
    )
    return result, net


def run_scenario_cell(spec: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Execute one (scenario, seed) cell — the worker-side entry point."""
    scenario = Scenario.from_spec(spec)
    if scenario.sharding is not None:
        from repro.shard.runner import maybe_run_sharded

        # only an embedded ShardingSpec shards a *cached* cell: the
        # spec rides in the cell hash, while REPRO_SHARDS does not —
        # honoring the env var here would store shard-tagged results
        # under the serial cell's key.  (It still applies to the
        # never-cached inline commands: run/trace/bench.)
        # before building telemetry: a sharded run owns its workers'
        # sinks, and an unused parent-side jsonl sink would leak an
        # empty file
        sharded = maybe_run_sharded(scenario, seed)
        if sharded is not None:
            return sharded.to_json()
    telemetry = Telemetry.from_spec(scenario.telemetry, seed=seed)
    result, _ = run_scenario_inline(scenario, seed, telemetry=telemetry)
    telemetry.close()
    return result.to_json()


_CELL_FN = "repro.runner.scenario:run_scenario_cell"


def scenario_cells(scenario: Scenario, seeds: Sequence[int]) -> List[Cell]:
    """One executor cell per seed for ``scenario``."""
    spec = scenario.spec()
    return [Cell(_CELL_FN, {"spec": spec, "seed": seed}) for seed in seeds]


def run_scenario(
    scenario: Scenario,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> List[RunResult]:
    """Run ``scenario`` once per seed (parallel/cached per policy)."""
    values = execute(scenario_cells(scenario, seeds), jobs=jobs, cache=cache)
    return [RunResult.from_json(value) for value in values]


def run_sweep(
    parameter: str,
    scenarios: Mapping[Any, Scenario],
    seeds: Union[Sequence[int], Mapping[Any, Sequence[int]]],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> SweepResult:
    """Run one scenario per sweep value, fanning *all* cells at once.

    ``seeds`` is either one seed list shared by every point or a
    mapping from sweep value to its own seed list.

    The sweep runs under the hardened executor contract: a cell that
    times out, crashes its worker or raises (after retries) lands in
    ``SweepPoint.failures`` instead of aborting the sweep, and
    completed cells are checkpointed so an interrupted sweep can be
    resumed (``REPRO_RESUME=on`` / ``repro run ... --resume``).
    """
    cells: List[Cell] = []
    slices: List[Tuple[Any, int]] = []
    for value, scenario in scenarios.items():
        point_seeds = seeds[value] if isinstance(seeds, Mapping) else seeds
        point_cells = scenario_cells(scenario, point_seeds)
        slices.append((value, len(point_cells)))
        cells.extend(point_cells)

    values = execute(cells, jobs=jobs, cache=cache, collect_failures=True)
    result = SweepResult(parameter=parameter)
    cursor = 0
    for value, count in slices:
        point = SweepPoint(value=value)
        for v in values[cursor : cursor + count]:
            if isinstance(v, RunFailure):
                point.failures.append(v)
            else:
                point.runs.append(RunResult.from_json(v))
        cursor += count
        result.points.append(point)
    return result
