"""Structured, JSON-serializable experiment results.

:class:`RunResult` is the outcome of one simulation cell (one seed of
one scenario): per-flow mean throughput over the measurement window
plus whatever counters/samples the cell recorded.  :class:`SweepResult`
groups runs along one swept parameter.  Both round-trip through JSON,
which is what makes the result cache and the process-pool transport
exact: a cached table is byte-identical to a freshly computed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

#: JSON marker key distinguishing a :class:`RunFailure` from a result
FAILURE_KIND = "__run_failure__"

#: the failure taxonomy of the hardened executor
FAILURE_ERRORS = ("timeout", "crash", "exception", "invariant")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table matching the style used in EXPERIMENTS.md."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@dataclass
class RunFailure:
    """One cell that could not produce a result.

    The hardened executor (see :mod:`repro.runner.resilience`) records
    one of these — instead of aborting the sweep — when a cell times
    out, its worker dies, it raises, or it trips a strict-mode
    invariant.  ``attempts`` counts executions actually charged to the
    cell (collateral pool rebuilds are not charged).
    """

    error: str  # one of FAILURE_ERRORS
    message: str
    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.error not in FAILURE_ERRORS:
            raise ValueError(
                f"error must be one of {FAILURE_ERRORS}, got {self.error!r}"
            )

    def to_json(self) -> Dict[str, Any]:
        return {
            FAILURE_KIND: True,
            "error": self.error,
            "message": self.message,
            "fn": self.fn,
            "kwargs": dict(self.kwargs),
            "attempts": self.attempts,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RunFailure":
        return cls(
            error=data["error"],
            message=data["message"],
            fn=data.get("fn", ""),
            kwargs=dict(data.get("kwargs", {})),
            attempts=data.get("attempts", 1),
            duration_s=data.get("duration_s", 0.0),
        )

    @staticmethod
    def is_failure(value: Any) -> bool:
        """True for a :class:`RunFailure` or its JSON form."""
        if isinstance(value, RunFailure):
            return True
        return isinstance(value, Mapping) and value.get(FAILURE_KIND) is True


@dataclass
class RunResult:
    """One (scenario, seed) cell: throughputs, counters, samples."""

    label: str
    seed: int
    warmup_ns: int
    duration_ns: int
    #: flow name -> mean throughput over the measurement window (bps)
    flows_bps: Dict[str, float] = field(default_factory=dict)
    #: cumulative counters at end of run (PAUSE frames, drops, ...)
    counters: Dict[str, float] = field(default_factory=dict)
    #: optional time series (queue samples, rate samples, ...)
    samples: Dict[str, List[float]] = field(default_factory=dict)
    #: metrics registry snapshot ({"counters": ..., "gauges": ...,
    #: "histograms": ...}) under the stable names of
    #: :data:`repro.telemetry.metrics.METRIC_CATALOG`
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: invariant-guard / watchdog findings for this run (empty when the
    #: scenario carried no :class:`~repro.invariants.InvariantConfig`
    #: and armed no watchdog); see DESIGN.md §10
    invariant_report: Dict[str, Any] = field(default_factory=dict)
    #: the per-flow FCT table: one JSON row per message transfer (and
    #: one per greedy flow) in the shape of
    #: :class:`repro.telemetry.flowstats.FlowStats`; empty when the run
    #: predates FCT recording or ``REPRO_FLOWSTATS=off``
    flow_stats: List[Dict[str, Any]] = field(default_factory=list)
    #: shard-resilience record of the run that produced this result:
    #: restarts, resumed barriers, failures survived, degradation to
    #: serial (see DESIGN.md §15).  Empty — and absent from the JSON —
    #: for serial runs and for sharded runs that saw no fault, so an
    #: undisturbed sharded result stays bit-identical to its serial
    #: twin.
    shard_report: Dict[str, Any] = field(default_factory=dict)

    def throughput_gbps(self, flow: str) -> float:
        return self.flows_bps[flow] / 1e9

    def metric(self, name: str) -> float:
        """Value of counter/gauge ``name`` from the metrics snapshot."""
        for kind in ("counters", "gauges"):
            values = self.metrics.get(kind, {})
            if name in values:
                return values[name]
        raise KeyError(f"no metric {name!r} in this result")

    def histogram(self, name: str):
        """Rehydrate histogram ``name`` from the metrics snapshot."""
        from repro.telemetry.metrics import Histogram

        try:
            data = self.metrics["histograms"][name]
        except KeyError:
            raise KeyError(f"no histogram {name!r} in this result") from None
        return Histogram.from_json(name, data)

    def flow_stats_records(self):
        """Rehydrate :class:`~repro.telemetry.flowstats.FlowStats` rows."""
        from repro.telemetry.flowstats import stats_from_json

        return stats_from_json(self.flow_stats)

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "seed": self.seed,
            "warmup_ns": self.warmup_ns,
            "duration_ns": self.duration_ns,
            "flows_bps": dict(self.flows_bps),
            "counters": dict(self.counters),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "metrics": self.metrics,
            "invariant_report": self.invariant_report,
            "flow_stats": [dict(row) for row in self.flow_stats],
            **(
                {"shard_report": self.shard_report}
                if self.shard_report
                else {}
            ),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            label=data["label"],
            seed=data["seed"],
            warmup_ns=data["warmup_ns"],
            duration_ns=data["duration_ns"],
            flows_bps=dict(data.get("flows_bps", {})),
            counters=dict(data.get("counters", {})),
            samples={k: list(v) for k, v in data.get("samples", {}).items()},
            metrics=data.get("metrics", {}),
            invariant_report=data.get("invariant_report", {}),
            flow_stats=[dict(row) for row in data.get("flow_stats", [])],
            shard_report=dict(data.get("shard_report", {})),
        )

    def table(self) -> str:
        rows = [
            [name, f"{bps / 1e9:.2f}"] for name, bps in sorted(self.flows_bps.items())
        ]
        return format_table(["flow", "Gbps"], rows)


@dataclass
class SweepPoint:
    """All repetitions at one value of the swept parameter."""

    value: Any
    runs: List[RunResult] = field(default_factory=list)
    #: repetitions that produced no result (timeout / crash / ...);
    #: a complete point has ``len(runs) + len(failures)`` repetitions
    failures: List[RunFailure] = field(default_factory=list)

    def flow_samples(self, flow: str) -> List[float]:
        """One throughput sample per repetition for ``flow`` (bps)."""
        return [run.flows_bps[flow] for run in self.runs]


@dataclass
class SweepResult:
    """Runs grouped along one swept parameter, in sweep order."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> List[Any]:
        return [point.value for point in self.points]

    def point(self, value: Any) -> SweepPoint:
        for candidate in self.points:
            if candidate.value == value:
                return candidate
        raise KeyError(f"no sweep point with value {value!r}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "parameter": self.parameter,
            "points": [
                {
                    "value": p.value,
                    "runs": [r.to_json() for r in p.runs],
                    "failures": [f.to_json() for f in p.failures],
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepResult":
        return cls(
            parameter=data["parameter"],
            points=[
                SweepPoint(
                    value=p["value"],
                    runs=[RunResult.from_json(r) for r in p["runs"]],
                    failures=[
                        RunFailure.from_json(f) for f in p.get("failures", [])
                    ],
                )
                for p in data["points"]
            ],
        )

    def total_failures(self) -> int:
        """Failed repetitions across every point."""
        return sum(len(point.failures) for point in self.points)

    def table(self, flow: str) -> str:
        """Default rendering: median throughput of ``flow`` per point."""
        from repro.analysis.stats import percentile

        rows = [
            [point.value, f"{percentile(point.flow_samples(flow), 50) / 1e9:.2f}"]
            for point in self.points
        ]
        return format_table([self.parameter, f"{flow} median Gbps"], rows)
