"""Structured, JSON-serializable experiment results.

:class:`RunResult` is the outcome of one simulation cell (one seed of
one scenario): per-flow mean throughput over the measurement window
plus whatever counters/samples the cell recorded.  :class:`SweepResult`
groups runs along one swept parameter.  Both round-trip through JSON,
which is what makes the result cache and the process-pool transport
exact: a cached table is byte-identical to a freshly computed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table matching the style used in EXPERIMENTS.md."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


@dataclass
class RunResult:
    """One (scenario, seed) cell: throughputs, counters, samples."""

    label: str
    seed: int
    warmup_ns: int
    duration_ns: int
    #: flow name -> mean throughput over the measurement window (bps)
    flows_bps: Dict[str, float] = field(default_factory=dict)
    #: cumulative counters at end of run (PAUSE frames, drops, ...)
    counters: Dict[str, float] = field(default_factory=dict)
    #: optional time series (queue samples, rate samples, ...)
    samples: Dict[str, List[float]] = field(default_factory=dict)
    #: metrics registry snapshot ({"counters": ..., "gauges": ...,
    #: "histograms": ...}) under the stable names of
    #: :data:`repro.telemetry.metrics.METRIC_CATALOG`
    metrics: Dict[str, Any] = field(default_factory=dict)

    def throughput_gbps(self, flow: str) -> float:
        return self.flows_bps[flow] / 1e9

    def metric(self, name: str) -> float:
        """Value of counter/gauge ``name`` from the metrics snapshot."""
        for kind in ("counters", "gauges"):
            values = self.metrics.get(kind, {})
            if name in values:
                return values[name]
        raise KeyError(f"no metric {name!r} in this result")

    def histogram(self, name: str):
        """Rehydrate histogram ``name`` from the metrics snapshot."""
        from repro.telemetry.metrics import Histogram

        try:
            data = self.metrics["histograms"][name]
        except KeyError:
            raise KeyError(f"no histogram {name!r} in this result") from None
        return Histogram.from_json(name, data)

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "seed": self.seed,
            "warmup_ns": self.warmup_ns,
            "duration_ns": self.duration_ns,
            "flows_bps": dict(self.flows_bps),
            "counters": dict(self.counters),
            "samples": {k: list(v) for k, v in self.samples.items()},
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            label=data["label"],
            seed=data["seed"],
            warmup_ns=data["warmup_ns"],
            duration_ns=data["duration_ns"],
            flows_bps=dict(data.get("flows_bps", {})),
            counters=dict(data.get("counters", {})),
            samples={k: list(v) for k, v in data.get("samples", {}).items()},
            metrics=data.get("metrics", {}),
        )

    def table(self) -> str:
        rows = [
            [name, f"{bps / 1e9:.2f}"] for name, bps in sorted(self.flows_bps.items())
        ]
        return format_table(["flow", "Gbps"], rows)


@dataclass
class SweepPoint:
    """All repetitions at one value of the swept parameter."""

    value: Any
    runs: List[RunResult] = field(default_factory=list)

    def flow_samples(self, flow: str) -> List[float]:
        """One throughput sample per repetition for ``flow`` (bps)."""
        return [run.flows_bps[flow] for run in self.runs]


@dataclass
class SweepResult:
    """Runs grouped along one swept parameter, in sweep order."""

    parameter: str
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> List[Any]:
        return [point.value for point in self.points]

    def point(self, value: Any) -> SweepPoint:
        for candidate in self.points:
            if candidate.value == value:
                return candidate
        raise KeyError(f"no sweep point with value {value!r}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "parameter": self.parameter,
            "points": [
                {"value": p.value, "runs": [r.to_json() for r in p.runs]}
                for p in self.points
            ],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepResult":
        return cls(
            parameter=data["parameter"],
            points=[
                SweepPoint(
                    value=p["value"],
                    runs=[RunResult.from_json(r) for r in p["runs"]],
                )
                for p in data["points"]
            ],
        )

    def table(self, flow: str) -> str:
        """Default rendering: median throughput of ``flow`` per point."""
        from repro.analysis.stats import percentile

        rows = [
            [point.value, f"{percentile(point.flow_samples(flow), 50) / 1e9:.2f}"]
            for point in self.points
        ]
        return format_table([self.parameter, f"{flow} median Gbps"], rows)
