"""Parallel executor for simulation cells.

A :class:`Cell` names a module-level function (``"pkg.module:fn"``)
plus JSON-serializable keyword arguments.  :func:`execute` fans a list
of cells across worker processes (``REPRO_JOBS``), consults the result
cache first, and always returns results in *input* order regardless of
completion order — so ``jobs=1`` and ``jobs=N`` produce bit-identical
output and the serial path stays trivially reproducible.

Results are normalized through a JSON round-trip before being
returned, so a freshly computed value and a cache hit are exactly the
same Python object shape (lists, not tuples; plain dicts; floats that
survived ``repr`` round-tripping).
"""

from __future__ import annotations

import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Mapping, Optional

from repro.runner import cache as result_cache

#: environment variable selecting worker-process count ("auto" = cores)
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class Cell:
    """One independent unit of simulation work.

    ``fn`` is an import path ``"package.module:function"``; ``kwargs``
    must be JSON-serializable (they travel to worker processes and
    into the cache key).
    """

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ExecutionStats:
    """What one :func:`execute` call actually did."""

    total: int
    computed: int
    cached: int
    jobs: int


#: stats of the most recent :func:`execute` call (for tests/inspection)
LAST_STATS: Optional[ExecutionStats] = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def resolve(fn_path: str):
    """Import ``"package.module:function"`` and return the function."""
    module_name, sep, fn_name = fn_path.partition(":")
    if not sep or not module_name or not fn_name:
        raise ValueError(
            f"cell fn must look like 'package.module:function', got {fn_path!r}"
        )
    return getattr(importlib.import_module(module_name), fn_name)


def call_cell(fn_path: str, kwargs: Mapping[str, Any]) -> Any:
    """Run one cell (this is what worker processes execute)."""
    return resolve(fn_path)(**dict(kwargs))


def execute(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> List[Any]:
    """Run every cell; results come back in input order.

    ``jobs`` / ``cache`` default to the ``REPRO_JOBS`` / ``REPRO_CACHE``
    environment policy.  Cache hits skip computation entirely; misses
    are computed (in parallel when ``jobs > 1``) and stored.
    """
    global LAST_STATS
    cells = list(cells)
    n_jobs = default_jobs() if jobs is None else jobs
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {n_jobs}")
    use_cache = result_cache.enabled() if cache is None else cache

    results: List[Any] = [None] * len(cells)
    pending: List[int] = []
    for index, cell in enumerate(cells):
        if use_cache:
            hit = result_cache.load(cell.fn, cell.kwargs)
            if hit is not result_cache.MISS:
                results[index] = hit
                continue
        pending.append(index)

    if pending:
        if n_jobs > 1 and len(pending) > 1:
            workers = min(n_jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(call_cell, cells[i].fn, dict(cells[i].kwargs)): i
                    for i in pending
                }
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
        else:
            for i in pending:
                results[i] = call_cell(cells[i].fn, cells[i].kwargs)
        for i in pending:
            # normalize exactly as a cache round-trip would
            results[i] = json.loads(json.dumps(results[i]))
            if use_cache:
                result_cache.store(cells[i].fn, cells[i].kwargs, results[i])

    LAST_STATS = ExecutionStats(
        total=len(cells),
        computed=len(pending),
        cached=len(cells) - len(pending),
        jobs=n_jobs,
    )
    return results
