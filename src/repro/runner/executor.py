"""Parallel executor for simulation cells.

A :class:`Cell` names a module-level function (``"pkg.module:fn"``)
plus JSON-serializable keyword arguments.  :func:`execute` fans a list
of cells across worker processes (``REPRO_JOBS``), consults the result
cache first, and always returns results in *input* order regardless of
completion order — so ``jobs=1`` and ``jobs=N`` produce bit-identical
output and the serial path stays trivially reproducible.

Results are normalized through a JSON round-trip before being
returned, so a freshly computed value and a cache hit are exactly the
same Python object shape (lists, not tuples; plain dicts; floats that
survived ``repr`` round-tripping).

The executor is *hardened* (see :mod:`repro.runner.resilience`):

* every cell runs under a wall-clock timeout scaled by ``REPRO_SCALE``
  (enforced when cells run in worker processes, ``jobs > 1``);
* a worker that dies (OOM kill, segfault, ``os._exit``) breaks only
  its own cell — the pool is rebuilt and the other in-flight cells
  re-run without being charged an attempt;
* failed cells retry with exponential backoff up to
  :class:`~repro.runner.resilience.RetryPolicy` attempts;
* with ``collect_failures=True`` a cell that still fails becomes a
  :class:`~repro.runner.results.RunFailure` in the returned list
  instead of aborting the batch — a sweep always comes back complete;
* completed cells are journalled to a sweep checkpoint so an
  interrupted sweep can ``--resume`` and execute only missing cells.

Crash attribution: a pool breakage with several cells in flight has an
unknown culprit, so every in-flight cell becomes a *suspect* and is
re-run one at a time — a solo crash is proof of guilt (the attempt is
charged), a solo completion proof of innocence.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Mapping, Optional

from repro.invariants import InvariantViolation
from repro.runner import cache as result_cache
from repro.runner.resilience import (
    RetryPolicy,
    SweepCheckpoint,
    checkpoint_enabled,
    default_timeout_s,
    resume_enabled,
)
from repro.runner.results import RunFailure

#: environment variable selecting worker-process count ("auto" = cores)
JOBS_ENV = "REPRO_JOBS"

#: sentinel: "caller did not pass a timeout, use the env/scale policy"
_UNSET = object()

#: poll granularity of the parallel wait loop (seconds); deadlines are
#: checked at least this often even when nothing completes
_POLL_S = 0.25


@dataclass(frozen=True)
class Cell:
    """One independent unit of simulation work.

    ``fn`` is an import path ``"package.module:function"``; ``kwargs``
    must be JSON-serializable (they travel to worker processes and
    into the cache key).
    """

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class ExecutionStats:
    """What one :func:`execute` call actually did."""

    total: int
    computed: int
    cached: int
    jobs: int
    failed: int = 0
    resumed: int = 0
    retries: int = 0


#: stats of the most recent :func:`execute` call (for tests/inspection)
LAST_STATS: Optional[ExecutionStats] = None


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    if raw.lower() == "auto":
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV} must be a positive integer or 'auto', got {raw!r}"
        ) from None
    if jobs < 1:
        raise ValueError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


def resolve(fn_path: str):
    """Import ``"package.module:function"`` and return the function."""
    module_name, sep, fn_name = fn_path.partition(":")
    if not sep or not module_name or not fn_name:
        raise ValueError(
            f"cell fn must look like 'package.module:function', got {fn_path!r}"
        )
    return getattr(importlib.import_module(module_name), fn_name)


def call_cell(fn_path: str, kwargs: Mapping[str, Any]) -> Any:
    """Run one cell (this is what worker processes execute)."""
    return resolve(fn_path)(**dict(kwargs))


class _Task:
    """Mutable per-cell execution state inside one :func:`execute`."""

    __slots__ = (
        "index", "attempts", "not_before", "deadline", "started", "elapsed", "solo",
    )

    def __init__(self, index: int):
        self.index = index
        self.attempts = 0  # executions charged to this cell
        self.not_before = 0.0  # monotonic gate for backoff
        self.deadline: Optional[float] = None
        self.started = 0.0  # monotonic submission time of this attempt
        self.elapsed = 0.0  # wall-clock spent across charged attempts
        self.solo = False  # run alone for crash attribution


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now* — its workers may be hung or dead."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _failure(cell: Cell, error: str, message: str, task: _Task) -> RunFailure:
    return RunFailure(
        error=error,
        message=message,
        fn=cell.fn,
        kwargs=dict(cell.kwargs),
        attempts=max(task.attempts, 1),
        duration_s=round(task.elapsed, 3),
    )


def execute(
    cells: Iterable[Cell],
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
    *,
    timeout_s: Any = _UNSET,
    retry: Optional[RetryPolicy] = None,
    collect_failures: bool = False,
    checkpoint: Optional[SweepCheckpoint] = None,
    resume: Optional[bool] = None,
) -> List[Any]:
    """Run every cell; results come back in input order.

    ``jobs`` / ``cache`` default to the ``REPRO_JOBS`` / ``REPRO_CACHE``
    environment policy.  Cache hits skip computation entirely; misses
    are computed (in parallel when ``jobs > 1``) and stored.

    ``timeout_s`` is the per-cell wall-clock budget (default: the
    ``REPRO_RUN_TIMEOUT`` / ``REPRO_SCALE`` policy; ``None`` disables).
    ``retry`` bounds re-execution of failed cells (default:
    ``REPRO_RETRIES`` policy).

    With ``collect_failures=False`` (the legacy contract) a cell
    exception propagates immediately, a timeout raises
    :class:`TimeoutError` and repeated worker death raises
    :class:`RuntimeError`.  With ``collect_failures=True`` (the sweep
    contract) every failed cell becomes a
    :class:`~repro.runner.results.RunFailure` *in its slot* of the
    returned list, and the call always returns the full batch.

    ``checkpoint`` / ``resume`` control the sweep journal: a checkpoint
    is kept by default (``REPRO_CHECKPOINT``) and deleted on full
    success, so an interrupted batch leaves its completed cells behind;
    ``resume`` (default: ``REPRO_RESUME``) pre-fills journalled results
    and executes only the missing cells.
    """
    global LAST_STATS
    cells = list(cells)
    n_jobs = default_jobs() if jobs is None else jobs
    if n_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {n_jobs}")
    use_cache = result_cache.enabled() if cache is None else cache
    timeout = default_timeout_s() if timeout_s is _UNSET else timeout_s
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout_s must be positive or None, got {timeout}")
    policy = retry if retry is not None else RetryPolicy.from_env()
    do_resume = resume_enabled() if resume is None else resume
    if checkpoint is None and (checkpoint_enabled() or do_resume):
        checkpoint = SweepCheckpoint(cells)

    results: List[Any] = [None] * len(cells)
    stats = ExecutionStats(total=len(cells), computed=0, cached=0, jobs=n_jobs)

    resolved = [False] * len(cells)
    if checkpoint is not None and do_resume:
        journalled = checkpoint.load()
        for index in range(len(cells)):
            token = checkpoint.tokens[index]
            if token in journalled:
                results[index] = journalled[token]
                resolved[index] = True
                stats.resumed += 1

    pending: List[int] = []
    for index, cell in enumerate(cells):
        if resolved[index]:
            continue
        if use_cache:
            hit = result_cache.load(cell.fn, cell.kwargs)
            if hit is not result_cache.MISS:
                results[index] = hit
                stats.cached += 1
                continue
        pending.append(index)
    stats.computed = len(pending)

    def finish(index: int, value: Any) -> None:
        """JSON-normalize, cache, journal one successfully computed cell."""
        value = json.loads(json.dumps(value))
        results[index] = value
        if use_cache:
            result_cache.store(cells[index].fn, cells[index].kwargs, value)
        if checkpoint is not None:
            checkpoint.record(checkpoint.tokens[index], value)

    def fail(index: int, failure: RunFailure) -> None:
        results[index] = failure
        stats.failed += 1
        if checkpoint is not None:
            checkpoint.record_failure(checkpoint.tokens[index], failure.to_json())

    if pending:
        if n_jobs > 1 and len(pending) > 1:
            _execute_parallel(
                cells, pending, min(n_jobs, len(pending)),
                timeout, policy, collect_failures, stats, finish, fail,
            )
        else:
            _execute_serial(
                cells, pending, policy, collect_failures, stats, finish, fail
            )

    if checkpoint is not None and stats.failed == 0:
        checkpoint.discard()
    LAST_STATS = stats
    return results


def _execute_serial(cells, pending, policy, collect_failures, stats, finish, fail):
    """In-process path (``jobs=1``): no timeout/crash isolation, but the
    same retry and failure-collection semantics as the pool path."""
    for index in pending:
        cell = cells[index]
        task = _Task(index)
        while True:
            task.attempts += 1
            started = time.monotonic()
            try:
                finish(index, call_cell(cell.fn, cell.kwargs))
                break
            except InvariantViolation as exc:
                task.elapsed += time.monotonic() - started
                if not collect_failures:
                    raise
                fail(index, _failure(cell, "invariant", str(exc), task))
                break  # invariant violations are deterministic: never retry
            except Exception as exc:
                task.elapsed += time.monotonic() - started
                if not collect_failures:
                    raise
                if task.attempts >= policy.max_attempts:
                    fail(
                        index,
                        _failure(cell, "exception", f"{type(exc).__name__}: {exc}", task),
                    )
                    break
                stats.retries += 1
                time.sleep(policy.delay_s(task.attempts))


def _execute_parallel(
    cells, pending, workers, timeout, policy, collect_failures, stats, finish, fail
):
    """Pool path: sliding-window submission with deadline enforcement,
    crash attribution and bounded retry.  See the module docstring."""
    queue: Deque[_Task] = deque(_Task(i) for i in pending)
    suspects: Deque[_Task] = deque()
    inflight: Dict[Any, _Task] = {}
    pool: Optional[ProcessPoolExecutor] = None
    pool_alive = False

    def ensure_pool():
        nonlocal pool, pool_alive
        if not pool_alive:
            pool = ProcessPoolExecutor(max_workers=workers)
            pool_alive = True
        return pool

    def drop_pool():
        nonlocal pool_alive
        if pool_alive:
            _kill_pool(pool)
        pool_alive = False

    def charge_failure(task: _Task, error: str, message: str, requeue_solo: bool):
        """One charged failed attempt: retry with backoff or give up."""
        cell = cells[task.index]
        if not collect_failures:
            if error == "timeout":
                raise TimeoutError(
                    f"cell {cell.fn} exceeded {timeout}s wall-clock "
                    f"(attempt {task.attempts})"
                )
            if error == "crash" and task.attempts < policy.max_attempts:
                stats.retries += 1
                task.not_before = time.monotonic() + policy.delay_s(task.attempts)
                task.solo = True
                suspects.append(task)
                return
            if error == "crash":
                raise RuntimeError(
                    f"cell {cell.fn} killed its worker process "
                    f"{task.attempts} time(s): {message}"
                )
            raise AssertionError(f"unreachable legacy error kind {error!r}")
        if error == "invariant" or task.attempts >= policy.max_attempts:
            fail(task.index, _failure(cell, error, message, task))
            return
        stats.retries += 1
        task.not_before = time.monotonic() + policy.delay_s(task.attempts)
        if requeue_solo:
            task.solo = True
            suspects.append(task)
        else:
            queue.append(task)

    try:
        while queue or suspects or inflight:
            now = time.monotonic()
            # Suspects run strictly alone: any pool breakage is then
            # attributable to the one cell in flight.
            window = 1 if (suspects or any(t.solo for t in inflight.values())) else workers
            while len(inflight) < window:
                source = suspects if suspects else queue
                if suspects and inflight:
                    break  # wait for the pool to drain before going solo
                if not source:
                    break
                task = source[0]
                if task.not_before > now:
                    break  # head is backing off; keep order, wait it out
                source.popleft()
                cell = cells[task.index]
                task.attempts += 1
                try:
                    future = ensure_pool().submit(call_cell, cell.fn, dict(cell.kwargs))
                except BrokenProcessPool:
                    task.attempts -= 1  # submission never ran: not charged
                    drop_pool()
                    source.appendleft(task)
                    continue
                task.started = time.monotonic()
                task.deadline = None if timeout is None else task.started + timeout
                inflight[future] = task
                if suspects:
                    break  # one suspect at a time

            if not inflight:
                gates = [t.not_before for t in (*queue, *suspects)]
                if gates:
                    time.sleep(max(0.0, min(gates) - time.monotonic()))
                continue

            deadlines = [t.deadline for t in inflight.values() if t.deadline]
            wait_s = _POLL_S
            if deadlines:
                wait_s = max(0.0, min(_POLL_S, min(deadlines) - time.monotonic()))
            done, _ = wait(list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED)

            broke = False
            for future in done:
                task = inflight.pop(future)
                started_solo = task.solo
                ran_s = time.monotonic() - task.started
                try:
                    value = future.result()
                except InvariantViolation as exc:
                    if not collect_failures:
                        raise
                    task.elapsed += ran_s
                    charge_failure(task, "invariant", str(exc), started_solo)
                except BrokenProcessPool as exc:
                    broke = True
                    if len(inflight) == 0 and (started_solo or len(done) == 1):
                        # it was alone in the pool: guilty as charged
                        task.elapsed += ran_s
                        charge_failure(task, "crash", str(exc) or "worker died", True)
                    else:
                        task.attempts -= 1  # innocent until run solo
                        task.solo = True
                        suspects.append(task)
                except Exception as exc:
                    if not collect_failures:
                        raise
                    task.elapsed += ran_s
                    charge_failure(
                        task, "exception", f"{type(exc).__name__}: {exc}", started_solo
                    )
                else:
                    finish(task.index, value)

            if broke:
                # Everything still in flight died with the pool; none of
                # it is provably guilty, so re-run each alone, uncharged.
                for future, task in inflight.items():
                    task.attempts -= 1
                    task.solo = True
                    suspects.append(task)
                inflight.clear()
                drop_pool()
                continue

            now = time.monotonic()
            expired = [
                (future, task)
                for future, task in inflight.items()
                if task.deadline is not None and now >= task.deadline and not future.done()
            ]
            if expired:
                # The culprits are known exactly; innocents go back to
                # the FRONT of the queue with no attempt charged.
                innocents = [
                    task
                    for future, task in inflight.items()
                    if future not in {f for f, _ in expired} and not future.done()
                ]
                leftovers = [
                    (future, task)
                    for future, task in inflight.items()
                    if future.done() and (future, task) not in expired
                ]
                inflight.clear()
                drop_pool()
                for future, task in leftovers:
                    try:
                        finish(task.index, future.result())
                    except Exception:
                        task.attempts -= 1
                        queue.appendleft(task)
                for task in reversed(innocents):
                    task.attempts -= 1
                    queue.appendleft(task)
                for future, task in expired:
                    task.elapsed += timeout
                    charge_failure(task, "timeout", f"exceeded {timeout}s", task.solo)
    finally:
        if pool_alive:
            drop_pool()
