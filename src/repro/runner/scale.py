"""Run-scale and seed policy (the ``REPRO_SCALE`` knob).

Every experiment sizes its repetitions and simulated durations through
this module so one environment variable controls the whole suite:

* ``smoke`` — milliseconds-long runs, single repetitions; just enough
  to exercise every code path (CLI smoke tests, registry iteration).
* ``quick`` — the default; small but meaningful runs whose tables show
  the paper's qualitative effects.
* ``full``  — longer runs and more repetitions, closest to the paper.
"""

from __future__ import annotations

import hashlib
import os
from typing import List

#: environment variable selecting run scale
SCALE_ENV = "REPRO_SCALE"

#: recognised scales, smallest first
SCALES = ("smoke", "quick", "full")

_UNSET = object()


def scale() -> str:
    """The active run scale (``"quick"`` unless ``REPRO_SCALE`` says else)."""
    value = os.environ.get(SCALE_ENV, "quick").lower()
    if value not in SCALES:
        raise ValueError(
            f"{SCALE_ENV} must be one of {', '.join(SCALES)}, got {value!r}"
        )
    return value


def pick(quick_value, full_value, smoke_value=_UNSET):
    """Choose a knob by run scale.

    ``smoke_value`` is optional: call sites that predate the smoke
    scale (or where quick is already tiny) fall back to ``quick_value``.
    """
    active = scale()
    if active == "full":
        return full_value
    if active == "smoke" and smoke_value is not _UNSET:
        return smoke_value
    return quick_value


def seeds_for(repetitions: int, base: int = 1000) -> List[int]:
    """Deterministic, well-spread seeds for repeated runs."""
    return [base + 7919 * rep for rep in range(repetitions)]


def derive_seed(seed: int, stream: str) -> int:
    """A deterministic sub-seed for one named RNG stream of a run.

    Every independent randomness consumer (link-error RNG, each fault
    injector) derives its own stream from the run seed plus a stable
    stream name, so streams never alias (the old ``seed + 1`` idiom
    collides with the next repetition's base seed) and the derivation
    is captured by the result-cache content hash via the code
    fingerprint.
    """
    digest = hashlib.sha256(f"{seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
