"""The experiment and scenario registries: one source of truth for the CLI.

Every reproducible figure/table registers itself (id, description,
zero-argument runner returning the rendered table) via the
:func:`experiment` decorator.  ``python -m repro list`` and
``python -m repro <id>`` both read from :data:`REGISTRY`, and smoke
tests can iterate it generically instead of naming commands by hand.

:data:`SCENARIOS` is the sibling registry of *named scenarios* —
declarative :class:`~repro.runner.scenario.Scenario` factories the
telemetry commands (``python -m repro trace <name>`` /
``profile <name>``) operate on.  Factories, not instances, so a
scenario may consult the scale policy at build time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List


@dataclass(frozen=True)
class Experiment:
    """One registered experiment."""

    id: str
    description: str
    runner: Callable[[], str]

    def run(self) -> str:
        return self.runner()


class ExperimentRegistry:
    """Ordered mapping of experiment id -> :class:`Experiment`."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def register(self, experiment_id: str, description: str):
        """Decorator registering a zero-argument runner under ``id``."""

        def decorate(runner: Callable[[], str]) -> Callable[[], str]:
            if experiment_id in self._experiments:
                raise ValueError(f"duplicate experiment id {experiment_id!r}")
            self._experiments[experiment_id] = Experiment(
                id=experiment_id, description=description, runner=runner
            )
            return runner

        return decorate

    def get(self, experiment_id: str) -> Experiment:
        try:
            return self._experiments[experiment_id]
        except KeyError:
            raise KeyError(
                f"unknown experiment {experiment_id!r}; "
                f"known: {', '.join(self.ids())}"
            ) from None

    def run(self, experiment_id: str) -> str:
        return self.get(experiment_id).run()

    def ids(self) -> List[str]:
        return sorted(self._experiments)

    def __iter__(self) -> Iterator[Experiment]:
        return iter(self._experiments[i] for i in self.ids())

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._experiments

    def __len__(self) -> int:
        return len(self._experiments)


@dataclass(frozen=True)
class NamedScenario:
    """One registered scenario factory."""

    id: str
    description: str
    factory: Callable[[], Any]

    def build(self):
        """Construct the :class:`~repro.runner.scenario.Scenario`."""
        return self.factory()


class ScenarioRegistry:
    """Ordered mapping of scenario id -> :class:`NamedScenario`."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, NamedScenario] = {}

    def register(self, scenario_id: str, description: str):
        """Decorator registering a zero-argument Scenario factory."""

        def decorate(factory: Callable[[], Any]) -> Callable[[], Any]:
            if scenario_id in self._scenarios:
                raise ValueError(f"duplicate scenario id {scenario_id!r}")
            self._scenarios[scenario_id] = NamedScenario(
                id=scenario_id, description=description, factory=factory
            )
            return factory

        return decorate

    def get(self, scenario_id: str) -> NamedScenario:
        try:
            return self._scenarios[scenario_id]
        except KeyError:
            raise KeyError(
                f"unknown scenario {scenario_id!r}; "
                f"known: {', '.join(self.ids())}"
            ) from None

    def build(self, scenario_id: str):
        return self.get(scenario_id).build()

    def ids(self) -> List[str]:
        return sorted(self._scenarios)

    def __iter__(self) -> Iterator[NamedScenario]:
        return iter(self._scenarios[i] for i in self.ids())

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)


#: the process-wide registry (populated by ``repro.experiments.catalog``)
REGISTRY = ExperimentRegistry()

#: decorator shorthand: ``@experiment("fig03", "PFC unfairness")``
experiment = REGISTRY.register

#: named scenarios for the telemetry commands (also in the catalog)
SCENARIOS = ScenarioRegistry()

#: decorator shorthand: ``@scenario("smoke", "2-to-1 incast ...")``
scenario = SCENARIOS.register
