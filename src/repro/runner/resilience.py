"""Execution-hardening policy: timeouts, retries, sweep checkpoints.

This module holds the knobs and persistence the hardened executor
(:func:`repro.runner.executor.execute`) runs under:

* **Run timeouts** — one wall-clock budget per cell, scaled by
  ``REPRO_SCALE`` (a smoke cell that runs two minutes is hung; a full
  cell legitimately runs much longer).  ``REPRO_RUN_TIMEOUT`` overrides
  with a float in seconds, or ``off`` to disable.
* **Retry policy** — bounded retry with exponential backoff per failed
  cell (``REPRO_RETRIES`` sets the attempt budget).
* **Sweep checkpoints** — a JSONL journal under
  ``results/.checkpoints/`` recording each completed cell as it
  finishes.  An interrupted sweep re-run with ``--resume``
  (``REPRO_RESUME=on``) pre-fills the journalled results and executes
  only the missing cells; a sweep that completes deletes its journal.

Checkpoint keys hash the cell (fn + canonical kwargs) but — unlike
the result cache — **not** the code fingerprint: resuming is an
explicit "same code, keep going" request, which is why it hides behind
a flag instead of being implied.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.runner.cache import results_dir

#: per-cell wall-clock budget in seconds ("off" disables; empty uses
#: the per-scale default)
TIMEOUT_ENV = "REPRO_RUN_TIMEOUT"

#: attempt budget per failed cell (default 2: one retry)
RETRIES_ENV = "REPRO_RETRIES"

#: checkpoint journaling ("on"/"off", default on)
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

#: resume from an existing checkpoint ("on"/"off", default off);
#: set by ``python -m repro run ... --resume``
RESUME_ENV = "REPRO_RESUME"

#: default per-cell timeout by run scale (seconds)
DEFAULT_TIMEOUT_S: Dict[str, float] = {
    "smoke": 120.0,
    "quick": 600.0,
    "full": 3600.0,
}


def default_timeout_s() -> Optional[float]:
    """The per-cell timeout policy: env override, else scaled default."""
    raw = os.environ.get(TIMEOUT_ENV, "").strip().lower()
    if raw in ("off", "none"):
        return None
    if raw:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV} must be a float (seconds) or 'off', got {raw!r}"
            ) from None
        if value <= 0:
            raise ValueError(f"{TIMEOUT_ENV} must be positive, got {value}")
        return value
    from repro.runner.scale import scale

    return DEFAULT_TIMEOUT_S[scale()]


def _on_off(env: str, default: str) -> bool:
    value = os.environ.get(env, default).strip().lower() or default
    if value not in ("on", "off"):
        raise ValueError(f"{env} must be 'on' or 'off', got {value!r}")
    return value == "on"


def checkpoint_enabled() -> bool:
    """Whether sweeps journal completed cells (default on)."""
    return _on_off(CHECKPOINT_ENV, "on")


def resume_enabled() -> bool:
    """Whether an existing journal pre-fills results (default off)."""
    return _on_off(RESUME_ENV, "off")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts executions charged to one cell (1 = never
    retry).  The delay before attempt ``n+1`` is
    ``backoff_s * backoff_factor**(n-1)``, capped at ``max_backoff_s``.
    """

    max_attempts: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def delay_s(self, attempt: int) -> float:
        """Backoff before the next try, after ``attempt`` failures."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        raw = os.environ.get(RETRIES_ENV, "").strip()
        if not raw:
            return cls()
        try:
            attempts = int(raw)
        except ValueError:
            raise ValueError(
                f"{RETRIES_ENV} must be a positive integer, got {raw!r}"
            ) from None
        if attempts < 1:
            raise ValueError(f"{RETRIES_ENV} must be >= 1, got {attempts}")
        return cls(max_attempts=attempts)


# --- checkpoints ------------------------------------------------------------


def cell_token(fn: str, kwargs: Any) -> str:
    """Checkpoint identity of one cell: fn + canonical kwargs, no code."""
    payload = json.dumps(
        {"fn": fn, "kwargs": kwargs}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def checkpoints_dir() -> Path:
    """Directory holding sweep journals (beside the result cache)."""
    path = results_dir() / ".checkpoints"
    path.mkdir(parents=True, exist_ok=True)
    return path


class SweepCheckpoint:
    """JSONL journal of one sweep's completed cells.

    One line per finished cell: ``{"cell": <token>, "result": ...}`` on
    success, ``{"cell": <token>, "failure": {...}}`` on a recorded
    failure.  Loading returns successes only — failed cells re-execute
    on resume.  The journal file is named after the hash of the full
    cell list, so the same sweep always finds its own journal and a
    different sweep never does.
    """

    def __init__(self, cells: Sequence[Any], path: Optional[Path] = None):
        self.tokens: List[str] = [
            cell_token(cell.fn, dict(cell.kwargs)) for cell in cells
        ]
        if path is None:
            digest = hashlib.sha256("\n".join(self.tokens).encode())
            path = checkpoints_dir() / f"{digest.hexdigest()}.jsonl"
        self.path = Path(path)

    def load(self) -> Dict[str, Any]:
        """token -> journalled result, successes only (tolerant reader:
        a torn final line — the interrupt — is skipped, not fatal)."""
        loaded: Dict[str, Any] = {}
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return loaded
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write at the moment of interruption
            if "result" in entry and "cell" in entry:
                loaded[entry["cell"]] = entry["result"]
        return loaded

    def _append(self, entry: Dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def record(self, token: str, result: Any) -> None:
        """Journal one completed cell (result already JSON-normalized)."""
        self._append({"cell": token, "result": result})

    def record_failure(self, token: str, failure_json: Dict[str, Any]) -> None:
        """Journal one failed cell (re-executed on resume)."""
        self._append({"cell": token, "failure": failure_json})

    def discard(self) -> None:
        """Delete the journal (the sweep completed fully)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
