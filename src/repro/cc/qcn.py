"""QCN (IEEE 802.1Qau) — the L2 quantized-feedback baseline.

DCQCN's rate-increase machinery is taken from QCN, but the decrease
side differs fundamentally (paper §2.3, §3.3): QCN's congestion point
*samples* arriving packets (roughly one sample per 150 KB) and, when
congested, sends a feedback frame carrying a quantized congestion
measure straight back to the packet's *source MAC*:

    Fb = -(q_off + w * q_delta),   q_off = q - q_eq,  q_delta = q - q_old

The source cuts ``R_C *= 1 - Gd * |Fb|`` where ``Gd |Fb_max| = 1/2``.

Because the feedback frame is addressed by L2 identity, QCN cannot
cross an IP-routed boundary — the reason the paper had to design
DCQCN.  The implementation is used for single-L2-domain ablations
(DCQCN vs QCN on one switch); the simulator itself would happily route
the feedback anywhere, so the L2 restriction is a *policy* here, not a
mechanism.

Two halves, both in this module:

* :class:`QcnControl` — sender RP (:class:`QcnReactionPoint`) consuming
  quantized feedback frames; declares ``switch_feedback="qcn"`` so the
  network installs the congestion point on every switch;
* :class:`QcnFeedback` — the switch-side congestion point, invoked from
  the switch's enqueue hook.  It samples *all* data traffic (the real
  CP has no notion of which sources run QCN), so mixing QCN and
  non-QCN flows sends feedback frames to non-QCN sources too — which
  their NICs ignore, exactly as an L2 fabric would behave.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cc.base import CcContext
from repro.cc.dcqcn import RpBackedControl
from repro.cc.params import QcnCpParams
from repro.cc.registry import register_cc, register_switch_feedback
from repro.core.rp import ReactionPoint
from repro.sim.packet import (
    CONTROL_FRAME_BYTES,
    KIND_QCN_FB,
    Packet,
)

#: QCN quantizes |Fb| to 6 bits.
QCN_FB_LEVELS = 64

#: control class for feedback frames (mirrors repro.sim.host)
_CONTROL_PRIORITY = 6


class QcnReactionPoint(ReactionPoint):
    """QCN's RP: quantized multiplicative decrease, QCN rate increase.

    The increase side (byte counter / timer / fast recovery / additive
    increase) is inherited unchanged from the DCQCN RP — which is
    faithful, since DCQCN took it from QCN.
    """

    def on_feedback(self, fb_quantized: int) -> None:
        """Apply one quantized feedback frame (1..63)."""
        if fb_quantized <= 0:
            return
        cut = min(0.5, (fb_quantized / QCN_FB_LEVELS) * 0.5)
        self.rt_bps = self.rc_bps
        self.rc_bps = max(self.rc_bps * (1.0 - cut), self.params.min_rate_bps)
        self.byte_counter_count = 0
        self.timer_count = 0
        self._bytes_toward_event = 0
        self._increase_timer.reset()
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                "rp.cut",
                self.component,
                flow=self.flow_id,
                rc_bps=self.rc_bps,
                rt_bps=self.rt_bps,
                alpha=0.0,
            )
        if self.guard is not None:
            self.guard.on_rp_update(self, "cut")
        self._notify_rate()

    def on_cnp(self) -> None:  # pragma: no cover - guard
        raise TypeError("QCN reaction points consume QCN feedback, not CNPs")


class QcnControl(RpBackedControl):
    """Sender side of QCN, fed by switch-generated feedback frames."""

    name = "qcn"
    switch_feedback = "qcn"
    supports_seed_rate = True

    def on_qcn_feedback(self, quantized_fb: int) -> None:
        self.rp.on_feedback(quantized_fb)


class QcnFeedback:
    """Congestion-point sampling, installed on a switch.

    Keeps a per-(egress port, priority) byte countdown; each time
    ``sample_interval_bytes`` of data passes, computes Fb against the
    equilibrium queue length and, if negative, addresses a feedback
    frame to the sampled packet's source.
    """

    kind = "qcn"

    def __init__(self, switch, params: Optional[QcnCpParams] = None):
        self.switch = switch
        self.params = params or QcnCpParams()
        self._countdown: Dict[Tuple[int, int], int] = {}
        self._q_old: Dict[Tuple[int, int], float] = {}
        self.feedback_sent = 0
        # |Fb| spans q_eq * (1 + 2w); used for quantization
        self._fb_max = self.params.q_eq_bytes * (1.0 + 2.0 * self.params.w)

    def watch(self, flow_id: int) -> None:
        """QCN's CP samples all traffic; nothing per-flow to arm."""

    def on_enqueue(self, switch, pkt: Packet, egress_index: int, marked: bool) -> None:
        key = (egress_index, pkt.priority)
        remaining = self._countdown.get(key, 0) - pkt.size
        if remaining > 0:
            self._countdown[key] = remaining
            return
        self._countdown[key] = self.params.sample_interval_bytes
        q = switch.egress_queue_bytes(egress_index, pkt.priority)
        q_old = self._q_old.get(key, 0.0)
        self._q_old[key] = q
        fb = -((q - self.params.q_eq_bytes) + self.params.w * (q - q_old))
        if fb >= 0:
            return  # not congested; QCN sends no positive feedback
        quantized = min(
            QCN_FB_LEVELS - 1,
            max(1, int(-fb / self._fb_max * QCN_FB_LEVELS)),
        )
        self.feedback_sent += 1
        feedback = Packet(
            KIND_QCN_FB,
            flow_id=pkt.flow_id,
            src=switch.device_id,
            dst=pkt.src,
            size=CONTROL_FRAME_BYTES,
            priority=_CONTROL_PRIORITY,
            qcn_fb=quantized,
        )
        # switch-originated frame: attribute its buffer usage to the
        # ingress the sampled packet used (it heads back that way)
        switch._enqueue(feedback, pkt.ingress_index)


@register_cc("qcn")
def _make_qcn(ctx: CcContext) -> QcnControl:
    ctx.take_params(())
    rp = QcnReactionPoint(
        ctx.engine,
        ctx.params,
        ctx.line_rate_bps,
        timer_seed=ctx.rng.getrandbits(32) if ctx.rng is not None else None,
        flow_id=ctx.flow_id,
        component=f"{ctx.host_name}.qcn",
    )
    return QcnControl(rp)


@register_switch_feedback("qcn")
def _make_qcn_feedback(switch) -> QcnFeedback:
    return QcnFeedback(switch)
