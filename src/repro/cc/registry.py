"""Name → factory registries for controllers and switch feedback.

Two registries live here:

* the **controller registry** maps a name (``"dcqcn"``, ``"dctcp"``,
  ...) to a factory ``f(ctx: CcContext) -> CongestionControl``.  The
  reserved name ``"none"`` is registered to a factory returning
  ``None`` — an open-loop flow with no controller at all;
* the **switch-feedback registry** maps a generator name (declared by
  a controller's ``switch_feedback`` attribute) to a factory
  ``f(switch) -> generator``; the network installs one generator per
  switch per kind and routes matching flows to it via ``watch()``.

Both are populated by import side effects from the controller modules
(``repro.cc`` imports them all), so ``available_cc()`` is complete as
soon as the package is imported.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.cc.base import CcContext, CongestionControl

_CC_REGISTRY: Dict[str, Callable[[CcContext], Optional[CongestionControl]]] = {}
_FEEDBACK_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_cc(name: str):
    """Decorator registering a controller factory under ``name``."""

    def deco(factory: Callable[[CcContext], Optional[CongestionControl]]):
        if name in _CC_REGISTRY:
            raise ValueError(f"congestion controller {name!r} already registered")
        _CC_REGISTRY[name] = factory
        return factory

    return deco


def create_cc(name: str, ctx: CcContext) -> Optional[CongestionControl]:
    """Build the controller registered as ``name`` (``None`` for "none")."""
    try:
        factory = _CC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; "
            f"available: {available_cc()}"
        ) from None
    return factory(ctx)


def available_cc() -> Tuple[str, ...]:
    """All registered controller names, sorted ("none" included)."""
    return tuple(sorted(_CC_REGISTRY))


def register_switch_feedback(name: str):
    """Decorator registering a switch-side feedback generator factory."""

    def deco(factory: Callable[..., Any]):
        if name in _FEEDBACK_REGISTRY:
            raise ValueError(f"switch feedback {name!r} already registered")
        _FEEDBACK_REGISTRY[name] = factory
        return factory

    return deco


def create_switch_feedback(name: str, switch) -> Any:
    """Build the feedback generator registered as ``name`` for ``switch``."""
    try:
        factory = _FEEDBACK_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown switch feedback {name!r}; "
            f"available: {tuple(sorted(_FEEDBACK_REGISTRY))}"
        ) from None
    return factory(switch)


@register_cc("none")
def _make_none(ctx: CcContext) -> None:
    ctx.take_params(())  # "none" accepts no overrides
    return None
