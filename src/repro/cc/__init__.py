"""Pluggable congestion control (the ``repro.cc`` interface).

The paper's central claim (§3) is that DCQCN's *reaction* to
congestion signals beats the alternatives under identical conditions.
This package makes that comparable in the simulator: every congestion
controller — DCQCN itself, the DCTCP/QCN baselines, and the newer
RTT-gradient (TIMELY-like) and fast-notification (FNCC-like) designs —
implements one :class:`~repro.cc.base.CongestionControl` interface:

* **inputs** — CNPs, per-ACK ECN echoes, measured RTT samples,
  sent-byte credit, quantized QCN feedback;
* **outputs** — a pacing rate (``rate_bps``), a congestion window
  (``cwnd_pkts``), or both.

Controllers are looked up by name through :func:`create_cc`;
:meth:`repro.sim.network.Network.add_flow` accepts any registered name
for its ``cc`` argument, and :class:`repro.runner.scenario.FlowSpec`
carries the same name (plus scalar ``cc_params`` overrides) in its
serialized spec.  Controllers that need switch-side feedback
generation (QCN frames, FNCC fast CNPs) declare it via
``switch_feedback``; the network auto-installs the matching generator
on every switch.

See DESIGN.md §11 for the interface contract and the migration map
from the pre-refactor special cases.
"""

from repro.cc.base import CcContext, CongestionControl
from repro.cc.params import DctcpParams, FnccParams, QcnCpParams, TimelyParams
from repro.cc.registry import (
    available_cc,
    create_cc,
    create_switch_feedback,
    register_cc,
    register_switch_feedback,
)

# importing the controller modules populates the registry
from repro.cc import dcqcn as _dcqcn  # noqa: F401,E402
from repro.cc import dctcp as _dctcp  # noqa: F401,E402
from repro.cc import qcn as _qcn  # noqa: F401,E402
from repro.cc import timely as _timely  # noqa: F401,E402
from repro.cc import fncc as _fncc  # noqa: F401,E402

from repro.cc.dcqcn import DcqcnControl
from repro.cc.dctcp import DctcpControl
from repro.cc.fncc import FnccControl, FnccFeedback
from repro.cc.qcn import QCN_FB_LEVELS, QcnControl, QcnFeedback, QcnReactionPoint
from repro.cc.timely import TimelyControl

__all__ = [
    "CcContext",
    "CongestionControl",
    "DcqcnControl",
    "DctcpControl",
    "DctcpParams",
    "FnccControl",
    "FnccFeedback",
    "FnccParams",
    "QCN_FB_LEVELS",
    "QcnControl",
    "QcnCpParams",
    "QcnFeedback",
    "QcnReactionPoint",
    "TimelyControl",
    "TimelyParams",
    "available_cc",
    "create_cc",
    "create_switch_feedback",
    "register_cc",
    "register_switch_feedback",
]
