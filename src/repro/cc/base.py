"""The congestion-control interface every controller implements.

A :class:`CongestionControl` is the per-flow brain at the sending NIC.
The simulator feeds it *signals* and reads back *actions*:

========================  ====================================================
signal (input)            delivered by
========================  ====================================================
``on_cnp()``              the NIC, when a CNP for the flow arrives
``on_ecn_echo(...)``      the NIC, per ACK, with the echoed CE bit
``on_rtt_sample(...)``    the NIC's per-flow RTT sampler (``wants_rtt``)
``on_bytes_sent(...)``    the NIC's tx-complete path, per data packet
``on_qcn_feedback(...)``  the NIC, when a QCN feedback frame arrives
========================  ====================================================

========================  ====================================================
action (output)           consumed by
========================  ====================================================
``rate_bps()``            :meth:`Flow.take_packet` pacing-gap computation;
                          ``None`` means "unpaced" (line rate)
``cwnd_pkts()``           :meth:`Flow.ready_time` window gating; ``None``
                          means "no window" (purely rate-based)
========================  ====================================================

Class-level capability flags tell the stack which signals to generate —
generating them unconditionally would cost every flow the overhead of
every controller's needs:

* ``wants_cnp`` — receiver runs the DCQCN NP algorithm (CNP generation);
* ``wants_ecn_echo`` — receiver ACKs every packet echoing the CE bit;
* ``wants_rtt`` — sender NIC timestamps departures and feeds RTT samples;
* ``switch_feedback`` — name of a switch-side feedback generator
  (``"qcn"``, ``"fncc"``) the network must install on every switch.

Rate-based controllers that wrap a :class:`repro.core.rp.ReactionPoint`
expose it as ``.rp`` — :class:`repro.sim.host.Flow` re-exports it via
its ``rp`` property so the pre-refactor introspection surface
(``flow.rp.rc_bps`` and friends) keeps working.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import DCQCNParams
    from repro.engine import EventScheduler
    from repro.sim.host import Flow


@dataclass
class CcContext:
    """Everything a controller factory may need to build one instance.

    ``params`` carries the network's (or the flow's override) DCQCN
    parameter set — controllers derived from the DCQCN state machines
    (dcqcn, qcn, fncc) read their constants from it.  ``cc_params`` is
    a flat mapping of scalar overrides taken verbatim from
    ``FlowSpec.cc_params`` / ``Network.add_flow(cc_params=...)``; each
    controller documents the keys it understands and rejects unknown
    ones, so a typo'd knob fails loudly instead of silently running
    the defaults.
    """

    engine: "EventScheduler"
    line_rate_bps: float
    params: "DCQCNParams"
    flow_id: int = -1
    host_name: str = "?"
    rng: Optional[random.Random] = None
    cc_params: Dict[str, Any] = field(default_factory=dict)

    def take_params(self, allowed: tuple) -> Dict[str, Any]:
        """The ``cc_params`` overrides, validated against ``allowed``."""
        unknown = set(self.cc_params) - set(allowed)
        if unknown:
            raise ValueError(
                f"unknown cc_params {sorted(unknown)}; "
                f"this controller accepts {sorted(allowed)}"
            )
        return dict(self.cc_params)


class CongestionControl:
    """Base class / protocol for per-flow congestion controllers."""

    #: registry name (also stamped on telemetry events)
    name: str = "?"
    #: receiver-side NP (CNP generation) required
    wants_cnp: bool = False
    #: receiver ACKs every packet, echoing the CE bit
    wants_ecn_echo: bool = False
    #: sender NIC feeds per-ACK RTT samples
    wants_rtt: bool = False
    #: switch-side feedback generator to install (``None`` for none)
    switch_feedback: Optional[str] = None
    #: whether :meth:`seed_rate` is meaningful for this controller
    supports_seed_rate: bool = False
    #: whether :meth:`cwnd_pkts` ever returns a window — lets the Flow
    #: hot path skip the call entirely for rate-only controllers
    windowed: bool = False

    def __init__(self) -> None:
        self.flow: Optional["Flow"] = None
        self.tracer = None
        self.guard = None
        self.line_rate_bps: Optional[float] = None
        self.component: str = f"cc.{self.name}"
        #: underlying ReactionPoint for rate-based controllers (compat)
        self.rp = None

    # --- lifecycle ---------------------------------------------------------

    def bind(self, flow: "Flow") -> None:
        """Attach to ``flow`` (called once, from ``Flow.__init__``)."""
        self.flow = flow
        if self.line_rate_bps is None:
            nic = flow.src.nic
            if nic.ports:
                self.line_rate_bps = nic.line_rate_bps

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer

    def set_guard(self, guard) -> None:
        self.guard = guard

    # --- outputs -----------------------------------------------------------

    def rate_bps(self) -> Optional[float]:
        """Current pacing rate, or ``None`` when the flow is unpaced."""
        return None

    def cwnd_pkts(self) -> Optional[float]:
        """Congestion window in packets, or ``None`` when windowless."""
        return None

    # --- inputs ------------------------------------------------------------

    def on_cnp(self) -> None:
        """A congestion notification packet arrived for this flow."""

    def on_ecn_echo(self, ece: bool, acked_seq: int) -> None:
        """An ACK arrived carrying the echoed CE bit (``wants_ecn_echo``)."""

    def on_rtt_sample(self, rtt_ns: int) -> None:
        """A fresh RTT measurement from the NIC sampler (``wants_rtt``)."""

    def on_bytes_sent(self, nbytes: int) -> None:
        """``nbytes`` of flow data finished serializing at the NIC port."""

    def on_qcn_feedback(self, quantized_fb: int) -> None:
        """A QCN feedback frame arrived for this flow."""

    # --- episodic control --------------------------------------------------

    def seed_rate(self, rate_bps: float) -> None:
        """Start already throttled (convergence studies); optional."""
        raise NotImplementedError(
            f"{self.name!r} does not support initial_rate_bps seeding"
        )

    def reset_to_line_rate(self) -> None:
        """Forget congestion state (fresh queue pair per message)."""

    # --- helpers -----------------------------------------------------------

    def _guard_check(self, event: str) -> None:
        """Invariant hook for controllers without a ReactionPoint."""
        if self.guard is not None:
            self.guard.on_cc_update(self, event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(flow={getattr(self.flow, 'flow_id', None)})"
