"""DCQCN as a :class:`CongestionControl` (the paper's protocol).

The sender state machine itself still lives in
:class:`repro.core.rp.ReactionPoint` — this module adapts it to the
``repro.cc`` interface rather than duplicating it, because the fluid
model and the RP unit tests exercise the core class directly.
:class:`RpBackedControl` is the shared adapter; the QCN and FNCC
controllers reuse it (their increase machinery *is* the DCQCN RP's,
which is faithful — DCQCN took it from QCN).

The receiver half (NP, CNP generation) is not a controller concern:
``wants_cnp`` tells the network to arm the NP at the receiving NIC.
"""

from __future__ import annotations

from repro.cc.base import CcContext, CongestionControl
from repro.cc.registry import register_cc
from repro.core.rp import ReactionPoint


class RpBackedControl(CongestionControl):
    """Adapter for controllers whose brain is a ReactionPoint."""

    def __init__(self, rp: ReactionPoint):
        super().__init__()
        self.rp = rp
        self.component = rp.component
        self.line_rate_bps = rp.line_rate_bps

    def bind(self, flow) -> None:
        super().bind(flow)
        self.rp.on_rate_change = flow._on_rate_change

    def set_tracer(self, tracer) -> None:
        self.tracer = tracer
        self.rp.tracer = tracer

    def set_guard(self, guard) -> None:
        self.guard = guard
        self.rp.guard = guard

    def rate_bps(self) -> float:
        return self.rp.rc_bps

    def on_cnp(self) -> None:
        self.rp.on_cnp()

    def on_bytes_sent(self, nbytes: int) -> None:
        self.rp.on_bytes_sent(nbytes)

    def seed_rate(self, rate_bps: float) -> None:
        self.rp.seed_rate(rate_bps)

    def reset_to_line_rate(self) -> None:
        self.rp.reset_to_line_rate()


class DcqcnControl(RpBackedControl):
    """The paper's protocol: CNP-driven RP at the sender, NP at the receiver."""

    name = "dcqcn"
    wants_cnp = True
    supports_seed_rate = True


@register_cc("dcqcn")
def _make_dcqcn(ctx: CcContext) -> DcqcnControl:
    ctx.take_params(())  # DCQCN constants travel as a DCQCNParams set
    rp = ReactionPoint(
        ctx.engine,
        ctx.params,
        ctx.line_rate_bps,
        timer_seed=ctx.rng.getrandbits(32) if ctx.rng is not None else None,
        flow_id=ctx.flow_id,
        component=f"{ctx.host_name}.rp",
    )
    return DcqcnControl(rp)
