"""FNCC-style fast notification (after arXiv 2405.07608).

DCQCN's notification path is data → receiver NP → CNP → sender: the
congestion signal rides the full forward path and a 50 µs NP
coalescing interval before the RP hears about it.  FNCC's observation
is that the *switch* already knows at mark time — so it generates the
CNP itself, addressed straight back to the packet's source, cutting
the control loop to data → switch → sender (roughly halving the
feedback delay, more under congestion since the CNP skips the queue
that caused the mark).

The sender side is deliberately identical to DCQCN's RP (same cut,
same alpha estimator, same increase machinery): the *only* variable in
an arena comparison against ``dcqcn`` is the notification path.  The
receiver NP is disabled (``wants_cnp`` stays False) — CNPs come only
from switches — and :class:`FnccFeedback` rate-limits per flow with
the same 50 µs interval the NP would use, so the signal *rate* matches
and only its latency differs.

Switch-generated CNPs are counted in ``switch.cnps_sent``; the
CNP-conservation invariant sums these alongside NIC-generated ones.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cc.base import CcContext
from repro.cc.dcqcn import RpBackedControl
from repro.cc.params import FnccParams
from repro.cc.registry import register_cc, register_switch_feedback
from repro.core.rp import ReactionPoint
from repro.sim.packet import Packet, cnp_packet
from repro.telemetry import events as trace_events

#: control class for switch-generated CNPs (mirrors repro.sim.host)
_CONTROL_PRIORITY = 6


class FnccControl(RpBackedControl):
    """DCQCN's RP, driven by switch-generated (fast) CNPs."""

    name = "fncc"
    switch_feedback = "fncc"
    supports_seed_rate = True


class FnccFeedback:
    """Switch-side CNP generation: notify the source at mark time.

    Only flows explicitly watched (i.e. running the ``fncc``
    controller) get switch CNPs — a CNP to a DCQCN sender would
    double-notify it on fabrics mixing both protocols.
    """

    kind = "fncc"

    def __init__(self, switch, params: Optional[FnccParams] = None):
        self.switch = switch
        self.params = params or FnccParams()
        self._watched = set()
        self._last_cnp_ns: Dict[int, int] = {}

    def watch(self, flow_id: int) -> None:
        self._watched.add(flow_id)

    def on_enqueue(self, switch, pkt: Packet, egress_index: int, marked: bool) -> None:
        if not marked or pkt.flow_id not in self._watched:
            return
        now = switch.engine.now
        last = self._last_cnp_ns.get(pkt.flow_id)
        if last is not None and now - last < self.params.cnp_interval_ns:
            return
        self._last_cnp_ns[pkt.flow_id] = now
        switch.cnps_sent += 1
        if switch.tracer is not None:
            switch.tracer.emit(
                now,
                trace_events.NP_CNP_TX,
                switch.name,
                flow=pkt.flow_id,
            )
        cnp = cnp_packet(
            pkt.flow_id, switch.device_id, pkt.src, _CONTROL_PRIORITY
        )
        # switch-originated: attribute buffer usage to the ingress the
        # marked packet used (the CNP heads back that way)
        switch._enqueue(cnp, pkt.ingress_index)


@register_cc("fncc")
def _make_fncc(ctx: CcContext) -> FnccControl:
    ctx.take_params(())  # reaction constants travel as DCQCNParams
    rp = ReactionPoint(
        ctx.engine,
        ctx.params,
        ctx.line_rate_bps,
        timer_seed=ctx.rng.getrandbits(32) if ctx.rng is not None else None,
        flow_id=ctx.flow_id,
        component=f"{ctx.host_name}.fncc",
    )
    return FnccControl(rp)


@register_switch_feedback("fncc")
def _make_fncc_feedback(switch) -> FnccFeedback:
    return FnccFeedback(switch)
