"""Validated parameter sets for the non-DCQCN controllers.

The params layer owns validation (one place, tested once): controller
constructors and thin ``Flow`` adapters build one of these dataclasses
and let ``__post_init__`` reject bad values, instead of each transport
re-checking its own knobs.  DCQCN's constants stay in
:class:`repro.core.params.DCQCNParams` (they predate this package and
are shared by the fluid model); everything here follows its pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units


@dataclass(frozen=True)
class DctcpParams:
    """DCTCP sender knobs (Alizadeh et al. 2010).

    ``g`` is the EWMA gain of the marked-fraction estimator; the paper
    recommends 1/16.  Windows are in packets because the simulator
    paces whole MTU frames.
    """

    initial_cwnd_pkts: float = 10.0
    g: float = 1.0 / 16.0
    min_cwnd_pkts: float = 1.0

    def __post_init__(self) -> None:
        if self.initial_cwnd_pkts < 1:
            raise ValueError(
                f"initial cwnd must be at least one packet, "
                f"got {self.initial_cwnd_pkts}"
            )
        if not 0.0 < self.g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {self.g}")
        if not 0.0 < self.min_cwnd_pkts <= self.initial_cwnd_pkts:
            raise ValueError(
                "need 0 < min_cwnd_pkts <= initial_cwnd_pkts, got "
                f"{self.min_cwnd_pkts} vs {self.initial_cwnd_pkts}"
            )


@dataclass(frozen=True)
class TimelyParams:
    """TIMELY-style RTT-gradient control (Mittal et al., SIGCOMM 2015).

    Thresholds are scaled to this simulator's fabric: the base RTT on
    the 40 Gbps topologies is ~2-3 µs and DCQCN's Kmax (200 KB) is
    ~40 µs of queueing, so ``t_low``/``t_high`` bracket the same
    operating region the ECN profile covers.  ``rai_bps`` matches
    DCQCN's additive step for comparability.
    """

    t_low_ns: int = units.us(5)
    t_high_ns: int = units.us(25)
    #: EWMA gain of the RTT-difference filter
    ewma_g: float = 0.3
    #: multiplicative-decrease strength
    beta: float = 0.8
    #: additive increase per decision
    rai_bps: float = units.mbps(40)
    #: consecutive negative gradients before hyper-active increase
    hai_threshold: int = 5
    #: HAI multiplier on the additive step
    hai_factor: float = 5.0
    #: gradient normalization base (the minimum achievable RTT)
    min_rtt_ns: int = units.us(2)
    min_rate_bps: float = units.mbps(1)

    def __post_init__(self) -> None:
        if not 0 < self.t_low_ns < self.t_high_ns:
            raise ValueError(
                f"need 0 < t_low < t_high, got {self.t_low_ns}, {self.t_high_ns}"
            )
        if not 0.0 < self.ewma_g <= 1.0:
            raise ValueError(f"ewma_g must be in (0, 1], got {self.ewma_g}")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")
        if self.rai_bps <= 0 or self.min_rate_bps <= 0:
            raise ValueError("rate steps and min rate must be positive")
        if self.hai_threshold < 1 or self.hai_factor < 1.0:
            raise ValueError("hai_threshold must be >= 1 and hai_factor >= 1")
        if self.min_rtt_ns <= 0:
            raise ValueError("min_rtt_ns must be positive")


@dataclass(frozen=True)
class FnccParams:
    """FNCC-style fast notification (arXiv 2405.07608).

    The switch, not the receiver, generates the CNP: on marking a data
    packet it addresses a CNP straight back to the packet's source,
    cutting the notification path from data→receiver→sender to
    data→switch→sender.  ``cnp_interval_ns`` rate-limits switch CNPs
    per flow, mirroring the NP's ConnectX-3 50 µs limit so the
    *reaction* stays comparable and only the loop latency differs.
    """

    cnp_interval_ns: int = units.us(50)

    def __post_init__(self) -> None:
        if self.cnp_interval_ns <= 0:
            raise ValueError(
                f"cnp_interval_ns must be positive, got {self.cnp_interval_ns}"
            )


@dataclass(frozen=True)
class QcnCpParams:
    """QCN congestion-point sampling knobs (IEEE 802.1Qau defaults)."""

    q_eq_bytes: float = units.kb(33)
    w: float = 2.0
    sample_interval_bytes: int = units.kb(150)

    def __post_init__(self) -> None:
        if self.q_eq_bytes <= 0:
            raise ValueError(f"q_eq_bytes must be positive, got {self.q_eq_bytes}")
        if self.w < 0:
            raise ValueError(f"w must be non-negative, got {self.w}")
        if self.sample_interval_bytes <= 0:
            raise ValueError(
                f"sample_interval_bytes must be positive, "
                f"got {self.sample_interval_bytes}"
            )
