"""DCTCP: window-based ECN congestion control (Alizadeh et al. 2010).

The paper compares DCQCN's queue occupancy against DCTCP's
(Figure 19): both react to ECN, but DCTCP is ACK-clocked and
software-driven, so it needs a marking threshold large enough to
absorb OS/NIC bursts (the guideline is K ~ C x RTT scale; the paper
configures 160 KB at 40 Gbps), whereas DCQCN's hardware rate limiters
admit Kmin = 5 KB.  The result is an order-of-magnitude shorter queue
for DCQCN.

As a :class:`CongestionControl` the sender side is pure window logic:

* ``wants_ecn_echo`` makes the receiver ACK every packet echoing the
  CE bit (a faithful stand-in for DCTCP's delayed-ACK ECE state
  machine at our packet granularity);
* the controller keeps ``cwnd`` (packets) and the EWMA fraction
  ``alpha`` of marked packets per window (g = 1/16);
* slow start until the first mark, then additive increase of one
  packet per window and multiplicative decrease ``cwnd *= 1 - alpha/2``
  at most once per window.

``cwnd_pkts()`` gates :meth:`Flow.ready_time`; ``rate_bps()`` stays
``None`` — in-window packets go out line-rate paced, never faster.
"""

from __future__ import annotations

from repro.cc.base import CcContext, CongestionControl
from repro.cc.params import DctcpParams
from repro.cc.registry import register_cc


class DctcpControl(CongestionControl):
    """DCTCP sender; eligibility is window-gated, not rate-paced."""

    name = "dctcp"
    wants_ecn_echo = True
    windowed = True

    def __init__(self, params: DctcpParams):
        super().__init__()
        self.params = params
        self.cwnd = float(params.initial_cwnd_pkts)
        self.g = params.g
        self.min_cwnd_pkts = params.min_cwnd_pkts
        self.dctcp_alpha = 0.0
        self.in_slow_start = True
        # per-window mark accounting
        self._window_end_seq = 0
        self._window_acked = 0
        self._window_marked = 0
        self.windows_completed = 0

    def cwnd_pkts(self) -> float:
        return self.cwnd

    def on_ecn_echo(self, ece: bool, acked_seq: int) -> None:
        """Per-packet ACK with echoed CE: DCTCP's control loop."""
        self._window_acked += 1
        if ece:
            self._window_marked += 1
            self.in_slow_start = False
        if self.in_slow_start:
            self.cwnd += 1.0
        if acked_seq >= self._window_end_seq:
            self._end_window()
        # window may have opened
        flow = self.flow
        flow.src.nic.flow_state_changed(flow)

    def _end_window(self) -> None:
        """One RTT's worth of ACKs arrived: update alpha and cwnd."""
        if self._window_acked > 0:
            fraction = self._window_marked / self._window_acked
            self.dctcp_alpha = (
                (1.0 - self.g) * self.dctcp_alpha + self.g * fraction
            )
            if self._window_marked > 0:
                self.cwnd = max(
                    self.min_cwnd_pkts,
                    self.cwnd * (1.0 - self.dctcp_alpha / 2.0),
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        self.flow.src.nic.engine.now,
                        "cc.cut",
                        self.component,
                        flow=self.flow.flow_id,
                        cc=self.name,
                    )
                self._guard_check("cut")
            elif not self.in_slow_start:
                self.cwnd += 1.0  # additive increase, per window
        self.windows_completed += 1
        self._window_acked = 0
        self._window_marked = 0
        self._window_end_seq = self.flow.next_seq


@register_cc("dctcp")
def _make_dctcp(ctx: CcContext) -> DctcpControl:
    overrides = ctx.take_params(("initial_cwnd_pkts", "g", "min_cwnd_pkts"))
    return DctcpControl(DctcpParams(**overrides))
