"""TIMELY-style RTT-gradient congestion control (Mittal et al. 2015).

TIMELY was published alongside DCQCN (both SIGCOMM 2015) as the other
answer to RDMA congestion: instead of ECN marks it uses precise NIC
RTT measurements, reacting to the *gradient* of the RTT — a rising RTT
means the queue is filling, regardless of its absolute level.

Per completion event (here: per cumulative ACK covering freshly
timestamped data):

* ``rtt < t_low``  → additive increase (queues empty; grab bandwidth);
* ``rtt > t_high`` → multiplicative decrease proportional to the
  overshoot, ``rate *= 1 - beta * (1 - t_high/rtt)`` (don't let a
  long-lived standing queue persist);
* otherwise the normalized gradient decides: negative → additive
  increase (HAI after ``hai_threshold`` consecutive negatives),
  positive → ``rate *= 1 - beta * gradient``.

The controller is purely rate-based (``cwnd_pkts() is None``) and
needs no switch support at all — ``wants_rtt`` makes the sender NIC
timestamp departures and feed a sample per ACK (per-packet ACKs, like
DCTCP's registration, so the measurement loop is tight).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CcContext, CongestionControl
from repro.cc.params import TimelyParams
from repro.cc.registry import register_cc


class TimelyControl(CongestionControl):
    """RTT-gradient rate control; no ECN, no switch feedback."""

    name = "timely"
    wants_rtt = True
    supports_seed_rate = True

    def __init__(self, engine, params: TimelyParams, line_rate_bps: float):
        super().__init__()
        if line_rate_bps <= 0:
            raise ValueError("line_rate_bps must be positive")
        self.engine = engine
        self.params = params
        self.line_rate_bps = line_rate_bps
        self.rc_bps = line_rate_bps
        self._prev_rtt_ns: Optional[int] = None
        self._rtt_diff_ns = 0.0
        self._neg_gradient_streak = 0
        self._decreasing = False
        # statistics
        self.rtt_samples = 0
        self.decreases = 0

    # --- outputs -----------------------------------------------------------

    def rate_bps(self) -> float:
        return self.rc_bps

    # --- inputs ------------------------------------------------------------

    def on_rtt_sample(self, rtt_ns: int) -> None:
        self.rtt_samples += 1
        p = self.params
        if self._prev_rtt_ns is None:
            self._prev_rtt_ns = rtt_ns
            return
        new_diff = rtt_ns - self._prev_rtt_ns
        self._prev_rtt_ns = rtt_ns
        self._rtt_diff_ns = (
            (1.0 - p.ewma_g) * self._rtt_diff_ns + p.ewma_g * new_diff
        )
        gradient = self._rtt_diff_ns / p.min_rtt_ns
        if rtt_ns < p.t_low_ns:
            self._neg_gradient_streak = 0
            self._set_rate(self.rc_bps + p.rai_bps)
        elif rtt_ns > p.t_high_ns:
            self._neg_gradient_streak = 0
            self._set_rate(
                self.rc_bps * (1.0 - p.beta * (1.0 - p.t_high_ns / rtt_ns))
            )
        elif gradient <= 0:
            self._neg_gradient_streak += 1
            step = p.rai_bps
            if self._neg_gradient_streak >= p.hai_threshold:
                step *= p.hai_factor
            self._set_rate(self.rc_bps + step)
        else:
            self._neg_gradient_streak = 0
            self._set_rate(self.rc_bps * (1.0 - p.beta * min(1.0, gradient)))

    # --- episodic control --------------------------------------------------

    def seed_rate(self, rate_bps: float) -> None:
        if not 0 < rate_bps <= self.line_rate_bps:
            raise ValueError(
                f"seed rate must be in (0, {self.line_rate_bps}], got {rate_bps}"
            )
        self.rc_bps = rate_bps
        self._guard_check("seed")
        self._notify()

    def reset_to_line_rate(self) -> None:
        self.rc_bps = self.line_rate_bps
        self._prev_rtt_ns = None
        self._rtt_diff_ns = 0.0
        self._neg_gradient_streak = 0
        self._decreasing = False
        self._guard_check("reset")
        self._notify()

    # --- internals ---------------------------------------------------------

    def _set_rate(self, new_rate_bps: float) -> None:
        p = self.params
        new_rate_bps = min(self.line_rate_bps, max(p.min_rate_bps, new_rate_bps))
        decreasing = new_rate_bps < self.rc_bps
        if decreasing:
            self.decreases += 1
        if self.tracer is not None:
            if decreasing and not self._decreasing:
                # edge-triggered: the start of a decrease episode
                self.tracer.emit(
                    self.engine.now,
                    "cc.cut",
                    self.component,
                    flow=self.flow.flow_id if self.flow is not None else -1,
                    cc=self.name,
                )
            if new_rate_bps != self.rc_bps:
                self.tracer.emit(
                    self.engine.now,
                    "cc.rate",
                    self.component,
                    flow=self.flow.flow_id if self.flow is not None else -1,
                    cc=self.name,
                    rate_bps=new_rate_bps,
                )
        self._decreasing = decreasing
        if new_rate_bps == self.rc_bps:
            return
        self.rc_bps = new_rate_bps
        self._guard_check("rate")
        self._notify()

    def _notify(self) -> None:
        if self.flow is not None:
            self.flow._on_rate_change(self.rc_bps)


@register_cc("timely")
def _make_timely(ctx: CcContext) -> TimelyControl:
    overrides = ctx.take_params(
        (
            "t_low_ns",
            "t_high_ns",
            "ewma_g",
            "beta",
            "rai_bps",
            "hai_threshold",
            "hai_factor",
            "min_rtt_ns",
            "min_rate_bps",
        )
    )
    return TimelyControl(ctx.engine, TimelyParams(**overrides), ctx.line_rate_bps)
