"""Discrete-event scheduler with an integer-nanosecond clock.

The engine is deliberately minimal: a binary heap of
``[time, sched, seq, fn, args]`` entries.  Three design points matter
for the rest of the library:

* **Integer time.**  All timestamps are integer nanoseconds, so event
  ordering is exact and runs are bit-for-bit reproducible.
* **Deterministic tie-breaking.**  The heap key is
  ``(time, sched, tb, seq)``: ``sched`` is the clock value at the
  moment of scheduling, ``tb`` an optional structural tie-break tuple
  (empty for most events), and ``seq`` a monotonically increasing
  sequence number.  Within one engine ``sched`` is nondecreasing in
  ``seq``, so for ordinary events the key orders exactly like
  ``(time, seq)`` — same-tick events fire in scheduling order.  The
  two extra elements exist for parallel shards
  (:mod:`repro.shard.boundary`): ``sched_time`` lets an injected
  boundary event be *backdated* to the instant its remote sender
  scheduled it, and ``tb`` gives wire arrivals a tie-break that is a
  pure function of the sending port rather than of one process's
  scheduling history — the only kind of key every shard can agree on
  when two frames finish serialization at the same instant in
  different processes.
* **Cheap comparisons.**  Heap entries are plain lists whose first
  two elements are ints; the sequence number is unique, so list
  comparison never reaches the callback and runs entirely in C.

Cancellation is done by clearing the entry's callback rather than
re-heapifying; cancelled entries are skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

# entry layout: [time, sched, tb, seq, fn_or_None, args]
_TIME = 0
_SCHED = 1
_TB = 2
_SEQ = 3
_FN = 4
_ARGS = 5


class Event:
    """Handle for a scheduled callback; supports :meth:`cancel`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> int:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_FN] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._entry[_FN] = None
        self._entry[_ARGS] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}ns, {state})"


class EventScheduler:
    """Priority-queue event loop over integer-nanosecond simulated time."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._now: int = 0
        self._seq: int = 0
        self.events_processed: int = 0
        #: optional :class:`repro.telemetry.profiler.SchedulerProfiler`.
        #: Checked once per run()/run_until() call, never per event, so
        #: the unprofiled hot loop is unchanged.
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule_at(
        self,
        time: int,
        fn: Callable,
        *args: Any,
        sched_time: Optional[int] = None,
        tb: tuple = (),
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` (ns).

        Scheduling in the past raises ``ValueError`` — the simulation is
        causal by construction.

        ``sched_time`` backdates the entry's tie-break key to a clock
        value before now.  It exists for exactly one caller: shard
        boundary injection, which re-creates an event that a *remote*
        engine scheduled at ``sched_time`` and must slot it among
        same-tick local events exactly where the serial run would have.
        ``tb`` is the structural tie-break tuple (see :meth:`schedule`).
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time}ns before now={self._now}ns"
            )
        sched = self._now if sched_time is None else sched_time
        entry = [time, sched, tb, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def schedule(self, delay: int, fn: Callable, *args: Any, tb: tuple = ()) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds.

        ``tb`` orders same-``(time, sched)`` entries *before* the
        sequence number is consulted; the default empty tuple sorts
        ahead of any non-empty one.  Wire arrivals pass the sending
        ``(device name, port index)`` so that two frames serialized at
        the same instant on different ports order by a key every shard
        of a partitioned run computes identically — one process's
        sequence counter cannot be reproduced in another.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}ns")
        entry = [self._now + delay, self._now, tb, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when no events remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            self.events_processed += 1
            if self.profiler is not None:
                self.profiler.record(fn, entry[_ARGS])
            else:
                fn(*entry[_ARGS])
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap drains (or ``max_events``); returns count run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: int) -> None:
        """Run every event with timestamp ``<= time``, then set now=time.

        This is the main driver for fixed-duration experiments.  The
        clock is advanced to ``time`` even if the heap drains early, so
        rate computations over the window stay well-defined.
        """
        if self.profiler is not None:
            self._run_until_profiled(time)
            return
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            entry = heap[0]
            if entry[_TIME] > time:
                break
            pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            processed += 1
            fn(*entry[_ARGS])
        self.events_processed += processed
        if time > self._now:
            self._now = time

    def _run_until_profiled(self, time: int) -> None:
        """The :meth:`run_until` loop with per-event profiling."""
        heap = self._heap
        pop = heapq.heappop
        record = self.profiler.record
        processed = 0
        while heap:
            entry = heap[0]
            if entry[_TIME] > time:
                break
            pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            processed += 1
            record(fn, entry[_ARGS])
        self.events_processed += processed
        if time > self._now:
            self._now = time

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._heap if entry[_FN] is not None)


class PeriodicTimer:
    """Restartable periodic timer built on :class:`EventScheduler`.

    Used for the DCQCN RP rate-increase timer, which is *reset*
    whenever a CNP arrives.

    ``jitter_ns`` adds an independent uniform ±jitter to every firing,
    modelling firmware timer skew.  Real NICs do not tick in lockstep;
    without jitter, N identical flows cut and recover in phase and the
    simulated queue oscillates far more than hardware does.
    """

    __slots__ = ("_engine", "_period", "_fn", "_event", "running", "_jitter", "_rng")

    def __init__(
        self,
        engine: EventScheduler,
        period: int,
        fn: Callable[[], None],
        jitter_ns: int = 0,
        seed: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}ns")
        if not 0 <= jitter_ns < period:
            raise ValueError(
                f"jitter must be in [0, period), got {jitter_ns}ns "
                f"for a {period}ns period"
            )
        self._engine = engine
        self._period = period
        self._fn = fn
        self._event: Optional[Event] = None
        self.running = False
        self._jitter = jitter_ns
        if jitter_ns:
            import random

            self._rng = random.Random(seed)
        else:
            self._rng = None

    @property
    def period(self) -> int:
        return self._period

    def _next_delay(self) -> int:
        if self._rng is None:
            return self._period
        return self._period + self._rng.randint(-self._jitter, self._jitter)

    def start(self) -> None:
        """(Re)arm the timer; the first firing is one period from now."""
        self.stop()
        self.running = True
        self._event = self._engine.schedule(self._next_delay(), self._fire)

    # reset is an alias that reads naturally at DCQCN call sites
    reset = start

    def stop(self) -> None:
        """Disarm the timer."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.running = False

    def _fire(self) -> None:
        self._event = self._engine.schedule(self._next_delay(), self._fire)
        self._fn()
