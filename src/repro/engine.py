"""Discrete-event scheduler with an integer-nanosecond clock.

The engine is deliberately minimal: a binary heap of
``[time, seq, fn, args]`` entries.  Three design points matter for the
rest of the library:

* **Integer time.**  All timestamps are integer nanoseconds, so event
  ordering is exact and runs are bit-for-bit reproducible.
* **Deterministic tie-breaking.**  Events scheduled for the same tick
  fire in the order they were scheduled (a monotonically increasing
  sequence number breaks heap ties), so a seeded simulation never
  depends on hash order or heap internals.
* **Cheap comparisons.**  Heap entries are plain lists whose first two
  elements are ints; the sequence number is unique, so list comparison
  never reaches the callback and runs entirely in C.

Cancellation is done by clearing the entry's callback rather than
re-heapifying; cancelled entries are skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

# entry layout: [time, seq, fn_or_None, args]
_TIME = 0
_SEQ = 1
_FN = 2
_ARGS = 3


class Event:
    """Handle for a scheduled callback; supports :meth:`cancel`."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> int:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_FN] is None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._entry[_FN] = None
        self._entry[_ARGS] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}ns, {state})"


class EventScheduler:
    """Priority-queue event loop over integer-nanosecond simulated time."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._now: int = 0
        self._seq: int = 0
        self.events_processed: int = 0
        #: optional :class:`repro.telemetry.profiler.SchedulerProfiler`.
        #: Checked once per run()/run_until() call, never per event, so
        #: the unprofiled hot loop is unchanged.
        self.profiler = None

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule_at(self, time: int, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute ``time`` (ns).

        Scheduling in the past raises ``ValueError`` — the simulation is
        causal by construction.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time}ns before now={self._now}ns"
            )
        entry = [time, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def schedule(self, delay: int, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}ns")
        entry = [self._now + delay, self._seq, fn, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heapq.heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when no events remain."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            self.events_processed += 1
            if self.profiler is not None:
                self.profiler.record(fn, entry[_ARGS])
            else:
                fn(*entry[_ARGS])
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the heap drains (or ``max_events``); returns count run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: int) -> None:
        """Run every event with timestamp ``<= time``, then set now=time.

        This is the main driver for fixed-duration experiments.  The
        clock is advanced to ``time`` even if the heap drains early, so
        rate computations over the window stay well-defined.
        """
        if self.profiler is not None:
            self._run_until_profiled(time)
            return
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            entry = heap[0]
            if entry[_TIME] > time:
                break
            pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            processed += 1
            fn(*entry[_ARGS])
        self.events_processed += processed
        if time > self._now:
            self._now = time

    def _run_until_profiled(self, time: int) -> None:
        """The :meth:`run_until` loop with per-event profiling."""
        heap = self._heap
        pop = heapq.heappop
        record = self.profiler.record
        processed = 0
        while heap:
            entry = heap[0]
            if entry[_TIME] > time:
                break
            pop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self._now = entry[_TIME]
            processed += 1
            record(fn, entry[_ARGS])
        self.events_processed += processed
        if time > self._now:
            self._now = time

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for entry in self._heap if entry[_FN] is not None)


class PeriodicTimer:
    """Restartable periodic timer built on :class:`EventScheduler`.

    Used for the DCQCN RP rate-increase timer, which is *reset*
    whenever a CNP arrives.

    ``jitter_ns`` adds an independent uniform ±jitter to every firing,
    modelling firmware timer skew.  Real NICs do not tick in lockstep;
    without jitter, N identical flows cut and recover in phase and the
    simulated queue oscillates far more than hardware does.
    """

    __slots__ = ("_engine", "_period", "_fn", "_event", "running", "_jitter", "_rng")

    def __init__(
        self,
        engine: EventScheduler,
        period: int,
        fn: Callable[[], None],
        jitter_ns: int = 0,
        seed: Optional[int] = None,
    ):
        if period <= 0:
            raise ValueError(f"timer period must be positive, got {period}ns")
        if not 0 <= jitter_ns < period:
            raise ValueError(
                f"jitter must be in [0, period), got {jitter_ns}ns "
                f"for a {period}ns period"
            )
        self._engine = engine
        self._period = period
        self._fn = fn
        self._event: Optional[Event] = None
        self.running = False
        self._jitter = jitter_ns
        if jitter_ns:
            import random

            self._rng = random.Random(seed)
        else:
            self._rng = None

    @property
    def period(self) -> int:
        return self._period

    def _next_delay(self) -> int:
        if self._rng is None:
            return self._period
        return self._period + self._rng.randint(-self._jitter, self._jitter)

    def start(self) -> None:
        """(Re)arm the timer; the first firing is one period from now."""
        self.stop()
        self.running = True
        self._event = self._engine.schedule(self._next_delay(), self._fire)

    # reset is an alias that reads naturally at DCQCN call sites
    reset = start

    def stop(self) -> None:
        """Disarm the timer."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self.running = False

    def _fire(self) -> None:
        self._event = self._engine.schedule(self._next_delay(), self._fire)
        self._fn()
