"""Simulation invariant guards (see DESIGN.md §10).

The simulator reproduces a paper whose claims rest on a handful of
conservation and safety properties: PFC keeps the fabric lossless,
ECN fires before PFC (§4), and the RP state machine keeps ``alpha``
and the flow rates inside their algebraic bounds (§3.1).  This package
turns those properties into declarative, always-cheap runtime checks:

* :class:`InvariantConfig` — the JSON-serializable request a
  :class:`~repro.runner.scenario.Scenario` carries in its
  ``invariants`` field (so guarded and unguarded runs hash to
  different cache keys, exactly like fault plans).
* :class:`InvariantGuard` — the runtime: build-time configuration
  checks, a periodic conservation sweep on the event loop, and O(1)
  hooks on the switch dequeue and RP update hot paths.
* :class:`InvariantViolation` — raised in ``strict`` mode; in
  ``report`` mode violations fold into telemetry metrics and
  ``RunResult.invariant_report`` instead.
"""

from repro.invariants.guard import (
    INVARIANTS_ENV,
    MODES,
    InvariantConfig,
    InvariantGuard,
    InvariantViolation,
    Violation,
    config_violations,
)

__all__ = [
    "INVARIANTS_ENV",
    "MODES",
    "InvariantConfig",
    "InvariantGuard",
    "InvariantViolation",
    "Violation",
    "config_violations",
]
