"""The invariant guard: declarative runtime checks over a live network.

Each check encodes one property the paper's results depend on (the
DESIGN.md §10 catalog lists the equation behind every guard):

* ``buffer.ecn_before_pfc`` / ``buffer.kmax_vs_pfc`` — the §4
  threshold relations, evaluated against the *configured* buffer
  parameters when the guard is installed (topology build time), before
  a single packet moves.
* ``switch.byte_conservation`` / ``switch.negative_queue`` /
  ``switch.buffer_bounds`` — the shared-buffer bookkeeping: occupied
  bytes must equal both the ingress-side and egress-side per-(port,
  priority) sums, every queue count must be non-negative, and
  occupancy can never exceed the physical buffer.
* ``pfc.losslessness`` — a switch with PFC enabled must never drop
  (the whole point of §4's headroom reservation).
* ``link.byte_conservation`` — per cable: bytes serialized equal
  bytes delivered to the peer plus bytes lost to scripted faults,
  up to frames still in flight.
* ``rp.bounds`` — ``alpha ∈ [0, 1]`` (Equation 2 is a convex
  combination) and ``min_rate ≤ R_C ≤ line_rate``,
  ``R_C ≤ R_T ≤ line_rate`` after every RP update (Equations 1-4).
* ``cc.bounds`` — for :mod:`repro.cc` controllers without a
  ReactionPoint: any advertised rate stays in ``(0, line_rate]`` and
  any advertised congestion window stays at/above its floor.
* ``nic.cnp_conservation`` — fleet-wide, CNPs received plus CNPs
  dropped by scripted impairments never exceed CNPs sent (switch-
  originated FNCC CNPs count as sent).

The sweep checks run on the simulation event loop at
``check_interval_ns`` (and once more when the run finalizes); the
per-packet / per-update hooks stay O(1) and cost one ``is not None``
test when no guard is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: supported guard modes
MODES = ("report", "strict")

#: environment variable selecting a guard mode for experiments that
#: arm the guard themselves (the CC arena); ``repro run <experiment>
#: --invariants <mode>`` sets it for the invocation
INVARIANTS_ENV = "REPRO_INVARIANTS"

#: default number of periodic sweeps across a run horizon
_DEFAULT_SWEEPS = 32

#: relative tolerance for floating-point rate/alpha comparisons
_REL_EPS = 1e-9


class InvariantViolation(Exception):
    """A simulation invariant failed (raised in ``strict`` mode)."""

    def __init__(self, name: str, component: str, t_ns: int, detail: str):
        self.name = name
        self.component = component
        self.t_ns = t_ns
        self.detail = detail
        super().__init__(f"[{name}] {component} @ {t_ns}ns: {detail}")

    def __reduce__(self):
        # exceptions cross the process-pool boundary by pickle; the
        # default reduction would replay ``args`` (the formatted
        # message) into our four-argument __init__
        return (InvariantViolation, (self.name, self.component, self.t_ns, self.detail))


@dataclass
class Violation:
    """One recorded violation (``report`` mode)."""

    name: str
    component: str
    t_ns: int
    detail: str

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "component": self.component,
            "t_ns": self.t_ns,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class InvariantConfig:
    """Declarative invariant request, carried by a Scenario.

    ``mode`` — ``"strict"`` raises :class:`InvariantViolation` at the
    first failed check; ``"report"`` records violations into telemetry
    metrics and ``RunResult.invariant_report`` and keeps running.
    ``check_interval_ns`` — period of the conservation sweep (``None``
    divides the run horizon into 32 sweeps).  ``max_records`` bounds
    the per-run violation list so a systematically broken run cannot
    balloon its result.
    """

    mode: str = "report"
    check_interval_ns: Optional[int] = None
    max_records: int = 100

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.check_interval_ns is not None and self.check_interval_ns <= 0:
            raise ValueError("check_interval_ns must be positive")
        if self.max_records < 1:
            raise ValueError("max_records must be >= 1")


def config_violations(config) -> List[Tuple[str, str]]:
    """The §4 threshold violations of one :class:`SwitchConfig`.

    Empty list means the configuration is sound.  Only meaningful when
    both ECN and PFC are active — with either disabled there is no
    ordering to enforce (Figure 18 deliberately explores those corners,
    without a guard).
    """
    from repro.buffers.thresholds import (
        dynamic_pfc_threshold,
        ecn_threshold_bound_dynamic,
    )

    out: List[Tuple[str, str]] = []
    if not config.ecn_enabled or config.pfc_mode == "off":
        return out
    profile = config.profile
    marking = config.marking
    if marking.kmin_bytes < profile.mtu_bytes:
        out.append((
            "buffer.ecn_before_pfc",
            f"Kmin {marking.kmin_bytes}B is below one MTU "
            f"({profile.mtu_bytes}B) and cannot be configured",
        ))
    if config.pfc_mode == "dynamic":
        bound = ecn_threshold_bound_dynamic(profile, config.beta)
        if marking.kmin_bytes >= bound:
            out.append((
                "buffer.ecn_before_pfc",
                f"Kmin {marking.kmin_bytes}B >= dynamic bound {bound:.0f}B: "
                "PFC can fire before any packet is ECN-marked "
                "(t_ECN < beta(B - 8n*t_flight)/(8n(beta+1)), paper §4)",
            ))
        # marking must be able to saturate (reach Kmax, Pmax -> cutoff)
        # before the collapsing dynamic threshold pauses the ingress:
        # with the egress at Kmax the shared pool holds at least Kmax,
        # so t_PFC <= beta*(shared - Kmax)/num_priorities.
        pause_at_kmax = dynamic_pfc_threshold(
            profile, occupied_bytes=marking.kmax_bytes, beta=config.beta
        )
        if marking.kmax_bytes >= pause_at_kmax:
            out.append((
                "buffer.kmax_vs_pfc",
                f"Kmax {marking.kmax_bytes}B >= dynamic PFC threshold "
                f"{pause_at_kmax:.0f}B at that occupancy: marking saturates "
                "only after PAUSE has taken over",
            ))
    else:  # static
        t_pfc = config.t_pfc_static_bytes
        if marking.kmin_bytes * profile.num_ports >= t_pfc:
            out.append((
                "buffer.ecn_before_pfc",
                f"n*Kmin = {marking.kmin_bytes * profile.num_ports}B >= "
                f"static t_PFC {t_pfc:.0f}B: worst-case funnel pauses "
                "before ECN engages (t_PFC > n*t_ECN, paper §4)",
            ))
        if marking.kmax_bytes >= t_pfc:
            out.append((
                "buffer.kmax_vs_pfc",
                f"Kmax {marking.kmax_bytes}B >= static t_PFC {t_pfc:.0f}B: "
                "marking cannot saturate before PAUSE",
            ))
    return out


class InvariantGuard:
    """Runtime invariant checker bound to one network and one run."""

    def __init__(self, config: InvariantConfig, telemetry=None):
        self.config = config
        self.mode = config.mode
        self.metrics = telemetry.metrics if telemetry is not None else None
        self.tracer = telemetry.tracer if telemetry is not None else None
        self.net = None
        self.checks = 0
        self.sweeps = 0
        self.violation_count = 0
        self.violations: List[Violation] = []
        self._stop_ns = 0
        self._interval_ns = 0
        #: per-switch drop counts already accounted by the losslessness
        #: check, so one drop is reported once, not once per sweep
        self._seen_drops: Dict[str, int] = {}
        #: sharded runs (repro.shard): device names this guard owns;
        #: None means unrestricted (the serial default)
        self._local_names = None
        #: whether this guard runs the fleet-wide checks (exactly one
        #: shard does, so the merged check count matches serial)
        self._fleet = True

    def restrict(self, local_names, fleet: bool) -> "InvariantGuard":
        """Limit sweep checks to one shard's devices (repro.shard).

        Each device is owned by exactly one shard, so the per-shard
        check and violation counts sum to the serial totals.  Checks
        that need global state are split: the fleet CNP conservation
        *count* is kept by the ``fleet`` shard (without comparing — its
        local counters are partial) and the actual comparison moves to
        the merge step; boundary-cut cables are likewise re-checked
        across shards at merge time from per-channel byte counters.
        """
        self._local_names = set(local_names)
        self._fleet = fleet
        return self

    def _is_local(self, name: str) -> bool:
        return self._local_names is None or name in self._local_names

    # --- lifecycle --------------------------------------------------------

    def install(self, net, horizon_ns: int) -> "InvariantGuard":
        """Bind to ``net``: build-time checks now, sweeps until the horizon."""
        self.net = net
        net.attach_invariants(self)
        self.check_build(net)
        interval = self.config.check_interval_ns
        if interval is None:
            interval = max(horizon_ns // _DEFAULT_SWEEPS, 1)
        self._interval_ns = interval
        self._stop_ns = horizon_ns
        if interval <= horizon_ns:
            net.engine.schedule(interval, self._sweep)
        return self

    def finalize(self) -> None:
        """One last sweep, then fold the totals into the metrics registry."""
        if self.net is not None:
            self.check_network(self.net)
        if self.metrics is not None:
            self.metrics.counter("invariant.checks").inc(self.checks)
            self.metrics.counter("invariant.sweeps").inc(self.sweeps)
            if self.violation_count:
                self.metrics.counter("invariant.violations").inc(
                    self.violation_count
                )

    def report(self) -> Dict[str, Any]:
        """The JSON block stored in ``RunResult.invariant_report``."""
        return {
            "mode": self.mode,
            "checks": self.checks,
            "sweeps": self.sweeps,
            "violation_count": self.violation_count,
            "violations": [v.to_json() for v in self.violations],
        }

    # --- violation sink ---------------------------------------------------

    def violation(self, name: str, component: str, detail: str) -> None:
        """Record (report mode) or raise (strict mode) one violation."""
        t_ns = self.net.engine.now if self.net is not None else 0
        self.violation_count += 1
        if self.tracer is not None:
            self.tracer.emit(
                t_ns, "invariant.violation", component, name=name, detail=detail
            )
        if self.mode == "strict":
            raise InvariantViolation(name, component, t_ns, detail)
        if len(self.violations) < self.config.max_records:
            self.violations.append(Violation(name, component, t_ns, detail))

    # --- build-time checks ------------------------------------------------

    def check_build(self, net) -> None:
        """§4 threshold relations of every switch's configured buffers."""
        for switch in net.switches:
            if not self._is_local(switch.name):
                continue
            self.checks += 1
            for name, detail in config_violations(switch.config):
                self.violation(name, switch.name, detail)

    # --- sweep checks -----------------------------------------------------

    def _sweep(self) -> None:
        self.sweeps += 1
        self.check_network(self.net)
        now = self.net.engine.now
        if now + self._interval_ns <= self._stop_ns:
            self.net.engine.schedule(self._interval_ns, self._sweep)

    def check_network(self, net) -> None:
        """All sweep checks: switches, links, fleet CNP conservation."""
        for switch in net.switches:
            if self._is_local(switch.name):
                self.check_switch(switch)
        self._check_links(net)
        self._check_cnp_conservation(net)

    def check_switch(self, switch) -> None:
        """Shared-buffer conservation, bounds and PFC losslessness."""
        self.checks += 1
        ingress = sum(sum(per_prio) for per_prio in switch._ingress_bytes)
        egress = sum(sum(per_prio) for per_prio in switch._egress_bytes)
        occupied = switch.occupied_bytes
        if occupied != ingress or occupied != egress:
            self.violation(
                "switch.byte_conservation",
                switch.name,
                f"occupied={occupied} ingress_sum={ingress} egress_sum={egress}",
            )
        if any(
            count < 0
            for per_port in (*switch._ingress_bytes, *switch._egress_bytes)
            for count in per_port
        ):
            self.violation(
                "switch.negative_queue",
                switch.name,
                "a per-(port, priority) byte count went negative",
            )
        if occupied < 0 or occupied > switch.buffer_bytes:
            self.violation(
                "switch.buffer_bounds",
                switch.name,
                f"occupied={occupied} outside [0, {switch.buffer_bytes}]",
            )
        if switch.config.pfc_mode != "off":
            seen = self._seen_drops.get(switch.name, 0)
            if switch.dropped_packets > seen:
                self._seen_drops[switch.name] = switch.dropped_packets
                self.violation(
                    "pfc.losslessness",
                    switch.name,
                    f"{switch.dropped_packets - seen} packet(s) dropped on a "
                    "PFC-protected switch",
                )

    def _check_links(self, net) -> None:
        """Per-cable byte conservation: tx == delivered + lost + in flight."""
        devices = [*net.switches, *(host.nic for host in net.hosts)]
        for device in devices:
            if not self._is_local(device.name):
                continue
            for port in device.ports:
                self.checks += 1
                peer = port.peer
                if peer is None:
                    continue
                if not self._is_local(peer.owner.name):
                    # boundary-cut cable: the two byte counters live in
                    # different shards; re-checked at merge time
                    continue
                in_flight = port.tx_bytes - port.lost_bytes - peer.rx_bytes
                if in_flight < 0:
                    self.violation(
                        "link.byte_conservation",
                        f"{device.name}[{port.index}]",
                        f"delivered+lost exceeds transmitted by {-in_flight}B "
                        f"(tx={port.tx_bytes} rx={peer.rx_bytes} "
                        f"lost={port.lost_bytes})",
                    )

    def _check_cnp_conservation(self, net) -> None:
        """Fleet-wide: CNPs received + dropped never exceed CNPs sent.

        Senders are receiver NICs (the DCQCN NP) *and* switches (the
        FNCC fast-notification path originates CNPs at mark time).
        """
        if not self._fleet:
            return
        self.checks += 1
        if self._local_names is not None:
            # sharded: local counters are partial, so comparing would
            # false-positive; the fleet shard keeps the serial check
            # count and the comparison happens at merge over summed
            # per-shard counters
            return
        sent = received = dropped = 0
        for host in net.hosts:
            nic = host.nic
            sent += nic.cnps_sent
            received += nic.cnps_received
            dropped += nic.cnps_dropped
        for switch in net.switches:
            sent += switch.cnps_sent
        if received + dropped > sent:
            self.violation(
                "nic.cnp_conservation",
                "fleet",
                f"cnps received({received}) + dropped({dropped}) > sent({sent})",
            )

    # --- hot-path hooks ---------------------------------------------------

    def on_switch_dequeue(self, switch, port_index: int, pkt) -> None:
        """O(1) non-negativity check after every buffer decrement."""
        self.checks += 1
        prio = pkt.priority
        if (
            switch.occupied_bytes < 0
            or switch._egress_bytes[port_index][prio] < 0
            or switch._ingress_bytes[pkt.ingress_index][prio] < 0
        ):
            self.violation(
                "switch.negative_queue",
                switch.name,
                f"dequeue of flow {pkt.flow_id} drove a byte count negative "
                f"(occupied={switch.occupied_bytes})",
            )

    def on_rp_update(self, rp, event: str) -> None:
        """Equations 1-4 bounds after every RP state transition."""
        self.checks += 1
        line = rp.line_rate_bps
        slack = _REL_EPS * line
        alpha = rp._alpha
        if not -_REL_EPS <= alpha <= 1.0 + _REL_EPS:
            self.violation(
                "rp.bounds",
                rp.component,
                f"alpha={alpha} outside [0, 1] after {event}",
            )
        if rp.rc_bps <= 0 or rp.rc_bps > line + slack:
            self.violation(
                "rp.bounds",
                rp.component,
                f"R_C={rp.rc_bps} outside (0, line_rate={line}] after {event}",
            )
        if rp.rt_bps <= 0 or rp.rt_bps > line + slack:
            self.violation(
                "rp.bounds",
                rp.component,
                f"R_T={rp.rt_bps} outside (0, line_rate={line}] after {event}",
            )
        if event == "cut" and rp.rc_bps < rp.params.min_rate_bps - slack:
            self.violation(
                "rp.bounds",
                rp.component,
                f"R_C={rp.rc_bps} fell below min_rate={rp.params.min_rate_bps} "
                "after a cut",
            )

    def on_cc_update(self, cc, event: str) -> None:
        """Output bounds for controllers without a ReactionPoint.

        RP-backed controllers are covered by :meth:`on_rp_update` (the
        adapter wires the guard straight onto the RP); this hook guards
        the rest: any advertised rate must lie in ``(0, line_rate]``
        and any advertised window must stay at/above one packet's worth
        of the controller's configured floor.
        """
        self.checks += 1
        rate = cc.rate_bps()
        line = cc.line_rate_bps
        if rate is not None and line is not None:
            slack = _REL_EPS * line
            if rate <= 0 or rate > line + slack:
                self.violation(
                    "cc.bounds",
                    cc.component,
                    f"rate={rate} outside (0, line_rate={line}] after {event}",
                )
        cwnd = cc.cwnd_pkts()
        if cwnd is not None:
            floor = getattr(cc, "min_cwnd_pkts", 0.0)
            if cwnd < floor - _REL_EPS or cwnd != cwnd:  # NaN-safe
                self.violation(
                    "cc.bounds",
                    cc.component,
                    f"cwnd={cwnd} fell below floor={floor} after {event}",
                )
