"""Synthetic workloads (paper §6.2).

The paper could not replay its production trace either; it extracted
"salient characteristics... such as flow size distribution" and
generated matching synthetic traffic.  This package does the same:

* :mod:`repro.traffic.distributions` — inverse-CDF flow-size
  distributions (a storage-backend mix plus the classic DCTCP ones).
* :mod:`repro.traffic.workload` — closed-loop user-pair traffic and
  incast (disk-rebuild) events on a simulated network.
"""

from repro.traffic.distributions import (
    FlowSizeDistribution,
    storage_cluster,
    web_search,
    data_mining,
)
from repro.traffic.workload import (
    UserPair,
    UserTrafficWorkload,
    IncastWorkload,
)

__all__ = [
    "FlowSizeDistribution",
    "storage_cluster",
    "web_search",
    "data_mining",
    "UserPair",
    "UserTrafficWorkload",
    "IncastWorkload",
]
