"""Flow-size distributions as piecewise inverse CDFs.

Distributions are defined by (size_bytes, cumulative_probability)
anchor points and sampled by inverting the CDF with log-linear
interpolation between anchors — the standard way datacenter traffic
studies publish and reuse flow-size distributions.

:func:`storage_cluster` is our stand-in for the paper's one-day trace
of a cloud-storage backend cluster (~48 machines, >1 million flows):
dominated by small metadata/control transfers with a heavy tail of
multi-megabyte chunk reads/writes.  :func:`web_search` and
:func:`data_mining` are the classic DCTCP/VL2 distributions, included
for sensitivity studies.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple

from repro import units


class FlowSizeDistribution:
    """Inverse-CDF sampler over (size, cumulative probability) anchors."""

    def __init__(self, name: str, anchors: Sequence[Tuple[float, float]]):
        if len(anchors) < 2:
            raise ValueError("need at least two anchor points")
        sizes = [size for size, _ in anchors]
        probs = [prob for _, prob in anchors]
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("anchor sizes must be strictly increasing")
        if any(b < a for a, b in zip(probs, probs[1:])):
            raise ValueError("anchor probabilities must be non-decreasing")
        if probs[-1] != 1.0:
            raise ValueError("final anchor must have cumulative probability 1")
        if probs[0] < 0.0:
            raise ValueError("probabilities must be non-negative")
        self.name = name
        self._anchors: List[Tuple[float, float]] = [
            (float(size), float(prob)) for size, prob in anchors
        ]

    def quantile(self, u: float) -> int:
        """Size at cumulative probability ``u`` (log-linear between anchors)."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"quantile arg must be in [0, 1], got {u}")
        anchors = self._anchors
        if u <= anchors[0][1]:
            return int(round(anchors[0][0]))
        for (size_lo, p_lo), (size_hi, p_hi) in zip(anchors, anchors[1:]):
            if u <= p_hi:
                if p_hi == p_lo:
                    return int(round(size_hi))
                frac = (u - p_lo) / (p_hi - p_lo)
                log_size = math.log(size_lo) + frac * (
                    math.log(size_hi) - math.log(size_lo)
                )
                return max(1, int(round(math.exp(log_size))))
        return int(round(anchors[-1][0]))

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes."""
        return self.quantile(rng.random())

    def mean(self, resolution: int = 10_000) -> float:
        """Numerical mean of the distribution (bytes)."""
        total = 0.0
        for index in range(resolution):
            total += self.quantile((index + 0.5) / resolution)
        return total / resolution

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowSizeDistribution({self.name}, {len(self._anchors)} anchors)"


def storage_cluster() -> FlowSizeDistribution:
    """Stand-in for the paper's cloud-storage backend trace.

    Mix of small metadata operations (K-scale), medium object I/O and
    a heavy tail of chunk-sized transfers; erasure-coded storage moves
    data in multi-MB extents, which is also why the paper models disk
    rebuild as incast of large transfers.
    """
    return FlowSizeDistribution(
        "storage_cluster",
        [
            (units.kb(1), 0.15),
            (units.kb(4), 0.35),
            (units.kb(16), 0.55),
            (units.kb(64), 0.70),
            (units.kb(256), 0.80),
            (units.mb(1), 0.90),
            (units.mb(4), 0.97),
            (units.mb(16), 1.00),
        ],
    )


def web_search() -> FlowSizeDistribution:
    """The DCTCP paper's web-search workload (query/response heavy)."""
    return FlowSizeDistribution(
        "web_search",
        [
            (units.kb(6), 0.15),
            (units.kb(13), 0.3),
            (units.kb(19), 0.4),
            (units.kb(33), 0.53),
            (units.kb(53), 0.6),
            (units.kb(133), 0.7),
            (units.kb(667), 0.8),
            (units.mb(1.333), 0.9),
            (units.mb(6.667), 0.97),
            (units.mb(20), 1.0),
        ],
    )


def data_mining() -> FlowSizeDistribution:
    """The VL2 data-mining workload (most bytes in elephant flows)."""
    return FlowSizeDistribution(
        "data_mining",
        [
            (units.kb(0.1), 0.1),
            (units.kb(0.18), 0.2),
            (units.kb(0.25), 0.3),
            (units.kb(0.57), 0.4),
            (units.kb(1.6), 0.5),
            (units.kb(4), 0.6),
            (units.kb(20), 0.7),
            (units.kb(100), 0.8),
            (units.mb(1), 0.9),
            (units.mb(10), 0.95),
            (units.mb(100), 1.0),
        ],
    )
