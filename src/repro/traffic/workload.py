"""Workload generators on a simulated network (paper §6.2).

Two components, matching the paper's benchmark traffic:

* **User traffic** — a fixed number of communicating pairs; each pair
  issues message transfers back to back, with sizes drawn from a flow
  size distribution ("to simulate user traffic, each host communicates
  with one or more randomly selected host, and transfers data using
  distributions derived from traces").
* **Incast (disk rebuild)** — one receiver fetching from K senders
  simultaneously ("failed disks are repaired by fetching backups from
  several other servers"); modelled as K greedy flows into one host,
  as the rebuild sources stream chunk data continuously.

Throughput metrics follow the paper: per-user-pair goodput and
per-incast-sender goodput, summarized by median and 10th percentile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.host import Flow, Host, Message
from repro.sim.network import Network
from repro.traffic.distributions import FlowSizeDistribution, storage_cluster


@dataclass
class UserPair:
    """One communicating pair and its flow."""

    src: Host
    dst: Host
    flow: Flow


class UserTrafficWorkload:
    """Closed-loop user-pair traffic over ``net``.

    Each pair keeps exactly one message outstanding; when it completes
    the next is drawn from the distribution and queued immediately.
    """

    def __init__(
        self,
        net: Network,
        hosts: Sequence[Host],
        n_pairs: int,
        distribution: Optional[FlowSizeDistribution] = None,
        cc: str = "dcqcn",
        seed: int = 0,
        exclude: Sequence[Host] = (),
        fresh_qp_per_message: bool = False,
    ):
        if n_pairs < 1:
            raise ValueError("need at least one pair")
        eligible = [host for host in hosts if host not in set(exclude)]
        if len(eligible) < 2:
            raise ValueError("need at least two eligible hosts")
        self.net = net
        self.distribution = distribution or storage_cluster()
        self.rng = random.Random(seed)
        self.pairs: List[UserPair] = []
        self._started = False
        #: True models each transfer as a new queue pair: the reaction
        #: point forgets its congestion state and the transfer starts
        #: at line rate (paper §3.1's hyper-fast start).  This is what
        #: makes PFC indispensable in Figure 18.
        self.fresh_qp_per_message = fresh_qp_per_message
        for _ in range(n_pairs):
            src = self.rng.choice(eligible)
            dst = self.rng.choice([host for host in eligible if host is not src])
            flow = net.add_flow(src, dst, cc=cc)
            flow.on_message_complete = self._next_message
            self.pairs.append(UserPair(src, dst, flow))

    def start(self) -> None:
        """Queue the first message on every pair."""
        if self._started:
            raise RuntimeError("workload already started")
        self._started = True
        for pair in self.pairs:
            pair.flow.send_message(self.distribution.sample(self.rng))

    def _next_message(self, flow: Flow, message: Message) -> None:
        if self.fresh_qp_per_message and flow.cc is not None:
            flow.cc.reset_to_line_rate()
        flow.send_message(self.distribution.sample(self.rng))

    # --- metrics ---------------------------------------------------------------

    def pair_throughputs_bps(self, duration_ns: int) -> List[float]:
        """Per-pair goodput over the run (delivered bytes / duration)."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        return [
            pair.flow.bytes_delivered * 8e9 / duration_ns for pair in self.pairs
        ]

    def completed_message_throughputs_bps(self) -> List[float]:
        """Goodput of every completed message across all pairs."""
        result = []
        for pair in self.pairs:
            for message in pair.flow.messages:
                if message.completed:
                    result.append(message.throughput_bps())
        return result

    def message_fcts_ns(self, since_ns: int = 0) -> List[float]:
        """Completion times of messages started at/after ``since_ns``.

        The paper reports the 90th percentile of response time as the
        user-experience metric; feed this list to
        :func:`repro.analysis.stats.percentile`.
        """
        result = []
        for pair in self.pairs:
            for message in pair.flow.messages:
                if message.completed and message.start_ns >= since_ns:
                    result.append(float(message.fct_ns()))
        return result


class IncastWorkload:
    """K-to-1 incast: disk-rebuild traffic into one receiver."""

    def __init__(
        self,
        net: Network,
        receiver: Host,
        senders: Sequence[Host],
        cc: str = "dcqcn",
        start_ns: int = 0,
    ):
        if not senders:
            raise ValueError("need at least one sender")
        if receiver in senders:
            raise ValueError("receiver cannot also be a sender")
        self.net = net
        self.receiver = receiver
        self.senders = list(senders)
        self.flows: List[Flow] = []
        for sender in self.senders:
            flow = net.add_flow(sender, receiver, cc=cc, start_ns=start_ns)
            flow.set_greedy()
            self.flows.append(flow)

    @property
    def degree(self) -> int:
        return len(self.flows)

    def sender_throughputs_bps(self, duration_ns: int) -> List[float]:
        """Per-sender goodput over the run."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        return [flow.bytes_delivered * 8e9 / duration_ns for flow in self.flows]


def pick_incast_participants(
    hosts: Sequence[Host], degree: int, rng: random.Random
) -> tuple:
    """Choose a receiver and ``degree`` distinct senders at random."""
    if degree + 1 > len(hosts):
        raise ValueError(
            f"incast degree {degree} needs {degree + 1} hosts, have {len(hosts)}"
        )
    chosen = rng.sample(list(hosts), degree + 1)
    return chosen[0], chosen[1:]
