"""Deadlock watchdog: periodic pause wait-for graph scans.

PFC keeps the fabric lossless by propagating backpressure hop by hop;
the price is the classic cyclic-buffer-dependency hazard — if the
"who is pausing whom" relation ever contains a cycle, every device on
it waits for the next and the fabric deadlocks (the reason the paper's
operators treat PFC storms as sev-1 incidents).

The watchdog scans the live network every ``scan_ns``:

* **Wait-for edges.**  ``port.paused_mask`` on device ``D`` means the
  *peer* told ``D`` to stop sending, so ``D`` waits for the peer: an
  edge ``D -> peer``.  Edges are collected over every port of every
  switch and NIC.
* **Cycles.**  An iterative DFS over the (sorted, hence deterministic)
  edge set reports one cycle per scan — ``watchdog.cycle`` events with
  the member list, plus the ``watchdog.cycles`` counter and the
  ``watchdog.max_cycle_len`` gauge.
* **Global stalls.**  If total delivered bytes have not advanced for
  ``stall_ticks`` consecutive scans while some started, unfailed flow
  still has backlog, a ``watchdog.stall`` fires.  Transient pause
  trees park *some* flows; a healthy fabric never parks *all* of them,
  so this catches deadlock even when the cycle closes through state
  the pause snapshot cannot see.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set

from repro.faults.plan import WatchdogConfig
from repro.telemetry import events as trace_events

#: component name watchdog events are emitted under
_COMPONENT = "watchdog"


class DeadlockWatchdog:
    """Periodic deadlock scanner over a live network."""

    def __init__(self, net, config: WatchdogConfig, telemetry, stop_ns: int):
        self.net = net
        self.config = config
        self.tracer = telemetry.tracer
        self.metrics = telemetry.metrics
        self.stop_ns = stop_ns
        self.scans = 0
        self.cycles_found = 0
        self.stalls_flagged = 0
        self.last_cycle: List[str] = []
        self._stall_ticks = 0
        self._last_delivered = -1
        net.engine.schedule(config.scan_ns, self._scan)

    def findings(self) -> Dict[str, Any]:
        """JSON summary for ``RunResult.invariant_report['watchdog']``."""
        return {
            "scans": self.scans,
            "cycles": self.cycles_found,
            "stalls": self.stalls_flagged,
            "last_cycle": list(self.last_cycle),
        }

    # --- graph ------------------------------------------------------------

    def _edges(self) -> Dict[str, Set[str]]:
        """The pause wait-for graph: device name -> names it waits for."""
        edges: Dict[str, Set[str]] = {}
        devices = [*self.net.switches, *(host.nic for host in self.net.hosts)]
        for device in devices:
            for port in device.ports:
                if port.paused_mask and port.peer is not None:
                    edges.setdefault(device.name, set()).add(port.peer.owner.name)
        return edges

    @staticmethod
    def find_cycle(edges: Dict[str, Set[str]]) -> List[str]:
        """One cycle in ``edges`` as an ordered member list, or ``[]``."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        for root in sorted(edges):
            if color.get(root, WHITE) != WHITE:
                continue
            color[root] = GREY
            stack = [(root, iter(sorted(edges.get(root, ()))))]
            path = [root]
            while stack:
                node, neighbors = stack[-1]
                nxt = next(neighbors, None)
                if nxt is None:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()
                    continue
                state = color.get(nxt, WHITE)
                if state == GREY:
                    return path[path.index(nxt):]
                if state == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    path.append(nxt)
        return []

    # --- scan loop --------------------------------------------------------

    def _scan(self) -> None:
        now = self.net.engine.now
        self.scans += 1
        self.metrics.counter("watchdog.scans").inc()
        edges = self._edges()
        if self.tracer is not None:
            self.tracer.emit(
                now,
                trace_events.WATCHDOG_SCAN,
                _COMPONENT,
                edges=sum(len(targets) for targets in edges.values()),
            )
        cycle = self.find_cycle(edges)
        if cycle:
            self.cycles_found += 1
            self.last_cycle = cycle
            self.metrics.counter("watchdog.cycles").inc()
            self.metrics.gauge("watchdog.max_cycle_len").set_max(len(cycle))
            if self.tracer is not None:
                self.tracer.emit(
                    now,
                    trace_events.WATCHDOG_CYCLE,
                    _COMPONENT,
                    size=len(cycle),
                    members=list(cycle),
                )
        delivered = sum(flow.bytes_delivered for flow in self.net.flows)
        backlog = any(
            flow.has_backlog() and flow.start_ns <= now
            for flow in self.net.flows
        )
        if delivered == self._last_delivered and backlog:
            self._stall_ticks += 1
            if self._stall_ticks == self.config.stall_ticks:
                self.stalls_flagged += 1
                self.metrics.counter("watchdog.stalls").inc()
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        trace_events.WATCHDOG_STALL,
                        _COMPONENT,
                        ticks=self._stall_ticks,
                    )
        else:
            self._stall_ticks = 0
        self._last_delivered = delivered
        if now + self.config.scan_ns <= self.stop_ns:
            self.net.engine.schedule(self.config.scan_ns, self._scan)
