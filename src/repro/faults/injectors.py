"""Runtime fault injectors: turning a :class:`FaultPlan` into events.

:func:`install_plan` is the one entry point — called by
:func:`repro.runner.scenario.run_scenario_inline` after the network is
built and flows are open, before the clock starts.  It schedules the
inject/clear edges of every injector on the engine, arms the
:class:`~repro.faults.watchdog.DeadlockWatchdog` and
:class:`~repro.faults.recovery.RecoveryTracker`, and returns a
:class:`FaultRuntime` whose :meth:`FaultRuntime.finalize` folds the
recovery gauges into the metrics registry at end of run.

Determinism: every injector that consumes randomness draws from its
own stream via :func:`repro.runner.scale.derive_seed` (keyed on the
run seed, the injector kind and its position in the plan), and all
fault timing is scheduled up front on the deterministic engine — so a
fault-bearing run is exactly as reproducible as a clean one, and
serial vs parallel execution cannot diverge.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.faults.plan import (
    CnpImpairment,
    ErrorBurst,
    FaultPlan,
    LinkFlap,
    PauseStorm,
    SlowReceiver,
)
from repro.faults.recovery import RecoveryTracker
from repro.faults.watchdog import DeadlockWatchdog
from repro.runner.scale import derive_seed
from repro.sim.packet import pause_frame
from repro.telemetry import events as trace_events

#: component name fault inject/clear events are emitted under
_COMPONENT = "faults"

#: floor for the auto-derived recovery sample period
_MIN_SAMPLE_NS = 1000


def _find_device(net, resolve, name: str):
    """Resolve an injector target: switch name, host locator, or NIC."""
    for switch in net.switches:
        if switch.name == name:
            return switch
    try:
        return resolve(name).nic
    except (KeyError, LookupError, ValueError, IndexError, TypeError):
        pass
    for host in net.hosts:
        if host.name == name or host.nic.name == name:
            return host.nic
    raise LookupError(f"no device named {name!r} in this topology")


class _Emitter:
    """Shared inject/clear bookkeeping (trace events + counters)."""

    def __init__(self, telemetry, engine):
        self.tracer = telemetry.tracer
        self.metrics = telemetry.metrics
        self.engine = engine

    def inject(self, kind: str, target: str) -> None:
        self.metrics.counter("fault.injected").inc()
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                trace_events.FAULT_INJECT,
                _COMPONENT,
                kind=kind,
                target=target,
            )

    def clear(self, kind: str, target: str) -> None:
        self.metrics.counter("fault.cleared").inc()
        if self.tracer is not None:
            self.tracer.emit(
                self.engine.now,
                trace_events.FAULT_CLEAR,
                _COMPONENT,
                kind=kind,
                target=target,
            )


class _SilentEmitter:
    """Emitter for the non-primary shard of a boundary-spanning fault.

    A LinkFlap whose endpoints live in different shards must drive the
    port state in both, but its inject/clear counters and trace events
    belong to exactly one (the ``a`` side), or the merged totals would
    double-count.
    """

    def inject(self, kind: str, target: str) -> None:
        pass

    def clear(self, kind: str, target: str) -> None:
        pass


def _install_link_flap(net, resolve, injector: LinkFlap, windows, emitter) -> None:
    dev_a = _find_device(net, resolve, injector.a)
    dev_b = _find_device(net, resolve, injector.b)
    port_a = dev_a.port_to(dev_b)
    port_b = dev_b.port_to(dev_a)
    target = f"{injector.a}--{injector.b}"

    def down() -> None:
        port_a.set_link_up(False)
        port_b.set_link_up(False)
        emitter.inject(injector.kind, target)

    def up() -> None:
        port_a.set_link_up(True)
        port_b.set_link_up(True)
        emitter.clear(injector.kind, target)

    for start, end in windows:
        net.engine.schedule_at(start, down)
        net.engine.schedule_at(end, up)


def _install_error_burst(
    net, resolve, injector: ErrorBurst, windows, emitter, seed: int, index: int
) -> None:
    dev_a = _find_device(net, resolve, injector.a)
    dev_b = _find_device(net, resolve, injector.b)
    port = dev_a.port_to(dev_b)
    target = f"{injector.a}->{injector.b}"
    previous_rate = port.error_rate

    def on(burst_seed: int) -> None:
        port.set_error_rate(injector.rate, seed=burst_seed)
        emitter.inject(injector.kind, target)

    def off(restore_seed: int) -> None:
        port.set_error_rate(previous_rate, seed=restore_seed)
        emitter.clear(injector.kind, target)

    for w, (start, end) in enumerate(windows):
        stream = f"faults.error_burst.{index}.{w}"
        net.engine.schedule_at(start, on, derive_seed(seed, stream))
        net.engine.schedule_at(end, off, derive_seed(seed, stream + ".restore"))


class _PauseStormRuntime:
    """Refreshes PAUSE on the host's uplink through each storm window."""

    def __init__(self, net, nic, injector: PauseStorm, windows, emitter):
        self.nic = nic
        self.injector = injector
        self.emitter = emitter
        self.engine = net.engine
        for start, end in windows:
            self.engine.schedule_at(start, self._start, end)

    def _start(self, end_ns: int) -> None:
        self.emitter.inject(self.injector.kind, self.injector.host)
        self._tick(end_ns)

    def _tick(self, end_ns: int) -> None:
        now = self.engine.now
        nic = self.nic
        if now >= end_ns:
            nic.port.send_control(
                pause_frame(nic.device_id, self.injector.priority, pause=False)
            )
            self.emitter.clear(self.injector.kind, self.injector.host)
            return
        nic.port.send_control(
            pause_frame(nic.device_id, self.injector.priority, pause=True)
        )
        self.engine.schedule(
            min(self.injector.refresh_ns, end_ns - now), self._tick, end_ns
        )


class _CnpImpairmentRuntime:
    """Hooked into ``HostNic.cnp_impairment``; drops or delays CNPs."""

    def __init__(self, net, nic, injector: CnpImpairment, windows, emitter, rng):
        if nic.cnp_impairment is not None:
            raise ValueError(f"{nic.name}: only one CnpImpairment per NIC")
        self.injector = injector
        self.windows = list(windows)
        self.emitter = emitter
        self.engine = net.engine
        self.rng = rng
        nic.cnp_impairment = self
        for start, end in self.windows:
            self.engine.schedule_at(start, emitter.inject, injector.kind, injector.host)
            self.engine.schedule_at(end, emitter.clear, injector.kind, injector.host)

    def _active(self, now: int) -> bool:
        for start, end in self.windows:
            if start <= now < end:
                return True
        return False

    def intercept(self, nic, pkt) -> bool:
        """True when the CNP was consumed (dropped or re-scheduled)."""
        now = self.engine.now
        if not self._active(now):
            return False
        injector = self.injector
        if injector.drop_rate > 0.0 and self.rng.random() < injector.drop_rate:
            nic.cnps_dropped += 1
            if nic.tracer is not None:
                nic.tracer.emit(
                    now, trace_events.FAULT_CNP_DROP, nic.name, flow=pkt.flow_id
                )
            return True
        delay = injector.delay_ns
        if injector.jitter_ns > 0:
            delay += self.rng.randint(0, injector.jitter_ns)
        if delay > 0:
            nic.cnps_delayed += 1
            if nic.tracer is not None:
                nic.tracer.emit(
                    now,
                    trace_events.FAULT_CNP_DELAY,
                    nic.name,
                    flow=pkt.flow_id,
                    delay_ns=delay,
                )
            self.engine.schedule(delay, nic._deliver_cnp, pkt)
            return True
        return False


def _install_slow_receiver(
    net, resolve, injector: SlowReceiver, windows, emitter
) -> None:
    nic = _find_device(net, resolve, injector.host)
    drain_port = nic.port.peer  # the switch's transmit port toward the host
    if drain_port is None:
        raise RuntimeError(f"{nic.name}: port is not connected")
    original_rate = drain_port.rate_bps

    def slow() -> None:
        drain_port.set_rate(original_rate * injector.fraction)
        emitter.inject(injector.kind, injector.host)

    def restore() -> None:
        drain_port.set_rate(original_rate)
        emitter.clear(injector.kind, injector.host)

    for start, end in windows:
        net.engine.schedule_at(start, slow)
        net.engine.schedule_at(end, restore)


class FaultRuntime:
    """Everything live that a :class:`FaultPlan` installed on one run."""

    def __init__(
        self,
        plan: FaultPlan,
        watchdog: Optional[DeadlockWatchdog],
        recovery: Optional[RecoveryTracker],
    ):
        self.plan = plan
        self.watchdog = watchdog
        self.recovery = recovery

    def finalize(self) -> None:
        """Fold recovery gauges into the registry (end of run, once)."""
        if self.recovery is not None:
            self.recovery.finalize()


def install_plan(
    net,
    plan: FaultPlan,
    resolve,
    seed: int,
    horizon_ns: int,
    telemetry,
    local_names=None,
) -> FaultRuntime:
    """Arm every injector of ``plan`` on a freshly built network.

    ``resolve`` is the host-locator resolver of the scenario's topology
    (see :func:`repro.runner.scenario.build_scenario_network`);
    ``horizon_ns`` is warmup + measurement, the clamp for every fault
    window and the watchdog / recovery-sampler stop time.

    ``local_names`` restricts installation to one shard's devices
    (repro.shard): an injector is armed only where its primary device
    lives — host-targeted faults in the host's shard, an ErrorBurst in
    its transmit-side shard, a LinkFlap wherever either endpoint lives
    (counted on the ``a`` side only).  ``fault.windows`` is still
    accumulated from the full plan so every shard reports the serial
    total, and the deadlock watchdog — which walks a global wait-for
    graph no single shard can see — is not armed on sharded runs.
    """
    emitter = _Emitter(telemetry, net.engine)

    def is_local(device) -> bool:
        return local_names is None or device.name in local_names

    total_windows = 0
    for index, injector in enumerate(plan.injectors):
        windows = injector.windows(horizon_ns)
        total_windows += len(windows)
        if not windows:
            continue
        if isinstance(injector, LinkFlap):
            dev_a = _find_device(net, resolve, injector.a)
            dev_b = _find_device(net, resolve, injector.b)
            if is_local(dev_a):
                _install_link_flap(net, resolve, injector, windows, emitter)
            elif is_local(dev_b):
                _install_link_flap(
                    net, resolve, injector, windows, _SilentEmitter()
                )
        elif isinstance(injector, ErrorBurst):
            if is_local(_find_device(net, resolve, injector.a)):
                _install_error_burst(
                    net, resolve, injector, windows, emitter, seed, index
                )
        elif isinstance(injector, PauseStorm):
            nic = _find_device(net, resolve, injector.host)
            if is_local(nic):
                _PauseStormRuntime(net, nic, injector, windows, emitter)
        elif isinstance(injector, CnpImpairment):
            nic = _find_device(net, resolve, injector.host)
            if is_local(nic):
                rng = random.Random(
                    derive_seed(seed, f"faults.cnp_impairment.{index}")
                )
                _CnpImpairmentRuntime(net, nic, injector, windows, emitter, rng)
        elif isinstance(injector, SlowReceiver):
            nic = _find_device(net, resolve, injector.host)
            if is_local(nic):
                _install_slow_receiver(net, resolve, injector, windows, emitter)
        else:  # pragma: no cover - FaultPlan validates kinds
            raise TypeError(f"unknown injector {injector!r}")
    if total_windows:
        telemetry.metrics.counter("fault.windows").inc(total_windows)

    watchdog = None
    if plan.watchdog is not None and local_names is None:
        watchdog = DeadlockWatchdog(
            net, plan.watchdog, telemetry, stop_ns=horizon_ns
        )
    recovery = None
    merged = plan.windows(horizon_ns)
    if merged:
        sample_ns = plan.recovery_sample_ns or max(
            horizon_ns // 256, _MIN_SAMPLE_NS
        )
        recovery = RecoveryTracker(
            net, merged, sample_ns, telemetry, stop_ns=horizon_ns
        )
    return FaultRuntime(plan, watchdog, recovery)
