"""Fault-injection & resilience subsystem (see DESIGN.md §9).

The pieces:

* :mod:`repro.faults.plan` — the declarative, JSON-serializable
  :class:`FaultPlan` and its injector vocabulary (:class:`LinkFlap`,
  :class:`ErrorBurst`, :class:`PauseStorm`, :class:`CnpImpairment`,
  :class:`SlowReceiver`) plus :class:`WatchdogConfig`.
* :mod:`repro.faults.injectors` — :func:`install_plan`, the runtime
  that arms a plan on a freshly built network and returns a
  :class:`FaultRuntime`.
* :mod:`repro.faults.watchdog` — :class:`DeadlockWatchdog`, the pause
  wait-for graph scanner (cycles and global stalls).
* :mod:`repro.faults.recovery` — :class:`RecoveryTracker`, the
  time-to-recover / goodput-under-faults / victim-loss metrics.

A scenario opts in by carrying a plan in its ``faults`` field; the
runner installs it automatically, so fault-bearing runs cache, fan out
to workers, and stay serial==parallel deterministic exactly like clean
runs.
"""

from repro.faults.injectors import FaultRuntime, install_plan
from repro.faults.plan import (
    CnpImpairment,
    ErrorBurst,
    FaultPlan,
    INJECTOR_KINDS,
    LinkFlap,
    PauseStorm,
    SlowReceiver,
    WatchdogConfig,
)
from repro.faults.recovery import RecoveryTracker
from repro.faults.watchdog import DeadlockWatchdog

__all__ = [
    "CnpImpairment",
    "DeadlockWatchdog",
    "ErrorBurst",
    "FaultPlan",
    "FaultRuntime",
    "INJECTOR_KINDS",
    "LinkFlap",
    "PauseStorm",
    "RecoveryTracker",
    "SlowReceiver",
    "WatchdogConfig",
    "install_plan",
]
