"""Recovery metrics: how fast flows heal after scripted faults.

The tracker samples every flow's delivered bytes on a fixed cadence
and maintains a per-flow EWMA goodput baseline from the samples taken
*outside* fault windows.  From that it derives the three resilience
numbers folded into every fault-bearing :class:`RunResult`:

* **time-to-recover** — at the end of each merged fault window every
  flow with an established baseline enters a recovering state; the
  first later sample whose goodput reaches ``recover_fraction`` of the
  baseline closes it (``fault.recovered`` event, ``fault.recoveries``
  counter, ``fault.max_recovery_ns`` / ``fault.mean_recovery_ns``
  gauges).  Flows a fault never touched recover within one sample
  period, so the *max* is the honest damage number.
* **goodput under faults** — bytes delivered inside fault windows over
  the baseline-predicted bytes (``fault.goodput_fraction``).
* **victim-flow loss** — the worst per-flow throughput deficit inside
  fault windows (``fault.victim_loss_fraction``), the collateral-damage
  number for pause-storm pathologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry import events as trace_events

#: component name recovery events are emitted under
_COMPONENT = "faults"


class RecoveryTracker:
    """Samples flow progress and scores recovery after fault windows."""

    def __init__(
        self,
        net,
        windows: List[Tuple[int, int]],
        sample_ns: int,
        telemetry,
        stop_ns: int,
        recover_fraction: float = 0.9,
        baseline_alpha: float = 0.2,
    ):
        if sample_ns <= 0:
            raise ValueError(f"sample_ns must be positive, got {sample_ns}")
        self.net = net
        self.windows = list(windows)
        self.sample_ns = sample_ns
        self.tracer = telemetry.tracer
        self.metrics = telemetry.metrics
        self.stop_ns = stop_ns
        self.recover_fraction = recover_fraction
        self.baseline_alpha = baseline_alpha
        self.recovery_times: List[int] = []
        self._last_bytes: Dict[int, int] = {}
        self._last_ns = net.engine.now
        self._baseline: Dict[int, float] = {}  # flow id -> bytes/ns EWMA
        self._recovering: Dict[int, Tuple[int, float]] = {}
        self._window_bytes = 0.0
        self._expected_bytes = 0.0
        self._flow_window_bytes: Dict[int, float] = {}
        self._flow_expected: Dict[int, float] = {}
        engine = net.engine
        engine.schedule(sample_ns, self._sample)
        for _, end in self.windows:
            engine.schedule_at(end, self._on_window_end, end)

    def _window_at(self, t: int) -> Optional[Tuple[int, int]]:
        for start, end in self.windows:
            if start <= t < end:
                return (start, end)
        return None

    def _on_window_end(self, end_ns: int) -> None:
        for flow in self.net.flows:
            baseline = self._baseline.get(flow.flow_id)
            if baseline is not None and baseline > 0:
                self._recovering[flow.flow_id] = (end_ns, baseline)

    def _sample(self) -> None:
        now = self.net.engine.now
        dt = now - self._last_ns
        if dt > 0:
            in_window = self._window_at(now) is not None
            for flow in self.net.flows:
                fid = flow.flow_id
                delta = flow.bytes_delivered - self._last_bytes.get(fid, 0)
                self._last_bytes[fid] = flow.bytes_delivered
                rate = delta / dt
                baseline = self._baseline.get(fid)
                if in_window:
                    if baseline is not None:
                        self._window_bytes += delta
                        self._expected_bytes += baseline * dt
                        self._flow_window_bytes[fid] = (
                            self._flow_window_bytes.get(fid, 0.0) + delta
                        )
                        self._flow_expected[fid] = (
                            self._flow_expected.get(fid, 0.0) + baseline * dt
                        )
                    continue
                recovering = self._recovering.get(fid)
                if recovering is not None:
                    fault_end, base = recovering
                    if rate >= self.recover_fraction * base:
                        recover_ns = now - fault_end
                        self.recovery_times.append(recover_ns)
                        self.metrics.counter("fault.recoveries").inc()
                        if self.tracer is not None:
                            self.tracer.emit(
                                now,
                                trace_events.FAULT_RECOVERED,
                                _COMPONENT,
                                flow=fid,
                                recover_ns=recover_ns,
                            )
                        del self._recovering[fid]
                        continue  # the depressed sample must not drag the baseline
                if flow.start_ns <= now:
                    if baseline is None:
                        self._baseline[fid] = rate
                    else:
                        alpha = self.baseline_alpha
                        self._baseline[fid] = (1 - alpha) * baseline + alpha * rate
        self._last_ns = now
        if now + self.sample_ns <= self.stop_ns:
            self.net.engine.schedule(self.sample_ns, self._sample)

    def finalize(self) -> None:
        """Fold the resilience gauges into the metrics registry."""
        if self.recovery_times:
            self.metrics.gauge("fault.max_recovery_ns").set_max(
                max(self.recovery_times)
            )
            self.metrics.gauge("fault.mean_recovery_ns").set(
                sum(self.recovery_times) / len(self.recovery_times)
            )
        if self._expected_bytes > 0:
            self.metrics.gauge("fault.goodput_fraction").set(
                self._window_bytes / self._expected_bytes
            )
        worst = 0.0
        for fid, expected in self._flow_expected.items():
            if expected <= 0:
                continue
            got = self._flow_window_bytes.get(fid, 0.0)
            worst = max(worst, 1.0 - got / expected)
        if self._flow_expected:
            self.metrics.gauge("fault.victim_loss_fraction").set(max(0.0, worst))
