"""Recovery metrics: how fast flows heal after scripted faults.

The tracker samples every flow's delivered bytes on a fixed cadence
and maintains a per-flow EWMA goodput baseline from the samples taken
*outside* fault windows.  From that it derives the three resilience
numbers folded into every fault-bearing :class:`RunResult`:

* **time-to-recover** — at the end of each merged fault window every
  flow with an established baseline enters a recovering state; the
  first later sample whose goodput reaches ``recover_fraction`` of the
  baseline closes it (``fault.recovered`` event, ``fault.recoveries``
  counter, ``fault.max_recovery_ns`` / ``fault.mean_recovery_ns``
  gauges).  Flows a fault never touched recover within one sample
  period, so the *max* is the honest damage number.
* **goodput under faults** — bytes delivered inside fault windows over
  the baseline-predicted bytes (``fault.goodput_fraction``).
* **victim-flow loss** — the worst per-flow throughput deficit inside
  fault windows (``fault.victim_loss_fraction``), the collateral-damage
  number for pause-storm pathologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry import events as trace_events

#: component name recovery events are emitted under
_COMPONENT = "faults"


def fold_recovery_gauges(
    metrics,
    recovery_times: List[int],
    flow_window_bytes: Dict[int, float],
    flow_expected: Dict[int, float],
) -> None:
    """Fold the resilience gauges from per-flow accumulations.

    Totals are summed in ascending flow-id order, so the result is a
    pure function of the per-flow dicts — a sharded run merges each
    shard's dicts (every flow is sampled in exactly one shard's
    destination, the others contribute literal zeros) and folds once,
    landing on the same floats as a serial run.
    """
    if recovery_times:
        metrics.gauge("fault.max_recovery_ns").set_max(max(recovery_times))
        metrics.gauge("fault.mean_recovery_ns").set(
            sum(recovery_times) / len(recovery_times)
        )
    window_bytes = sum(flow_window_bytes[fid] for fid in sorted(flow_window_bytes))
    expected_bytes = sum(flow_expected[fid] for fid in sorted(flow_expected))
    if expected_bytes > 0:
        metrics.gauge("fault.goodput_fraction").set(window_bytes / expected_bytes)
    worst = 0.0
    for fid, expected in flow_expected.items():
        if expected <= 0:
            continue
        got = flow_window_bytes.get(fid, 0.0)
        worst = max(worst, 1.0 - got / expected)
    if flow_expected:
        metrics.gauge("fault.victim_loss_fraction").set(max(0.0, worst))


class RecoveryTracker:
    """Samples flow progress and scores recovery after fault windows."""

    def __init__(
        self,
        net,
        windows: List[Tuple[int, int]],
        sample_ns: int,
        telemetry,
        stop_ns: int,
        recover_fraction: float = 0.9,
        baseline_alpha: float = 0.2,
    ):
        if sample_ns <= 0:
            raise ValueError(f"sample_ns must be positive, got {sample_ns}")
        self.net = net
        self.windows = list(windows)
        self.sample_ns = sample_ns
        self.tracer = telemetry.tracer
        self.metrics = telemetry.metrics
        self.stop_ns = stop_ns
        self.recover_fraction = recover_fraction
        self.baseline_alpha = baseline_alpha
        self.recovery_times: List[int] = []
        self._last_bytes: Dict[int, int] = {}
        self._last_ns = net.engine.now
        self._baseline: Dict[int, float] = {}  # flow id -> bytes/ns EWMA
        self._recovering: Dict[int, Tuple[int, float]] = {}
        self._flow_window_bytes: Dict[int, float] = {}
        self._flow_expected: Dict[int, float] = {}
        engine = net.engine
        engine.schedule(sample_ns, self._sample)
        for _, end in self.windows:
            engine.schedule_at(end, self._on_window_end, end)

    def _window_at(self, t: int) -> Optional[Tuple[int, int]]:
        for start, end in self.windows:
            if start <= t < end:
                return (start, end)
        return None

    def _on_window_end(self, end_ns: int) -> None:
        for flow in self.net.flows:
            baseline = self._baseline.get(flow.flow_id)
            if baseline is not None and baseline > 0:
                self._recovering[flow.flow_id] = (end_ns, baseline)

    def _sample(self) -> None:
        now = self.net.engine.now
        dt = now - self._last_ns
        if dt > 0:
            in_window = self._window_at(now) is not None
            for flow in self.net.flows:
                fid = flow.flow_id
                delta = flow.bytes_delivered - self._last_bytes.get(fid, 0)
                self._last_bytes[fid] = flow.bytes_delivered
                rate = delta / dt
                baseline = self._baseline.get(fid)
                if in_window:
                    if baseline is not None:
                        self._flow_window_bytes[fid] = (
                            self._flow_window_bytes.get(fid, 0.0) + delta
                        )
                        self._flow_expected[fid] = (
                            self._flow_expected.get(fid, 0.0) + baseline * dt
                        )
                    continue
                recovering = self._recovering.get(fid)
                if recovering is not None:
                    fault_end, base = recovering
                    if rate >= self.recover_fraction * base:
                        recover_ns = now - fault_end
                        self.recovery_times.append(recover_ns)
                        self.metrics.counter("fault.recoveries").inc()
                        if self.tracer is not None:
                            self.tracer.emit(
                                now,
                                trace_events.FAULT_RECOVERED,
                                _COMPONENT,
                                flow=fid,
                                recover_ns=recover_ns,
                            )
                        del self._recovering[fid]
                        continue  # the depressed sample must not drag the baseline
                if flow.start_ns <= now:
                    if baseline is None:
                        self._baseline[fid] = rate
                    else:
                        alpha = self.baseline_alpha
                        self._baseline[fid] = (1 - alpha) * baseline + alpha * rate
        self._last_ns = now
        if now + self.sample_ns <= self.stop_ns:
            self.net.engine.schedule(self.sample_ns, self._sample)

    def export_state(self) -> Dict[str, object]:
        """Raw per-flow accumulations, for sharded workers.

        A shard ships these instead of folding locally; the parent
        merges (entry-wise sums, list concatenation) and calls
        :func:`fold_recovery_gauges` once on the union.
        """
        return {
            "recovery_times": list(self.recovery_times),
            "flow_window": dict(self._flow_window_bytes),
            "flow_expected": dict(self._flow_expected),
        }

    def finalize(self) -> None:
        """Fold the resilience gauges into the metrics registry."""
        fold_recovery_gauges(
            self.metrics,
            self.recovery_times,
            self._flow_window_bytes,
            self._flow_expected,
        )
