"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a pure description of the faults one run
suffers — a tuple of timed *injectors* plus an optional
:class:`WatchdogConfig`.  Like a :class:`~repro.runner.scenario.Scenario`
(which carries a plan in its ``faults`` field), a plan is frozen,
JSON-serializable and free of simulator state, so it participates in
the result-cache content hash and ships to worker processes unchanged.

The injector vocabulary mirrors the paper's deployment war stories:

================  ==========================================================
injector          failure mode
================  ==========================================================
``LinkFlap``      a cable goes dark and comes back (down/up schedule)
``ErrorBurst``    a time-windowed CRC error-rate burst on a marginal link
                  (the §7 non-congestion losses, but transient)
``PauseStorm``    a malfunctioning NP asserts PFC PAUSE on its uplink —
                  the slow-receiver pathology that collateral-damages
                  victim flows sharing upstream ports
``CnpImpairment`` loss / delay / jitter on the reverse CNP path (the
                  feedback channel DCQCN's stability analysis assumes
                  is clean)
``SlowReceiver``  the receiver drains at a fraction of line rate
================  ==========================================================

Each injector exposes ``windows(horizon_ns)`` — the list of
``(start_ns, end_ns)`` intervals it is active, clamped to the run
horizon — and a ``kind`` name used in trace events and hand-written
plan files (:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`,
the format behind ``python -m repro run --faults plan.json``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple

from repro import units

#: friendly kind name -> injector class (for plan files / CLI listings)
INJECTOR_KINDS: Dict[str, type] = {}


def _register(cls: type) -> type:
    INJECTOR_KINDS[cls.kind] = cls
    return cls


def _schedule(
    start_ns: int, duration_ns: int, period_ns: int, count: int, horizon_ns: int
) -> List[Tuple[int, int]]:
    """Expand a (possibly repeating) schedule, clamped to the horizon."""
    out: List[Tuple[int, int]] = []
    for i in range(count):
        start = start_ns + i * period_ns
        if start >= horizon_ns:
            break
        out.append((start, min(start + duration_ns, horizon_ns)))
        if period_ns <= 0:
            break
    return out


def _check_repeat(name: str, duration_ns: int, period_ns: int, count: int) -> None:
    if duration_ns <= 0:
        raise ValueError(f"{name}: duration must be positive, got {duration_ns}")
    if count < 1:
        raise ValueError(f"{name}: count must be >= 1, got {count}")
    if count > 1 and period_ns <= duration_ns:
        raise ValueError(
            f"{name}: repeating windows need period_ns > duration "
            f"({period_ns} <= {duration_ns})"
        )


@_register
@dataclass(frozen=True)
class LinkFlap:
    """Take the ``a``--``b`` cable down for ``down_ns``, ``count`` times.

    Both directions go dark together: nothing new starts serializing,
    and frames finishing serialization while the link is down are lost
    (``link.down_drops``).  Endpoints are device names (``"T1"``,
    ``"L1"``) or host locators (``"3:0"``, ``"H1"``).
    """

    kind: ClassVar[str] = "link_flap"
    a: str
    b: str
    start_ns: int
    down_ns: int
    period_ns: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        _check_repeat("link_flap", self.down_ns, self.period_ns, self.count)
        if self.start_ns < 0:
            raise ValueError(f"link_flap: start_ns must be >= 0, got {self.start_ns}")

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        return _schedule(
            self.start_ns, self.down_ns, self.period_ns, self.count, horizon_ns
        )


@_register
@dataclass(frozen=True)
class ErrorBurst:
    """A windowed CRC error-rate burst on the ``a`` -> ``b`` direction.

    During each window the transmit port on ``a`` facing ``b`` drops
    frames with probability ``rate``; afterwards the port's previous
    error rate is restored.  The burst RNG stream is derived from the
    run seed, so the burst is deterministic and cache-keyed.
    """

    kind: ClassVar[str] = "error_burst"
    a: str
    b: str
    rate: float
    start_ns: int
    duration_ns: int
    period_ns: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.rate < 1.0:
            raise ValueError(f"error_burst: rate must be in (0, 1), got {self.rate}")
        _check_repeat("error_burst", self.duration_ns, self.period_ns, self.count)

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        return _schedule(
            self.start_ns, self.duration_ns, self.period_ns, self.count, horizon_ns
        )


@_register
@dataclass(frozen=True)
class PauseStorm:
    """A malfunctioning receiver NP asserts PAUSE on its uplink.

    During each window the host's NIC sends PFC PAUSE for ``priority``
    up to its ToR every ``refresh_ns`` (real storms are refresh trains;
    the cadence also shows up in ``pfc.pause_rx``), then a RESUME at
    the window end.  The paused ToR port backs traffic into the shared
    buffer and the cascade propagates upstream — the paper's
    slow-receiver / pause-storm pathology.
    """

    kind: ClassVar[str] = "pause_storm"
    host: str
    start_ns: int
    duration_ns: int
    priority: int = 0
    refresh_ns: int = units.us(65)
    period_ns: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        _check_repeat("pause_storm", self.duration_ns, self.period_ns, self.count)
        if not 0 <= self.priority < 8:
            raise ValueError(f"pause_storm: priority must be 0..7, got {self.priority}")
        if self.refresh_ns <= 0:
            raise ValueError(
                f"pause_storm: refresh_ns must be positive, got {self.refresh_ns}"
            )

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        return _schedule(
            self.start_ns, self.duration_ns, self.period_ns, self.count, horizon_ns
        )


@_register
@dataclass(frozen=True)
class CnpImpairment:
    """Loss / delay / jitter on the reverse CNP path into ``host``.

    ``host`` is the *sender* whose incoming CNPs are impaired: each CNP
    is dropped with ``drop_rate``, else delayed by ``delay_ns`` plus a
    uniform 0..``jitter_ns`` draw.  ``duration_ns=0`` means the rest of
    the run.
    """

    kind: ClassVar[str] = "cnp_impairment"
    host: str
    drop_rate: float = 0.0
    delay_ns: int = 0
    jitter_ns: int = 0
    start_ns: int = 0
    duration_ns: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"cnp_impairment: drop_rate must be in [0, 1), got {self.drop_rate}"
            )
        if self.delay_ns < 0 or self.jitter_ns < 0:
            raise ValueError("cnp_impairment: delay_ns and jitter_ns must be >= 0")
        if self.drop_rate == 0.0 and self.delay_ns == 0 and self.jitter_ns == 0:
            raise ValueError(
                "cnp_impairment: set at least one of drop_rate, delay_ns, jitter_ns"
            )
        if self.start_ns < 0 or self.duration_ns < 0:
            raise ValueError("cnp_impairment: start_ns and duration_ns must be >= 0")

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        if self.start_ns >= horizon_ns:
            return []
        end = horizon_ns if self.duration_ns <= 0 else min(
            self.start_ns + self.duration_ns, horizon_ns
        )
        return [(self.start_ns, end)]


@_register
@dataclass(frozen=True)
class SlowReceiver:
    """The receiver drains at ``fraction`` of line rate during the window.

    Models a host whose PCIe/DMA path cannot keep up: the switch port
    toward the host serializes slower, the switch buffer fills, and PFC
    does the rest — the gentler sibling of :class:`PauseStorm`.
    """

    kind: ClassVar[str] = "slow_receiver"
    host: str
    fraction: float
    start_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"slow_receiver: fraction must be in (0, 1), got {self.fraction}"
            )
        _check_repeat("slow_receiver", self.duration_ns, 0, 1)

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        return _schedule(self.start_ns, self.duration_ns, 0, 1, horizon_ns)


@dataclass(frozen=True)
class WatchdogConfig:
    """Deadlock-watchdog cadence: scan every ``scan_ns``; flag a global
    stall after ``stall_ticks`` consecutive no-progress scans."""

    scan_ns: int = units.us(100)
    stall_ticks: int = 5

    def __post_init__(self) -> None:
        if self.scan_ns <= 0:
            raise ValueError(f"watchdog: scan_ns must be positive, got {self.scan_ns}")
        if self.stall_ticks < 1:
            raise ValueError(
                f"watchdog: stall_ticks must be >= 1, got {self.stall_ticks}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """The full fault story of one run.

    ``recovery_sample_ns`` paces the recovery tracker's goodput samples
    (0 = auto: the run horizon / 256, at least 1 µs).
    """

    injectors: Tuple[Any, ...] = ()
    watchdog: Optional[WatchdogConfig] = None
    recovery_sample_ns: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "injectors", tuple(self.injectors))
        kinds = tuple(INJECTOR_KINDS.values())
        for injector in self.injectors:
            if not isinstance(injector, kinds):
                raise TypeError(
                    f"not a fault injector: {injector!r}; "
                    f"choose from {sorted(INJECTOR_KINDS)}"
                )
        if self.recovery_sample_ns < 0:
            raise ValueError(
                f"recovery_sample_ns must be >= 0, got {self.recovery_sample_ns}"
            )

    def windows(self, horizon_ns: int) -> List[Tuple[int, int]]:
        """All fault windows merged into disjoint sorted intervals."""
        spans: List[Tuple[int, int]] = []
        for injector in self.injectors:
            spans.extend(injector.windows(horizon_ns))
        spans.sort()
        merged: List[Tuple[int, int]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def to_json(self) -> Dict[str, Any]:
        """The plan-file form (``kind``-tagged injector dicts)."""
        return {
            "injectors": [
                {
                    "kind": injector.kind,
                    **{
                        fld.name: getattr(injector, fld.name)
                        for fld in dataclasses.fields(injector)
                    },
                }
                for injector in self.injectors
            ],
            "watchdog": (
                dataclasses.asdict(self.watchdog)
                if self.watchdog is not None
                else None
            ),
            "recovery_sample_ns": self.recovery_sample_ns,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FaultPlan":
        injectors = []
        for item in data.get("injectors", []):
            item = dict(item)
            kind = item.pop("kind", None)
            try:
                injector_cls = INJECTOR_KINDS[kind]
            except KeyError:
                raise ValueError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{sorted(INJECTOR_KINDS)}"
                ) from None
            injectors.append(injector_cls(**item))
        watchdog = data.get("watchdog")
        return cls(
            injectors=tuple(injectors),
            watchdog=WatchdogConfig(**watchdog) if watchdog is not None else None,
            recovery_sample_ns=data.get("recovery_sample_ns", 0),
        )
