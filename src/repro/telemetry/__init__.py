"""Unified telemetry layer: trace bus, metrics registry, profiler.

Every layer of the reproduction emits into this package (see
DESIGN.md §8):

* :mod:`repro.telemetry.events` — the typed trace-event taxonomy, the
  level ladder (``off`` < ``cc`` < ``full``) and the JSONL schema.
* :mod:`repro.telemetry.trace` — :class:`TraceSink` implementations
  (ring buffer, JSONL file, null) and the :class:`Tracer` front-end.
  Disabled tracing is a single ``is None`` test at every emit site.
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  counters, gauges and fixed-bucket histograms; stable metric names in
  :data:`METRIC_CATALOG`; :func:`collect_network` sweeps a finished
  network into the registry.
* :mod:`repro.telemetry.flowstats` — the per-flow FCT table
  (:class:`FlowStats`) snapshotted into every
  :class:`~repro.runner.results.RunResult`.
* :mod:`repro.telemetry.profiler` — :class:`SchedulerProfiler`
  attributes wall-clock time to event-callback sites.
* :mod:`repro.telemetry.spec` — :class:`TelemetrySpec` (declarative,
  rides inside a :class:`~repro.runner.scenario.Scenario`) and the
  runtime :class:`Telemetry` bundle.
* :mod:`repro.telemetry.lint` — JSONL schema lint for CI.
"""

from repro.telemetry.events import (
    CC_EVENTS,
    CP_ECN_MARK,
    FAULT_CLEAR,
    FAULT_CNP_DELAY,
    FAULT_CNP_DROP,
    FAULT_INJECT,
    FAULT_RECOVERED,
    FLOW_FCT,
    FLOW_FIRST_BYTE,
    FLOW_START,
    FULL_EVENTS,
    LEVELS,
    NIC_FLOW_FAILED,
    NIC_RTO,
    NP_CNP_COALESCED,
    NP_CNP_TX,
    PFC_PAUSE_RX,
    PFC_PAUSE_TX,
    PFC_RESUME_RX,
    PFC_RESUME_TX,
    PKT_DROP,
    RP_CUT,
    RP_INCREASE,
    SAMPLE_QUEUE,
    SAMPLE_RATE,
    TRACE_SCHEMA,
    WATCHDOG_CYCLE,
    WATCHDOG_SCAN,
    WATCHDOG_STALL,
    validate_event,
)
from repro.telemetry.flowstats import FlowStats, collect_flow_stats, stats_from_json
from repro.telemetry.metrics import (
    Counter,
    DEFAULT_QUEUE_BUCKETS,
    Gauge,
    Histogram,
    METRIC_CATALOG,
    MetricsRegistry,
    collect_network,
)
from repro.telemetry.profiler import SchedulerProfiler
from repro.telemetry.spec import Telemetry, TelemetrySpec
from repro.telemetry.trace import (
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    TraceSink,
    Tracer,
)

__all__ = [
    "CC_EVENTS",
    "CP_ECN_MARK",
    "Counter",
    "DEFAULT_QUEUE_BUCKETS",
    "FAULT_CLEAR",
    "FAULT_CNP_DELAY",
    "FAULT_CNP_DROP",
    "FAULT_INJECT",
    "FAULT_RECOVERED",
    "FLOW_FCT",
    "FLOW_FIRST_BYTE",
    "FLOW_START",
    "FULL_EVENTS",
    "FlowStats",
    "Gauge",
    "Histogram",
    "JsonlFileSink",
    "LEVELS",
    "METRIC_CATALOG",
    "MetricsRegistry",
    "NIC_FLOW_FAILED",
    "NIC_RTO",
    "NP_CNP_COALESCED",
    "NP_CNP_TX",
    "NullSink",
    "PFC_PAUSE_RX",
    "PFC_PAUSE_TX",
    "PFC_RESUME_RX",
    "PFC_RESUME_TX",
    "PKT_DROP",
    "RP_CUT",
    "RP_INCREASE",
    "RingBufferSink",
    "SAMPLE_QUEUE",
    "SAMPLE_RATE",
    "SchedulerProfiler",
    "TRACE_SCHEMA",
    "Telemetry",
    "TelemetrySpec",
    "TraceSink",
    "Tracer",
    "WATCHDOG_CYCLE",
    "WATCHDOG_SCAN",
    "WATCHDOG_STALL",
    "collect_flow_stats",
    "collect_network",
    "stats_from_json",
    "validate_event",
]
