"""Trace event taxonomy: typed events, levels, and the JSONL schema.

Every event the telemetry bus carries is a flat JSON object with three
mandatory keys:

* ``t``    — simulated time in integer nanoseconds,
* ``ev``   — the event type (one of the constants below),
* ``comp`` — the emitting component (device / RP name),

plus an optional ``flow`` (flow id, when the event concerns one flow)
and the type-specific fields listed in :data:`TRACE_SCHEMA`.

The taxonomy mirrors the three DCQCN planes plus the fabric:

========================  =====  ==========================================
event type                level  meaning
========================  =====  ==========================================
``cp.ecn_mark``           full   CP marked a packet CE at an egress queue
``np.cnp_tx``             cc     NP generated a CNP for a marked arrival
``np.cnp_coalesced``      full   NP suppressed a CNP (inside the N window)
``rp.cut``                cc     RP rate cut on CNP (Equation 1)
``rp.increase``           cc     RP increase step (Figure 7 state machine)
``cc.cut``                cc     non-RP controller entered a decrease episode
``cc.rate``               full   non-RP controller changed its pacing rate
``pfc.pause_tx``          cc     switch sent a PAUSE upstream
``pfc.resume_tx``         cc     switch sent a RESUME upstream
``pfc.pause_rx``          cc     device received a PAUSE
``pfc.resume_rx``         cc     device received a RESUME
``pkt.drop``              cc     packet lost (buffer, egress cap, CRC)
``nic.rto``               cc     retransmission timeout fired
``nic.flow_failed``       cc     QP exhausted its retry budget
``flow.start``            cc     a message transfer was queued on a flow
``flow.first_byte``       full   first packet of a transfer hit the wire
``flow.fct``              cc     a transfer completed (cumulative ACK)
``sample.queue``          full   periodic egress-queue depth sample
``sample.tier_queue``     full   periodic fabric-tier queue aggregate
``sample.rate``           full   periodic per-flow goodput sample
``fault.inject``          cc     a scripted fault window opened
``fault.clear``           cc     a scripted fault window closed
``fault.cnp_drop``        cc     CNP lost to an injected reverse-path fault
``fault.cnp_delay``       full   CNP delayed by an injected impairment
``fault.recovered``       cc     flow goodput back to target after a fault
``watchdog.cycle``        cc     pause wait-for graph contains a cycle
``watchdog.stall``        cc     no delivery progress despite backlog
``watchdog.scan``         full   periodic watchdog sweep (edge count)
``invariant.violation``   cc     a simulation invariant check failed
``shard.sync``            full   one shard reached a sync barrier
========================  =====  ==========================================

Levels nest: ``off`` < ``cc`` < ``full``.  ``cc`` carries only the
control-plane transitions (cheap, every event is a decision), ``full``
adds the high-frequency per-packet and sampling events.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

# --- event types -----------------------------------------------------------

CP_ECN_MARK = "cp.ecn_mark"
NP_CNP_TX = "np.cnp_tx"
NP_CNP_COALESCED = "np.cnp_coalesced"
RP_CUT = "rp.cut"
RP_INCREASE = "rp.increase"
CC_CUT = "cc.cut"
CC_RATE = "cc.rate"
PFC_PAUSE_TX = "pfc.pause_tx"
PFC_RESUME_TX = "pfc.resume_tx"
PFC_PAUSE_RX = "pfc.pause_rx"
PFC_RESUME_RX = "pfc.resume_rx"
PKT_DROP = "pkt.drop"
NIC_RTO = "nic.rto"
NIC_FLOW_FAILED = "nic.flow_failed"
FLOW_START = "flow.start"
FLOW_FIRST_BYTE = "flow.first_byte"
FLOW_FCT = "flow.fct"
SAMPLE_QUEUE = "sample.queue"
SAMPLE_TIER_QUEUE = "sample.tier_queue"
SAMPLE_RATE = "sample.rate"
FAULT_INJECT = "fault.inject"
FAULT_CLEAR = "fault.clear"
FAULT_CNP_DROP = "fault.cnp_drop"
FAULT_CNP_DELAY = "fault.cnp_delay"
FAULT_RECOVERED = "fault.recovered"
WATCHDOG_CYCLE = "watchdog.cycle"
WATCHDOG_STALL = "watchdog.stall"
WATCHDOG_SCAN = "watchdog.scan"
INVARIANT_VIOLATION = "invariant.violation"
SHARD_SYNC = "shard.sync"

# --- levels ----------------------------------------------------------------

#: trace levels in increasing verbosity
LEVELS: Tuple[str, ...] = ("off", "cc", "full")

#: control-plane events: every one is a protocol decision
CC_EVENTS = frozenset(
    {
        NP_CNP_TX,
        RP_CUT,
        RP_INCREASE,
        CC_CUT,
        PFC_PAUSE_TX,
        PFC_RESUME_TX,
        PFC_PAUSE_RX,
        PFC_RESUME_RX,
        PKT_DROP,
        NIC_RTO,
        NIC_FLOW_FAILED,
        FLOW_START,
        FLOW_FCT,
        FAULT_INJECT,
        FAULT_CLEAR,
        FAULT_CNP_DROP,
        FAULT_RECOVERED,
        WATCHDOG_CYCLE,
        WATCHDOG_STALL,
        INVARIANT_VIOLATION,
    }
)

#: high-frequency events only carried at the ``full`` level
FULL_EVENTS = frozenset(
    {
        CP_ECN_MARK,
        NP_CNP_COALESCED,
        CC_RATE,
        FLOW_FIRST_BYTE,
        SAMPLE_QUEUE,
        SAMPLE_TIER_QUEUE,
        SAMPLE_RATE,
        FAULT_CNP_DELAY,
        WATCHDOG_SCAN,
        SHARD_SYNC,
    }
)

#: events eligible for 1-in-N stride sampling.  Control-plane events are
#: never sampled, so traced counts stay exactly consistent with the
#: metric counters (``np.cnp_tx`` events == ``nic.cnp_tx``).
SAMPLED_EVENTS = frozenset({CP_ECN_MARK, NP_CNP_COALESCED})


def schema_level_gaps() -> Dict[str, List[str]]:
    """Event types whose schema and level registration disagree.

    An event named in :data:`TRACE_SCHEMA` but in neither level set
    would be *silently dropped* by every :class:`Tracer`; one in a
    level set but missing from the schema would be emitted and then
    rejected by the linter.  Both are registration bugs — the import
    guard below and the lint CLI refuse to let either slip through.
    """
    leveled = CC_EVENTS | FULL_EVENTS
    return {
        key: sorted(value)
        for key, value in (
            ("unleveled", set(TRACE_SCHEMA) - leveled),
            ("unschema'd", leveled - set(TRACE_SCHEMA)),
        )
        if value
    }


def events_for_level(level: str) -> frozenset:
    """The set of event types carried at ``level``."""
    if level not in LEVELS:
        raise ValueError(f"unknown trace level {level!r}; choose from {LEVELS}")
    if level == "off":
        return frozenset()
    if level == "cc":
        return CC_EVENTS
    return CC_EVENTS | FULL_EVENTS


# --- schema ----------------------------------------------------------------

#: keys every event must carry
REQUIRED_KEYS = ("t", "ev", "comp")

#: event type -> type-specific required fields (beyond REQUIRED_KEYS)
TRACE_SCHEMA: Dict[str, Tuple[str, ...]] = {
    CP_ECN_MARK: ("flow", "port", "prio", "queue_bytes"),
    NP_CNP_TX: ("flow",),
    NP_CNP_COALESCED: ("flow",),
    RP_CUT: ("flow", "rc_bps", "rt_bps", "alpha"),
    RP_INCREASE: ("flow", "phase", "rc_bps", "rt_bps"),
    CC_CUT: ("flow", "cc"),
    CC_RATE: ("flow", "cc", "rate_bps"),
    PFC_PAUSE_TX: ("port", "prio"),
    PFC_RESUME_TX: ("port", "prio"),
    PFC_PAUSE_RX: ("prio",),
    PFC_RESUME_RX: ("prio",),
    PKT_DROP: ("flow", "reason", "bytes"),
    NIC_RTO: ("flow",),
    NIC_FLOW_FAILED: ("flow",),
    FLOW_START: ("flow", "msg", "bytes"),
    FLOW_FIRST_BYTE: ("flow", "msg"),
    FLOW_FCT: ("flow", "msg", "fct_ns", "bytes"),
    SAMPLE_QUEUE: ("port", "queue_bytes"),
    SAMPLE_TIER_QUEUE: ("tier", "queue_bytes", "max_queue_bytes"),
    SAMPLE_RATE: ("flow", "rate_bps"),
    FAULT_INJECT: ("kind", "target"),
    FAULT_CLEAR: ("kind", "target"),
    FAULT_CNP_DROP: ("flow",),
    FAULT_CNP_DELAY: ("flow", "delay_ns"),
    FAULT_RECOVERED: ("flow", "recover_ns"),
    WATCHDOG_CYCLE: ("size", "members"),
    WATCHDOG_STALL: ("ticks",),
    WATCHDOG_SCAN: ("edges",),
    INVARIANT_VIOLATION: ("name", "detail"),
    SHARD_SYNC: ("barrier", "sent", "recv"),
}

#: legal ``reason`` values of ``pkt.drop`` events
DROP_REASONS = ("buffer_full", "egress_cap", "corrupt", "link_down")

# registration guard: every schema'd event must carry a level and vice
# versa (see schema_level_gaps) — fails at import, not silently at runtime
_GAPS = schema_level_gaps()
if _GAPS:  # pragma: no cover - a registration bug, not a runtime state
    raise AssertionError(f"trace-event registration gaps: {_GAPS}")


def validate_event(event: Mapping[str, Any]) -> List[str]:
    """Check one decoded event against the schema; returns error strings.

    An empty list means the event is valid.  This is the single source
    of truth used by the test suite and the ``repro.telemetry.lint``
    CI check.
    """
    errors: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in event:
            errors.append(f"missing required key {key!r}")
    if errors:
        return errors
    if not isinstance(event["t"], int) or event["t"] < 0:
        errors.append(f"'t' must be a non-negative integer, got {event['t']!r}")
    etype = event["ev"]
    if etype not in TRACE_SCHEMA:
        errors.append(f"unknown event type {etype!r}")
        return errors
    if not isinstance(event["comp"], str) or not event["comp"]:
        errors.append(f"'comp' must be a non-empty string, got {event['comp']!r}")
    for field in TRACE_SCHEMA[etype]:
        if field not in event:
            errors.append(f"{etype}: missing field {field!r}")
    if "flow" in event and not isinstance(event["flow"], int):
        errors.append(f"'flow' must be an integer, got {event['flow']!r}")
    if etype == PKT_DROP and event.get("reason") not in DROP_REASONS:
        errors.append(
            f"pkt.drop: reason must be one of {DROP_REASONS}, "
            f"got {event.get('reason')!r}"
        )
    return errors
