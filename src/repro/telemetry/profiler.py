"""Simulation profiling: wall-clock attribution per callback site.

The event scheduler is a flat loop over heterogeneous callbacks, so a
conventional Python profiler drowns the interesting signal in engine
frames.  :class:`SchedulerProfiler` instruments the loop itself: every
dispatched event is timed with ``perf_counter_ns`` and attributed to
its *callback site* — the underlying function of the scheduled bound
method (``Port._tx_done``, ``Switch.receive``, ``PeriodicTimer._fire``,
...).  The hotspot table this produces is the measurement baseline the
ROADMAP's hot-path optimisation PRs are judged against.

Zero overhead when off: :class:`~repro.engine.EventScheduler` checks
``self.profiler`` once per ``run_until``/``run`` call and only enters
the instrumented loop when a profiler is installed.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple


class _SiteStats:
    """Aggregate for one callback site."""

    __slots__ = ("name", "calls", "total_ns", "max_ns")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_ns = 0
        self.max_ns = 0


class SchedulerProfiler:
    """Times every event the scheduler dispatches, grouped by site."""

    def __init__(self) -> None:
        # keyed by the underlying function object, so every bound
        # method of the same class/function aggregates to one site
        self._stats: Dict[Any, _SiteStats] = {}
        self.events = 0
        self.total_ns = 0

    def install(self, engine) -> "SchedulerProfiler":
        """Attach to ``engine`` (an :class:`~repro.engine.EventScheduler`)."""
        engine.profiler = self
        return self

    @staticmethod
    def _site_name(fn: Callable) -> str:
        target = getattr(fn, "__func__", fn)
        module = getattr(target, "__module__", "") or ""
        qualname = getattr(target, "__qualname__", None) or repr(target)
        short_module = module.rsplit(".", 1)[-1] if module else "?"
        return f"{short_module}.{qualname}"

    def record(self, fn: Callable, args: Tuple) -> None:
        """Run ``fn(*args)`` under the clock (called by the engine)."""
        key = getattr(fn, "__func__", fn)
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = _SiteStats(self._site_name(fn))
        start = time.perf_counter_ns()
        fn(*args)
        elapsed = time.perf_counter_ns() - start
        stats.calls += 1
        stats.total_ns += elapsed
        if elapsed > stats.max_ns:
            stats.max_ns = elapsed
        self.events += 1
        self.total_ns += elapsed

    # --- reporting -----------------------------------------------------------

    def sites(self) -> List[_SiteStats]:
        """All sites, hottest (by total wall-clock) first."""
        return sorted(
            self._stats.values(), key=lambda s: s.total_ns, reverse=True
        )

    def table(self, limit: int = 15) -> str:
        """Hotspot table: site, calls, total ms, share, mean ns/call."""
        from repro.runner.results import format_table

        total = self.total_ns or 1
        rows = []
        for stats in self.sites()[:limit]:
            rows.append(
                [
                    stats.name,
                    stats.calls,
                    f"{stats.total_ns / 1e6:.2f}",
                    f"{100.0 * stats.total_ns / total:.1f}%",
                    f"{stats.total_ns / stats.calls:.0f}",
                    f"{stats.max_ns}",
                ]
            )
        header = ["callback site", "events", "total ms", "share", "ns/event", "max ns"]
        body = format_table(header, rows)
        summary = (
            f"{self.events} events, {self.total_ns / 1e6:.2f} ms in callbacks"
        )
        if self.total_ns:
            summary += f", {self.events * 1e9 / self.total_ns:.0f} events/s"
        return body + "\n" + summary
