"""Per-flow completion-time statistics (the FCT table).

The paper's headline claims are about what operators feel — flow
completion time and its tail — so every run records a ``FlowStats``
table: one row per message transfer (and one aggregate row per greedy
flow), carrying the lifecycle timestamps the ``flow.*`` trace events
mark plus the transport context needed to judge them (retransmissions,
PAUSE frames seen by the sender, the congestion controller, the
sender's line rate).

Collection is a cold end-of-run sweep over state the sender already
keeps (:class:`repro.sim.host.Message` bookkeeping); the per-packet
hot path pays only the first-byte dict probe, and even that disappears
under ``REPRO_FLOWSTATS=off``.  The table rides inside every
:class:`~repro.runner.results.RunResult` as plain JSON, so it survives
the result cache and the process-pool transport byte-identically —
which is what lets ``repro plot`` build slowdown CDFs from cached
sweeps without rerunning a single cell.

Slowdown analytics over these rows live in :mod:`repro.analysis.fct`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional


@dataclass(frozen=True)
class FlowStats:
    """One transfer (or one greedy flow) as the run recorded it.

    ``msg`` is the message id within the flow, or ``-1`` for the
    aggregate row of a greedy flow (which has no completion time —
    greedy flows never finish).  All ``*_ns`` fields are simulated
    time; ``None`` means the event never happened inside the horizon.
    """

    flow: str
    flow_id: int
    msg: int
    cc: str
    size_bytes: int
    start_ns: int
    first_byte_ns: Optional[int]
    finish_ns: Optional[int]
    fct_ns: Optional[int]
    retransmits: int
    pauses_rx: int
    line_rate_bps: float
    mtu_bytes: int

    @property
    def completed(self) -> bool:
        return self.fct_ns is not None

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FlowStats":
        return cls(**{f: data[f] for f in cls.__dataclass_fields__})


def collect_flow_stats(
    net, names: Optional[Mapping[int, str]] = None
) -> List[FlowStats]:
    """Sweep a finished network into the FCT table.

    ``names`` maps flow ids to scenario flow names; unmapped flows fall
    back to ``"<src>-><dst>#<id>"``.  Like
    :func:`~repro.telemetry.metrics.collect_network` this reads current
    totals — call it once, at end of run.
    """
    names = names or {}
    rows: List[FlowStats] = []
    for flow in net.flows:
        name = names.get(
            flow.flow_id, f"{flow.src.name}->{flow.dst.name}#{flow.flow_id}"
        )
        cc_name = flow.cc.name if flow.cc is not None else "none"
        line_rate = flow.src.nic.line_rate_bps
        if flow.greedy:
            rows.append(
                FlowStats(
                    flow=name,
                    flow_id=flow.flow_id,
                    msg=-1,
                    cc=cc_name,
                    size_bytes=flow.bytes_delivered,
                    start_ns=flow.start_ns,
                    first_byte_ns=None,
                    finish_ns=None,
                    fct_ns=None,
                    retransmits=flow.retransmitted_packets,
                    pauses_rx=flow.src.nic.port.rx_pause_frames,
                    line_rate_bps=line_rate,
                    mtu_bytes=flow.mtu_bytes,
                )
            )
            continue
        for message in flow.messages:
            rows.append(
                FlowStats(
                    flow=name,
                    flow_id=flow.flow_id,
                    msg=message.msg_id,
                    cc=cc_name,
                    size_bytes=message.size_bytes,
                    start_ns=message.start_ns,
                    first_byte_ns=message.first_byte_ns,
                    finish_ns=message.complete_ns,
                    fct_ns=(
                        message.complete_ns - message.start_ns
                        if message.complete_ns is not None
                        else None
                    ),
                    retransmits=message.retransmits,
                    pauses_rx=message.pauses_rx,
                    line_rate_bps=line_rate,
                    mtu_bytes=flow.mtu_bytes,
                )
            )
    return rows


def stats_from_json(rows: Iterable[Mapping[str, Any]]) -> List[FlowStats]:
    """Rehydrate a ``RunResult.flow_stats`` list."""
    return [FlowStats.from_json(row) for row in rows]
