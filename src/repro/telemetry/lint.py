"""JSONL trace linter: validate every event line against the schema.

Used by CI after the trace smoke run::

    python -m repro.telemetry.lint results/trace-smoke.jsonl

Exit status 0 when every line parses and validates, 1 otherwise (the
first ``--max-errors`` problems are printed with line numbers).

Every event type must be registered in
:data:`~repro.telemetry.events.TRACE_SCHEMA` — unknown names (and
events missing their type's required fields) are hard failures, which
is what keeps the ``flow.*`` lifecycle events honest: a typo'd
``flow.fct`` emit can't slip through CI as an unknown-but-tolerated
line.  A trace with *zero* events is also a failure by default (a
smoke run that silently traced nothing used to lint clean); pass
``--allow-empty`` for sinks that are legitimately empty, e.g. an
``off``-level run.  Registration drift between the schema and the
level sets is caught even earlier, at import of
:mod:`repro.telemetry.events` (see ``schema_level_gaps``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Tuple

from repro.telemetry.events import validate_event


def lint_file(
    path: str, max_errors: int = 20, allow_empty: bool = False
) -> Tuple[int, List[str]]:
    """Validate one JSONL trace; returns (lines checked, error strings)."""
    errors: List[str] = []
    lines = 0
    last_t: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            lines += 1
            if len(errors) >= max_errors:
                break
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{lineno}: not JSON ({exc})")
                continue
            if not isinstance(event, dict):
                errors.append(f"{path}:{lineno}: expected an object")
                continue
            for problem in validate_event(event):
                errors.append(f"{path}:{lineno}: {problem}")
            t = event.get("t")
            if isinstance(t, int):
                if last_t is not None and t < last_t:
                    errors.append(
                        f"{path}:{lineno}: time went backwards "
                        f"({t} < {last_t})"
                    )
                last_t = t
    if lines == 0 and not allow_empty:
        errors.append(
            f"{path}: no events — an empty trace fails lint "
            "(pass --allow-empty if this sink is expected to be empty)"
        )
    return lines, errors


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.lint",
        description="Validate JSONL trace files against the event schema.",
    )
    parser.add_argument("paths", nargs="+", help="trace files to check")
    parser.add_argument(
        "--max-errors",
        type=int,
        default=20,
        help="stop after this many problems per file",
    )
    parser.add_argument(
        "--allow-empty",
        action="store_true",
        help="accept trace files with zero events (off-level runs)",
    )
    args = parser.parse_args(argv)
    failed = False
    for path in args.paths:
        try:
            lines, errors = lint_file(
                path, max_errors=args.max_errors, allow_empty=args.allow_empty
            )
        except OSError as exc:
            print(f"{path}: cannot read ({exc})", file=sys.stderr)
            failed = True
            continue
        if errors:
            failed = True
            for error in errors:
                print(error, file=sys.stderr)
            print(
                f"{path}: {len(errors)} problem(s) in {lines} line(s)",
                file=sys.stderr,
            )
        else:
            print(f"{path}: {lines} events ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
