"""Declarative telemetry configuration and the runtime bundle.

:class:`TelemetrySpec` is the JSON-serializable description a
:class:`~repro.runner.scenario.Scenario` carries (trace level, sink
kind, sampling); :class:`Telemetry` is the live object a
:class:`~repro.sim.network.Network` is attached to — a tracer (or
``None`` when tracing is off) plus a metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import (
    JsonlFileSink,
    NullSink,
    RingBufferSink,
    TraceSink,
    Tracer,
)
from repro.telemetry.events import LEVELS

#: sink kinds a spec may name
SINKS = ("ring", "jsonl", "null")


@dataclass(frozen=True)
class TelemetrySpec:
    """Serializable telemetry request attached to a scenario.

    ``path`` (jsonl sink) may contain a ``{seed}`` placeholder so each
    repetition of a multi-seed run streams to its own file.  The two
    ``*_sample_ns`` knobs install :class:`~repro.sim.monitor`
    samplers on every switch port / flow of a scenario run, feeding
    ``sample.queue`` / ``sample.rate`` events and the
    ``switch.queue_bytes`` histogram (how Figures 12/19 are
    reconstructed from a trace).
    """

    trace: str = "off"  # off | cc | full
    sink: str = "ring"  # ring | jsonl | null
    path: Optional[str] = None
    capacity: Optional[int] = None  # ring sink bound (None = unbounded)
    sample_stride: int = 1  # 1-in-N sampling of high-frequency events
    queue_sample_ns: Optional[int] = None
    rate_sample_ns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trace not in LEVELS:
            raise ValueError(
                f"unknown trace level {self.trace!r}; choose from {LEVELS}"
            )
        if self.sink not in SINKS:
            raise ValueError(f"unknown sink {self.sink!r}; choose from {SINKS}")
        if self.sink == "jsonl" and self.trace != "off" and not self.path:
            raise ValueError("jsonl sink needs a path")
        if self.sample_stride < 1:
            raise ValueError(
                f"sample_stride must be >= 1, got {self.sample_stride}"
            )
        for name in ("queue_sample_ns", "rate_sample_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")


class Telemetry:
    """The live telemetry context of one simulation run."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def from_spec(
        cls, spec: Optional[TelemetrySpec], seed: int = 0
    ) -> "Telemetry":
        """Build the runtime context one scenario repetition uses."""
        if spec is None or spec.trace == "off":
            return cls()
        sink: TraceSink
        if spec.sink == "jsonl":
            path = spec.path or ""
            if "{seed}" in path:
                path = path.format(seed=seed)
            sink = JsonlFileSink(path)
        elif spec.sink == "null":
            sink = NullSink()
        else:
            sink = RingBufferSink(spec.capacity)
        tracer = Tracer(sink, level=spec.trace, sample_stride=spec.sample_stride)
        return cls(tracer=tracer)

    def trace_counts(self) -> Dict[str, int]:
        """Emitted trace-event counts by type ({} when tracing is off)."""
        return self.tracer.counts() if self.tracer is not None else {}

    def snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot with traced-event counts folded in.

        Trace counts appear as ``trace.<event type>`` counters, so a
        :class:`~repro.runner.results.RunResult` carries enough to
        cross-check trace and metrics (e.g. ``trace.np.cnp_tx`` must
        equal ``nic.cnp_tx``) even after a cache round-trip.
        """
        for etype, count in self.trace_counts().items():
            counter = self.metrics.counter(f"trace.{etype}")
            counter.value = float(count)
        return self.metrics.snapshot()

    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
