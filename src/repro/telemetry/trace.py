"""The structured trace bus: sinks and the :class:`Tracer` front-end.

Design constraint: **zero overhead when disabled**.  Components hold a
``tracer`` attribute that is ``None`` when tracing is off, and every
emit site is guarded by ``if self.tracer is not None`` — the disabled
hot path costs one attribute load and an identity test, nothing more.
No event dict is built, no level check runs.

When tracing is on, :meth:`Tracer.emit` filters by level (and optional
type allow-list), applies 1-in-N stride sampling to the high-frequency
event types, counts what it emitted, and hands the event dict to the
configured :class:`TraceSink`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.events import (
    SAMPLED_EVENTS,
    TRACE_SCHEMA,
    events_for_level,
)


class TraceSink:
    """Protocol for event consumers.

    A sink receives fully formed event dicts (already level-filtered
    and sampled) via :meth:`write` and is :meth:`close`-d when the
    owning telemetry context shuts down.
    """

    def write(self, event: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Release resources.  Default: nothing to release."""


class NullSink(TraceSink):
    """Swallows every event.  Useful for overhead measurements."""

    def write(self, event: Dict[str, Any]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the last ``capacity`` events in memory (None = unbounded).

    The default sink: cheap, allocation-light, and inspectable after a
    run via :attr:`events`.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)

    def write(self, event: Dict[str, Any]) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Dict[str, Any]]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlFileSink(TraceSink):
    """Streams events to ``path``, one JSON object per line.

    Lines are written in emission order, which (because the simulator
    is single-threaded per run) is also simulated-time order.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._dumps = json.dumps
        self.lines_written = 0

    def write(self, event: Dict[str, Any]) -> None:
        self._handle.write(self._dumps(event, separators=(",", ":")) + "\n")
        self.lines_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class Tracer:
    """Level-aware front-end every instrumented component emits into."""

    __slots__ = ("sink", "level", "_enabled", "_stride", "_skip", "_counts")

    def __init__(
        self,
        sink: TraceSink,
        level: str = "full",
        sample_stride: int = 1,
        types: Optional[Iterable[str]] = None,
    ):
        if sample_stride < 1:
            raise ValueError(f"sample_stride must be >= 1, got {sample_stride}")
        enabled = events_for_level(level)
        if types is not None:
            requested = set(types)
            unknown = requested - set(TRACE_SCHEMA)
            if unknown:
                raise ValueError(f"unknown event types: {sorted(unknown)}")
            enabled = enabled & requested
        self.sink = sink
        self.level = level
        self._enabled = enabled
        self._stride = sample_stride
        self._skip: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    def wants(self, etype: str) -> bool:
        """Whether events of ``etype`` would currently be recorded."""
        return etype in self._enabled

    def emit(
        self,
        t: int,
        etype: str,
        comp: str,
        flow: int = -1,
        **fields: Any,
    ) -> None:
        """Record one event (if the level/filter/sampling admit it)."""
        if etype not in self._enabled:
            return
        if self._stride > 1 and etype in SAMPLED_EVENTS:
            seen = self._skip.get(etype, 0) + 1
            if seen < self._stride:
                self._skip[etype] = seen
                return
            self._skip[etype] = 0
        event: Dict[str, Any] = {"t": t, "ev": etype, "comp": comp}
        if flow >= 0:
            event["flow"] = flow
        if fields:
            event.update(fields)
        self._counts[etype] = self._counts.get(etype, 0) + 1
        self.sink.write(event)

    def counts(self) -> Dict[str, int]:
        """Events emitted so far, by type (post level-filter/sampling)."""
        return dict(self._counts)

    def close(self) -> None:
        self.sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(self._counts.values())
        return f"Tracer(level={self.level!r}, events={total})"
