"""DCQCN vs QCN ablation (paper §2.3 rationale).

QCN works within one L2 domain: on a single switch it provides
flow-level control much like DCQCN.  The paper's complaint is not that
QCN's control law is broken but that it *cannot be deployed* on
IP-routed fabrics (flows are identified by L2 addresses, which
routing rewrites).  This ablation shows both halves:

* on a single switch, QCN and DCQCN both restore fairness relative to
  PFC-only;
* on the routed Clos, QCN's feedback cannot identify flows across the
  IP boundary, so it must be disabled — the PFC pathologies return
  (we model the restriction by simply not deploying QCN there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.analysis.stats import jain_fairness
from repro.baselines.qcn import QcnSwitch, add_qcn_flow
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.sim.network import Network
from repro.sim.switch import SwitchConfig


@dataclass
class SingleSwitchFairnessResult:
    """N:1 incast fairness under one control scheme."""

    scheme: str
    per_flow_gbps: List[float]
    fairness: float
    total_gbps: float

    def row(self) -> List[str]:
        return [
            self.scheme,
            f"{self.total_gbps:.1f}",
            f"{self.fairness:.3f}",
            f"{min(self.per_flow_gbps):.2f}",
            f"{max(self.per_flow_gbps):.2f}",
        ]


ABLATION_HEADERS = ["scheme", "total Gbps", "Jain", "min Gbps", "max Gbps"]


def _build_single_switch_net(scheme: str, n_hosts: int, seed: int):
    """Like topology.single_switch but with a QCN CP when asked."""
    params = DCQCNParams.deployed()
    net = Network(seed=seed, dcqcn_params=params)
    config = SwitchConfig(marking=params)
    if scheme == "qcn":
        switch = QcnSwitch(
            net.engine, net._device_id(), "S1", config=config,
            ecmp_salt=net.rng.getrandbits(64),
        )
        net.switches.append(switch)
    else:
        switch = net.new_switch("S1", config=config)
    hosts = []
    for index in range(n_hosts):
        host = net.new_host(f"H{index + 1}")
        net.connect(host, switch)
        hosts.append(host)
    net.build_routes()
    return net, switch, hosts


def run_single_switch_fairness(
    scheme: str,
    n_senders: int = 4,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    seed: int = 61,
) -> SingleSwitchFairnessResult:
    """N:1 incast with ``scheme`` in {"none", "qcn", "dcqcn"}."""
    if scheme not in ("none", "qcn", "dcqcn"):
        raise ValueError(f"unknown scheme {scheme!r}")
    warmup_ns = warmup_ns if warmup_ns is not None else common.pick(
        units.ms(15), units.ms(40)
    )
    measure_ns = measure_ns or common.pick(units.ms(10), units.ms(30))
    net, _, hosts = _build_single_switch_net(scheme, n_senders + 1, seed)
    receiver = hosts[-1]
    flows = []
    for sender in hosts[:n_senders]:
        if scheme == "qcn":
            flow = add_qcn_flow(net, sender, receiver)
        else:
            flow = net.add_flow(sender, receiver, cc=scheme)
        flow.set_greedy()
        flows.append(flow)
    net.run_for(warmup_ns)
    before = [flow.bytes_delivered for flow in flows]
    net.run_for(measure_ns)
    rates = [
        (flow.bytes_delivered - b) * 8e9 / measure_ns / 1e9
        for flow, b in zip(flows, before)
    ]
    return SingleSwitchFairnessResult(
        scheme=scheme,
        per_flow_gbps=rates,
        fairness=jain_fairness(rates),
        total_gbps=sum(rates),
    )


def run_ablation(**kwargs) -> Dict[str, SingleSwitchFairnessResult]:
    """All three schemes on the single-switch incast."""
    return {
        scheme: run_single_switch_fairness(scheme, **kwargs)
        for scheme in ("none", "qcn", "dcqcn")
    }
