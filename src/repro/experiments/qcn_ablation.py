"""DCQCN vs QCN ablation (paper §2.3 rationale).

QCN works within one L2 domain: on a single switch it provides
flow-level control much like DCQCN.  The paper's complaint is not that
QCN's control law is broken but that it *cannot be deployed* on
IP-routed fabrics (flows are identified by L2 addresses, which
routing rewrites).  This ablation shows both halves:

* on a single switch, QCN and DCQCN both restore fairness relative to
  PFC-only;
* on the routed Clos, QCN's feedback cannot identify flows across the
  IP boundary, so it must be disabled — the PFC pathologies return
  (we model the restriction by simply not deploying QCN there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import units
from repro.analysis.stats import jain_fairness
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale


@dataclass
class SingleSwitchFairnessResult:
    """N:1 incast fairness under one control scheme."""

    scheme: str
    per_flow_gbps: List[float]
    fairness: float
    total_gbps: float

    def row(self) -> List[str]:
        return [
            self.scheme,
            f"{self.total_gbps:.1f}",
            f"{self.fairness:.3f}",
            f"{min(self.per_flow_gbps):.2f}",
            f"{max(self.per_flow_gbps):.2f}",
        ]


ABLATION_HEADERS = ["scheme", "total Gbps", "Jain", "min Gbps", "max Gbps"]


def _build_single_switch_net(scheme: str, n_hosts: int, seed: int):
    """Like topology.single_switch but with a QCN CP when asked."""
    from repro.baselines.qcn import QcnSwitch
    from repro.core.params import DCQCNParams
    from repro.sim.network import Network
    from repro.sim.switch import SwitchConfig

    params = DCQCNParams.deployed()
    net = Network(seed=seed, dcqcn_params=params)
    config = SwitchConfig(marking=params)
    if scheme == "qcn":
        switch = QcnSwitch(
            net.engine, net._device_id(), "S1", config=config,
            ecmp_salt=net.rng.getrandbits(64),
        )
        net.switches.append(switch)
    else:
        switch = net.new_switch("S1", config=config)
    hosts = []
    for index in range(n_hosts):
        host = net.new_host(f"H{index + 1}")
        net.connect(host, switch)
        hosts.append(host)
    net.build_routes()
    return net, switch, hosts


def fairness_cell(
    scheme: str,
    n_senders: int,
    warmup_ns: int,
    measure_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """One scheme's incast run — the worker-side entry point."""
    from repro.baselines.qcn import add_qcn_flow

    net, _, hosts = _build_single_switch_net(scheme, n_senders + 1, seed)
    receiver = hosts[-1]
    flows = []
    for sender in hosts[:n_senders]:
        if scheme == "qcn":
            flow = add_qcn_flow(net, sender, receiver)
        else:
            flow = net.add_flow(sender, receiver, cc=scheme)
        flow.set_greedy()
        flows.append(flow)
    net.run_for(warmup_ns)
    before = [flow.bytes_delivered for flow in flows]
    net.run_for(measure_ns)
    rates = [
        (flow.bytes_delivered - b) * 8e9 / measure_ns / 1e9
        for flow, b in zip(flows, before)
    ]
    return {"scheme": scheme, "per_flow_gbps": rates}


_CELL_FN = "repro.experiments.qcn_ablation:fairness_cell"


def _cell_kwargs(
    scheme: str,
    n_senders: int,
    warmup_ns: Optional[int],
    measure_ns: Optional[int],
    seed: int,
) -> Dict[str, Any]:
    if scheme not in ("none", "qcn", "dcqcn"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if warmup_ns is None:
        warmup_ns = scale.pick(units.ms(15), units.ms(40), units.ms(4))
    measure_ns = measure_ns or scale.pick(units.ms(10), units.ms(30), units.ms(2))
    return {
        "scheme": scheme,
        "n_senders": n_senders,
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "seed": seed,
    }


def _from_cell(value: Dict[str, Any]) -> SingleSwitchFairnessResult:
    rates = list(value["per_flow_gbps"])
    return SingleSwitchFairnessResult(
        scheme=value["scheme"],
        per_flow_gbps=rates,
        fairness=jain_fairness(rates),
        total_gbps=sum(rates),
    )


def run_single_switch_fairness(
    scheme: str,
    n_senders: int = 4,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    seed: int = 61,
) -> SingleSwitchFairnessResult:
    """N:1 incast with ``scheme`` in {"none", "qcn", "dcqcn"}."""
    kwargs = _cell_kwargs(scheme, n_senders, warmup_ns, measure_ns, seed)
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return _from_cell(value)


def run_ablation(**kwargs) -> Dict[str, SingleSwitchFairnessResult]:
    """All three schemes on the single-switch incast (fanned out)."""
    schemes = ("none", "qcn", "dcqcn")
    cells = [
        Cell(_CELL_FN, _cell_kwargs(scheme=scheme, **{
            "n_senders": kwargs.get("n_senders", 4),
            "warmup_ns": kwargs.get("warmup_ns"),
            "measure_ns": kwargs.get("measure_ns"),
            "seed": kwargs.get("seed", 61),
        }))
        for scheme in schemes
    ]
    values = execute(cells)
    return {scheme: _from_cell(v) for scheme, v in zip(schemes, values)}
