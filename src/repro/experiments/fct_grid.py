"""FCT-centric experiments: the marking-threshold grid and the
benchmark-traffic scenario, scored on slowdown.

Two pieces, both built on the :class:`~repro.runner.scenario.Scenario`
runner so every cell is cached, parallel, checkpointed and resumable:

* :func:`run_fct_grid` sweeps the ECN marking profile (Kmin, Kmax,
  Pmax) crossed with incast degree on a single switch, measuring the
  slowdown of a mice probe and an elephant probe that share the fabric
  with the incast.  This is the §5.3 tuning question asked in the
  terms operators care about: which thresholds keep RPC tails flat
  while bulk transfers still fill the pipe.  At full scale the grid is
  hundreds of cells; the executor fans them all out in one call and
  the content-hash cache makes re-invocations (``repro plot grid``)
  free.

* :func:`benchmark_scenario` is the Fig 16 benchmark-traffic shape as
  a declarative scenario: user pairs replaying storage-cluster flow
  sizes as closed-loop message streams (every transfer lands in
  ``RunResult.flow_stats``) plus a disk-rebuild incast of greedy bulk
  flows, on the 3-tier Clos testbed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.analysis import fct
from repro.core.params import DCQCNParams
from repro.runner import scale
from repro.runner.results import SweepResult, format_table
from repro.runner.scenario import FlowSpec, Scenario, run_scenario, run_sweep
from repro.sim.switch import SwitchConfig

#: probe transfer sizes: one on each side of the mice/elephant line
MICE_BYTES = 20_000
ELEPHANT_BYTES = 1_000_000

#: a message budget no horizon reaches: "stream until the run ends"
STREAM = 1 << 20

#: one grid point: (kmin_kb, kmax_kb, pmax, incast_degree)
GridPoint = Tuple[int, int, float, int]


def grid_axes() -> Tuple[Sequence[int], Sequence[int], Sequence[float], Sequence[int]]:
    """Scale-aware (kmin_kb, kmax_kb, pmax, degree) axes.

    Centered on the deployed profile (Kmin 5 KB, Kmax 200 KB, Pmax 1%)
    and spanning toward the strawman cut-off profile the paper rejects.
    """
    return (
        scale.pick((5, 25), (5, 25, 50), (5,)),
        scale.pick((50, 200), (50, 200, 400), (200,)),
        scale.pick((0.01, 0.1), (0.01, 0.1, 0.5), (0.01,)),
        scale.pick((2, 8), (2, 4, 8, 16), (2,)),
    )


def grid_points() -> List[GridPoint]:
    """The full cross product of :func:`grid_axes`."""
    kmins, kmaxs, pmaxs, degrees = grid_axes()
    return [
        (kmin, kmax, pmax, degree)
        for kmin in kmins
        for kmax in kmaxs
        for pmax in pmaxs
        for degree in degrees
        if kmin < kmax
    ]


def grid_scenario(
    kmin_kb: int,
    kmax_kb: int,
    pmax: float,
    degree: int,
    duration_ns: Optional[int] = None,
) -> Scenario:
    """One grid cell: incast of ``degree`` greedy DCQCN flows plus a
    mice and an elephant probe, all into one receiver, under the given
    marking profile (applied to both the switch CP and the RPs)."""
    params = DCQCNParams.deployed().with_red_marking(
        kmin_bytes=units.kb(kmin_kb), kmax_bytes=units.kb(kmax_kb), pmax=pmax
    )
    duration_ns = duration_ns or scale.pick(
        units.ms(4), units.ms(10), units.ms(1)
    )
    flows = [
        FlowSpec(name=f"incast{k}", src=str(k), dst="-1", cc="dcqcn")
        for k in range(degree)
    ]
    flows.append(
        FlowSpec(
            name="mice",
            src=str(degree),
            dst="-1",
            cc="dcqcn",
            greedy=False,
            message_bytes=MICE_BYTES,
            message_start_ns=units.us(50),
            message_count=STREAM,
        )
    )
    flows.append(
        FlowSpec(
            name="elephant",
            src=str(degree + 1),
            dst="-1",
            cc="dcqcn",
            greedy=False,
            message_bytes=ELEPHANT_BYTES,
            message_start_ns=units.us(50),
            message_count=STREAM,
        )
    )
    return Scenario(
        topology="single_switch",
        topology_kwargs={
            "n_hosts": degree + 3,
            "switch_config": SwitchConfig(marking=params),
            "dcqcn_params": params,
        },
        flows=tuple(flows),
        duration_ns=duration_ns,
        label=f"fctgrid-k{kmin_kb}-{kmax_kb}-p{pmax}-d{degree}",
    )


def run_fct_grid(
    points: Optional[Sequence[GridPoint]] = None,
    repetitions: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
) -> SweepResult:
    """Run the grid — every cell fanned out in one executor call."""
    points = list(points) if points is not None else grid_points()
    repetitions = repetitions or scale.pick(1, 3, 1)
    scenarios = {point: grid_scenario(*point) for point in points}
    seeds = {
        point: scale.seeds_for(repetitions, base=9000 + 13 * index)
        for index, point in enumerate(points)
    }
    return run_sweep(
        "kmin_kb/kmax_kb/pmax/degree", scenarios, seeds, jobs=jobs, cache=cache
    )


def point_summaries(sweep: SweepResult) -> Dict[GridPoint, Dict[str, fct.SlowdownSummary]]:
    """Per-point mice/elephant slowdown summaries over all repetitions."""
    rtt = fct.base_rtt_ns(hops=1)
    out: Dict[GridPoint, Dict[str, fct.SlowdownSummary]] = {}
    for point in sweep.points:
        records = fct.records_from_runs(point.runs)
        out[tuple(point.value)] = fct.summarize_slowdowns(records, rtt)
    return out


GRID_HEADERS = [
    "Kmin KB",
    "Kmax KB",
    "Pmax",
    "incast",
    "mice p50",
    "mice p99",
    "eleph p50",
    "eleph p99",
    "PAUSE",
]


def grid_table(sweep: SweepResult) -> str:
    """The grid as a monospace table, one row per point."""
    summaries = point_summaries(sweep)
    rows = []
    for point in sweep.points:
        kmin, kmax, pmax, degree = point.value
        buckets = summaries[tuple(point.value)]
        mice = buckets.get("mice")
        elephant = buckets.get("elephants")
        pauses = sum(run.counters.get("pause_frames", 0) for run in point.runs)
        rows.append(
            [
                str(kmin),
                str(kmax),
                f"{pmax:g}",
                str(degree),
                f"{mice.p50:.2f}" if mice else "-",
                f"{mice.p99:.2f}" if mice else "-",
                f"{elephant.p50:.2f}" if elephant else "-",
                f"{elephant.p99:.2f}" if elephant else "-",
                str(int(pauses)),
            ]
        )
    return format_table(GRID_HEADERS, rows)


# --- the Fig 16 benchmark-traffic scenario ---------------------------------

#: Clos user pairs are placed cross-ToR inside a pod: ToR -> leaf ->
#: ToR is three store-and-forward hops
BENCHMARK_HOPS = 3


def benchmark_scenario(
    n_pairs: Optional[int] = None,
    incast_degree: Optional[int] = None,
    hosts_per_tor: int = 5,
    duration_ns: Optional[int] = None,
) -> Scenario:
    """Fig 16 benchmark traffic as a declarative scenario.

    ``n_pairs`` user pairs each stream transfers back to back: every
    fourth pair moves 1 MB erasure-coded extents (the storage
    workload's heavy tail, present by construction at every scale so
    the mice/elephants split never hinges on a lucky draw), the rest
    draw metadata/object-IO sizes (deterministically, seed 2015) from
    the storage-cluster distribution; ``incast_degree`` greedy bulk
    flows model the disk rebuild, converging on host ``0:0``.
    Everything runs DCQCN with deployed parameters; every user
    transfer lands as one ``flow_stats`` row.
    """
    from repro.traffic.distributions import storage_cluster

    n_pairs = n_pairs or scale.pick(8, 16, 4)
    incast_degree = incast_degree or scale.pick(4, 8, 2)
    duration_ns = duration_ns or scale.pick(
        units.ms(4), units.ms(10), units.ms(1)
    )
    rng = random.Random(2015)
    distribution = storage_cluster()
    flows = [
        FlowSpec(
            name=f"incast{k}",
            src=f"{1 + k % 3}:{k // 3 % hosts_per_tor}",
            dst="0:0",
            cc="dcqcn",
        )
        for k in range(incast_degree)
    ]
    for p in range(n_pairs):
        src_tor = p % 4
        dst_tor = (p + 1) % 4
        src_idx = 1 + (p // 4) % (hosts_per_tor - 1)
        dst_idx = 1 + (p // 4 + 1) % (hosts_per_tor - 1)
        flows.append(
            FlowSpec(
                name=f"user{p}",
                src=f"{src_tor}:{src_idx}",
                dst=f"{dst_tor}:{dst_idx}",
                cc="dcqcn",
                greedy=False,
                message_bytes=(
                    ELEPHANT_BYTES if p % 4 == 3 else distribution.sample(rng)
                ),
                message_start_ns=rng.randrange(0, units.us(200)),
                message_count=STREAM,
            )
        )
    return Scenario(
        topology="three_tier_clos",
        topology_kwargs={"hosts_per_tor": hosts_per_tor},
        flows=tuple(flows),
        duration_ns=duration_ns,
        label="benchmark",
    )


def run_benchmark_fct(
    repetitions: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: Optional[bool] = None,
):
    """Run the benchmark scenario; returns ``(runs, summaries)``."""
    repetitions = repetitions or scale.pick(2, 5, 1)
    runs = run_scenario(
        benchmark_scenario(),
        scale.seeds_for(repetitions, base=1600),
        jobs=jobs,
        cache=cache,
    )
    records = fct.records_from_runs(runs)
    rtt = fct.base_rtt_ns(hops=BENCHMARK_HOPS)
    return runs, fct.summarize_slowdowns(records, rtt)
