"""Multi-bottleneck (parking lot) marking-scheme study (Figure 20, §7).

Three flows over two bottlenecks: f1: H1->R1 and f2: H2->R2 share the
A->B trunk; f2 and f3: H3->R2 share the B->R2 edge.  Max-min fairness
gives every flow 20 Gbps, but the two-bottleneck flow f2 sees
congestion signals from both queues.  With DCTCP-style cut-off
marking its CNP rate doubles and it starves; RED-like marking with a
small Pmax spreads CNP generation probabilistically over the timer
window and mitigates (not eliminates) the bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import units
from repro.core.params import DCQCNParams
from repro.experiments import common
from repro.runner import Cell, execute
from repro.runner import scale

#: the two marking schemes Figure 20(b) compares
MARKING_SCHEMES = {
    "cutoff": DCQCNParams.deployed().with_cutoff_marking(units.kb(40)),
    "red": DCQCNParams.deployed(),
}


@dataclass
class ParkingLotResult:
    """Per-flow steady throughput under one marking scheme."""

    scheme: str
    flow_gbps: Dict[str, float]

    @property
    def two_bottleneck_share(self) -> float:
        """f2's throughput relative to the 20 Gbps max-min share."""
        return self.flow_gbps["f2"] / 20.0

    def row(self) -> List[str]:
        return [
            self.scheme,
            f"{self.flow_gbps['f1']:.2f}",
            f"{self.flow_gbps['f2']:.2f}",
            f"{self.flow_gbps['f3']:.2f}",
            f"{self.two_bottleneck_share * 100:.0f}%",
        ]


PARKING_HEADERS = ["marking", "f1 Gbps", "f2 Gbps", "f3 Gbps", "f2 / max-min"]


def parking_cell(
    scheme: str,
    warmup_ns: int,
    measure_ns: int,
    seed: int,
) -> Dict[str, Any]:
    """One marking scheme on the Figure 20 topology — worker entry point."""
    from repro.sim.switch import SwitchConfig
    from repro.sim.topology import parking_lot

    params = MARKING_SCHEMES[scheme]
    net, hosts = parking_lot(
        switch_config=SwitchConfig(marking=params), seed=seed, dcqcn_params=params
    )
    f1 = net.add_flow(hosts["H1"], hosts["R1"], cc="dcqcn")
    f2 = net.add_flow(hosts["H2"], hosts["R2"], cc="dcqcn")
    f3 = net.add_flow(hosts["H3"], hosts["R2"], cc="dcqcn")
    for flow in (f1, f2, f3):
        flow.set_greedy()
    net.run_for(warmup_ns)
    before = [flow.bytes_delivered for flow in (f1, f2, f3)]
    net.run_for(measure_ns)
    rates = {
        name: (flow.bytes_delivered - b) * 8e9 / measure_ns / 1e9
        for name, flow, b in zip(("f1", "f2", "f3"), (f1, f2, f3), before)
    }
    return {"scheme": scheme, "flow_gbps": rates}


_CELL_FN = "repro.experiments.multibottleneck:parking_cell"


def _cell_kwargs(
    scheme: str,
    warmup_ns: Optional[int],
    measure_ns: Optional[int],
    seed: int,
) -> Dict[str, Any]:
    if scheme not in MARKING_SCHEMES:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(MARKING_SCHEMES)}"
        )
    if warmup_ns is None:
        warmup_ns = scale.pick(units.ms(25), units.ms(60), units.ms(5))
    measure_ns = measure_ns or scale.pick(units.ms(15), units.ms(40), units.ms(2))
    return {
        "scheme": scheme,
        "warmup_ns": warmup_ns,
        "measure_ns": measure_ns,
        "seed": seed,
    }


def run_parking_lot(
    scheme: str,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    seed: int = 31,
) -> ParkingLotResult:
    """One marking scheme on the Figure 20 topology."""
    kwargs = _cell_kwargs(scheme, warmup_ns, measure_ns, seed)
    (value,) = execute([Cell(_CELL_FN, kwargs)])
    return ParkingLotResult(**value)


def run_fig20(**kwargs) -> List[ParkingLotResult]:
    """Both marking schemes (the Figure 20(b) comparison), fanned out."""
    cells = [
        Cell(_CELL_FN, _cell_kwargs(
            scheme=scheme,
            warmup_ns=kwargs.get("warmup_ns"),
            measure_ns=kwargs.get("measure_ns"),
            seed=kwargs.get("seed", 31),
        ))
        for scheme in ("cutoff", "red")
    ]
    return [ParkingLotResult(**value) for value in execute(cells)]
